//! Graphviz DOT export of multicast trees — handy for eyeballing tree shapes
//! and for the paper's Fig. 1-style illustrations.

use std::fmt::Write as _;

use crate::tree::MulticastTree;

/// Render the tree as a DOT digraph.  Labels may map chain positions to
/// physical node names (e.g. mesh coordinates); when absent, positions are
/// used.
pub fn to_dot(tree: &MulticastTree, labels: Option<&[String]>) -> String {
    let mut out = String::from("digraph multicast {\n  rankdir=TB;\n  node [shape=box];\n");
    let label = |p: usize| -> String {
        match labels {
            Some(ls) => ls.get(p).cloned().unwrap_or_else(|| p.to_string()),
            None => p.to_string(),
        }
    };
    let _ = writeln!(
        out,
        "  n{} [label=\"{} (src)\", style=filled, fillcolor=lightgrey];",
        tree.root,
        label(tree.root)
    );
    for p in 0..tree.k {
        if p != tree.root {
            let _ = writeln!(
                out,
                "  n{} [label=\"{} @{}\"];",
                p,
                label(p),
                tree.recv_time[p]
            );
        }
    }
    for (p, kids) in tree.children.iter().enumerate() {
        for &c in kids {
            let _ = writeln!(out, "  n{p} -> n{c};");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use crate::split::SplitStrategy;

    #[test]
    fn dot_contains_all_edges() {
        let s = Schedule::build(8, 0, &SplitStrategy::Binomial, 10, 10);
        let t = MulticastTree::from_schedule(&s);
        let dot = to_dot(&t, None);
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches("->").count(), 7);
        assert!(dot.contains("(src)"));
    }

    #[test]
    fn dot_uses_labels() {
        let s = Schedule::build(3, 0, &SplitStrategy::Binomial, 10, 10);
        let t = MulticastTree::from_schedule(&s);
        let labels = vec![
            "(0,0)".to_string(),
            "(1,0)".to_string(),
            "(2,0)".to_string(),
        ];
        let dot = to_dot(&t, Some(&labels));
        assert!(dot.contains("(1,0)"));
    }
}
