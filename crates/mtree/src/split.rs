//! Split rules — the only thing that differs between the binomial, optimal
//! and sequential chain-splitting multicasts.

use pcm::Time;

use crate::opt::{opt_table, OptTable};

/// Why a split rule could not produce `j(i)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitError {
    /// Splitting needs a segment of at least two nodes.
    TooSmall {
        /// The offending segment size.
        i: usize,
    },
    /// A `Custom` table has no entry for this segment size.
    MissingEntry {
        /// The segment size looked up.
        i: usize,
    },
    /// A `Custom` table entry violates `1 ≤ j(i) < i`.
    InvalidEntry {
        /// The segment size looked up.
        i: usize,
        /// The out-of-range table value.
        j: usize,
    },
}

impl std::fmt::Display for SplitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplitError::TooSmall { i } => {
                write!(f, "splitting needs at least two nodes, got {i}")
            }
            SplitError::MissingEntry { i } => write!(f, "no split entry for i={i}"),
            SplitError::InvalidEntry { i, j } => {
                write!(f, "custom table has invalid j({i}) = {j}")
            }
        }
    }
}

impl std::error::Error for SplitError {}

/// A rule giving, for a segment of `i` nodes (source + `i-1` destinations),
/// the number `j(i)` of nodes the *source-containing* part keeps, with
/// `1 ≤ j(i) < i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Recursive halving: `j(i) = ⌈i/2⌉`.  Yields the binomial tree of the
    /// U-mesh (McKinley et al.) and U-min (Xu & Ni) algorithms — optimal only
    /// when `t_hold == t_end`.
    Binomial,
    /// Peel one destination at a time: `j(i) = i - 1`.  Yields the sequential
    /// tree of \[5\], optimal in the limit `t_hold → 0`.
    Sequential,
    /// The OPT-tree splits from Algorithm 2.1 for a concrete
    /// `(t_hold, t_end)` pair.  Yields the parameterized-optimal tree of the
    /// OPT-tree / OPT-mesh / OPT-min algorithms.
    Opt(OptTable),
    /// Explicit split table: `table[i]` is `j(i)` for `2 ≤ i ≤ k` (index 0
    /// and 1 unused).  The escape hatch for DPs beyond Algorithm 2.1 —
    /// e.g. the size-aware scatter optimum (`mtree::scatter`) — and for
    /// hand-crafted trees in tests.
    Custom(Vec<usize>),
}

impl SplitStrategy {
    /// Build the optimal strategy for the pair `(t_hold, t_end)` covering
    /// trees of up to `k` nodes.
    pub fn opt(hold: Time, end: Time, k: usize) -> Self {
        SplitStrategy::Opt(opt_table(hold, end, k))
    }

    /// The size of the source-containing part when splitting a segment of
    /// `i` nodes.
    ///
    /// # Panics
    /// If `i < 2`, or if the strategy is `Opt` and `i` exceeds the table, or
    /// a `Custom` table lacks/mangles the entry.  Use
    /// [`SplitStrategy::try_j`] for a typed error instead.
    pub fn j(&self, i: usize) -> usize {
        match self.try_j(i) {
            Ok(j) => j,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`SplitStrategy::j`]: returns a typed [`SplitError`]
    /// instead of panicking, so static analysis can report malformed split
    /// tables as diagnostics.
    pub fn try_j(&self, i: usize) -> Result<usize, SplitError> {
        if i < 2 {
            return Err(SplitError::TooSmall { i });
        }
        match self {
            SplitStrategy::Binomial => Ok(i.div_ceil(2)),
            SplitStrategy::Sequential => Ok(i - 1),
            SplitStrategy::Opt(tab) => {
                if i > tab.k() {
                    return Err(SplitError::MissingEntry { i });
                }
                Ok(tab.j(i))
            }
            SplitStrategy::Custom(table) => {
                let j = *table.get(i).ok_or(SplitError::MissingEntry { i })?;
                if j < 1 || j >= i {
                    return Err(SplitError::InvalidEntry { i, j });
                }
                Ok(j)
            }
        }
    }

    /// Analytic completion time of a `k`-node chain-splitting multicast with
    /// this rule under `(hold, end)`: the recurrence
    /// `lat(1) = 0, lat(i) = max(lat(j) + hold, lat(i-j) + end)`.
    ///
    /// For `Opt` built with the same pair this equals `t(k)`.
    pub fn latency(&self, hold: Time, end: Time, k: usize) -> Time {
        assert!(k >= 1);
        // Memoised bottom-up: lat(i) depends on smaller sizes only.
        let mut lat = vec![0 as Time; k + 1];
        for i in 2..=k {
            let j = self.j(i);
            lat[i] = (lat[j] + hold).max(lat[i - j] + end);
        }
        lat[k]
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SplitStrategy::Binomial => "binomial",
            SplitStrategy::Sequential => "sequential",
            SplitStrategy::Opt(_) => "opt",
            SplitStrategy::Custom(_) => "custom",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn binomial_halves() {
        let s = SplitStrategy::Binomial;
        assert_eq!(s.j(2), 1);
        assert_eq!(s.j(3), 2);
        assert_eq!(s.j(8), 4);
        assert_eq!(s.j(9), 5);
    }

    #[test]
    fn sequential_peels_one() {
        let s = SplitStrategy::Sequential;
        assert_eq!(s.j(2), 1);
        assert_eq!(s.j(10), 9);
    }

    #[test]
    fn opt_latency_matches_table() {
        let s = SplitStrategy::opt(20, 55, 8);
        assert_eq!(s.latency(20, 55, 8), 130);
    }

    #[test]
    fn binomial_latency_matches_pcm_predictor() {
        let s = SplitStrategy::Binomial;
        let p = pcm::CommParams::from_pair(20, 55);
        for k in 1..=64 {
            assert_eq!(
                s.latency(20, 55, k),
                pcm::predict::binomial_tree_latency(&p, 0, k),
                "k={k}"
            );
        }
    }

    #[test]
    fn sequential_latency_matches_pcm_predictor() {
        let s = SplitStrategy::Sequential;
        let p = pcm::CommParams::from_pair(20, 55);
        for k in 1..=64 {
            assert_eq!(
                s.latency(20, 55, k),
                pcm::predict::sequential_tree_latency(&p, 0, k),
                "k={k}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn split_of_one_panics() {
        SplitStrategy::Binomial.j(1);
    }

    #[test]
    fn custom_table_is_honoured() {
        // j(2)=1, j(3)=1, j(4)=2 — an arbitrary shape.
        let s = SplitStrategy::Custom(vec![0, 0, 1, 1, 2]);
        assert_eq!(s.j(2), 1);
        assert_eq!(s.j(3), 1);
        assert_eq!(s.j(4), 2);
        // And it evaluates through the recurrence like any other rule.
        assert!(s.latency(10, 50, 4) >= 50);
    }

    #[test]
    #[should_panic(expected = "invalid j")]
    fn custom_table_rejects_bad_entries() {
        SplitStrategy::Custom(vec![0, 0, 2]).j(2);
    }

    #[test]
    fn try_j_returns_typed_errors() {
        assert_eq!(
            SplitStrategy::Binomial.try_j(1),
            Err(SplitError::TooSmall { i: 1 })
        );
        assert_eq!(
            SplitStrategy::Custom(vec![0, 0, 1]).try_j(3),
            Err(SplitError::MissingEntry { i: 3 })
        );
        assert_eq!(
            SplitStrategy::Custom(vec![0, 0, 2]).try_j(2),
            Err(SplitError::InvalidEntry { i: 2, j: 2 })
        );
        assert_eq!(
            SplitStrategy::opt(20, 55, 4).try_j(9),
            Err(SplitError::MissingEntry { i: 9 })
        );
        assert_eq!(SplitStrategy::Binomial.try_j(8), Ok(4));
    }

    proptest! {
        /// Every strategy returns a valid split.
        #[test]
        fn splits_valid(i in 2usize..300, a in 0u64..50, b in 1u64..50) {
            let (hold, end) = (a.min(b), a.max(b).max(1));
            for s in [
                SplitStrategy::Binomial,
                SplitStrategy::Sequential,
                SplitStrategy::opt(hold, end, i),
            ] {
                let j = s.j(i);
                prop_assert!(j >= 1 && j < i, "{}: j({}) = {}", s.name(), i, j);
            }
        }

        /// Opt latency is the minimum of the three strategies.
        #[test]
        fn opt_is_best(k in 1usize..150, a in 0u64..60, b in 1u64..60) {
            let (hold, end) = (a.min(b), a.max(b).max(1));
            let o = SplitStrategy::opt(hold, end, k).latency(hold, end, k);
            prop_assert!(o <= SplitStrategy::Binomial.latency(hold, end, k));
            prop_assert!(o <= SplitStrategy::Sequential.latency(hold, end, k));
        }
    }
}
