//! # `mtree` — multicast trees under the parameterized model
//!
//! The architecture-*independent* half of the paper: given the pair
//! `(t_hold, t_end)` from the `pcm` crate, construct the latency-optimal
//! multicast tree and evaluate arbitrary tree shapes analytically.
//!
//! The central object is a **chain-splitting schedule**.  All the multicast
//! algorithms in the paper — OPT-tree, OPT-mesh, OPT-min, U-mesh, U-min, and
//! the sequential tree — share one skeleton (Algorithms 3.1/4.1): the `k`
//! participating nodes are arranged in a *chain* (an ordered sequence whose
//! ordering is the architecture-dependent part), and a node responsible for a
//! contiguous chain segment repeatedly splits its segment in two, sends the
//! message to the nearest node of the far part, and keeps the part containing
//! itself.  What differs between algorithms is only
//!
//! 1. the **split rule** ([`split::SplitStrategy`]): recursive halving gives
//!    the binomial U-mesh/U-min trees; the [`opt::OptTable`] dynamic program
//!    (Algorithm 2.1) gives the OPT trees; "peel one" gives the sequential
//!    tree; and
//! 2. the **chain order** (supplied by the `topo` crate): dimension-ordered
//!    for meshes, lexicographic for BMINs, arbitrary for the portable
//!    OPT-tree.
//!
//! This crate is purely analytic — no simulation.  [`schedule::Schedule`]
//! assigns every send its model start time assuming contention-free
//! communication; the `flitsim`/`optmc` crates then check how reality
//! (wormhole channel contention) treats those assumptions.
//!
//! ```
//! use mtree::{Schedule, SplitStrategy};
//!
//! // Fig. 1 of the paper: 8 nodes, t_hold = 20, t_end = 55.
//! let opt = SplitStrategy::opt(20, 55, 8);
//! let schedule = Schedule::build(8, 0, &opt, 20, 55);
//! assert_eq!(schedule.latency(), 130);              // OPT-mesh's 130 …
//! let binomial = Schedule::build(8, 0, &SplitStrategy::Binomial, 20, 55);
//! assert_eq!(binomial.latency(), 165);              // … vs U-mesh's 165.
//!
//! // The growth-function dual: N(130) is the first time 8 nodes fit.
//! assert!(mtree::growth::reachable(20, 55, 130) >= 8);
//! assert!(mtree::growth::reachable(20, 55, 129) < 8);
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod dot;
pub mod growth;
pub mod opt;
pub mod scatter;
pub mod schedule;
pub mod split;
pub mod tree;

pub use opt::OptTable;
pub use schedule::{Schedule, SendEvent};
pub use split::{SplitError, SplitStrategy};
pub use tree::MulticastTree;
