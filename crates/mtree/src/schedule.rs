//! The chain-splitting schedule — Algorithms 3.1 / 4.1 at the level of chain
//! *positions*, with analytic (contention-free) start times.
//!
//! A node responsible for chain segment `[l, r]` (itself at position `s`)
//! repeatedly splits the segment: with `i = r - l + 1` nodes and split
//! `j = j(i)`, if the source lies in the lower part it keeps `[l, l+j-1]` and
//! sends to `x_{l+j}`, the lowest node of the upper part, delegating
//! `[l+j, r]`; otherwise it keeps `[r-j+1, r]` and sends to `x_{r-j}`, the
//! highest node of the lower part, delegating `[l, r-j]`.  Each send costs
//! the sender `t_hold` before its next action; the receiver starts its own
//! work `t_end` after the send is initiated.

use pcm::Time;
use serde::{Deserialize, Serialize};

use crate::split::SplitStrategy;

/// One send of the multicast: `from` transmits the message (plus the address
/// list for `range`) to `to`, starting at model time `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SendEvent {
    /// Chain position of the sender.
    pub from: usize,
    /// Chain position of the receiver (always `range.0`.. is the receiver's
    /// responsibility; `to == range.0` or `range.1` by construction).
    pub to: usize,
    /// Model time at which the sender initiates the send.
    pub start: Time,
    /// Contention-free model time at which the receiver finishes receiving
    /// (`start + t_end`).
    pub arrive: Time,
    /// Segment `[lo, hi]` of chain positions the receiver becomes
    /// responsible for (inclusive; contains `to`).
    pub range: (usize, usize),
}

/// A complete multicast schedule over chain positions `0..k`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Number of participating nodes (source + destinations).
    pub k: usize,
    /// Chain position of the source.
    pub src: usize,
    /// `t_hold` used for the timing.
    pub hold: Time,
    /// `t_end` used for the timing.
    pub end: Time,
    /// All sends, in the order they are generated (parent before child).
    pub sends: Vec<SendEvent>,
    /// Per-position receive-completion time (source has 0).
    pub recv_time: Vec<Time>,
}

impl Schedule {
    /// Build the schedule for `k` nodes with the source at chain position
    /// `src`, using split rule `splits` and the model pair `(hold, end)`.
    ///
    /// # Panics
    /// If `k == 0` or `src >= k`.
    pub fn build(k: usize, src: usize, splits: &SplitStrategy, hold: Time, end: Time) -> Self {
        assert!(k >= 1, "need at least the source");
        assert!(src < k, "source position {src} out of range 0..{k}");
        let mut sends = Vec::with_capacity(k.saturating_sub(1));
        let mut recv_time = vec![0 as Time; k];
        // Work list of (l, r, s, ready): node at position s is responsible
        // for [l, r] and may start sending at `ready`.
        let mut stack = vec![(0usize, k - 1, src, 0 as Time)];
        while let Some((mut l, mut r, s, mut ready)) = stack.pop() {
            while l < r {
                let i = r - l + 1;
                let j = splits.j(i);
                let (rec, d_lo, d_hi);
                if s < l + j {
                    // Source in the lower part: keep [l, l+j-1], delegate the
                    // upper part to its lowest node.
                    rec = l + j;
                    d_lo = rec;
                    d_hi = r;
                    r = rec - 1;
                } else {
                    // Source in the upper part of size j: keep [r-j+1, r],
                    // delegate the lower part to its highest node.
                    rec = r - j;
                    d_lo = l;
                    d_hi = rec;
                    l = rec + 1;
                }
                let arrive = ready + end;
                sends.push(SendEvent {
                    from: s,
                    to: rec,
                    start: ready,
                    arrive,
                    range: (d_lo, d_hi),
                });
                recv_time[rec] = arrive;
                stack.push((d_lo, d_hi, rec, arrive));
                ready += hold;
            }
        }
        Self {
            k,
            src,
            hold,
            end,
            sends,
            recv_time,
        }
    }

    /// Multicast latency: time by which every destination has received.
    pub fn latency(&self) -> Time {
        self.recv_time.iter().copied().max().unwrap_or(0)
    }

    /// Number of sends (always `k - 1`).
    pub fn n_sends(&self) -> usize {
        self.sends.len()
    }

    /// The sends each position performs, ordered by start time.
    pub fn sends_by(&self, pos: usize) -> Vec<&SendEvent> {
        let mut v: Vec<&SendEvent> = self.sends.iter().filter(|e| e.from == pos).collect();
        v.sort_by_key(|e| e.start);
        v
    }

    /// Tree depth: maximum number of hops from the source in the induced
    /// tree (source → receiver edges).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.k];
        // Sends are generated parent-before-child, so a single pass works.
        let mut max = 0;
        for e in &self.sends {
            depth[e.to] = depth[e.from] + 1;
            max = max.max(depth[e.to]);
        }
        max
    }

    /// Check structural soundness: every position except the source receives
    /// exactly once, every receiver lies inside its delegated range, and a
    /// node only sends after it is ready.
    pub fn validate(&self) -> Result<(), String> {
        let mut received = vec![false; self.k];
        received[self.src] = true;
        for e in &self.sends {
            if !received[e.from] {
                return Err(format!("position {} sends before receiving", e.from));
            }
            if received[e.to] {
                return Err(format!("position {} receives twice", e.to));
            }
            if e.to < e.range.0 || e.to > e.range.1 {
                return Err(format!("receiver {} outside its range {:?}", e.to, e.range));
            }
            if e.start < self.recv_time[e.from] {
                return Err(format!(
                    "position {} sends at {} before its receive at {}",
                    e.from, e.start, self.recv_time[e.from]
                ));
            }
            received[e.to] = true;
        }
        if let Some(miss) = received.iter().position(|r| !r) {
            return Err(format!("position {miss} never receives"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn opt(hold: Time, end: Time, k: usize) -> SplitStrategy {
        SplitStrategy::opt(hold, end, k)
    }

    #[test]
    fn fig1_schedule_latency_130() {
        let s = Schedule::build(8, 0, &opt(20, 55, 8), 20, 55);
        assert_eq!(s.latency(), 130);
        s.validate().unwrap();
    }

    #[test]
    fn fig1_umesh_latency_165() {
        let s = Schedule::build(8, 0, &SplitStrategy::Binomial, 20, 55);
        assert_eq!(s.latency(), 165);
        s.validate().unwrap();
    }

    #[test]
    fn schedule_latency_matches_recurrence_any_source() {
        // Theorem: the chain-splitting embedding achieves the recurrence
        // latency regardless of where the source sits in the chain.
        for k in 1..=40usize {
            let strat = opt(20, 55, k);
            let expect = strat.latency(20, 55, k);
            for src in 0..k {
                let s = Schedule::build(k, src, &strat, 20, 55);
                assert_eq!(s.latency(), expect, "k={k} src={src}");
            }
        }
    }

    #[test]
    fn sequential_schedule_is_root_only() {
        let s = Schedule::build(10, 3, &SplitStrategy::Sequential, 5, 50);
        // All sends come from the source.
        assert!(s.sends.iter().all(|e| e.from == 3));
        assert_eq!(s.depth(), 1);
        assert_eq!(s.latency(), 9 * 5 - 5 + 50); // (n-1 sends, last at 8*hold) + end
    }

    #[test]
    fn single_node_schedule_is_empty() {
        let s = Schedule::build(1, 0, &SplitStrategy::Binomial, 5, 50);
        assert_eq!(s.n_sends(), 0);
        assert_eq!(s.latency(), 0);
        s.validate().unwrap();
    }

    #[test]
    fn binomial_depth_is_log2() {
        for k in [2usize, 4, 8, 16, 32, 64] {
            let s = Schedule::build(k, 0, &SplitStrategy::Binomial, 10, 10);
            assert_eq!(s.depth(), k.trailing_zeros() as usize, "k={k}");
        }
    }

    proptest! {
        /// Structural soundness for all strategies, sizes, sources.
        #[test]
        fn schedules_validate(k in 1usize..120, srcf in 0.0f64..1.0,
                              a in 0u64..50, b in 1u64..50) {
            let (hold, end) = (a.min(b), a.max(b).max(1));
            let src = ((k as f64 * srcf) as usize).min(k - 1);
            for strat in [SplitStrategy::Binomial, SplitStrategy::Sequential, opt(hold, end, k)] {
                let s = Schedule::build(k, src, &strat, hold, end);
                prop_assert_eq!(s.n_sends(), k - 1, "{}", strat.name());
                prop_assert!(s.validate().is_ok(), "{}: {:?}", strat.name(), s.validate());
            }
        }

        /// Latency always matches the split-rule recurrence.
        #[test]
        fn latency_matches_recurrence(k in 1usize..120, srcf in 0.0f64..1.0,
                                      a in 0u64..50, b in 1u64..50) {
            let (hold, end) = (a.min(b), a.max(b).max(1));
            let src = ((k as f64 * srcf) as usize).min(k - 1);
            for strat in [SplitStrategy::Binomial, SplitStrategy::Sequential, opt(hold, end, k)] {
                let s = Schedule::build(k, src, &strat, hold, end);
                prop_assert_eq!(s.latency(), strat.latency(hold, end, k), "{}", strat.name());
            }
        }

        /// Each delegated range is a strict sub-segment, and sends from one
        /// node are spaced exactly t_hold apart.
        #[test]
        fn hold_spacing(k in 2usize..80, a in 1u64..50, b in 1u64..50) {
            let (hold, end) = (a.min(b), a.max(b));
            let s = Schedule::build(k, 0, &opt(hold, end, k), hold, end);
            for pos in 0..k {
                let sends = s.sends_by(pos);
                for w in sends.windows(2) {
                    prop_assert_eq!(w[1].start - w[0].start, hold);
                }
                if let Some(first) = sends.first() {
                    prop_assert_eq!(first.start, s.recv_time[pos]);
                }
            }
        }
    }
}
