//! Comparative analyses of tree shapes under the model.

use pcm::Time;
use serde::{Deserialize, Serialize};

use crate::schedule::Schedule;
use crate::split::SplitStrategy;
use crate::tree::MulticastTree;

/// Summary statistics of one multicast tree under the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeStats {
    /// Number of participating nodes.
    pub k: usize,
    /// Analytic (contention-free) multicast latency.
    pub latency: Time,
    /// Depth of the tree.
    pub depth: usize,
    /// Maximum fan-out.
    pub max_degree: usize,
    /// Number of forwarding nodes.
    pub forwarders: usize,
}

/// Compute [`TreeStats`] for a strategy at `(hold, end)` with the source at
/// position 0.
pub fn stats(strat: &SplitStrategy, hold: Time, end: Time, k: usize) -> TreeStats {
    let s = Schedule::build(k, 0, strat, hold, end);
    let t = MulticastTree::from_schedule(&s);
    TreeStats {
        k,
        latency: s.latency(),
        depth: t.depth(),
        max_degree: t.max_degree(),
        forwarders: t.n_forwarders(),
    }
}

/// Ratio by which the optimal tree improves on the binomial tree at
/// `(hold, end, k)`; 1.0 means no improvement.
pub fn opt_vs_binomial_ratio(hold: Time, end: Time, k: usize) -> f64 {
    let b = SplitStrategy::Binomial.latency(hold, end, k);
    let o = SplitStrategy::opt(hold, end, k).latency(hold, end, k);
    if o == 0 {
        1.0
    } else {
        b as f64 / o as f64
    }
}

/// Sweep the `t_hold : t_end` ratio and report the improvement factor —
/// the "architecture-independent" story the paper builds on: the binomial
/// tree is only optimal at ratio 1.
pub fn ratio_sweep(end: Time, k: usize, holds: &[Time]) -> Vec<(Time, f64)> {
    holds
        .iter()
        .map(|&h| (h, opt_vs_binomial_ratio(h, end, k)))
        .collect()
}

/// One row of a strategy-comparison table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Participant count.
    pub k: usize,
    /// Optimal-tree latency.
    pub opt: Time,
    /// Binomial-tree latency.
    pub binomial: Time,
    /// Sequential-tree latency.
    pub sequential: Time,
}

/// Latency of all three strategies across participant counts — the data
/// behind "which baseline wins where" discussions (paper §1).
pub fn comparison_table(hold: Time, end: Time, ks: &[usize]) -> Vec<ComparisonRow> {
    ks.iter()
        .map(|&k| ComparisonRow {
            k,
            opt: SplitStrategy::opt(hold, end, k.max(1)).latency(hold, end, k),
            binomial: SplitStrategy::Binomial.latency(hold, end, k),
            sequential: SplitStrategy::Sequential.latency(hold, end, k),
        })
        .collect()
}

/// The crossover point where the binomial tree starts beating the
/// sequential tree (the paper's §1 observation that neither dominates):
/// smallest k in `2..=max_k` with `binomial < sequential`, if any.
pub fn binomial_sequential_crossover(hold: Time, end: Time, max_k: usize) -> Option<usize> {
    (2..=max_k).find(|&k| {
        SplitStrategy::Binomial.latency(hold, end, k)
            < SplitStrategy::Sequential.latency(hold, end, k)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_rows_are_consistent() {
        for row in comparison_table(20, 55, &[1, 2, 8, 32, 128]) {
            assert!(row.opt <= row.binomial, "{row:?}");
            assert!(row.opt <= row.sequential, "{row:?}");
        }
    }

    #[test]
    fn crossover_moves_with_the_ratio() {
        // With a large hold the sequential tree is bad: binomial wins early.
        let early = binomial_sequential_crossover(50, 55, 256).unwrap();
        // With a tiny hold the sequential tree wins for a long while.
        let late = binomial_sequential_crossover(1, 55, 256);
        assert!(early <= 4, "early crossover expected, got {early}");
        match late {
            None => {}
            Some(k) => assert!(k > early, "late {k} vs early {early}"),
        }
    }

    #[test]
    fn binomial_not_improved_at_equal_params() {
        assert!((opt_vs_binomial_ratio(50, 50, 64) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn improvement_grows_as_hold_shrinks() {
        let r1 = opt_vs_binomial_ratio(40, 50, 64);
        let r2 = opt_vs_binomial_ratio(10, 50, 64);
        let r3 = opt_vs_binomial_ratio(1, 50, 64);
        assert!(r1 >= 1.0);
        assert!(r2 > r1, "{r2} vs {r1}");
        assert!(r3 > r2, "{r3} vs {r2}");
    }

    #[test]
    fn stats_fig1() {
        let s = stats(&SplitStrategy::opt(20, 55, 8), 20, 55, 8);
        assert_eq!(s.latency, 130);
        assert_eq!(s.k, 8);
        assert!(s.depth <= 3);
    }

    #[test]
    fn sweep_is_monotone_nonincreasing_in_hold() {
        let sweep = ratio_sweep(100, 32, &[1, 10, 25, 50, 75, 100]);
        for w in sweep.windows(2) {
            assert!(w[0].1 >= w[1].1 - 1e-9, "{:?}", sweep);
        }
    }
}
