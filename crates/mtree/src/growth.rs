//! The reachable-set (growth) function — the combinatorial dual of the
//! OPT-tree dynamic program.
//!
//! Let `N(T)` be the maximum number of nodes that can hold the message
//! within `T` time units of the source starting, under the parameterized
//! model.  An informed node spends `t_hold` initiating a send (after which
//! it keeps working with its remaining time) and the new node is productive
//! `t_end` after the send started, so
//!
//! ```text
//! N(T) = 1                              for T < t_end,
//! N(T) = N(T - t_hold) + N(T - t_end)   for T ≥ t_end.
//! ```
//!
//! — a generalised Fibonacci recurrence (with `t_hold = t_end` it *is*
//! doubling, hence the binomial tree; with `t_hold ≪ t_end` it grows like a
//! high-order Fibonacci, hence wide trees).  The duality with Algorithm 2.1
//! is exact:
//!
//! ```text
//! t[k] = min { T : N(T) ≥ k }
//! ```
//!
//! which the property tests below verify against `opt_table`.  This module
//! also gives `O(T)`-table / `O(log)`-query answers to "how many nodes can I
//! reach in my latency budget?" — a planning primitive the DP alone does
//! not expose.

use pcm::Time;

/// Maximum nodes reachable within `t` of the source's start (`N(t)` above).
///
/// Returns `usize::MAX` when the count exceeds `usize::MAX / 2` or when
/// `t_hold == 0` and `t >= t_end` (unbounded fan-out).
///
/// # Panics
/// If `t_end == 0` or `t_hold > t_end` (model invariants).
pub fn reachable(hold: Time, end: Time, t: Time) -> usize {
    assert!(end > 0, "t_end must be positive");
    assert!(hold <= end, "model invariant t_hold <= t_end violated");
    if t < end {
        return 1;
    }
    if hold == 0 {
        return usize::MAX;
    }
    // Dense table over time; N is non-decreasing, so saturate early.
    let cap = usize::MAX / 2;
    let n = t as usize;
    let mut table = vec![1usize; n + 1];
    for i in end as usize..=n {
        let a = table[i - hold as usize];
        let b = table[i - end as usize];
        table[i] = if a >= cap || b >= cap || a + b >= cap {
            usize::MAX
        } else {
            a + b
        };
    }
    table[n]
}

/// Minimum time to inform `k` nodes — computed from the growth function by
/// monotone search, *not* from the DP.  Equal to `opt_table(...).t(k)` (the
/// duality; property-tested).
///
/// # Panics
/// If `k == 0`, or the model invariants are violated.
pub fn min_time(hold: Time, end: Time, k: usize) -> Time {
    assert!(k >= 1, "need at least the source");
    if k == 1 {
        return 0;
    }
    assert!(end > 0, "t_end must be positive");
    assert!(hold <= end, "model invariant t_hold <= t_end violated");
    if hold == 0 {
        return end;
    }
    // N(T) ≥ k within T ≤ (k-1)·end (sequential tree bound); binary-search
    // the monotone growth function over that range.
    let (mut lo, mut hi) = (end, (k as Time - 1) * end);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if reachable(hold, end, mid) >= k {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// The growth sequence sampled at multiples of `t_hold` up to `t_max` —
/// handy for plots and for eyeballing the Fibonacci-like regime.
pub fn growth_curve(hold: Time, end: Time, t_max: Time) -> Vec<(Time, usize)> {
    assert!(hold > 0, "sampling needs a positive t_hold");
    (0..=t_max / hold)
        .map(|i| (i * hold, reachable(hold, end, i * hold)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::opt_table;
    use proptest::prelude::*;

    #[test]
    fn doubling_when_hold_equals_end() {
        // N(T) = 2^(T / t) — the binomial regime.
        for i in 0..7u64 {
            assert_eq!(reachable(10, 10, i * 10), 1usize << i, "i={i}");
            if i > 0 {
                assert_eq!(reachable(10, 10, i * 10 - 1), 1usize << (i - 1));
            }
        }
    }

    #[test]
    fn fibonacci_when_end_is_twice_hold() {
        // N(i·h) with end = 2h follows the Fibonacci numbers.
        let (h, e) = (10u64, 20u64);
        let expect = [1usize, 1, 2, 3, 5, 8, 13, 21, 34, 55];
        for (i, &f) in expect.iter().enumerate() {
            assert_eq!(reachable(h, e, i as u64 * h), f, "i={i}");
        }
    }

    #[test]
    fn zero_hold_is_unbounded_after_end() {
        assert_eq!(reachable(0, 50, 49), 1);
        assert_eq!(reachable(0, 50, 50), usize::MAX);
        assert_eq!(min_time(0, 50, 1_000_000), 50);
    }

    #[test]
    fn fig1_duality() {
        // t[8] = 130 at (20, 55): N(129) < 8 <= N(130).
        assert!(reachable(20, 55, 129) < 8);
        assert!(reachable(20, 55, 130) >= 8);
        assert_eq!(min_time(20, 55, 8), 130);
    }

    #[test]
    fn growth_curve_is_monotone() {
        let c = growth_curve(20, 55, 400);
        for w in c.windows(2) {
            assert!(w[1].1 >= w[0].1, "{c:?}");
        }
    }

    proptest! {
        /// The duality: min_time from the growth function equals the DP.
        #[test]
        fn duality_with_opt_table(a in 1u64..60, b in 1u64..60, k in 1usize..120) {
            let (hold, end) = (a.min(b), a.max(b));
            let tab = opt_table(hold, end, k);
            prop_assert_eq!(min_time(hold, end, k), tab.t(k), "hold={}, end={}", hold, end);
        }

        /// N is exactly the inverse: N(t[k]) >= k > N(t[k] - 1).
        #[test]
        fn growth_inverts_latency(a in 1u64..50, b in 2u64..50, k in 2usize..80) {
            let (hold, end) = (a.min(b), a.max(b));
            let t = opt_table(hold, end, k).t(k);
            prop_assert!(reachable(hold, end, t) >= k);
            prop_assert!(reachable(hold, end, t - 1) < k);
        }
    }
}
