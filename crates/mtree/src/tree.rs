//! An explicit multicast-tree view of a schedule.
//!
//! The chain-splitting recursion induces a rooted tree over chain positions;
//! this module materialises parent/children links so tree-shape analyses
//! (depth, fan-out, comparison plots) and DOT export don't have to re-derive
//! them from the event list.

use pcm::Time;
use serde::{Deserialize, Serialize};

use crate::schedule::Schedule;

/// A rooted multicast tree over chain positions `0..k`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MulticastTree {
    /// Number of nodes.
    pub k: usize,
    /// Root (source) position.
    pub root: usize,
    /// `parent[p]` is `None` for the root.
    pub parent: Vec<Option<usize>>,
    /// Children of each position, in send order (earliest first).
    pub children: Vec<Vec<usize>>,
    /// Model receive time of each position (root: 0).
    pub recv_time: Vec<Time>,
}

impl MulticastTree {
    /// Materialise the tree behind a schedule.
    pub fn from_schedule(s: &Schedule) -> Self {
        let mut parent = vec![None; s.k];
        let mut children = vec![Vec::new(); s.k];
        for e in &s.sends {
            parent[e.to] = Some(e.from);
            children[e.from].push(e.to);
        }
        for c in &mut children {
            // sends_by is start-ordered; sends vec is generation-ordered.
            // Re-sort by the schedule's start times.
            c.sort_by_key(|&child| s.recv_time[child]);
        }
        Self {
            k: s.k,
            root: s.src,
            parent,
            children,
            recv_time: s.recv_time.clone(),
        }
    }

    /// Depth of the deepest leaf.
    pub fn depth(&self) -> usize {
        fn rec(t: &MulticastTree, p: usize) -> usize {
            t.children[p]
                .iter()
                .map(|&c| 1 + rec(t, c))
                .max()
                .unwrap_or(0)
        }
        rec(self, self.root)
    }

    /// Maximum fan-out over all nodes.
    pub fn max_degree(&self) -> usize {
        self.children.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of internal (forwarding) nodes, excluding pure leaves.
    pub fn n_forwarders(&self) -> usize {
        self.children.iter().filter(|c| !c.is_empty()).count()
    }

    /// Nodes in breadth-first order from the root.
    pub fn bfs_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.k);
        let mut q = std::collections::VecDeque::from([self.root]);
        while let Some(p) = q.pop_front() {
            order.push(p);
            q.extend(self.children[p].iter().copied());
        }
        order
    }

    /// Verify the tree is a spanning arborescence rooted at `root`.
    pub fn validate(&self) -> Result<(), String> {
        if self.parent[self.root].is_some() {
            return Err("root has a parent".into());
        }
        let order = self.bfs_order();
        if order.len() != self.k {
            return Err(format!("tree reaches {} of {} nodes", order.len(), self.k));
        }
        for (p, par) in self.parent.iter().enumerate() {
            if p != self.root && par.is_none() {
                return Err(format!("non-root {p} has no parent"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::SplitStrategy;

    fn tree(k: usize, src: usize, strat: &SplitStrategy, hold: Time, end: Time) -> MulticastTree {
        MulticastTree::from_schedule(&Schedule::build(k, src, strat, hold, end))
    }

    #[test]
    fn binomial_tree_shape() {
        let t = tree(8, 0, &SplitStrategy::Binomial, 10, 10);
        t.validate().unwrap();
        assert_eq!(t.depth(), 3);
        assert_eq!(t.max_degree(), 3); // root of a binomial tree B3
        assert_eq!(t.n_forwarders(), 4);
    }

    #[test]
    fn sequential_tree_is_a_star() {
        let t = tree(10, 5, &SplitStrategy::Sequential, 1, 10);
        t.validate().unwrap();
        assert_eq!(t.depth(), 1);
        assert_eq!(t.max_degree(), 9);
        assert_eq!(t.n_forwarders(), 1);
    }

    #[test]
    fn opt_tree_between_extremes() {
        let strat = SplitStrategy::opt(20, 55, 32);
        let t = tree(32, 0, &strat, 20, 55);
        t.validate().unwrap();
        assert!(t.depth() >= 2, "depth {}", t.depth());
        assert!(t.depth() <= 5, "depth {}", t.depth());
    }

    #[test]
    fn bfs_covers_everyone_any_source() {
        for src in 0..12 {
            let t = tree(12, src, &SplitStrategy::Binomial, 5, 7);
            let mut o = t.bfs_order();
            o.sort_unstable();
            assert_eq!(o, (0..12).collect::<Vec<_>>());
        }
    }

    #[test]
    fn recv_times_increase_down_the_tree() {
        let t = tree(20, 3, &SplitStrategy::opt(7, 30, 20), 7, 30);
        for p in 0..t.k {
            if let Some(par) = t.parent[p] {
                assert!(t.recv_time[p] > t.recv_time[par], "{p} vs parent {par}");
            }
        }
    }
}
