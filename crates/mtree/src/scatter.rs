//! Scatter — personalized multicast — and its size-aware optimal tree.
//!
//! In a scatter every destination receives its *own* `unit` bytes (the
//! Scatter/Collect lineage the paper's §1 cites).  Unicast-based scatter
//! runs the same chain-splitting recursion, but a send delegating a
//! `d`-node range physically carries `d · unit` bytes — so message costs
//! *shrink* down the tree, and Algorithm 2.1 (which prices every send
//! identically) no longer yields the optimum.  The natural generalisation
//! prices each candidate split by the delegated part's size:
//!
//! ```text
//! t[1] = 0
//! t[i] = min over j of max( t[j] + t_hold((i-j)·u),  t[i-j] + t_end((i-j)·u) )
//! ```
//!
//! with `t_hold(m)`, `t_end(m)` the affine model functions.  The monotone
//! incremental trick of Algorithm 2.1 does not obviously survive
//! size-dependent costs, so this DP is the exhaustive O(k²) — at the k ≤
//! thousands of real collectives that is nothing.

use pcm::{LinearFn, MsgSize, Time};

use crate::split::SplitStrategy;

/// Output of the scatter DP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScatterTable {
    t: Vec<Time>,
    j: Vec<usize>,
}

impl ScatterTable {
    /// Optimal scatter completion for an `i`-node segment.
    pub fn t(&self, i: usize) -> Time {
        assert!(i >= 1 && i < self.t.len(), "i={i} out of range");
        self.t[i]
    }

    /// The optimal split for an `i`-node segment.
    pub fn j(&self, i: usize) -> usize {
        assert!(i >= 2 && i < self.j.len(), "i={i} out of range");
        self.j[i]
    }

    /// View as a [`SplitStrategy`] for schedule building.
    pub fn splits(&self) -> SplitStrategy {
        SplitStrategy::Custom(self.j.clone())
    }
}

/// The size-aware scatter DP: `hold` and `end` are the model's affine
/// functions of message size; each destination owns `unit` payload bytes.
///
/// # Panics
/// If `k == 0`, or the functions produce `t_hold(m) > t_end(m)` anywhere in
/// the used range (model invariant).
pub fn scatter_table(hold: &LinearFn, end: &LinearFn, unit: MsgSize, k: usize) -> ScatterTable {
    assert!(k >= 1, "need at least the source node");
    let mut t = vec![0 as Time; k + 1];
    let mut j = vec![0usize; k + 1];
    for i in 2..=k {
        let (best_j, best_t) = (1..i)
            .map(|jj| {
                let m = (i - jj) as MsgSize * unit;
                let (h, e) = (hold.eval(m), end.eval(m));
                assert!(h <= e, "model invariant t_hold <= t_end violated at m={m}");
                (jj, (t[jj] + h).max(t[i - jj] + e))
            })
            .rev()
            .min_by_key(|&(_, v)| v)
            .expect("i >= 2 so the range is non-empty");
        t[i] = best_t;
        j[i] = best_j;
    }
    ScatterTable { t, j }
}

/// Scatter completion of an arbitrary split rule under the same cost model
/// (for comparing the scatter optimum against multicast-tuned or binomial
/// shapes).
pub fn scatter_latency(
    strat: &SplitStrategy,
    hold: &LinearFn,
    end: &LinearFn,
    unit: MsgSize,
    k: usize,
) -> Time {
    assert!(k >= 1);
    let mut lat = vec![0 as Time; k + 1];
    for i in 2..=k {
        let jj = strat.j(i);
        let m = (i - jj) as MsgSize * unit;
        lat[i] = (lat[jj] + hold.eval(m)).max(lat[i - jj] + end.eval(m));
    }
    lat[k]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::opt_table;
    use proptest::prelude::*;

    fn model() -> (LinearFn, LinearFn) {
        // hold = 250 + 0.13 m, end = 680 + 0.425 m (the paragon-like pair).
        (LinearFn::new(250.0, 0.13), LinearFn::new(680.0, 0.425))
    }

    #[test]
    fn unit_zero_degenerates_to_multicast_dp() {
        // With no per-destination payload, sizes don't vary: the scatter DP
        // must equal Algorithm 2.1 on the size-0 pair.
        let (hold, end) = model();
        let tab = scatter_table(&hold, &end, 0, 64);
        let opt = opt_table(hold.eval(0), end.eval(0), 64);
        for i in 1..=64 {
            assert_eq!(tab.t(i), opt.t(i), "i={i}");
        }
    }

    #[test]
    fn scatter_prefers_shedding_weight_early() {
        // With heavy per-destination payloads the root wants to hand off
        // large halves early (shrinking its own remaining sends); the
        // scatter optimum must be at least as good as both fixed shapes.
        let (hold, end) = model();
        for unit in [512u64, 4096, 65536] {
            for k in [8usize, 32, 100] {
                let tab = scatter_table(&hold, &end, unit, k);
                let opt_shape = {
                    // multicast-optimal shape priced at the mean size —
                    // what a naive reuse of Algorithm 2.1 would do.
                    let m = (k as u64 / 2) * unit;
                    crate::split::SplitStrategy::opt(hold.eval(m), end.eval(m), k)
                };
                let best = tab.t(k);
                assert!(
                    best <= scatter_latency(&tab.splits(), &hold, &end, unit, k),
                    "table must price itself consistently"
                );
                assert!(
                    best <= scatter_latency(&SplitStrategy::Binomial, &hold, &end, unit, k),
                    "unit={unit} k={k}: binomial beat the scatter DP"
                );
                assert!(
                    best <= scatter_latency(&opt_shape, &hold, &end, unit, k),
                    "unit={unit} k={k}: naive multicast shape beat the scatter DP"
                );
            }
        }
    }

    #[test]
    fn two_nodes_is_one_transfer() {
        let (hold, end) = model();
        let tab = scatter_table(&hold, &end, 1024, 2);
        assert_eq!(tab.t(2), end.eval(1024));
        assert_eq!(tab.j(2), 1);
    }

    proptest! {
        /// The DP's value function is achieved by its own split table.
        #[test]
        fn table_is_self_consistent(unit in 0u64..10_000, k in 2usize..64) {
            let (hold, end) = model();
            let tab = scatter_table(&hold, &end, unit, k);
            prop_assert_eq!(
                tab.t(k),
                scatter_latency(&tab.splits(), &hold, &end, unit, k)
            );
        }

        /// Monotone: more destinations never finish sooner.
        #[test]
        fn monotone_in_k(unit in 0u64..10_000, k in 3usize..64) {
            let (hold, end) = model();
            let tab = scatter_table(&hold, &end, unit, k);
            for i in 2..=k {
                prop_assert!(tab.t(i) >= tab.t(i - 1));
            }
        }
    }
}
