//! Algorithm 2.1 — the OPT-tree dynamic program.
//!
//! Computes, for every tree size `i ≤ k`, the minimum multicast latency
//! `t[i]` and the size `j[i]` of the subtree kept by the source:
//!
//! ```text
//! t[1] = 0,  t[2] = t_end,
//! t[i] = min over j of max( t[j] + t_hold,  t[i-j] + t_end )
//! ```
//!
//! The paper's O(k) incremental algorithm exploits that the optimal `j`
//! never decreases and grows by at most one per step; [`opt_table`] is the
//! faithful transcription.  [`opt_table_reference`] is the O(k²) exhaustive
//! minimisation used as an oracle in tests (their agreement is the
//! correctness theorem of the ICPP'96 companion paper).

use pcm::Time;
use serde::{Deserialize, Serialize};

/// Output of the OPT-tree dynamic program for trees of up to `k` nodes.
///
/// Indexing is 1-based to match the paper: `t(i)`/`j(i)` are valid for
/// `1 ≤ i ≤ k` (and `j(i)` for `i ≥ 2`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptTable {
    /// `t_hold` used to build the table.
    pub hold: Time,
    /// `t_end` used to build the table.
    pub end: Time,
    t: Vec<Time>,
    j: Vec<usize>,
}

impl OptTable {
    /// Largest tree size the table covers.
    pub fn k(&self) -> usize {
        self.t.len() - 1
    }

    /// Minimum multicast latency for an `i`-node tree (source + `i-1`
    /// destinations).
    ///
    /// # Panics
    /// If `i == 0` or `i > k`.
    pub fn t(&self, i: usize) -> Time {
        assert!(
            i >= 1 && i <= self.k(),
            "i={} out of range 1..={}",
            i,
            self.k()
        );
        self.t[i]
    }

    /// Size of the source-containing subtree in the optimal `i`-node tree.
    ///
    /// # Panics
    /// If `i < 2` or `i > k` (a 1-node tree has no split).
    pub fn j(&self, i: usize) -> usize {
        assert!(
            i >= 2 && i <= self.k(),
            "i={} out of range 2..={}",
            i,
            self.k()
        );
        self.j[i]
    }

    /// The full latency table `t(1..=k)` as a slice (index 0 unused, zero).
    pub fn latencies(&self) -> &[Time] {
        &self.t
    }

    /// The full split table `j(2..=k)` (indices 0 and 1 unused, zero).
    pub fn splits(&self) -> &[usize] {
        &self.j
    }
}

/// The paper's O(k) incremental OPT-tree algorithm (Algorithm 2.1).
///
/// At each step only two candidate splits are examined: keep `j` from the
/// previous size or grow it by one.  Ties go to the larger `j`, matching the
/// `if strictly-less then A else B` structure of the pseudo-code.
///
/// # Panics
/// If `k == 0`, or (for `k > 1`) if `t_end == 0` or `t_hold > t_end`.  The
/// model guarantees `t_hold ≤ t_end`: the holding latency is the CPU part of
/// the send path, which `t_end = t_send + t_net + t_recv` fully contains.
/// The recurrence's base case `t\[2\] = t_end` is only consistent with the
/// general formula in that regime.
pub fn opt_table(hold: Time, end: Time, k: usize) -> OptTable {
    assert!(k >= 1, "need at least the source node");
    assert!(
        k == 1 || end > 0,
        "t_end must be positive for multi-node trees"
    );
    assert!(
        k == 1 || hold <= end,
        "model invariant t_hold <= t_end violated ({hold} > {end})"
    );
    let mut t = vec![0 as Time; k + 1];
    let mut j = vec![0usize; k + 1];
    if k >= 2 {
        t[2] = end;
        j[2] = 1;
    }
    for i in 3..=k {
        let jp = j[i - 1];
        // Option A: keep j; source part j nodes, far part i-j nodes.
        let a = (t[jp] + hold).max(t[i - jp] + end);
        // Option B: grow to j+1.
        let b = (t[jp + 1] + hold).max(t[i - jp - 1] + end);
        if a < b {
            t[i] = a;
            j[i] = jp;
        } else {
            t[i] = b;
            j[i] = jp + 1;
        }
    }
    OptTable { hold, end, t, j }
}

/// Exhaustive O(k²) reference implementation of the same recurrence, used as
/// a test oracle.  Ties go to the largest achieving `j` so the table is
/// comparable with [`opt_table`].
pub fn opt_table_reference(hold: Time, end: Time, k: usize) -> OptTable {
    assert!(k >= 1, "need at least the source node");
    assert!(
        k == 1 || hold <= end,
        "model invariant t_hold <= t_end violated ({hold} > {end})"
    );
    let mut t = vec![0 as Time; k + 1];
    let mut j = vec![0usize; k + 1];
    for i in 2..=k {
        let (best_j, best_t) = (1..i)
            .map(|jj| (jj, (t[jj] + hold).max(t[i - jj] + end)))
            // min_by_key keeps the first minimum; scanning larger j first
            // makes ties resolve to the largest j.
            .rev()
            .min_by_key(|&(_, v)| v)
            .expect("i >= 2 so the candidate range is non-empty");
        t[i] = best_t;
        j[i] = best_j;
    }
    OptTable { hold, end, t, j }
}

/// Minimum multicast latency for a `k`-node tree — convenience wrapper.
pub fn opt_latency(hold: Time, end: Time, k: usize) -> Time {
    opt_table(hold, end, k).t(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The worked example of Fig. 1: `t_hold = 20`, `t_end = 55`, 8 nodes
    /// (source + 7 destinations) → optimal latency 130.
    #[test]
    fn paper_fig1_t8_is_130() {
        let tab = opt_table(20, 55, 8);
        assert_eq!(tab.t(8), 130);
    }

    /// Hand-computed intermediate values for the Fig. 1 parameters.
    #[test]
    fn fig1_full_table() {
        let tab = opt_table(20, 55, 8);
        assert_eq!(tab.latencies()[1..], [0, 55, 75, 95, 110, 115, 130, 130]);
        // j table: hand-derived (ties to larger j).
        assert_eq!(tab.splits()[2..], [1, 2, 3, 3, 4, 5, 5]);
    }

    #[test]
    fn binomial_regime_matches_ceil_log2() {
        let tab = opt_table(10, 10, 64);
        for i in 1..=64usize {
            let rounds = pcm::predict::binomial_depth(i) as u64;
            assert_eq!(tab.t(i), 10 * rounds, "i={i}");
        }
    }

    #[test]
    fn zero_hold_gives_sequential_like_flat_tree() {
        // hold = 0: the source can spray infinitely fast, t[i] should be
        // t_end for every i >= 2... not quite: receivers still need to relay?
        // No — with hold = 0 the source sends to everyone itself: t[i] = end.
        let tab = opt_table(0, 100, 32);
        for i in 2..=32 {
            assert_eq!(tab.t(i), 100, "i={i}");
        }
    }

    #[test]
    fn single_node_tree_is_free() {
        assert_eq!(opt_latency(20, 55, 1), 0);
    }

    #[test]
    #[should_panic(expected = "at least the source")]
    fn zero_nodes_panics() {
        opt_table(1, 1, 0);
    }

    #[test]
    fn j_is_valid_split() {
        let tab = opt_table(20, 55, 100);
        for i in 2..=100 {
            let j = tab.j(i);
            assert!(j >= 1 && j < i, "j({i}) = {j} invalid");
        }
    }

    proptest! {
        /// The O(k) incremental algorithm agrees with the exhaustive oracle
        /// on latencies (the optimality theorem).
        #[test]
        fn incremental_matches_reference(a in 0u64..200, b in 1u64..200, k in 1usize..200) {
            let (hold, end) = (a.min(b), a.max(b).max(1));
            let fast = opt_table(hold, end, k);
            let slow = opt_table_reference(hold, end, k);
            prop_assert_eq!(fast.latencies(), slow.latencies());
        }

        /// The incremental j achieves the optimal latency (even when it
        /// differs from the oracle's tie-break).
        #[test]
        fn incremental_j_achieves_optimum(a in 0u64..100, b in 1u64..100, k in 2usize..150) {
            let (hold, end) = (a.min(b), a.max(b).max(1));
            let tab = opt_table(hold, end, k);
            for i in 2..=k {
                let j = tab.j(i);
                let v = (tab.t(j) + hold).max(tab.t(i - j) + end);
                prop_assert_eq!(v, tab.t(i), "i={}, j={}", i, j);
            }
        }

        /// t is monotone non-decreasing; j is non-decreasing with steps <= 1.
        #[test]
        fn monotonicity(a in 0u64..100, b in 1u64..100, k in 3usize..200) {
            let (hold, end) = (a.min(b), a.max(b).max(1));
            let tab = opt_table(hold, end, k);
            for i in 2..=k {
                prop_assert!(tab.t(i) >= tab.t(i - 1));
            }
            for i in 3..=k {
                let step = tab.j(i) as i64 - tab.j(i - 1) as i64;
                prop_assert!((0..=1).contains(&step), "j step {} at i={}", step, i);
            }
        }

        /// Optimal latency never exceeds the binomial or sequential trees.
        #[test]
        fn opt_dominates_baselines(a in 0u64..100, b in 1u64..100, k in 1usize..128) {
            let (hold, end) = (a.min(b), a.max(b).max(1));
            let t = opt_latency(hold, end, k);
            let p = pcm::CommParams::from_pair(hold, end);
            prop_assert!(t <= pcm::predict::binomial_tree_latency(&p, 0, k));
            prop_assert!(t <= pcm::predict::sequential_tree_latency(&p, 0, k));
        }

        /// Lower bound: a k-node multicast needs at least
        /// max(t_end, ceil(log2 k) * min(hold, end))-ish; we check the
        /// trivial bound t[k] >= t_end for k >= 2.
        #[test]
        fn at_least_one_message(a in 0u64..100, b in 1u64..100, k in 2usize..200) {
            let (hold, end) = (a.min(b), a.max(b).max(1));
            prop_assert!(opt_latency(hold, end, k) >= end);
        }
    }
}
