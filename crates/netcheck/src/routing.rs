//! Routing-function lints: termination, minimality, and conformance to the
//! architecture's routing discipline.
//!
//! These are whole-function checks — every ordered `(src, dst)` pair is
//! walked — so a pass is a certificate, not a sample.  Failures surface as
//! structured diagnostics ([`crate::diag`]) rather than panics: the typed
//! [`topo::RoutingError`] from [`Topology::try_det_path`] becomes an
//! `NC0101` finding with the offending pair as its node span.

use std::collections::VecDeque;

use topo::{Endpoint, NodeId, Topology};

use crate::diag::{Diagnostic, Report, Severity};

/// The routing discipline a topology claims to follow; the lint proves the
/// deterministic routes actually do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Discipline {
    /// Dimension-ordered (e-cube / XY) routing: the sequence of dimensions a
    /// path corrects must be non-decreasing.  `dims` are the side lengths,
    /// first dimension least significant in the router index.
    DimensionOrder {
        /// Side lengths of the mesh/torus, matching the router numbering.
        dims: Vec<usize>,
    },
    /// BMIN turnaround routing: stage numbers along the path climb
    /// monotonically to the turn, then descend monotonically — `up* down*`.
    Turnaround {
        /// Switches per stage (`n_nodes / 2`); stage of router `r` is
        /// `r.idx() / width`.
        width: usize,
    },
    /// No discipline asserted; only termination and minimality are checked.
    Unconstrained,
}

impl Discipline {
    fn name(&self) -> &'static str {
        match self {
            Discipline::DimensionOrder { .. } => "dimension-order (e-cube)",
            Discipline::Turnaround { .. } => "turnaround (up* then down*)",
            Discipline::Unconstrained => "unconstrained",
        }
    }
}

fn coords_of(dims: &[usize], mut idx: usize) -> Vec<usize> {
    dims.iter()
        .map(|&m| {
            let c = idx % m;
            idx /= m;
            c
        })
        .collect()
}

/// BFS router-hop distances from `start` over the router graph.
fn router_distances(adj: &[Vec<u32>], start: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; adj.len()];
    dist[start as usize] = 0;
    let mut q = VecDeque::from([start]);
    while let Some(v) = q.pop_front() {
        for &w in &adj[v as usize] {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dist[v as usize] + 1;
                q.push_back(w);
            }
        }
    }
    dist
}

/// Check one path's dimension sequence; returns a violation description.
fn dimension_order_violation(dims: &[usize], routers: &[u32]) -> Option<String> {
    let mut highest = 0usize;
    for pair in routers.windows(2) {
        let a = coords_of(dims, pair[0] as usize);
        let b = coords_of(dims, pair[1] as usize);
        let changed: Vec<usize> = (0..dims.len()).filter(|&d| a[d] != b[d]).collect();
        match changed.as_slice() {
            [d] => {
                if *d < highest {
                    return Some(format!(
                        "corrects dimension {d} after already routing dimension {highest}"
                    ));
                }
                highest = highest.max(*d);
            }
            _ => {
                return Some(format!(
                    "link {} -> {} changes {} dimensions at once",
                    pair[0],
                    pair[1],
                    changed.len()
                ))
            }
        }
    }
    None
}

/// Check one path's stage sequence for `up* down*`.
fn turnaround_violation(width: usize, routers: &[u32]) -> Option<String> {
    let mut descending = false;
    for pair in routers.windows(2) {
        let (sa, sb) = (pair[0] as usize / width, pair[1] as usize / width);
        if sb == sa + 1 {
            if descending {
                return Some(format!("climbs to stage {sb} after already descending"));
            }
        } else if sa == sb + 1 {
            descending = true;
        } else {
            return Some(format!("jumps from stage {sa} to stage {sb}"));
        }
    }
    None
}

/// Lint every ordered pair's deterministic route, appending findings (and
/// positive certifications) to `report`.
pub fn lint_routing(topo: &dyn Topology, discipline: &Discipline, report: &mut Report) {
    let g = topo.graph();
    let n = g.n_nodes();
    let n_routers = g.n_routers();
    // Router-graph adjacency for minimality BFS.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n_routers];
    for ch in g.channels() {
        if let (Endpoint::Router(a), Endpoint::Router(b)) = (ch.src, ch.dst) {
            if !adj[a.idx()].contains(&b.0) {
                adj[a.idx()].push(b.0);
            }
        }
    }
    // Distances lazily, one BFS per distinct injection router.
    let mut dist_from: Vec<Option<Vec<u32>>> = vec![None; n_routers];

    let mut pairs = 0usize;
    let mut route_errors: Vec<(NodeId, NodeId, String)> = Vec::new();
    let mut non_minimal: Vec<(NodeId, NodeId, usize, usize)> = Vec::new();
    let mut discipline_bad: Vec<(NodeId, NodeId, String)> = Vec::new();
    let mut routers_buf: Vec<u32> = Vec::new();
    for s in 0..n as u32 {
        for d in 0..n as u32 {
            if s == d {
                continue;
            }
            pairs += 1;
            let (src, dst) = (NodeId(s), NodeId(d));
            let path = match topo.try_det_path(src, dst) {
                Ok(p) => p,
                Err(e) => {
                    route_errors.push((src, dst, e.to_string()));
                    continue;
                }
            };
            // Router sequence: dst router of every channel except the final
            // consumption hop.
            routers_buf.clear();
            routers_buf.extend(
                path[..path.len() - 1]
                    .iter()
                    .filter_map(|&c| g.dst_router(c).map(|r| r.0)),
            );
            let (entry, exit) = (routers_buf[0], *routers_buf.last().expect("non-empty"));
            let dist =
                dist_from[entry as usize].get_or_insert_with(|| router_distances(&adj, entry));
            let (actual, minimal) = (path.len() - 2, dist[exit as usize] as usize);
            if actual > minimal {
                non_minimal.push((src, dst, actual, minimal));
            }
            let violation = match discipline {
                Discipline::DimensionOrder { dims } => {
                    dimension_order_violation(dims, &routers_buf)
                }
                Discipline::Turnaround { width } => turnaround_violation(*width, &routers_buf),
                Discipline::Unconstrained => None,
            };
            if let Some(v) = violation {
                discipline_bad.push((src, dst, v));
            }
        }
    }

    if route_errors.is_empty() {
        report.push(Diagnostic::new(
            Severity::Info,
            "NC0104",
            format!("routing terminates at the correct destination for all {pairs} ordered pairs"),
        ));
    } else {
        let (s, d, e) = &route_errors[0];
        report.push(
            Diagnostic::new(
                Severity::Error,
                "NC0101",
                format!(
                    "routing failed for {} of {pairs} pairs; first: {e}",
                    route_errors.len()
                ),
            )
            .with_nodes(vec![*s, *d])
            .with_help("the routing function must reach every destination's consumption channel"),
        );
    }
    if non_minimal.is_empty() {
        report.push(Diagnostic::new(
            Severity::Info,
            "NC0105",
            "every deterministic route is minimal in router hops",
        ));
    } else {
        let (s, d, a, m) = non_minimal[0];
        report.push(
            Diagnostic::new(
                Severity::Warning,
                "NC0102",
                format!(
                    "{} of {pairs} routes exceed the minimal router distance; \
                     first: {} -> {} takes {a} hops, minimal is {m}",
                    non_minimal.len(),
                    s.0,
                    d.0
                ),
            )
            .with_nodes(vec![s, d]),
        );
    }
    match discipline {
        Discipline::Unconstrained => {}
        _ if discipline_bad.is_empty() => {
            report.push(Diagnostic::new(
                Severity::Info,
                "NC0106",
                format!("all routes follow the {} discipline", discipline.name()),
            ));
        }
        _ => {
            let (s, d, v) = &discipline_bad[0];
            report.push(
                Diagnostic::new(
                    Severity::Error,
                    "NC0103",
                    format!(
                        "{} of {pairs} routes violate the {} discipline; \
                         first: {} -> {} {v}",
                        discipline_bad.len(),
                        discipline.name(),
                        s.0,
                        d.0
                    ),
                )
                .with_nodes(vec![*s, *d]),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::{Bmin, Mesh, Torus, UpPolicy};

    fn lint(topo: &dyn Topology, d: &Discipline) -> Report {
        let mut r = Report::new(topo.name());
        lint_routing(topo, d, &mut r);
        r
    }

    #[test]
    fn mesh_passes_all_lints_under_dimension_order() {
        let m = Mesh::new(&[4, 4]);
        let r = lint(&m, &Discipline::DimensionOrder { dims: vec![4, 4] });
        assert_eq!(
            r.max_severity(),
            Some(Severity::Info),
            "{}",
            r.render_human()
        );
        // All three positive certifications present.
        for code in ["NC0104", "NC0105", "NC0106"] {
            assert!(
                r.diagnostics.iter().any(|d| d.code == code),
                "{code} missing"
            );
        }
    }

    #[test]
    fn bmin_passes_under_turnaround() {
        let b = Bmin::new(4, UpPolicy::Straight);
        let r = lint(&b, &Discipline::Turnaround { width: 8 });
        assert_eq!(
            r.max_severity(),
            Some(Severity::Info),
            "{}",
            r.render_human()
        );
    }

    #[test]
    fn torus_follows_dimension_order_and_minimality() {
        let t = Torus::new(&[4, 3]);
        let r = lint(&t, &Discipline::DimensionOrder { dims: vec![4, 3] });
        assert_eq!(
            r.max_severity(),
            Some(Severity::Info),
            "{}",
            r.render_human()
        );
    }

    #[test]
    fn wrong_discipline_is_flagged() {
        // A mesh linted as a turnaround BMIN: its router indices don't form
        // stages, so stage deltas are garbage and NC0103 must fire.
        let m = Mesh::new(&[4, 4]);
        let r = lint(&m, &Discipline::Turnaround { width: 8 });
        assert!(r.has_errors(), "{}", r.render_human());
        assert!(r.diagnostics.iter().any(|d| d.code == "NC0103"));
    }

    #[test]
    fn dimension_order_checker_catches_reversed_hops() {
        // Router walk on a 4x4 grid that corrects dim 1 then dim 0.
        let dims = vec![4, 4];
        assert!(dimension_order_violation(&dims, &[0, 4, 5]).is_some());
        assert!(dimension_order_violation(&dims, &[0, 1, 5]).is_none());
    }

    #[test]
    fn turnaround_checker_rejects_down_then_up() {
        // width 4: routers 0..4 stage 0, 4..8 stage 1, 8..12 stage 2.
        assert!(turnaround_violation(4, &[8, 4, 9]).is_some());
        assert!(turnaround_violation(4, &[0, 4, 8, 5, 1]).is_none());
        assert!(turnaround_violation(4, &[0, 8]).is_some(), "stage jump");
    }
}
