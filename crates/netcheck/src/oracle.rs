//! The differential oracle: static analysis vs. the flit simulator.
//!
//! For a seeded random multicast configuration, the oracle runs both
//! sides of the same question —
//!
//! * **static**: the windowed contention checker
//!   ([`optmc::check_schedule_windowed`]) replays the schedule under the
//!   engine's contention-free timing and predicts whether any two worms
//!   ever want the same channel at the same time;
//! * **dynamic**: the wormhole simulator executes the schedule for real,
//!   with the [`crate::validate::Validator`] riding along, and reports the
//!   blocked cycles it actually observed —
//!
//! and demands they agree: *analyzer-says-clean ⇔ simulator-observes-zero
//! blocked time*.  The configuration must be non-adaptive: the windowed
//! replay materialises first-preference deterministic paths, and only then
//! is it an exact model of what the engine will do.

use flitsim::SimConfig;
use mtree::Schedule;
use optmc::{
    check_schedule_windowed, random_placement, run_multicast_observed, Algorithm, OccupancyParams,
    RunOptions,
};
use pcm::MsgSize;
use topo::Topology;

use crate::validate::{ValidationSummary, Validator};

/// One differential comparison, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct OracleCase {
    /// Topology name (e.g. `mesh-8x8`).
    pub topology: String,
    /// Algorithm under test (Debug form, e.g. `OptArch`).
    pub algorithm: String,
    /// Placement seed.
    pub seed: u64,
    /// Multicast set size.
    pub k: usize,
    /// Conflicts the windowed checker predicted.
    pub conflicts: usize,
    /// Blocked cycles the simulator observed.
    pub blocked_cycles: u64,
    /// `conflicts == 0  ⇔  blocked_cycles == 0`.
    pub agree: bool,
    /// The runtime validator's verdict for the simulated run.
    pub validation: ValidationSummary,
}

/// Run one differential case: `algorithm` multicasting `bytes` among a
/// seeded random `k`-subset of `topo`'s nodes.
///
/// # Panics
/// If `cfg.adaptive` is set (the static replay would not be exact) or the
/// topology's routing fails to materialise a path (a bug `check_topology`
/// reports properly).
pub fn differential_case(
    topo: &dyn Topology,
    cfg: &SimConfig,
    algorithm: Algorithm,
    k: usize,
    bytes: MsgSize,
    seed: u64,
) -> OracleCase {
    assert!(
        !cfg.adaptive,
        "the differential oracle requires deterministic routing"
    );
    let g = topo.graph();
    let parts = random_placement(g.n_nodes(), k, seed);
    let src = parts[0];
    // Reconstruct exactly the schedule the runner will execute.
    let hops = optmc::runner::nominal_hops(topo, &parts, src);
    let (hold, end) = cfg.effective_pair_ports(hops, bytes, g.ports() as u64);
    let chain = algorithm.chain(topo, &parts, src);
    let splits = algorithm.splits(hold, end, k.max(2));
    let schedule = Schedule::build(k, chain.src_pos(), &splits, hold, end);
    let params = OccupancyParams::from_config(cfg, bytes);
    let conflicts = check_schedule_windowed(topo, &chain, &schedule, &params)
        .expect("deterministic routing materialises every scheduled path");

    let (validator, handle) = Validator::new(g);
    let out = run_multicast_observed(
        topo,
        cfg,
        algorithm,
        &parts,
        src,
        bytes,
        &RunOptions::default(),
        Some(validator.into_sink()),
    );
    let blocked_cycles = out.sim.blocked_cycles;
    OracleCase {
        topology: topo.name(),
        algorithm: format!("{algorithm:?}"),
        seed,
        k,
        conflicts: conflicts.len(),
        blocked_cycles,
        agree: conflicts.is_empty() == (blocked_cycles == 0),
        validation: handle.summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::Mesh;

    fn det_cfg() -> SimConfig {
        let mut cfg = SimConfig::paragon_like();
        cfg.adaptive = false;
        cfg
    }

    #[test]
    fn opt_mesh_case_is_clean_and_agrees() {
        let m = Mesh::new(&[6, 6]);
        let case = differential_case(&m, &det_cfg(), Algorithm::OptArch, 10, 1024, 7);
        assert!(case.agree, "{case:?}");
        assert_eq!(case.conflicts, 0, "{case:?}");
        assert_eq!(case.blocked_cycles, 0);
        assert!(case.validation.ok(), "{:?}", case.validation.violations);
    }

    #[test]
    fn opt_tree_cases_agree_even_when_contended() {
        let m = Mesh::new(&[8, 8]);
        let mut contended = 0;
        for seed in 0..10 {
            let case = differential_case(&m, &det_cfg(), Algorithm::OptTree, 14, 1024, seed);
            assert!(case.agree, "{case:?}");
            assert!(case.validation.ok(), "{:?}", case.validation.violations);
            if case.conflicts > 0 {
                contended += 1;
                assert!(case.blocked_cycles > 0);
            }
        }
        assert!(contended > 0, "no scrambled placement contended");
    }
}
