//! The differential oracle: static analysis vs. the flit simulator.
//!
//! For a seeded random multicast configuration, the oracle runs both
//! sides of the same question —
//!
//! * **static**: the windowed contention checker
//!   ([`optmc::check_schedule_windowed`]) replays the schedule under the
//!   engine's contention-free timing and predicts whether any two worms
//!   ever want the same channel at the same time;
//! * **dynamic**: the wormhole simulator executes the schedule for real,
//!   with the [`crate::validate::Validator`] riding along, and reports the
//!   blocked cycles it actually observed —
//!
//! and demands they agree: *analyzer-says-clean ⇔ simulator-observes-zero
//! blocked time*.  The configuration must be non-adaptive: the windowed
//! replay materialises first-preference deterministic paths, and only then
//! is it an exact model of what the engine will do.

use flitsim::SimConfig;
use mtree::Schedule;
use optmc::{
    check_schedule_windowed, random_placement, run_concurrent, run_multicast_observed, Algorithm,
    OccupancyParams, RunOptions,
};
use pcm::MsgSize;
use topo::Topology;

use crate::schedset::{analyze_set, ScheduleSet};
use crate::validate::{ValidationSummary, Validator};

/// One differential comparison, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct OracleCase {
    /// Topology name (e.g. `mesh-8x8`).
    pub topology: String,
    /// Algorithm under test (Debug form, e.g. `OptArch`).
    pub algorithm: String,
    /// Placement seed.
    pub seed: u64,
    /// Multicast set size.
    pub k: usize,
    /// Conflicts the windowed checker predicted.
    pub conflicts: usize,
    /// Blocked cycles the simulator observed.
    pub blocked_cycles: u64,
    /// `conflicts == 0  ⇔  blocked_cycles == 0`.
    pub agree: bool,
    /// The runtime validator's verdict for the simulated run.
    pub validation: ValidationSummary,
}

/// Run one differential case: `algorithm` multicasting `bytes` among a
/// seeded random `k`-subset of `topo`'s nodes.
///
/// # Panics
/// If `cfg.adaptive` is set (the static replay would not be exact) or the
/// topology's routing fails to materialise a path (a bug `check_topology`
/// reports properly).
pub fn differential_case(
    topo: &dyn Topology,
    cfg: &SimConfig,
    algorithm: Algorithm,
    k: usize,
    bytes: MsgSize,
    seed: u64,
) -> OracleCase {
    assert!(
        !cfg.adaptive,
        "the differential oracle requires deterministic routing"
    );
    let g = topo.graph();
    let parts = random_placement(g.n_nodes(), k, seed);
    let src = parts[0];
    // Reconstruct exactly the schedule the runner will execute.
    let hops = optmc::runner::nominal_hops(topo, &parts, src);
    let (hold, end) = cfg.effective_pair_ports(hops, bytes, g.ports() as u64);
    let chain = algorithm.chain(topo, &parts, src);
    let splits = algorithm.splits(hold, end, k.max(2));
    let schedule = Schedule::build(k, chain.src_pos(), &splits, hold, end);
    let params = OccupancyParams::from_config(cfg, bytes);
    let conflicts = check_schedule_windowed(topo, &chain, &schedule, &params)
        .expect("deterministic routing materialises every scheduled path");

    let (validator, handle) = Validator::new(g);
    let out = run_multicast_observed(
        topo,
        cfg,
        algorithm,
        &parts,
        src,
        bytes,
        &RunOptions::default(),
        Some(validator.into_sink()),
    );
    let blocked_cycles = out.sim.blocked_cycles;
    OracleCase {
        topology: topo.name(),
        algorithm: format!("{algorithm:?}"),
        seed,
        k,
        conflicts: conflicts.len(),
        blocked_cycles,
        agree: conflicts.is_empty() == (blocked_cycles == 0),
        validation: handle.summary(),
    }
}

/// One schedule-*set* differential comparison.
#[derive(Debug, Clone)]
pub struct OracleSetCase {
    /// Topology name (e.g. `mesh-16x16`).
    pub topology: String,
    /// Algorithm under test (Debug form).
    pub algorithm: String,
    /// Number of multicasts in the set.
    pub n_mcasts: usize,
    /// Window overlaps the set analysis found (intra + cross).
    pub conflicts: usize,
    /// Member pairs sharing nodes while concurrently active.
    pub node_overlaps: usize,
    /// Whether the prover certified the set clean.
    pub certified_clean: bool,
    /// Blocked cycles the joint simulation observed.
    pub blocked_cycles: u64,
    /// Whether static verdict and simulator agree (see
    /// [`differential_set_case`] for the exact contract).
    pub agree: bool,
    /// Whether the agreement demanded was the strict biconditional
    /// (pairwise-independent members) or only the sound direction.
    pub strict: bool,
}

/// Run one schedule-set differential case: analyze `set` statically, run
/// the same specs jointly in the simulator, and compare.
///
/// The contract depends on member independence:
///
/// * **Pairwise independent** (no concurrently-active node sharing): the
///   replay is engine-exact, so the check is the strict biconditional —
///   *certified clean ⇔ zero blocked cycles*.
/// * **Dependent members**: the set is never certified (`NC0212`), and the
///   replay may predict spurious conflicts, so only the sound direction is
///   checked: a certified-clean verdict (impossible here) would demand
///   zero blocked cycles; otherwise any simulator outcome is consistent.
///
/// # Panics
/// If `cfg.adaptive` is set, or any member's routing fails to materialise.
pub fn differential_set_case(
    topo: &dyn Topology,
    cfg: &SimConfig,
    set: &ScheduleSet,
) -> OracleSetCase {
    let analysis = analyze_set(topo, cfg, set)
        .expect("deterministic routing materialises every scheduled path");
    let (_, sim) = run_concurrent(topo, cfg, set.algorithm, &set.specs);
    let strict = analysis.node_overlaps.is_empty();
    let certified_clean = analysis.is_clean();
    let agree = if strict {
        certified_clean == (sim.blocked_cycles == 0)
    } else {
        // Sound direction only; a clean certificate cannot exist here.
        !certified_clean || sim.blocked_cycles == 0
    };
    OracleSetCase {
        topology: topo.name(),
        algorithm: format!("{:?}", set.algorithm),
        n_mcasts: set.specs.len(),
        conflicts: analysis.conflicts.len(),
        node_overlaps: analysis.node_overlaps.len(),
        certified_clean,
        blocked_cycles: sim.blocked_cycles,
        agree,
        strict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optmc::McastSpec;
    use pcm::Time;
    use topo::Mesh;

    fn det_cfg() -> SimConfig {
        let mut cfg = SimConfig::paragon_like();
        cfg.adaptive = false;
        cfg
    }

    #[test]
    fn opt_mesh_case_is_clean_and_agrees() {
        let m = Mesh::new(&[6, 6]);
        let case = differential_case(&m, &det_cfg(), Algorithm::OptArch, 10, 1024, 7);
        assert!(case.agree, "{case:?}");
        assert_eq!(case.conflicts, 0, "{case:?}");
        assert_eq!(case.blocked_cycles, 0);
        assert!(case.validation.ok(), "{:?}", case.validation.violations);
    }

    /// Node-disjoint groups from one shuffled pool, starts spaced by `gap`.
    fn disjoint_specs(n: usize, k: usize, count: usize, gap: Time, seed: u64) -> Vec<McastSpec> {
        let pool = random_placement(n, k * count, seed);
        pool.chunks(k)
            .enumerate()
            .map(|(i, c)| McastSpec {
                participants: c.to_vec(),
                src: c[0],
                bytes: 2048,
                start: i as Time * gap,
            })
            .collect()
    }

    /// The acceptance bar: certificate-clean schedule sets show zero
    /// simulator blocked cycles across 24 seeded configurations.
    #[test]
    fn certified_clean_sets_never_block_across_24_seeds() {
        let m = Mesh::new(&[16, 16]);
        let cfg = det_cfg();
        let mut certified = 0;
        for seed in 0..24u64 {
            let set = ScheduleSet {
                specs: disjoint_specs(256, 8, 3, 2_000_000, seed),
                algorithm: Algorithm::OptArch,
            };
            let case = differential_set_case(&m, &cfg, &set);
            assert!(case.strict, "disjoint groups must be independent");
            assert!(case.agree, "{case:?}");
            if case.certified_clean {
                certified += 1;
                assert_eq!(case.blocked_cycles, 0, "{case:?}");
            }
        }
        assert!(certified >= 20, "only {certified}/24 sets certified clean");
    }

    /// The refutation direction: simultaneous batches that the analysis
    /// flags really block, and the strict biconditional holds seed by seed.
    #[test]
    fn contended_sets_agree_strictly() {
        let m = Mesh::new(&[16, 16]);
        let cfg = det_cfg();
        let mut contended = 0;
        for seed in 0..6u64 {
            let set = ScheduleSet {
                specs: disjoint_specs(256, 24, 4, 0, seed),
                algorithm: Algorithm::OptArch,
            };
            let case = differential_set_case(&m, &cfg, &set);
            assert!(case.strict);
            assert!(case.agree, "{case:?}");
            if !case.certified_clean {
                contended += 1;
                assert!(case.blocked_cycles > 0, "{case:?}");
            }
        }
        assert!(contended > 0, "no simultaneous batch contended");
    }

    /// Dependent members (shared nodes, simultaneous): never certified,
    /// and the sound direction of the contract holds.
    #[test]
    fn dependent_members_are_never_certified() {
        let m = Mesh::new(&[16, 16]);
        let cfg = det_cfg();
        let a = random_placement(256, 8, 101);
        let shared = a[1];
        let mut b: Vec<_> = random_placement(256, 12, 102)
            .into_iter()
            .filter(|&n| n != shared)
            .take(7)
            .collect();
        b.push(shared);
        let set = ScheduleSet {
            specs: vec![
                McastSpec {
                    src: a[0],
                    participants: a,
                    bytes: 2048,
                    start: 0,
                },
                McastSpec {
                    src: b[0],
                    participants: b,
                    bytes: 2048,
                    start: 0,
                },
            ],
            algorithm: Algorithm::OptArch,
        };
        let case = differential_set_case(&m, &cfg, &set);
        assert!(!case.strict);
        assert!(!case.certified_clean);
        assert!(case.node_overlaps > 0);
        assert!(case.agree, "{case:?}");
    }

    #[test]
    fn opt_tree_cases_agree_even_when_contended() {
        let m = Mesh::new(&[8, 8]);
        let mut contended = 0;
        for seed in 0..10 {
            let case = differential_case(&m, &det_cfg(), Algorithm::OptTree, 14, 1024, seed);
            assert!(case.agree, "{case:?}");
            assert!(case.validation.ok(), "{:?}", case.validation.violations);
            if case.conflicts > 0 {
                contended += 1;
                assert!(case.blocked_cycles > 0);
            }
        }
        assert!(contended > 0, "no scrambled placement contended");
    }
}
