//! Runtime invariant validation: an [`Observer`] that rides along inside a
//! simulation and checks the engine's own rules as they execute.
//!
//! The validator watches the channel-event stream (acquire, release,
//! inject, drain, blocked) and asserts:
//!
//! * **exclusive channels** — a channel is never acquired while held, and
//!   never released by a worm that does not hold it;
//! * **acquire/release balance** — every acquire is eventually released
//!   (checked at summary time via the outstanding count);
//! * **monotonic time** — channel events arrive in non-decreasing
//!   simulation time (CPU-idle edges are emitted with future timestamps by
//!   design and are not part of this check);
//! * **one-port injection** — a node never holds more injection channels
//!   than its NI has ports.
//!
//! The engine funnels a [`TraceSink::Custom`] observer through
//! [`Observer::on_event`], and [`TraceSink::finish`] drops the boxed
//! observer, so the state lives behind an `Rc<RefCell<…>>` shared with a
//! [`ValidatorHandle`] the caller keeps to read the verdict after the run.

use std::cell::RefCell;
use std::rc::Rc;

use flitsim::trace::{TraceEvent, TraceKind};
use flitsim::{Observer, TraceSink};
use pcm::Time;
use topo::{Endpoint, NetworkGraph};

/// Violations are capped so a pathological run cannot balloon memory; the
/// total count keeps being tracked past the cap.
const MAX_RECORDED_VIOLATIONS: usize = 64;

#[derive(Debug)]
struct VState {
    /// Current holder per channel.
    holder: Vec<Option<u32>>,
    /// `Some(node)` for injection channels, indexed by channel.
    inj_node: Vec<Option<u32>>,
    /// NI ports per node (uniform across the graph).
    ports: usize,
    /// Injection channels currently held, per node.
    held_inj: Vec<usize>,
    acquires: u64,
    releases: u64,
    last_t: Time,
    n_violations: u64,
    violations: Vec<String>,
}

impl VState {
    fn violate(&mut self, msg: String) {
        self.n_violations += 1;
        if self.violations.len() < MAX_RECORDED_VIOLATIONS {
            self.violations.push(msg);
        }
    }
}

/// The verdict of a validated run.
#[derive(Debug, Clone)]
pub struct ValidationSummary {
    /// Channel acquires observed.
    pub acquires: u64,
    /// Channel releases observed.
    pub releases: u64,
    /// Channels still held when the summary was taken (should be 0 after a
    /// completed run).
    pub outstanding: u64,
    /// Total invariant violations (may exceed `violations.len()`).
    pub n_violations: u64,
    /// The first violations, as human-readable messages.
    pub violations: Vec<String>,
}

impl ValidationSummary {
    /// A clean run: no violations and every acquire released.
    pub fn ok(&self) -> bool {
        self.n_violations == 0 && self.outstanding == 0
    }
}

/// The observer half: box it into a sink with [`Validator::into_sink`] and
/// hand it to the engine.
pub struct Validator {
    state: Rc<RefCell<VState>>,
}

/// The caller's half: survives the run and yields the
/// [`ValidationSummary`].
pub struct ValidatorHandle {
    state: Rc<RefCell<VState>>,
}

impl Validator {
    /// A validator for one run on `graph`, plus the handle to read the
    /// verdict afterwards.
    pub fn new(graph: &NetworkGraph) -> (Validator, ValidatorHandle) {
        let nc = graph.n_channels();
        let inj_node: Vec<Option<u32>> = graph
            .channels()
            .iter()
            .map(|ch| match ch.src {
                Endpoint::Node(n) => Some(n.0),
                Endpoint::Router(_) => None,
            })
            .collect();
        debug_assert_eq!(inj_node.len(), nc);
        let state = Rc::new(RefCell::new(VState {
            holder: vec![None; nc],
            inj_node,
            ports: graph.ports(),
            held_inj: vec![0; graph.n_nodes()],
            acquires: 0,
            releases: 0,
            last_t: 0,
            n_violations: 0,
            violations: Vec::new(),
        }));
        (
            Validator {
                state: Rc::clone(&state),
            },
            ValidatorHandle { state },
        )
    }

    /// Wrap into the engine's observer slot.
    pub fn into_sink(self) -> TraceSink {
        TraceSink::Custom(Box::new(self))
    }
}

impl Observer for Validator {
    fn on_event(&mut self, e: TraceEvent) {
        // Only channel-stream kinds participate; CPU edges (CpuIdle in
        // particular) are emitted ahead of time by the engine.
        match e.kind {
            TraceKind::Acquire
            | TraceKind::Release
            | TraceKind::InjectStart
            | TraceKind::DrainStart
            | TraceKind::Blocked => {}
            _ => return,
        }
        let s = &mut *self.state.borrow_mut();
        if e.t < s.last_t {
            s.violate(format!(
                "time went backwards: {:?} at t={} after t={}",
                e.kind, e.t, s.last_t
            ));
        }
        s.last_t = s.last_t.max(e.t);
        match e.kind {
            TraceKind::Acquire => {
                let Some(ch) = e.channel else {
                    s.violate(format!("acquire by worm {} without a channel", e.worm));
                    return;
                };
                s.acquires += 1;
                if let Some(h) = s.holder[ch.idx()] {
                    s.violate(format!(
                        "worm {} acquired ch{} at t={} while worm {h} still holds it",
                        e.worm, ch.0, e.t
                    ));
                }
                s.holder[ch.idx()] = Some(e.worm);
                if let Some(node) = s.inj_node[ch.idx()] {
                    s.held_inj[node as usize] += 1;
                    if s.held_inj[node as usize] > s.ports {
                        s.violate(format!(
                            "node {node} holds {} injection channels at t={}, NI has {} port(s)",
                            s.held_inj[node as usize], e.t, s.ports
                        ));
                    }
                }
            }
            TraceKind::Release => {
                let Some(ch) = e.channel else {
                    s.violate(format!("release by worm {} without a channel", e.worm));
                    return;
                };
                s.releases += 1;
                match s.holder[ch.idx()] {
                    Some(h) if h == e.worm => {
                        s.holder[ch.idx()] = None;
                        if let Some(node) = s.inj_node[ch.idx()] {
                            s.held_inj[node as usize] = s.held_inj[node as usize].saturating_sub(1);
                        }
                    }
                    Some(h) => s.violate(format!(
                        "worm {} released ch{} at t={} held by worm {h}",
                        e.worm, ch.0, e.t
                    )),
                    None => s.violate(format!(
                        "worm {} released free channel ch{} at t={}",
                        e.worm, ch.0, e.t
                    )),
                }
            }
            _ => {}
        }
    }
}

impl ValidatorHandle {
    /// The verdict so far (normally read after the run finishes).
    pub fn summary(&self) -> ValidationSummary {
        let s = self.state.borrow();
        let outstanding = s.holder.iter().filter(|h| h.is_some()).count() as u64;
        ValidationSummary {
            acquires: s.acquires,
            releases: s.releases,
            outstanding,
            n_violations: s.n_violations,
            violations: s.violations.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optmc::{run_multicast_observed, Algorithm, RunOptions};
    use topo::{ChannelId, Mesh, NodeId, Topology};

    #[test]
    fn clean_multicast_run_validates() {
        let m = Mesh::new(&[6, 6]);
        let cfg = flitsim::SimConfig::paragon_like();
        let parts: Vec<NodeId> = [0u32, 5, 12, 18, 23, 29, 35].map(NodeId).to_vec();
        let (v, handle) = Validator::new(m.graph());
        let out = run_multicast_observed(
            &m,
            &cfg,
            Algorithm::OptArch,
            &parts,
            NodeId(0),
            1024,
            &RunOptions::default(),
            Some(v.into_sink()),
        );
        assert_eq!(out.sim.messages.len(), 6);
        let sum = handle.summary();
        assert!(sum.ok(), "violations: {:?}", sum.violations);
        assert_eq!(sum.acquires, sum.releases);
        assert!(sum.acquires > 0, "validator saw no events");
    }

    #[test]
    fn synthetic_double_acquire_is_flagged() {
        let m = Mesh::new(&[4, 4]);
        let (mut v, handle) = Validator::new(m.graph());
        // A router-to-router channel: an injection channel would also trip
        // the one-port check and double the violation count.
        let ch = m
            .graph()
            .channels()
            .iter()
            .position(|c| matches!(c.src, Endpoint::Router(_)))
            .map(|i| Some(ChannelId(i as u32)))
            .expect("mesh has router channels");
        v.on_event(TraceEvent::on_channel(5, 0, ch, TraceKind::Acquire));
        v.on_event(TraceEvent::on_channel(6, 1, ch, TraceKind::Acquire));
        let sum = handle.summary();
        assert_eq!(sum.n_violations, 1);
        assert!(sum.violations[0].contains("while worm 0 still holds it"));
        assert!(!sum.ok());
    }

    #[test]
    fn backwards_time_and_bad_release_are_flagged() {
        let m = Mesh::new(&[4, 4]);
        let (mut v, handle) = Validator::new(m.graph());
        let ch = Some(ChannelId(3));
        v.on_event(TraceEvent::on_channel(10, 0, ch, TraceKind::Acquire));
        // Release by a worm that is not the holder, at an earlier time.
        v.on_event(TraceEvent::on_channel(7, 2, ch, TraceKind::Release));
        let sum = handle.summary();
        assert_eq!(sum.n_violations, 2, "{:?}", sum.violations);
        assert!(sum
            .violations
            .iter()
            .any(|m| m.contains("time went backwards")));
        assert!(sum.violations.iter().any(|m| m.contains("held by worm 0")));
    }

    #[test]
    fn outstanding_channels_fail_ok() {
        let m = Mesh::new(&[4, 4]);
        let (mut v, handle) = Validator::new(m.graph());
        v.on_event(TraceEvent::on_channel(
            1,
            0,
            Some(ChannelId(2)),
            TraceKind::Acquire,
        ));
        let sum = handle.summary();
        assert_eq!(sum.n_violations, 0);
        assert_eq!(sum.outstanding, 1);
        assert!(!sum.ok(), "unreleased channel must fail the balance check");
    }
}
