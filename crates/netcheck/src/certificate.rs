//! Machine-checkable plan certificates for schedule sets.
//!
//! [`analyze_set`](crate::schedset::analyze_set) is the *prover*: it
//! replays every member and scans for overlaps.  A [`PlanCertificate`] is
//! the prover's output made auditable — the complete per-channel occupancy
//! interval population, each member's participants and activity envelope,
//! and the claimed verdict — serialized as JSON by `optmc check --set
//! --cert-out`.
//!
//! [`PlanCertificate::verify`] is the *independent verifier*: it trusts
//! nothing but the certificate body and re-derives the verdict by a
//! different algorithm (a sweep-line over sorted intervals, not the
//! prover's pairwise group scan; a direct pairwise independence check over
//! the recorded envelopes, not the replay).  A certificate passes only
//! when it is structurally sound *and* its claimed verdict matches the
//! re-derived one — so a bug in either the prover or the verifier shows up
//! as a verification failure rather than a silently wrong certification.

use serde::{Deserialize, Serialize};
use topo::Topology;

use pcm::Time;

use crate::schedset::{ScheduleSet, SetAnalysis};

/// Format version of the certificate JSON; bump on breaking changes.
pub const CERT_VERSION: u32 = 1;

/// One member's identity and activity envelope inside a certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CertMember {
    /// Source node id.
    pub src: u32,
    /// All participant node ids (source included).
    pub participants: Vec<u32>,
    /// Message payload bytes.
    pub bytes: u64,
    /// Start offset (global cycles).
    pub start: Time,
    /// First cycle the member occupies anything.
    pub active_from: Time,
    /// Conservative end of the member's activity (exclusive).
    pub active_until: Time,
}

/// One channel-occupancy interval inside a certificate (global cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CertWindow {
    /// Index of the owning member.
    pub mcast: usize,
    /// Send index within the member's schedule.
    pub send: usize,
    /// Channel id.
    pub channel: u32,
    /// Cycle the channel is acquired.
    pub acquire: Time,
    /// Cycle the channel is freed (exclusive).
    pub release: Time,
}

/// The auditable output of a schedule-set certification run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanCertificate {
    /// Certificate format version ([`CERT_VERSION`]).
    pub version: u32,
    /// Topology the set was certified on (e.g. `mesh-16x16`).
    pub target: String,
    /// Multicast algorithm (Debug form, e.g. `OptArch`).
    pub algorithm: String,
    /// The members, in injection order.
    pub multicasts: Vec<CertMember>,
    /// Every channel-occupancy interval of every member, global times.
    pub windows: Vec<CertWindow>,
    /// The prover's verdict: contention-free and pairwise independent.
    pub clean: bool,
}

/// Why a certificate failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// The certificate is structurally broken (bad version, dangling
    /// member index, inverted interval, …).
    Malformed(String),
    /// Two intervals on one channel overlap although the certificate
    /// claims the set is clean.
    Overlap {
        /// The contended channel.
        channel: u32,
        /// Owner of the earlier interval (member, send).
        earlier: (usize, usize),
        /// Owner of the later interval (member, send).
        later: (usize, usize),
        /// Cycle at which the later interval starts inside the earlier.
        at: Time,
    },
    /// Two members share nodes while concurrently active although the
    /// certificate claims the set is clean.
    DependentMembers {
        /// The two member indices.
        members: (usize, usize),
        /// A shared node id.
        node: u32,
    },
    /// The claimed verdict does not match the re-derived one.
    VerdictMismatch {
        /// What the certificate claims.
        claimed: bool,
        /// What the verifier re-derived.
        derived: bool,
    },
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::Malformed(why) => write!(f, "malformed certificate: {why}"),
            CertError::Overlap {
                channel,
                earlier,
                later,
                at,
            } => write!(
                f,
                "certificate claims clean but ch{channel} is double-booked at cycle {at} \
                 (member {} send {} vs member {} send {})",
                earlier.0, earlier.1, later.0, later.1
            ),
            CertError::DependentMembers { members, node } => write!(
                f,
                "certificate claims clean but members {} and {} share node {node} \
                 while concurrently active",
                members.0, members.1
            ),
            CertError::VerdictMismatch { claimed, derived } => write!(
                f,
                "certificate verdict clean={claimed} but the windows re-derive clean={derived}"
            ),
        }
    }
}

impl PlanCertificate {
    /// Build a certificate from a prover run.
    pub fn from_analysis(topo: &dyn Topology, set: &ScheduleSet, analysis: &SetAnalysis) -> Self {
        let multicasts = set
            .specs
            .iter()
            .zip(&analysis.members)
            .map(|(spec, m)| CertMember {
                src: spec.src.0,
                participants: spec.participants.iter().map(|n| n.0).collect(),
                bytes: spec.bytes,
                start: spec.start,
                active_from: m.active_from,
                active_until: m.active_until,
            })
            .collect();
        let windows = analysis
            .members
            .iter()
            .flat_map(|m| {
                m.windows.iter().map(|w| CertWindow {
                    mcast: m.mcast,
                    send: w.send,
                    channel: w.channel.0,
                    acquire: w.acquire,
                    release: w.release,
                })
            })
            .collect();
        PlanCertificate {
            version: CERT_VERSION,
            target: topo.name(),
            algorithm: format!("{:?}", set.algorithm),
            multicasts,
            windows,
            clean: analysis.is_clean(),
        }
    }

    /// Serialize as pretty JSON (deterministic for a given certificate).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("certificate serializes");
        s.push('\n');
        s
    }

    /// Parse a certificate from JSON.
    ///
    /// # Errors
    /// [`CertError::Malformed`] when the text is not a certificate.
    pub fn from_json(text: &str) -> Result<Self, CertError> {
        serde_json::from_str(text)
            .map_err(|e| CertError::Malformed(format!("not a certificate: {e}")))
    }

    /// Re-derive the verdict from the certificate body alone and check it
    /// against the claim.  See the module docs for why the algorithms here
    /// deliberately differ from the prover's.
    ///
    /// # Errors
    /// The first [`CertError`] found; `Ok(())` means the certificate is
    /// structurally sound and its verdict is reproducible.
    pub fn verify(&self) -> Result<(), CertError> {
        if self.version != CERT_VERSION {
            return Err(CertError::Malformed(format!(
                "version {} (verifier understands {CERT_VERSION})",
                self.version
            )));
        }
        for (i, m) in self.multicasts.iter().enumerate() {
            if !m.participants.contains(&m.src) {
                return Err(CertError::Malformed(format!(
                    "member {i}: src {} not among its participants",
                    m.src
                )));
            }
            if m.active_from > m.active_until || m.active_from != m.start {
                return Err(CertError::Malformed(format!(
                    "member {i}: activity envelope [{}, {}) inconsistent with start {}",
                    m.active_from, m.active_until, m.start
                )));
            }
        }
        for w in &self.windows {
            if w.mcast >= self.multicasts.len() {
                return Err(CertError::Malformed(format!(
                    "window references member {} of {}",
                    w.mcast,
                    self.multicasts.len()
                )));
            }
            if w.acquire > w.release {
                return Err(CertError::Malformed(format!(
                    "inverted window [{}, {}) on ch{}",
                    w.acquire, w.release, w.channel
                )));
            }
            let m = &self.multicasts[w.mcast];
            if w.acquire < m.active_from || w.release > m.active_until {
                return Err(CertError::Malformed(format!(
                    "window [{}, {}) of member {} escapes its envelope [{}, {})",
                    w.acquire, w.release, w.mcast, m.active_from, m.active_until
                )));
            }
        }

        // Sweep-line occupancy check: within each channel, every interval
        // must start at or after the running maximum release.  Zero-length
        // intervals occupy nothing and are skipped.
        let mut sorted: Vec<&CertWindow> = self
            .windows
            .iter()
            .filter(|w| w.acquire < w.release)
            .collect();
        sorted.sort_by_key(|w| (w.channel, w.acquire, w.release));
        let mut overlap = None;
        let mut frontier: Option<(u32, Time, (usize, usize))> = None;
        for w in sorted {
            match frontier {
                Some((ch, max_release, owner)) if ch == w.channel => {
                    if w.acquire < max_release {
                        overlap = Some(CertError::Overlap {
                            channel: ch,
                            earlier: owner,
                            later: (w.mcast, w.send),
                            at: w.acquire,
                        });
                        break;
                    }
                    if w.release > max_release {
                        frontier = Some((ch, w.release, (w.mcast, w.send)));
                    }
                }
                _ => frontier = Some((w.channel, w.release, (w.mcast, w.send))),
            }
        }

        // Independence check over the recorded envelopes and participants.
        let mut dependent = None;
        'outer: for a in 0..self.multicasts.len() {
            for b in (a + 1)..self.multicasts.len() {
                let (ma, mb) = (&self.multicasts[a], &self.multicasts[b]);
                if ma.active_from >= mb.active_until || mb.active_from >= ma.active_until {
                    continue;
                }
                if let Some(&node) = ma.participants.iter().find(|n| mb.participants.contains(n)) {
                    dependent = Some(CertError::DependentMembers {
                        members: (a, b),
                        node,
                    });
                    break 'outer;
                }
            }
        }

        let derived = overlap.is_none() && dependent.is_none();
        if self.clean != derived {
            if let Some(e) = overlap {
                return Err(e);
            }
            if let Some(e) = dependent {
                return Err(e);
            }
            return Err(CertError::VerdictMismatch {
                claimed: self.clean,
                derived,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedset::analyze_set;
    use flitsim::SimConfig;
    use optmc::{random_placement, Algorithm, McastSpec};
    use topo::Mesh;

    fn det_cfg() -> SimConfig {
        let mut cfg = SimConfig::paragon_like();
        cfg.adaptive = false;
        cfg
    }

    fn certified_set(gap: Time, seed: u64) -> (ScheduleSet, PlanCertificate) {
        let m = Mesh::new(&[16, 16]);
        let pool = random_placement(256, 32, seed);
        let specs = pool
            .chunks(8)
            .enumerate()
            .map(|(i, c)| McastSpec {
                participants: c.to_vec(),
                src: c[0],
                bytes: 2048,
                start: i as Time * gap,
            })
            .collect();
        let set = ScheduleSet {
            specs,
            algorithm: Algorithm::OptArch,
        };
        let analysis = analyze_set(&m, &det_cfg(), &set).unwrap();
        let cert = PlanCertificate::from_analysis(&m, &set, &analysis);
        (set, cert)
    }

    #[test]
    fn clean_certificate_verifies_and_round_trips() {
        let (_, cert) = certified_set(1_000_000, 7);
        assert!(cert.clean);
        cert.verify().expect("prover-clean certificate must verify");
        let back = PlanCertificate::from_json(&cert.to_json()).unwrap();
        assert_eq!(back, cert);
        back.verify().unwrap();
    }

    #[test]
    fn dirty_certificate_still_verifies_as_consistent() {
        // A simultaneous batch that conflicts: the certificate records
        // clean=false and the verifier re-derives the same verdict.
        for seed in 0..8u64 {
            let (_, cert) = certified_set(0, seed);
            cert.verify()
                .expect("prover verdict must always be reproducible");
            if !cert.clean {
                return;
            }
        }
        panic!("no simultaneous batch produced a dirty certificate");
    }

    #[test]
    fn forged_clean_claim_is_caught() {
        for seed in 0..8u64 {
            let (_, mut cert) = certified_set(0, seed);
            if !cert.clean {
                cert.clean = true; // forge the verdict
                let err = cert.verify().unwrap_err();
                assert!(
                    matches!(
                        err,
                        CertError::Overlap { .. } | CertError::DependentMembers { .. }
                    ),
                    "{err}"
                );
                return;
            }
        }
        panic!("no dirty certificate to forge");
    }

    #[test]
    fn tampered_window_is_caught() {
        let (_, mut cert) = certified_set(1_000_000, 7);
        // Stretch one window over its neighbor's: the sweep must see it.
        let w0 = cert.windows[0];
        cert.windows.push(CertWindow {
            mcast: w0.mcast,
            send: w0.send + 1,
            channel: w0.channel,
            acquire: w0.acquire,
            release: w0.release + 1,
        });
        let err = cert.verify().unwrap_err();
        assert!(
            matches!(err, CertError::Overlap { .. } | CertError::Malformed(_)),
            "{err}"
        );
    }

    #[test]
    fn structural_damage_is_malformed() {
        let (_, base) = certified_set(1_000_000, 7);

        let mut cert = base.clone();
        cert.version = 99;
        assert!(matches!(cert.verify(), Err(CertError::Malformed(_))));

        let mut cert = base.clone();
        cert.windows[0].mcast = 999;
        assert!(matches!(cert.verify(), Err(CertError::Malformed(_))));

        let mut cert = base.clone();
        let w = &mut cert.windows[0];
        (w.acquire, w.release) = (w.release + 10, w.acquire);
        assert!(matches!(cert.verify(), Err(CertError::Malformed(_))));

        let mut cert = base.clone();
        cert.multicasts[0].src = 9999; // src no longer a participant
        assert!(matches!(cert.verify(), Err(CertError::Malformed(_))));

        assert!(matches!(
            PlanCertificate::from_json("{not json"),
            Err(CertError::Malformed(_))
        ));
    }

    #[test]
    fn zero_length_windows_are_tolerated() {
        let (_, mut cert) = certified_set(1_000_000, 7);
        let w0 = cert.windows[0];
        cert.windows.push(CertWindow {
            mcast: w0.mcast,
            send: w0.send,
            channel: w0.channel,
            acquire: w0.acquire,
            release: w0.acquire, // empty: occupies nothing
        });
        cert.verify()
            .expect("zero-length window must not trip the sweep");
    }
}
