//! Channel-dependency-graph (CDG) deadlock analysis, after Dally & Seitz.
//!
//! Wormhole switching deadlocks exactly when the *channel dependency graph*
//! — channels as vertices, an edge `c → c'` whenever the routing function
//! can ask a worm holding `c` to acquire `c'` next — contains a cycle.  The
//! graph is built purely from [`Topology::route_candidates`], following
//! **every** candidate branch (the adaptive BMIN up-phase contributes both
//! up-ports), so the certificate covers the adaptive simulator, not just
//! first-preference deterministic paths.
//!
//! Cycles are found with Tarjan's strongly-connected-components algorithm
//! (iterative — channel counts reach the tens of thousands) and each cyclic
//! SCC is reported with a concrete *witness cycle*: a closed channel walk a
//! deadlocked worm set could actually block on.  The XY mesh and the
//! turnaround BMIN come out acyclic; an unvirtualized torus is the positive
//! control — every wrap ring closes a cycle that the dateline virtual
//! channels of [`topo::Torus::new`] are there to cut.

use std::collections::{HashMap, HashSet, VecDeque};

use topo::{ChannelId, NodeId, Topology};

/// The result of a CDG analysis.
#[derive(Debug, Clone)]
pub struct CdgAnalysis {
    /// Channels in the graph (vertices).
    pub n_channels: usize,
    /// Distinct dependency edges discovered.
    pub n_edges: usize,
    /// One witness cycle per cyclic SCC, each a closed walk
    /// (`first == last`); empty exactly when the network is deadlock-free.
    pub cycles: Vec<Vec<ChannelId>>,
}

impl CdgAnalysis {
    /// Deadlock-freedom: no cycle in the CDG.
    pub fn is_acyclic(&self) -> bool {
        self.cycles.is_empty()
    }
}

/// Enumerate every dependency edge the routing function can induce, over
/// all ordered `(src, dst)` pairs and all candidate branches.
pub(crate) fn build_edges(topo: &dyn Topology) -> HashSet<(u32, u32)> {
    let g = topo.graph();
    let nc = g.n_channels();
    let n = g.n_nodes();
    let mut edges: HashSet<(u32, u32)> = HashSet::new();
    // Per-pair visited set, generation-stamped to avoid reallocation.
    let mut stamp = vec![0u32; nc];
    let mut generation = 0u32;
    let mut queue: Vec<ChannelId> = Vec::new();
    let mut cand: Vec<ChannelId> = Vec::new();
    for s in 0..n as u32 {
        for d in 0..n as u32 {
            if s == d {
                continue;
            }
            generation += 1;
            queue.clear();
            for &inj in g.injections(NodeId(s)) {
                stamp[inj.idx()] = generation;
                queue.push(inj);
            }
            while let Some(c) = queue.pop() {
                let Some(r) = g.dst_router(c) else {
                    continue; // consumption channels are sinks
                };
                cand.clear();
                topo.route_candidates(r, NodeId(s), NodeId(d), &mut cand);
                for &next in &cand {
                    edges.insert((c.0, next.0));
                    if stamp[next.idx()] != generation {
                        stamp[next.idx()] = generation;
                        queue.push(next);
                    }
                }
            }
        }
    }
    edges
}

/// Build the CDG of `topo` and search it for cycles.
pub fn analyze(topo: &dyn Topology) -> CdgAnalysis {
    let nc = topo.graph().n_channels();
    let edges = build_edges(topo);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nc];
    for &(a, b) in &edges {
        adj[a as usize].push(b);
    }
    for list in &mut adj {
        list.sort_unstable();
    }
    let sccs = tarjan_sccs(&adj);
    // Component id per vertex, for witness extraction.
    let mut comp_id = vec![u32::MAX; nc];
    for (cid, comp) in sccs.iter().enumerate() {
        for &v in comp {
            comp_id[v as usize] = cid as u32;
        }
    }
    let mut cycles = Vec::new();
    for (cid, comp) in sccs.iter().enumerate() {
        let cyclic = comp.len() > 1
            || (comp.len() == 1 && adj[comp[0] as usize].binary_search(&comp[0]).is_ok());
        if cyclic {
            cycles.push(witness_cycle(comp, &adj, &comp_id, cid as u32));
        }
    }
    // Deterministic report order regardless of SCC discovery order.
    cycles.sort();
    CdgAnalysis {
        n_channels: nc,
        n_edges: edges.len(),
        cycles,
    }
}

/// Iterative Tarjan SCC.
fn tarjan_sccs(adj: &[Vec<u32>]) -> Vec<Vec<u32>> {
    const UNSET: u32 = u32::MAX;
    let n = adj.len();
    let mut index = vec![UNSET; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<u32>> = Vec::new();
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        frames.push((root, 0));
        while let Some(frame) = frames.last_mut() {
            let v = frame.0 as usize;
            if frame.1 == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(frame.0);
                on_stack[v] = true;
            }
            if frame.1 < adj[v].len() {
                let w = adj[v][frame.1] as usize;
                frame.1 += 1;
                if index[w] == UNSET {
                    frames.push((w as u32, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.0 as usize;
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp.push(w);
                        if w as usize == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

/// Shortest closed walk through the SCC's smallest member, BFS-restricted
/// to component-internal edges.  Returned closed: `first == last`.
fn witness_cycle(comp: &[u32], adj: &[Vec<u32>], comp_id: &[u32], cid: u32) -> Vec<ChannelId> {
    let m = *comp.iter().min().expect("non-empty SCC");
    let mut parent: HashMap<u32, u32> = HashMap::new();
    let mut visited: HashSet<u32> = HashSet::from([m]);
    let mut q = VecDeque::from([m]);
    while let Some(v) = q.pop_front() {
        for &w in &adj[v as usize] {
            if comp_id[w as usize] != cid {
                continue;
            }
            if w == m {
                // Reconstruct m -> … -> v, then close the walk.
                let mut rev = Vec::new();
                let mut cur = v;
                while cur != m {
                    rev.push(cur);
                    cur = parent[&cur];
                }
                let mut cycle = vec![ChannelId(m)];
                cycle.extend(rev.iter().rev().map(|&c| ChannelId(c)));
                cycle.push(ChannelId(m));
                return cycle;
            }
            if visited.insert(w) {
                parent.insert(w, v);
                q.push_back(w);
            }
        }
    }
    unreachable!("an SCC member always closes a walk to itself")
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::{Bmin, Mesh, Omega, Torus, UpPolicy};

    #[test]
    fn xy_mesh_is_acyclic() {
        let a = analyze(&Mesh::new(&[6, 6]));
        assert!(a.is_acyclic(), "witnesses: {:?}", a.cycles);
        assert_eq!(a.n_channels, 36 * 2 + 2 * (5 * 6) * 2);
        assert!(a.n_edges > 0);
    }

    #[test]
    fn turnaround_bmin_is_acyclic_for_both_policies() {
        for policy in [UpPolicy::Straight, UpPolicy::DestColumn] {
            let a = analyze(&Bmin::new(5, policy));
            assert!(a.is_acyclic(), "{policy:?}: {:?}", a.cycles);
        }
    }

    #[test]
    fn omega_min_is_acyclic() {
        assert!(analyze(&Omega::new(4)).is_acyclic());
    }

    #[test]
    fn dateline_torus_is_acyclic() {
        let a = analyze(&Torus::new(&[4, 4]));
        assert!(a.is_acyclic(), "witnesses: {:?}", a.cycles);
    }

    #[test]
    fn unvirtualized_torus_has_ring_cycles_with_valid_witnesses() {
        let t = Torus::unvirtualized(&[4, 4]);
        let a = analyze(&t);
        // Every positive-direction ring closes its own cycle: 2 dims * 4
        // lines.  (At radix 4 the negative direction is only ever taken for
        // a single hop — forward distance 3 — so no worm chains two
        // consecutive negative channels and those rings stay edge-free.)
        assert_eq!(a.cycles.len(), 8, "cycles: {:?}", a.cycles);
        let edges = build_edges(&t);
        for cycle in &a.cycles {
            assert!(cycle.len() >= 2);
            assert_eq!(cycle.first(), cycle.last(), "witness not closed");
            // A 4-ring witness: 4 distinct channels + the closing repeat.
            assert_eq!(cycle.len(), 5, "{cycle:?}");
            for pair in cycle.windows(2) {
                assert!(
                    edges.contains(&(pair[0].0, pair[1].0)),
                    "witness edge {:?} -> {:?} not in the CDG",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn one_dimensional_unvirtualized_ring_has_two_cycles() {
        // One ring per direction, each spanning all 8 wrap channels.
        let a = analyze(&Torus::unvirtualized(&[8]));
        assert_eq!(a.cycles.len(), 2);
        for cycle in &a.cycles {
            assert_eq!(cycle.len(), 9, "{cycle:?}");
        }
    }
}
