//! Schedule-*set* certification: contention analysis across several
//! concurrently scheduled multicasts.
//!
//! A single multicast's windowed analysis ([`optmc::check_schedule_windowed`])
//! is exact for deterministic configurations; a real machine runs many
//! multicasts at once (`optmc::run_concurrent`, `optmc workload`, campaign
//! cells).  This module lifts the analysis to a whole [`ScheduleSet`]: each
//! member's schedule is replayed under the engine's contention-free timing
//! with every window shifted by the member's start offset, and the combined
//! window population is scanned for overlaps — within a member *and*
//! between members.
//!
//! ## Soundness
//!
//! The per-member replay assumes each multicast's CPUs run only that
//! multicast's schedule.  When two members share a node *and* are active
//! over overlapping cycle ranges, the shared node's CPU serializes their
//! sends in an order the independent replays do not model, so the windows
//! are no longer exact.  [`analyze_set`] therefore reports any such pair as
//! an `NC0212` error: a set is **certified clean only when its members are
//! pairwise node-disjoint (or temporally disjoint) and no two windows
//! overlap** — precisely the regime where the replay is engine-exact and
//! "certified clean ⇔ zero simulator blocked cycles" holds (the
//! differential oracle in [`crate::oracle`] pins this).  Sets that share
//! nodes concurrently may still be *refuted* (a found conflict is real
//! evidence of contention pressure), but never certified.

use flitsim::SimConfig;
use mtree::Schedule;
use optmc::{occupancy_windows, Algorithm, ChannelWindow, McastSpec, OccupancyParams};
use pcm::Time;
use topo::{ChannelId, NodeId, RoutingError, Topology};

use crate::diag::{Diagnostic, Report, Severity};

/// A set of concurrently scheduled multicasts on one topology: the
/// [`McastSpec`]s (participants + source + bytes + start offset) plus the
/// algorithm that builds each member's tree.
#[derive(Debug, Clone)]
pub struct ScheduleSet {
    /// The members, in injection order.
    pub specs: Vec<McastSpec>,
    /// The multicast algorithm every member uses.
    pub algorithm: Algorithm,
}

/// One member's replayed occupancy: its windows in *global* time (shifted
/// by the member's start) and its activity envelope.
#[derive(Debug, Clone)]
pub struct MemberOccupancy {
    /// Index into the set's `specs`.
    pub mcast: usize,
    /// Channel windows, times global.
    pub windows: Vec<ChannelWindow>,
    /// First cycle the member occupies anything (its start offset).
    pub active_from: Time,
    /// Conservative end of the member's activity: last window release plus
    /// the receive software latency (exclusive).
    pub active_until: Time,
}

/// A window tagged with the member that owns it — the unit the
/// cross-member scan works on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetWindow {
    /// Index of the owning member in the set's `specs`.
    pub mcast: usize,
    /// The member-local send index and channel occupancy (global times).
    pub window: ChannelWindow,
}

/// Two sends — possibly of different members — whose occupancy windows on
/// a shared channel intersect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetConflict {
    /// Member of the earlier-acquiring send.
    pub mcast_a: usize,
    /// Send index within member `mcast_a`'s schedule.
    pub send_a: usize,
    /// Member of the later-acquiring send.
    pub mcast_b: usize,
    /// Send index within member `mcast_b`'s schedule.
    pub send_b: usize,
    /// The contended channel.
    pub channel: ChannelId,
    /// Start of the overlap (global cycles).
    pub from: Time,
    /// End of the overlap (exclusive).
    pub until: Time,
}

/// A pair of members that share nodes while both are active — the regime
/// the independent replays cannot model exactly (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeOverlap {
    /// The earlier-starting member.
    pub mcast_a: usize,
    /// The later-starting member.
    pub mcast_b: usize,
    /// The nodes both participate on.
    pub nodes: Vec<NodeId>,
}

/// Everything [`analyze_set`] computes about a set.
#[derive(Debug, Clone)]
pub struct SetAnalysis {
    /// Per-member replayed occupancy, index-aligned with the set's specs.
    pub members: Vec<MemberOccupancy>,
    /// All window overlaps, intra- and cross-member, in time order.
    pub conflicts: Vec<SetConflict>,
    /// Member pairs sharing nodes while temporally overlapping.
    pub node_overlaps: Vec<NodeOverlap>,
}

impl SetAnalysis {
    /// Conflicts between two *different* members.
    pub fn cross_conflicts(&self) -> impl Iterator<Item = &SetConflict> {
        self.conflicts.iter().filter(|c| c.mcast_a != c.mcast_b)
    }

    /// Conflicts within a single member's schedule.
    pub fn intra_conflicts(&self) -> impl Iterator<Item = &SetConflict> {
        self.conflicts.iter().filter(|c| c.mcast_a == c.mcast_b)
    }

    /// True when the set is certified contention-free: no window overlaps
    /// anywhere and no concurrently-active node sharing.
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty() && self.node_overlaps.is_empty()
    }
}

/// Replay every member of `set` under `cfg`'s contention-free timing and
/// scan the combined windows for conflicts.
///
/// # Errors
/// A [`RoutingError`] if any member's deterministic path fails to
/// materialise (a topology bug `check_topology` reports as `NC0101`).
///
/// # Panics
/// If `cfg.adaptive` is set: the replay materialises first-preference
/// deterministic paths and is only exact without adaptivity.
pub fn analyze_set(
    topo: &dyn Topology,
    cfg: &SimConfig,
    set: &ScheduleSet,
) -> Result<SetAnalysis, RoutingError> {
    assert!(
        !cfg.adaptive,
        "schedule-set certification requires deterministic routing"
    );
    let g = topo.graph();
    let mut members = Vec::with_capacity(set.specs.len());
    for (mcast, spec) in set.specs.iter().enumerate() {
        // Build the schedule exactly as `run_concurrent` does, then shift
        // its windows into global time by the member's start offset.
        let k = spec.participants.len();
        let hops = optmc::runner::nominal_hops(topo, &spec.participants, spec.src);
        let (hold, end) = cfg.effective_pair_ports(hops, spec.bytes, g.ports() as u64);
        let chain = set.algorithm.chain(topo, &spec.participants, spec.src);
        let splits = set.algorithm.splits(hold, end, k.max(2));
        let schedule = Schedule::build(k, chain.src_pos(), &splits, hold, end);
        let params = OccupancyParams::from_config(cfg, spec.bytes);
        let mut windows = occupancy_windows(topo, &chain, &schedule, &params)?;
        for w in &mut windows {
            w.acquire = w.acquire.saturating_add(spec.start);
            w.release = w.release.saturating_add(spec.start);
        }
        let last_release = windows.iter().map(|w| w.release).max().unwrap_or(0);
        members.push(MemberOccupancy {
            mcast,
            windows,
            active_from: spec.start,
            // The final receiver still runs t_recv of software after its
            // tail drains; fold it into the envelope so the node-overlap
            // guard stays conservative.
            active_until: last_release.saturating_add(params.t_recv).max(spec.start),
        });
    }

    let tagged: Vec<SetWindow> = members
        .iter()
        .flat_map(|m| {
            m.windows.iter().map(|w| SetWindow {
                mcast: m.mcast,
                window: *w,
            })
        })
        .collect();
    let conflicts = scan_conflicts(&tagged);
    let node_overlaps = find_node_overlaps(&set.specs, &members);
    Ok(SetAnalysis {
        members,
        conflicts,
        node_overlaps,
    })
}

/// Find every pairwise overlap in a tagged window population: group by
/// channel, then scan each group.  Windows are half-open `[acquire,
/// release)`, so touching windows (`a.release == b.acquire`) do **not**
/// conflict, and a zero-length window (`acquire == release`, which the
/// replay never emits but the certificate verifier must tolerate) overlaps
/// nothing.  Pure so the boundary semantics are testable in isolation.
pub fn scan_conflicts(windows: &[SetWindow]) -> Vec<SetConflict> {
    let mut sorted: Vec<SetWindow> = windows.to_vec();
    sorted.sort_by_key(|t| (t.window.channel.0, t.window.acquire, t.mcast, t.window.send));
    let mut conflicts = Vec::new();
    let mut lo = 0;
    while lo < sorted.len() {
        let ch = sorted[lo].window.channel;
        let hi = sorted[lo..]
            .iter()
            .position(|t| t.window.channel != ch)
            .map_or(sorted.len(), |off| lo + off);
        let group = &sorted[lo..hi];
        for (i, a) in group.iter().enumerate() {
            for b in &group[i + 1..] {
                if a.mcast == b.mcast && a.window.send == b.window.send {
                    continue; // one send revisiting its own channel
                }
                let from = a.window.acquire.max(b.window.acquire);
                let until = a.window.release.min(b.window.release);
                if from < until {
                    conflicts.push(SetConflict {
                        mcast_a: a.mcast,
                        send_a: a.window.send,
                        mcast_b: b.mcast,
                        send_b: b.window.send,
                        channel: ch,
                        from,
                        until,
                    });
                }
            }
        }
        lo = hi;
    }
    conflicts.sort_by_key(|c| (c.from, c.mcast_a, c.send_a, c.mcast_b, c.send_b));
    conflicts
}

/// Member pairs that share participants while their activity envelopes
/// overlap (half-open `[active_from, active_until)` intervals).
fn find_node_overlaps(specs: &[McastSpec], members: &[MemberOccupancy]) -> Vec<NodeOverlap> {
    let mut overlaps = Vec::new();
    for a in 0..specs.len() {
        for b in (a + 1)..specs.len() {
            let (ma, mb) = (&members[a], &members[b]);
            if ma.active_from >= mb.active_until || mb.active_from >= ma.active_until {
                continue; // temporally disjoint: serialization is benign
            }
            let mut shared: Vec<NodeId> = specs[a]
                .participants
                .iter()
                .filter(|n| specs[b].participants.contains(n))
                .copied()
                .collect();
            if !shared.is_empty() {
                shared.sort_by_key(|n| n.0);
                overlaps.push(NodeOverlap {
                    mcast_a: a,
                    mcast_b: b,
                    nodes: shared,
                });
            }
        }
    }
    overlaps
}

/// Render a [`SetAnalysis`] as a diagnostic [`Report`] (normalized).
///
/// * clean → `NC0210` certification (info);
/// * window overlaps → one `NC0211` error per conflicting pair, with the
///   contended channel, the overlap window, and the endpoints as spans;
/// * concurrently-active node sharing → one `NC0212` error per pair.
pub fn report_set(topo: &dyn Topology, set: &ScheduleSet, analysis: &SetAnalysis) -> Report {
    let mut report = Report::new(format!(
        "{:?} x{} on {}",
        set.algorithm,
        set.specs.len(),
        topo.name()
    ));
    for c in &analysis.conflicts {
        let label = if c.mcast_a == c.mcast_b {
            format!(
                "multicast #{} conflicts with itself (sends {} and {})",
                c.mcast_a, c.send_a, c.send_b
            )
        } else {
            format!(
                "multicast #{} send {} and multicast #{} send {} contend",
                c.mcast_a, c.send_a, c.mcast_b, c.send_b
            )
        };
        report.push(
            Diagnostic::new(
                Severity::Error,
                "NC0211",
                format!(
                    "{label} for channel ch{} during cycles {}..{}",
                    c.channel.0, c.from, c.until
                ),
            )
            .with_nodes(vec![set.specs[c.mcast_a].src, set.specs[c.mcast_b].src])
            .with_channels(vec![c.channel])
            .with_window(c.from, c.until)
            .with_help(
                "stagger the start offsets or re-place the participant groups so the \
                 trees use disjoint channels",
            ),
        );
    }
    for o in &analysis.node_overlaps {
        report.push(
            Diagnostic::new(
                Severity::Error,
                "NC0212",
                format!(
                    "multicasts #{} and #{} share {} node(s) while both are active: \
                     their CPU serialization is outside the replay model, so the set \
                     cannot be certified",
                    o.mcast_a,
                    o.mcast_b,
                    o.nodes.len()
                ),
            )
            .with_nodes(o.nodes.clone())
            .with_window(
                analysis.members[o.mcast_b].active_from,
                analysis.members[o.mcast_a]
                    .active_until
                    .min(analysis.members[o.mcast_b].active_until),
            )
            .with_help(
                "use node-disjoint participant groups, or separate the starts by more \
                 than a member's completion time",
            ),
        );
    }
    if analysis.is_clean() {
        let n_windows: usize = analysis.members.iter().map(|m| m.windows.len()).sum();
        report.push(Diagnostic::new(
            Severity::Info,
            "NC0210",
            format!(
                "schedule set certified contention-free: {} multicasts, {} channel \
                 windows, no overlaps, members pairwise independent",
                set.specs.len(),
                n_windows
            ),
        ));
    }
    report.normalize();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use optmc::random_placement;
    use topo::Mesh;

    fn det_cfg() -> SimConfig {
        let mut cfg = SimConfig::paragon_like();
        cfg.adaptive = false;
        cfg
    }

    /// Node-disjoint groups from one shuffled pool, starts spaced by `gap`.
    fn disjoint_specs(n: usize, k: usize, count: usize, gap: Time, seed: u64) -> Vec<McastSpec> {
        let pool = random_placement(n, k * count, seed);
        pool.chunks(k)
            .enumerate()
            .map(|(i, c)| McastSpec {
                participants: c.to_vec(),
                src: c[0],
                bytes: 2048,
                start: i as Time * gap,
            })
            .collect()
    }

    #[test]
    fn far_apart_disjoint_multicasts_certify_clean() {
        let m = Mesh::new(&[16, 16]);
        let set = ScheduleSet {
            specs: disjoint_specs(256, 8, 4, 1_000_000, 3),
            algorithm: Algorithm::OptArch,
        };
        let analysis = analyze_set(&m, &det_cfg(), &set).unwrap();
        assert!(analysis.is_clean(), "{:?}", analysis.conflicts);
        let report = report_set(&m, &set, &analysis);
        assert!(!report.has_errors(), "{}", report.render_human());
        assert!(report.diagnostics.iter().any(|d| d.code == "NC0210"));
    }

    #[test]
    fn simultaneous_batch_reports_cross_interference() {
        // Many simultaneous 24-node multicasts on a 16x16 mesh must collide
        // somewhere (the `interference_shows_up` regime of optmc::concurrent).
        let m = Mesh::new(&[16, 16]);
        let mut found = false;
        for seed in 0..6u64 {
            let set = ScheduleSet {
                specs: disjoint_specs(256, 24, 4, 0, seed),
                algorithm: Algorithm::OptArch,
            };
            let analysis = analyze_set(&m, &det_cfg(), &set).unwrap();
            if analysis.cross_conflicts().next().is_some() {
                found = true;
                let report = report_set(&m, &set, &analysis);
                assert!(report.has_errors());
                let witness = report
                    .diagnostics
                    .iter()
                    .find(|d| d.code == "NC0211")
                    .expect("interference must carry an NC0211 witness");
                assert!(!witness.channels.is_empty(), "witness has no channel span");
                let (from, until) = witness.window.expect("witness has no time window");
                assert!(from < until);
                break;
            }
        }
        assert!(found, "no simultaneous batch interfered across 6 seeds");
    }

    #[test]
    fn member_internal_conflicts_are_reported_too() {
        // A scrambled OPT-tree member conflicts with itself; the set
        // analysis must surface it even if members never cross.
        let m = Mesh::new(&[6, 6]);
        for seed in 0..12u64 {
            let parts = random_placement(36, 10, seed);
            let set = ScheduleSet {
                specs: vec![McastSpec {
                    src: parts[0],
                    participants: parts,
                    bytes: 2048,
                    start: 0,
                }],
                algorithm: Algorithm::OptTree,
            };
            let analysis = analyze_set(&m, &det_cfg(), &set).unwrap();
            if analysis.intra_conflicts().next().is_some() {
                assert!(!analysis.is_clean());
                return;
            }
        }
        panic!("no scrambled OPT-tree member conflicted across 12 seeds");
    }

    /// A second group sharing exactly one node with `a`.
    fn sharing_one_node(a: &[NodeId], seed: u64) -> Vec<NodeId> {
        let shared = a[2];
        let mut b: Vec<_> = random_placement(256, 12, seed)
            .into_iter()
            .filter(|&n| n != shared && !a.contains(&n))
            .take(7)
            .collect();
        b.push(shared);
        b
    }

    #[test]
    fn concurrently_active_node_sharing_blocks_certification() {
        let m = Mesh::new(&[16, 16]);
        let a = random_placement(256, 8, 41);
        let b = sharing_one_node(&a, 42);
        let set = ScheduleSet {
            specs: vec![
                McastSpec {
                    src: a[0],
                    participants: a,
                    bytes: 2048,
                    start: 0,
                },
                McastSpec {
                    src: b[0],
                    participants: b,
                    bytes: 2048,
                    start: 0,
                },
            ],
            algorithm: Algorithm::OptArch,
        };
        let analysis = analyze_set(&m, &det_cfg(), &set).unwrap();
        assert_eq!(analysis.node_overlaps.len(), 1);
        assert!(!analysis.is_clean());
        let report = report_set(&m, &set, &analysis);
        assert!(report.diagnostics.iter().any(|d| d.code == "NC0212"));
    }

    #[test]
    fn temporally_disjoint_node_sharing_is_benign() {
        // Same shared node, but the second multicast starts far after the
        // first completes: the guard must not fire and the set certifies.
        let m = Mesh::new(&[16, 16]);
        let a = random_placement(256, 8, 41);
        let b = sharing_one_node(&a, 42);
        let set = ScheduleSet {
            specs: vec![
                McastSpec {
                    src: a[0],
                    participants: a,
                    bytes: 2048,
                    start: 0,
                },
                McastSpec {
                    src: b[0],
                    participants: b,
                    bytes: 2048,
                    start: 5_000_000,
                },
            ],
            algorithm: Algorithm::OptArch,
        };
        let analysis = analyze_set(&m, &det_cfg(), &set).unwrap();
        assert!(analysis.node_overlaps.is_empty(), "temporal gap ignored");
        assert!(analysis.is_clean(), "{:?}", analysis.conflicts);
    }

    mod scan_boundaries {
        use super::*;

        fn win(mcast: usize, send: usize, ch: u32, acquire: Time, release: Time) -> SetWindow {
            SetWindow {
                mcast,
                window: ChannelWindow {
                    send,
                    channel: ChannelId(ch),
                    acquire,
                    release,
                },
            }
        }

        #[test]
        fn touching_windows_do_not_conflict() {
            // [10, 20) then [20, 30): half-open semantics, no overlap.
            let ws = [win(0, 0, 5, 10, 20), win(1, 0, 5, 20, 30)];
            assert!(scan_conflicts(&ws).is_empty());
        }

        #[test]
        fn one_cycle_overlap_conflicts() {
            let ws = [win(0, 0, 5, 10, 21), win(1, 0, 5, 20, 30)];
            let c = scan_conflicts(&ws);
            assert_eq!(c.len(), 1);
            assert_eq!((c[0].from, c[0].until), (20, 21));
            assert_eq!((c[0].mcast_a, c[0].mcast_b), (0, 1));
        }

        #[test]
        fn zero_length_window_overlaps_nothing() {
            // [15, 15) sits inside [10, 20) but is empty.
            let ws = [win(0, 0, 5, 10, 20), win(1, 0, 5, 15, 15)];
            assert!(scan_conflicts(&ws).is_empty());
        }

        #[test]
        fn identical_start_times_conflict() {
            let ws = [win(0, 0, 5, 10, 20), win(1, 0, 5, 10, 12)];
            let c = scan_conflicts(&ws);
            assert_eq!(c.len(), 1);
            assert_eq!((c[0].from, c[0].until), (10, 12));
        }

        #[test]
        fn different_channels_never_conflict() {
            let ws = [win(0, 0, 5, 10, 20), win(1, 0, 6, 10, 20)];
            assert!(scan_conflicts(&ws).is_empty());
        }

        #[test]
        fn same_send_revisiting_its_channel_is_skipped() {
            let ws = [win(0, 3, 5, 10, 20), win(0, 3, 5, 15, 25)];
            assert!(scan_conflicts(&ws).is_empty());
            // …but two different sends of the same member do conflict.
            let ws = [win(0, 3, 5, 10, 20), win(0, 4, 5, 15, 25)];
            assert_eq!(scan_conflicts(&ws).len(), 1);
        }

        #[test]
        fn conflicts_come_back_in_time_order() {
            let ws = [
                win(0, 0, 5, 100, 200),
                win(1, 0, 5, 150, 250),
                win(2, 0, 7, 10, 30),
                win(3, 0, 7, 20, 40),
            ];
            let c = scan_conflicts(&ws);
            assert_eq!(c.len(), 2);
            assert!(c[0].from < c[1].from, "{c:?}");
        }
    }
}
