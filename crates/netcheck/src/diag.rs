//! Structured, rustc-style diagnostics.
//!
//! Every analysis in this crate reports through [`Report`]: a flat list of
//! [`Diagnostic`]s, each carrying a severity, a stable code (`NC…`), a
//! one-line message, and a *span over the network* — the nodes and channels
//! the finding is about, so tooling can highlight them on a topology
//! drawing.  [`Report::render_human`] prints the familiar
//! `error[NC0001]: …` shape; the whole report serializes to JSON for
//! machine consumers (`optmc check --json`).

use pcm::Time;
use serde::{Deserialize, Serialize};
use topo::{ChannelId, NodeId};

pub mod codes {
    //! The registry of stable diagnostic codes.
    //!
    //! Every [`super::Diagnostic`] must carry a code from this table —
    //! construction asserts it — so machine consumers can rely on the code
    //! space being closed and documented.  Codes are grouped by hundreds:
    //! `NC00xx` deadlock analysis, `NC01xx` routing lints, `NC02xx`
    //! schedule/schedule-set contention, `NC03xx` runtime validation.

    /// One registered code: its identifier and a one-line meaning.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct CodeInfo {
        /// The stable identifier (`NC0001`, …).
        pub code: &'static str,
        /// What a diagnostic with this code asserts.
        pub summary: &'static str,
    }

    /// Every code `netcheck` can emit, sorted by identifier.
    pub const REGISTRY: &[CodeInfo] = &[
        CodeInfo {
            code: "NC0001",
            summary: "channel dependency cycle: wormhole deadlock is reachable",
        },
        CodeInfo {
            code: "NC0002",
            summary: "channel dependency graph is acyclic (deadlock-freedom certification)",
        },
        CodeInfo {
            code: "NC0101",
            summary: "routing failed to reach a destination's consumption channel",
        },
        CodeInfo {
            code: "NC0102",
            summary: "a deterministic route exceeds the minimal router distance",
        },
        CodeInfo {
            code: "NC0103",
            summary: "a route violates the architecture's routing discipline",
        },
        CodeInfo {
            code: "NC0104",
            summary: "routing termination certification (all ordered pairs reached)",
        },
        CodeInfo {
            code: "NC0105",
            summary: "routing minimality certification",
        },
        CodeInfo {
            code: "NC0106",
            summary: "routing discipline conformance certification",
        },
        CodeInfo {
            code: "NC0201",
            summary: "schedule contention: conflicting send pairs share a channel",
        },
        CodeInfo {
            code: "NC0202",
            summary: "schedule contention-freedom certification",
        },
        CodeInfo {
            code: "NC0203",
            summary: "differential oracle agreement (static verdict matches the simulator)",
        },
        CodeInfo {
            code: "NC0210",
            summary: "schedule-set contention-freedom certification",
        },
        CodeInfo {
            code: "NC0211",
            summary: "schedule-set interference: two multicasts contend for a channel",
        },
        CodeInfo {
            code: "NC0212",
            summary: "schedule-set members share nodes while temporally overlapping \
                      (CPU serialization outside the replay model)",
        },
        CodeInfo {
            code: "NC0213",
            summary: "plan certificate verification (independent re-check of the verdict)",
        },
        CodeInfo {
            code: "NC0301",
            summary: "a simulator run violated an engine invariant",
        },
        CodeInfo {
            code: "NC0302",
            summary: "static analysis and the simulator disagree on a verdict",
        },
    ];

    /// Look up a code's one-line meaning.
    pub fn describe(code: &str) -> Option<&'static str> {
        REGISTRY
            .binary_search_by(|info| info.code.cmp(code))
            .ok()
            .map(|i| REGISTRY[i].summary)
    }
}

/// How bad a finding is.  `Info` records a positive certification ("CDG is
/// acyclic"), not a problem — a clean run is evidence, and evidence should
/// be printable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// A certification or measurement, not a defect.
    Info,
    /// Suspicious but not a correctness hazard (e.g. a non-minimal route).
    Warning,
    /// A correctness hazard: deadlock cycle, routing failure, contention on
    /// a schedule that claims to be contention-free, invariant violation.
    Error,
}

impl Severity {
    /// The rustc-style label.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Finding severity.
    pub severity: Severity,
    /// Stable machine-readable code (`NC0001`, …).
    pub code: String,
    /// One-line human message.
    pub message: String,
    /// Nodes the finding spans (may be empty).
    pub nodes: Vec<NodeId>,
    /// Channels the finding spans — e.g. a witness deadlock cycle, or the
    /// contended channel of a conflict (may be empty).
    pub channels: Vec<ChannelId>,
    /// The cycle window `[from, until)` the finding spans, for timed
    /// findings (contention overlaps); `None` for untimed ones.
    pub window: Option<(Time, Time)>,
    /// Optional remediation hint.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A bare diagnostic; attach spans and help with the builder methods.
    ///
    /// # Panics
    /// If `code` is not in the [`codes::REGISTRY`] — every emitted code
    /// must be registered and documented.
    pub fn new(severity: Severity, code: &str, message: impl Into<String>) -> Self {
        assert!(
            codes::describe(code).is_some(),
            "diagnostic code {code} is not in the netcheck registry"
        );
        Diagnostic {
            severity,
            code: code.to_string(),
            message: message.into(),
            nodes: Vec::new(),
            channels: Vec::new(),
            window: None,
            help: None,
        }
    }

    /// Attach the node span.
    #[must_use]
    pub fn with_nodes(mut self, nodes: Vec<NodeId>) -> Self {
        self.nodes = nodes;
        self
    }

    /// Attach the channel span.
    #[must_use]
    pub fn with_channels(mut self, channels: Vec<ChannelId>) -> Self {
        self.channels = channels;
        self
    }

    /// Attach the time window `[from, until)` the finding spans.
    #[must_use]
    pub fn with_window(mut self, from: Time, until: Time) -> Self {
        self.window = Some((from, until));
        self
    }

    /// Attach a remediation hint.
    #[must_use]
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

/// All findings for one target (a topology, or a schedule on a topology).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// What was analyzed, e.g. `mesh-16x16` or `opt-min on bmin-128x2x2`.
    pub target: String,
    /// The findings, in the order the analyses produced them.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for `target`.
    pub fn new(target: impl Into<String>) -> Self {
        Report {
            target: target.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Append a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// The worst severity present, `None` when the report is empty.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Whether any `Error`-level finding exists.
    pub fn has_errors(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }

    /// Count of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Sort the findings into the canonical order — by (code, first
    /// spanned channel, time window, first spanned node, message) — so two
    /// reports with the same findings render and serialize byte-identically
    /// regardless of the order the analyses produced them.  `optmc check`
    /// normalizes every report before printing.
    pub fn normalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            let key = |d: &Diagnostic| {
                (
                    d.code.clone(),
                    d.channels.first().map_or(u32::MAX, |c| c.0),
                    d.window.unwrap_or((Time::MAX, Time::MAX)),
                    d.nodes.first().map_or(u32::MAX, |n| n.0),
                    d.message.clone(),
                )
            };
            key(a).cmp(&key(b))
        });
    }

    /// Render rustc-style human output, one block per finding plus a
    /// summary line.
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}[{}]: {}", d.severity.label(), d.code, d.message);
            let _ = writeln!(out, "  --> {}", self.target);
            if !d.nodes.is_empty() {
                let nodes: Vec<String> = d.nodes.iter().map(|n| n.0.to_string()).collect();
                let _ = writeln!(out, "  = nodes: {}", nodes.join(", "));
            }
            if !d.channels.is_empty() {
                let chs: Vec<String> = d.channels.iter().map(|c| format!("ch{}", c.0)).collect();
                let _ = writeln!(out, "  = channels: {}", chs.join(" -> "));
            }
            if let Some((from, until)) = d.window {
                let _ = writeln!(out, "  = window: cycles [{from}, {until})");
            }
            if let Some(h) = &d.help {
                let _ = writeln!(out, "  = help: {h}");
            }
        }
        let errors = self.count(Severity::Error);
        let warnings = self.count(Severity::Warning);
        if errors == 0 && warnings == 0 {
            let _ = writeln!(out, "{}: clean (no findings above info)", self.target);
        } else {
            let _ = writeln!(
                out,
                "{}: {} error{}, {} warning{}",
                self.target,
                errors,
                if errors == 1 { "" } else { "s" },
                warnings,
                if warnings == 1 { "" } else { "s" },
            );
        }
        out
    }

    /// Serialize the whole report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn report_tracks_max_severity_and_counts() {
        let mut r = Report::new("mesh-4x4");
        assert_eq!(r.max_severity(), None);
        assert!(!r.has_errors());
        r.push(Diagnostic::new(Severity::Info, "NC0002", "acyclic"));
        assert_eq!(r.max_severity(), Some(Severity::Info));
        r.push(Diagnostic::new(Severity::Warning, "NC0102", "non-minimal"));
        r.push(Diagnostic::new(Severity::Error, "NC0001", "cycle"));
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.count(Severity::Error), 1);
    }

    #[test]
    fn human_rendering_is_rustc_shaped() {
        let mut r = Report::new("torus-4x4-novc");
        r.push(
            Diagnostic::new(Severity::Error, "NC0001", "channel-dependency cycle")
                .with_channels(vec![ChannelId(3), ChannelId(7), ChannelId(3)])
                .with_help("virtualize the wrap links"),
        );
        let text = r.render_human();
        assert!(
            text.contains("error[NC0001]: channel-dependency cycle"),
            "{text}"
        );
        assert!(text.contains("--> torus-4x4-novc"), "{text}");
        assert!(text.contains("ch3 -> ch7 -> ch3"), "{text}");
        assert!(text.contains("= help: virtualize"), "{text}");
        assert!(text.contains("1 error, 0 warnings"), "{text}");
    }

    #[test]
    fn clean_report_says_so() {
        let mut r = Report::new("mesh-8x8");
        r.push(
            Diagnostic::new(Severity::Info, "NC0002", "CDG acyclic").with_nodes(vec![NodeId(1)]),
        );
        assert!(r.render_human().contains("clean (no findings above info)"));
    }

    #[test]
    fn registry_codes_are_unique_and_sorted() {
        // `describe` binary-searches, so the table must be strictly sorted
        // (which also proves uniqueness).
        for pair in codes::REGISTRY.windows(2) {
            assert!(
                pair[0].code < pair[1].code,
                "registry out of order or duplicated at {}",
                pair[1].code
            );
        }
        for info in codes::REGISTRY {
            assert_eq!(codes::describe(info.code), Some(info.summary));
            assert!(!info.summary.is_empty());
        }
        assert_eq!(codes::describe("NC9999"), None);
    }

    #[test]
    #[should_panic(expected = "not in the netcheck registry")]
    fn unregistered_code_is_rejected_at_construction() {
        let _ = Diagnostic::new(Severity::Error, "NC9999", "no such lint");
    }

    #[test]
    fn normalize_orders_by_code_channel_window() {
        let mut r = Report::new("mesh-4x4");
        r.push(
            Diagnostic::new(Severity::Error, "NC0211", "late overlap")
                .with_channels(vec![ChannelId(9)])
                .with_window(500, 600),
        );
        r.push(Diagnostic::new(Severity::Info, "NC0104", "terminates"));
        r.push(
            Diagnostic::new(Severity::Error, "NC0211", "early overlap")
                .with_channels(vec![ChannelId(9)])
                .with_window(100, 200),
        );
        r.push(
            Diagnostic::new(Severity::Error, "NC0211", "other channel")
                .with_channels(vec![ChannelId(2)])
                .with_window(900, 950),
        );
        let mut swapped = Report::new("mesh-4x4");
        for d in r.diagnostics.iter().rev() {
            swapped.push(d.clone());
        }
        r.normalize();
        swapped.normalize();
        assert_eq!(r, swapped, "normalize is not order-insensitive");
        let codes: Vec<&str> = r.diagnostics.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, ["NC0104", "NC0211", "NC0211", "NC0211"]);
        // Within NC0211: channel 2 before channel 9, then by window.
        assert_eq!(r.diagnostics[1].channels[0], ChannelId(2));
        assert_eq!(r.diagnostics[2].window, Some((100, 200)));
        assert_eq!(r.diagnostics[3].window, Some((500, 600)));
    }

    #[test]
    fn window_renders_in_human_output() {
        let mut r = Report::new("mesh-4x4");
        r.push(
            Diagnostic::new(Severity::Error, "NC0211", "overlap")
                .with_channels(vec![ChannelId(3)])
                .with_window(120, 180),
        );
        assert!(r.render_human().contains("= window: cycles [120, 180)"));
    }

    #[test]
    fn json_round_trips() {
        let mut r = Report::new("bmin-128x2x2");
        r.push(
            Diagnostic::new(Severity::Warning, "NC0102", "route 3 hops above minimal")
                .with_nodes(vec![NodeId(0), NodeId(5)]),
        );
        let json = r.to_json();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
