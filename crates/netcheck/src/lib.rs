//! # `netcheck` — static verification for the multicast stack
//!
//! Everything the rest of the workspace *asserts* about a network, this
//! crate *proves* (or refutes, with a witness):
//!
//! * [`cdg`] — Dally–Seitz channel-dependency-graph deadlock analysis over
//!   every branch of [`topo::Topology::route_candidates`]; cycles come back
//!   with concrete witness channel walks.
//! * [`routing`] — whole-function routing lints: termination (every
//!   ordered pair reaches its consumption channel), minimality, and
//!   conformance to the architecture's discipline (dimension-order on
//!   meshes/tori, `up* down*` turnaround on BMINs).
//! * [`diag`] — rustc-style structured diagnostics (`error[NC0001]: …`
//!   with node/channel spans) shared by all analyses; renders human text
//!   or JSON.
//! * [`validate`] — a runtime [`flitsim::Observer`] that checks engine
//!   invariants (exclusive channel holds, acquire/release balance,
//!   monotonic channel-event time, one-port injection) as a simulation
//!   executes.
//! * [`schedset`] — schedule-*set* certification: windowed occupancy
//!   analysis across several concurrently scheduled multicasts, with
//!   cross-schedule interference witnesses.
//! * [`certificate`] — machine-checkable plan certificates (JSON) with an
//!   independent verifier that re-derives the verdict from the interval
//!   population alone.
//! * [`oracle`] — the differential oracle tying both worlds together:
//!   windowed static contention analysis and the instrumented simulator
//!   must agree that a schedule (or a whole set) is clean.
//!
//! The CLI front end is `optmc check`; [`check_topology`] is the
//! library-level entry point it wraps.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cdg;
pub mod certificate;
pub mod diag;
pub mod oracle;
pub mod routing;
pub mod schedset;
pub mod validate;

pub use cdg::{analyze, CdgAnalysis};
pub use certificate::{CertError, PlanCertificate};
pub use diag::{Diagnostic, Report, Severity};
pub use oracle::{differential_case, differential_set_case, OracleCase, OracleSetCase};
pub use routing::{lint_routing, Discipline};
pub use schedset::{analyze_set, report_set, ScheduleSet, SetAnalysis};
pub use validate::{ValidationSummary, Validator, ValidatorHandle};

use topo::Topology;

/// Run every static topology-level analysis — deadlock freedom and the
/// routing lints — and collect the findings into one [`Report`].
pub fn check_topology(topo: &dyn Topology, discipline: &Discipline) -> Report {
    let mut report = Report::new(topo.name());
    let a = cdg::analyze(topo);
    if a.is_acyclic() {
        report.push(Diagnostic::new(
            Severity::Info,
            "NC0002",
            format!(
                "channel dependency graph is acyclic ({} channels, {} dependencies): \
                 wormhole routing cannot deadlock",
                a.n_channels, a.n_edges
            ),
        ));
    } else {
        for cycle in &a.cycles {
            report.push(
                Diagnostic::new(
                    Severity::Error,
                    "NC0001",
                    format!(
                        "channel dependency cycle of length {}: wormhole deadlock is reachable",
                        cycle.len() - 1
                    ),
                )
                .with_channels(cycle.clone())
                .with_help(
                    "break the cycle with virtual channels (e.g. dateline virtualization on \
                     torus wrap links) or a more restrictive routing function",
                ),
            );
        }
    }
    routing::lint_routing(topo, discipline, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::{Bmin, Mesh, Torus, UpPolicy};

    #[test]
    fn mesh_certifies_clean() {
        let r = check_topology(
            &Mesh::new(&[4, 4]),
            &Discipline::DimensionOrder { dims: vec![4, 4] },
        );
        assert!(!r.has_errors(), "{}", r.render_human());
        assert!(r.diagnostics.iter().any(|d| d.code == "NC0002"));
    }

    #[test]
    fn bmin_certifies_clean() {
        let r = check_topology(
            &Bmin::new(4, UpPolicy::Straight),
            &Discipline::Turnaround { width: 8 },
        );
        assert!(!r.has_errors(), "{}", r.render_human());
    }

    #[test]
    fn unvirtualized_torus_reports_cycles_with_witnesses() {
        let r = check_topology(
            &Torus::unvirtualized(&[4, 4]),
            &Discipline::DimensionOrder { dims: vec![4, 4] },
        );
        assert!(r.has_errors());
        let cycle_diags: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == "NC0001")
            .collect();
        // One cycle per positive-direction wrap ring (see cdg::tests).
        assert_eq!(cycle_diags.len(), 8);
        for d in &cycle_diags {
            assert!(d.channels.len() >= 3, "witness too short: {d:?}");
            assert_eq!(d.channels.first(), d.channels.last());
        }
        // The routing itself is fine — only the dependency structure is not.
        assert!(r.diagnostics.iter().any(|d| d.code == "NC0104"));
    }
}
