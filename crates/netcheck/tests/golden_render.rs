//! Golden-file test for the human diagnostic renderer.
//!
//! The rendered text is part of `optmc check`'s interface — scripts grep
//! it and users read it — so format drift must be deliberate.  To bless a
//! deliberate change:
//!
//! ```text
//! BLESS=1 cargo test -p netcheck --test golden_render
//! ```

use netcheck::{Diagnostic, Report, Severity};
use topo::{ChannelId, NodeId};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/report.txt");

/// A fixed report exercising every rendering feature: all three
/// severities, node and channel spans, a time window, help text, and the
/// footer in both its clean and dirty forms (two reports, one file).
fn sample_reports() -> (Report, Report) {
    let mut dirty = Report::new("opt-min x3 on mesh-16x16 (sample)");
    dirty.push(Diagnostic::new(
        Severity::Info,
        "NC0002",
        "channel dependency graph is acyclic (1472 channels): wormhole routing cannot deadlock",
    ));
    dirty.push(
        Diagnostic::new(
            Severity::Error,
            "NC0211",
            "multicast #0 send 2 and multicast #1 send 5 contend for channel ch571 \
             during cycles 3737..3986",
        )
        .with_nodes(vec![NodeId(12), NodeId(49)])
        .with_channels(vec![ChannelId(571)])
        .with_window(3737, 3986)
        .with_help(
            "stagger the start offsets or re-place the participant groups so the trees \
             use disjoint channels",
        ),
    );
    dirty.push(
        Diagnostic::new(
            Severity::Warning,
            "NC0105",
            "a deterministic route is non-minimal (sample warning)",
        )
        .with_nodes(vec![NodeId(3)]),
    );
    dirty.normalize();

    let mut clean = Report::new("mesh-4x4 (sample)");
    clean.push(Diagnostic::new(
        Severity::Info,
        "NC0210",
        "schedule set certified contention-free: 3 multicasts, 42 channel windows, \
         no overlaps, members pairwise independent",
    ));
    clean.normalize();
    (dirty, clean)
}

#[test]
fn human_rendering_matches_the_golden_file() {
    let (dirty, clean) = sample_reports();
    let rendered = format!("{}---\n{}", dirty.render_human(), clean.render_human());
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN).expect("golden file exists (run with BLESS=1)");
    assert_eq!(
        rendered, golden,
        "human renderer output drifted from tests/golden/report.txt; \
         if the change is deliberate, re-bless with BLESS=1"
    );
}

#[test]
fn golden_report_is_deterministic_across_renders() {
    let (dirty, _) = sample_reports();
    assert_eq!(dirty.render_human(), dirty.render_human());
    assert_eq!(dirty.to_json(), dirty.to_json());
}
