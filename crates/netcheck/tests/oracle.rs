//! The differential oracle at scale: across topologies, algorithms, and
//! ≥ 50 seeded random placements, the windowed static analysis and the
//! instrumented flit simulator must agree — analyzer-says-clean exactly
//! when the simulator observes zero blocked time — and the runtime
//! validator must find no invariant violations in any run.

use flitsim::SimConfig;
use netcheck::differential_case;
use optmc::Algorithm;
use topo::{Bmin, Mesh, Topology, Torus, UpPolicy};

fn det_cfg() -> SimConfig {
    let mut cfg = SimConfig::paragon_like();
    cfg.adaptive = false;
    cfg
}

#[test]
fn oracle_agrees_across_topologies_and_seeds() {
    let mesh = Mesh::new(&[8, 8]);
    let torus = Torus::new(&[4, 4]);
    let bmin = Bmin::new(5, UpPolicy::Straight);
    let topos: [(&dyn Topology, usize); 3] = [(&mesh, 14), (&torus, 8), (&bmin, 12)];
    let cfg = det_cfg();
    let mut cases = 0usize;
    let mut contended = 0usize;
    for (topo, k) in topos {
        for alg in [Algorithm::OptArch, Algorithm::OptTree] {
            for seed in 0..10u64 {
                let case = differential_case(topo, &cfg, alg, k, 1024, seed);
                assert!(
                    case.agree,
                    "static/dynamic disagreement: {} conflicts vs {} blocked cycles ({case:?})",
                    case.conflicts, case.blocked_cycles
                );
                assert!(
                    case.validation.ok(),
                    "invariant violations in {case:?}: {:?}",
                    case.validation.violations
                );
                if case.conflicts > 0 {
                    contended += 1;
                }
                cases += 1;
            }
        }
    }
    assert!(cases >= 50, "only {cases} cases ran");
    // The sweep must exercise both verdicts, or agreement is vacuous.
    assert!(contended > 0, "no case contended");
    assert!(contended < cases, "every case contended");
}

#[test]
fn opt_mesh_is_always_clean_on_the_mesh() {
    // Theorem 1 holds for every placement, not just the sampled ones — but
    // the sampled ones must at least never contend.  (OPT-min on the BMIN
    // is distance-*sensitive* under the engine's timing: some sparse
    // placements contend slightly even though the model predicts none, and
    // the oracle sweep above shows the analyzer tracks the simulator
    // through exactly those cases.)
    let mesh = Mesh::new(&[8, 8]);
    let cfg = det_cfg();
    for bytes in [1024u64, 4096, 16384] {
        for seed in 100..110u64 {
            let case = differential_case(&mesh, &cfg, Algorithm::OptArch, 10, bytes, seed);
            assert_eq!(case.conflicts, 0, "{case:?}");
            assert_eq!(case.blocked_cycles, 0, "{case:?}");
            assert!(case.validation.ok());
        }
    }
}
