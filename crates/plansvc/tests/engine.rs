//! Scripted event-sequence tests for the sans-io core: the engine driven
//! purely by [`Input`]s and observed purely through [`Command`]s, no
//! transport anywhere.

use plansvc::{compute_plan, step_blocking, Command, Engine, EngineConfig, Input, PlanOptions};

fn engine(capacity: usize) -> Engine {
    Engine::new(EngineConfig { capacity })
}

fn line(id: u64, text: &str) -> Input {
    Input::Line {
        id,
        text: text.to_string(),
    }
}

const REQ_A: &str = r#"{"topo": "mesh:4x4", "members": [0, 5, 10, 15], "bytes": 512}"#;
const REQ_B: &str = r#"{"topo": "mesh:4x4", "members": [0, 1, 2], "bytes": 512}"#;
const REQ_C: &str = r#"{"topo": "bmin:16", "k": 4, "seed": 3, "bytes": 1024}"#;

#[test]
fn request_miss_compute_response_cycle() {
    let mut e = engine(8);
    // Request → exactly one Compute command, no response yet.
    e.handle(line(1, REQ_A));
    let Some(Command::Compute { key, request }) = e.poll() else {
        panic!("a cold request must emit Compute");
    };
    assert!(e.poll().is_none(), "no response before the result arrives");
    assert_eq!(e.in_flight(), 1);
    // Computed → the waiter is answered, the plan is cached.
    let body = compute_plan(&request, &PlanOptions::default()).unwrap();
    e.handle(Input::Computed {
        key: key.clone(),
        result: Ok(Box::new(body)),
    });
    let Some(Command::Respond { id, line: resp }) = e.poll() else {
        panic!("Computed must answer the waiter");
    };
    assert_eq!(id, 1);
    assert!(
        resp.contains(r#""ok": true"#) || resp.contains(r#""ok":true"#),
        "{resp}"
    );
    assert!(resp.contains(r#""cached":false"#) || resp.contains(r#""cached": false"#));
    assert_eq!(e.cached_plans(), 1);
    assert_eq!(e.in_flight(), 0);
    // Same request again → a hit, answered immediately, no Compute.
    e.handle(line(2, REQ_A));
    let Some(Command::Respond { id, line: hit }) = e.poll() else {
        panic!("a warm request must respond directly");
    };
    assert_eq!(id, 2);
    assert!(hit.contains(r#""cached":true"#) || hit.contains(r#""cached": true"#));
    assert!(e.poll().is_none());
    let s = e.stats();
    assert_eq!((s.requests, s.hits, s.misses, s.dp_runs), (2, 1, 1, 1));
}

#[test]
fn single_flight_coalesces_concurrent_identical_misses() {
    let mut e = engine(8);
    // N identical requests arrive before any result: one DP execution.
    for id in 1..=5 {
        e.handle(line(id, REQ_A));
    }
    let Some(Command::Compute { key, request }) = e.poll() else {
        panic!("first miss emits Compute");
    };
    assert!(
        e.poll().is_none(),
        "followers must coalesce, not emit further Computes"
    );
    let body = compute_plan(&request, &PlanOptions::default()).unwrap();
    e.handle(Input::Computed {
        key,
        result: Ok(Box::new(body)),
    });
    // Every waiter answered, in arrival order, with identical plan bytes.
    let mut answered = Vec::new();
    let mut lines = Vec::new();
    while let Some(Command::Respond { id, line }) = e.poll() {
        answered.push(id);
        lines.push(line);
    }
    assert_eq!(answered, vec![1, 2, 3, 4, 5]);
    assert!(lines.windows(2).all(|w| w[0] == w[1]));
    let s = e.stats();
    assert_eq!(s.misses, 1, "one miss");
    assert_eq!(s.coalesced, 4, "four followers");
    assert_eq!(s.dp_runs, 1, "the DP ran once for 5 concurrent requests");
}

#[test]
fn distinct_keys_do_not_coalesce() {
    let mut e = engine(8);
    e.handle(line(1, REQ_A));
    e.handle(line(2, REQ_B));
    let mut computes = 0;
    while let Some(cmd) = e.poll() {
        if let Command::Compute { key, request } = cmd {
            computes += 1;
            let body = compute_plan(&request, &PlanOptions::default()).unwrap();
            e.handle(Input::Computed {
                key,
                result: Ok(Box::new(body)),
            });
        }
    }
    assert_eq!(computes, 2);
    assert_eq!(e.stats().coalesced, 0);
}

#[test]
fn failed_computation_answers_every_waiter_with_an_error() {
    let mut e = engine(8);
    e.handle(line(1, REQ_A));
    e.handle(line(2, REQ_A));
    let Some(Command::Compute { key, .. }) = e.poll() else {
        panic!("miss emits Compute");
    };
    e.handle(Input::Computed {
        key,
        result: Err("the machine caught fire".to_string()),
    });
    let mut errors = 0;
    while let Some(Command::Respond { line, .. }) = e.poll() {
        assert!(line.contains("the machine caught fire"), "{line}");
        assert!(line.contains(r#""ok":false"#) || line.contains(r#""ok": false"#));
        errors += 1;
    }
    assert_eq!(errors, 2);
    assert_eq!(e.stats().errors, 2);
    assert_eq!(e.cached_plans(), 0, "failures are not cached");
    // The key is no longer in flight: a retry recomputes.
    e.handle(line(3, REQ_A));
    assert!(matches!(e.poll(), Some(Command::Compute { .. })));
}

#[test]
fn malformed_lines_are_rejected_inline() {
    let mut e = engine(8);
    e.handle(line(1, "not json at all"));
    e.handle(line(2, r#"{"id": "x9", "topo": "ring:8", "k": 4}"#));
    let Some(Command::Respond { id, line: l1 }) = e.poll() else {
        panic!("bad JSON still gets a response");
    };
    assert_eq!(id, 1);
    assert!(l1.contains(r#""ok":false"#) || l1.contains(r#""ok": false"#));
    let Some(Command::Respond { id, line: l2 }) = e.poll() else {
        panic!("bad topology still gets a response");
    };
    assert_eq!(id, 2);
    assert!(
        l2.contains("x9"),
        "the id echo survives validation errors: {l2}"
    );
    assert_eq!(e.stats().errors, 2);
    assert_eq!(
        e.stats().requests,
        0,
        "rejected lines are not plan requests"
    );
}

#[test]
fn same_stream_replays_byte_identical_including_evictions() {
    // A stream that cycles 3 distinct keys through a capacity-2 cache:
    // hits, misses, and evictions all occur, and two fresh engines agree
    // byte for byte.
    let stream: Vec<&str> = vec![
        REQ_A,
        REQ_B,
        REQ_A,
        REQ_C, // C evicts B (A was refreshed)
        REQ_B, // miss again (evicts …), deterministic victim
        REQ_A,
        REQ_C,
        r#"{"stats": true}"#,
    ];
    let run = || {
        let mut e = engine(2);
        let mut out = Vec::new();
        for (i, text) in stream.iter().enumerate() {
            for (id, line) in step_blocking(&mut e, i as u64 + 1, text, &PlanOptions::default()) {
                out.push(format!("{id}:{line}"));
            }
        }
        (out, e.stats())
    };
    let (out1, stats1) = run();
    let (out2, stats2) = run();
    assert_eq!(out1, out2, "replay is byte-identical");
    assert_eq!(stats1, stats2, "and so are the counters");
    assert_eq!(out1.len(), stream.len(), "every line answered exactly once");
    assert!(
        stats1.evictions > 0,
        "the stream actually exercised eviction"
    );
    assert!(stats1.hits > 0, "the stream actually exercised hits");
    // The stats line is the last response and reflects the counters.
    let last = out1.last().unwrap();
    assert!(last.contains(r#""evictions""#), "{last}");
}

#[test]
fn stray_completion_is_ignored() {
    let mut e = engine(4);
    e.handle(Input::Computed {
        key: "plan|mesh:4x4|opt-arch|b512|m0,5|auto".to_string(),
        result: Err("nobody asked".to_string()),
    });
    assert!(e.poll().is_none());
    assert_eq!(e.stats().errors, 0);
}

#[test]
fn thousand_request_stream_is_deterministic() {
    // The acceptance-criteria stream, at engine level: 1000 requests over
    // a few dozen distinct keys, replayed twice, byte-identical.
    let mk = |i: usize| {
        let topo = if i.is_multiple_of(3) {
            "mesh:8x8"
        } else {
            "bmin:64"
        };
        let k = 3 + (i % 5);
        let seed = i % 7;
        let bytes = 256 << (i % 3);
        format!(r#"{{"id": {i}, "topo": "{topo}", "k": {k}, "seed": {seed}, "bytes": {bytes}}}"#)
    };
    let run = || {
        let mut e = engine(256);
        let mut out: Vec<String> = Vec::new();
        for i in 0..1000 {
            for (_, line) in step_blocking(&mut e, i as u64, &mk(i), &PlanOptions::default()) {
                out.push(line);
            }
        }
        (out, e.stats())
    };
    let (out1, stats1) = run();
    let (out2, _) = run();
    assert_eq!(out1.len(), 1000);
    assert_eq!(out1, out2);
    assert_eq!(stats1.requests, 1000);
    assert_eq!(
        stats1.hits + stats1.misses,
        1000,
        "every request either hit or missed (no coalescing in a blocking shell)"
    );
    assert!(
        stats1.hits >= 850,
        "the stream is cache-friendly: {stats1:?}"
    );
    assert_eq!(stats1.dp_runs, stats1.misses);
}
