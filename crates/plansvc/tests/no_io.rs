//! The sans-io lint: the planning core must not touch any transport or
//! clock.  Enforced textually over the crate's sources — if an I/O import
//! sneaks into the engine, this test names the file and line.

const SOURCES: &[(&str, &str)] = &[
    ("src/lib.rs", include_str!("../src/lib.rs")),
    ("src/engine.rs", include_str!("../src/engine.rs")),
    ("src/cache.rs", include_str!("../src/cache.rs")),
    ("src/plan.rs", include_str!("../src/plan.rs")),
    ("src/request.rs", include_str!("../src/request.rs")),
];

/// Forbidden module paths and types: transports, filesystems, clocks,
/// process control, and environment access.  The engine may compute, hold
/// state, and format strings — nothing else.
const FORBIDDEN: &[&str] = &[
    "std::io",
    "std::net",
    "std::fs",
    "std::time",
    "std::process",
    "std::env",
    "Instant::",
    "SystemTime",
    "TcpListener",
    "TcpStream",
    "UdpSocket",
];

#[test]
fn the_core_has_zero_io_imports() {
    for (file, text) in SOURCES {
        for (lineno, line) in text.lines().enumerate() {
            for needle in FORBIDDEN {
                assert!(
                    !line.contains(needle),
                    "{file}:{} mentions '{needle}': {line}",
                    lineno + 1
                );
            }
        }
    }
}

#[test]
fn the_lint_actually_scans_the_engine() {
    // Guard against the include paths rotting: the engine source must be
    // non-trivial and contain the state machine's entry point.
    let engine = SOURCES
        .iter()
        .find(|(f, _)| *f == "src/engine.rs")
        .map(|(_, t)| *t)
        .unwrap();
    assert!(engine.contains("pub fn handle"));
    assert!(engine.len() > 1000);
}
