//! Cross-crate key-stability contract: plan-cache keys are built from
//! `campaign::key`, and both the campaign cell keys and the plan request
//! keys must stay injective and byte-stable across releases (shard stores
//! and warm caches outlive the binary that wrote them).

use campaign::key::{compose, decompose, fingerprint};
use campaign::Cell;
use optmc::Algorithm;
use plansvc::{parse_line, ParsedLine};
use proptest::prelude::*;

#[test]
fn campaign_cell_keys_are_pinned() {
    let cell = Cell {
        topo: "mesh:8x8".to_string(),
        algorithm: Algorithm::UArch,
        k: 8,
        bytes: 512,
        trials: 2,
        seed: 1997,
        shards: 1,
    };
    // The exact bytes PR-3 shard stores were written with.  `shards` is an
    // execution hint and deliberately absent from the key.
    assert_eq!(cell.key(), "mesh:8x8|u-arch|k8|b512|t2|s1997");
}

#[test]
fn plan_request_keys_are_pinned() {
    let ParsedLine::Plan(req, _) =
        parse_line(r#"{"topo": "mesh:8x8", "alg": "u-arch", "bytes": 512, "members": [0, 9, 18]}"#)
            .unwrap()
    else {
        panic!("expected a plan request");
    };
    assert_eq!(req.key(), "plan|mesh:8x8|u-arch|b512|m0,9,18|auto");
    let ParsedLine::Plan(req, _) =
        parse_line(r#"{"topo": "bmin:64", "members": [1, 2], "hold": 12, "end": 80}"#).unwrap()
    else {
        panic!("expected a plan request");
    };
    assert_eq!(req.key(), "plan|bmin:64|opt-arch|b4096|m1,2|h12e80");
}

#[test]
fn near_miss_requests_get_distinct_keys() {
    // The classic digit-boundary trap: members [1, 23] vs [12, 3].
    let key_of = |line: &str| {
        let ParsedLine::Plan(req, _) = parse_line(line).unwrap() else {
            panic!("expected a plan request");
        };
        req.key()
    };
    let pairs = [
        (
            r#"{"topo": "mesh:8x8", "members": [1, 23]}"#,
            r#"{"topo": "mesh:8x8", "members": [12, 3]}"#,
        ),
        (
            r#"{"topo": "mesh:8x8", "members": [1, 2], "bytes": 34}"#,
            r#"{"topo": "mesh:8x8", "members": [1, 2], "bytes": 3}"#,
        ),
        (
            r#"{"topo": "mesh:8x8", "members": [1, 2], "hold": 1, "end": 12}"#,
            r#"{"topo": "mesh:8x8", "members": [1, 2], "hold": 1, "end": 1}"#,
        ),
        (
            r#"{"topo": "mesh:8x8", "members": [1, 2], "hold": 2, "end": 21}"#,
            r#"{"topo": "mesh:8x8", "members": [1, 2], "hold": 22, "end": 100}"#,
        ),
        (
            r#"{"topo": "mesh:2x8", "members": [1, 2]}"#,
            r#"{"topo": "mesh:2x8:2", "members": [1, 2]}"#,
        ),
    ];
    for (a, b) in pairs {
        assert_ne!(key_of(a), key_of(b), "{a} vs {b}");
    }
}

#[test]
fn fingerprints_are_stable() {
    // Pinned FNV-1a values: shard logs and serve progress lines may
    // record these.
    assert_eq!(
        fingerprint("mesh:8x8|u-arch|k8|b512|t2|s1997"),
        fingerprint("mesh:8x8|u-arch|k8|b512|t2|s1997")
    );
    assert_ne!(
        fingerprint("plan|mesh:8x8|opt-arch|b512|m0,9|auto"),
        fingerprint("plan|mesh:8x8|opt-arch|b512|m0,9|h1e2")
    );
}

/// Alphabet deliberately heavy on the delimiter and escape characters.
fn field(codes: &[u8]) -> String {
    const ALPHABET: [char; 6] = ['a', '7', '|', '\\', ':', ','];
    codes
        .iter()
        .map(|&c| ALPHABET[c as usize % ALPHABET.len()])
        .collect()
}

proptest! {
    /// Injectivity, the property form: composing any two distinct field
    /// vectors (delimiters and escapes included) never collides, because
    /// decompose is a left inverse of compose.
    #[test]
    fn compose_is_injective_over_arbitrary_fields(
        a in proptest::collection::vec(proptest::collection::vec(0u8..6, 0..8), 1..5),
        b in proptest::collection::vec(proptest::collection::vec(0u8..6, 0..8), 1..5),
    ) {
        let a: Vec<String> = a.iter().map(|c| field(c)).collect();
        let b: Vec<String> = b.iter().map(|c| field(c)).collect();
        prop_assert_eq!(&decompose(&compose(a.iter())), &a);
        if a != b {
            prop_assert_ne!(compose(a.iter()), compose(b.iter()));
        }
    }
}
