//! # `plansvc` — the sans-io multicast-planning service
//!
//! The paper's end product is the ability to answer planning queries:
//! given an architecture and its calibrated `(t_hold, t_end)` pair,
//! produce the optimal multicast schedule for a request.  This crate is
//! that capability as a *service core*, split sans-io style (in the sense
//! of the `engineio` engine and magic-wormhole's core/io crates):
//!
//! * [`Engine`] — the state machine.  [`Input`] events in ([`Input::Line`]
//!   request lines, [`Input::Computed`] finished computations),
//!   [`Command`]s out ([`Command::Respond`] response lines,
//!   [`Command::Compute`] work orders).  No sockets, no clocks, no files —
//!   every transition is a pure function of the input history, so scripted
//!   event-sequence tests cover the whole protocol and a replayed request
//!   stream produces byte-identical responses.
//! * [`PlanCache`] — content-addressed storage of computed plans, keyed by
//!   [`PlanRequest::key`] through [`campaign::key::compose`] (the same
//!   injective composition campaign cells use), bounded, with
//!   deterministic LRU-by-sequence eviction.
//! * single-flight batching — concurrent misses for one key run the OPT
//!   DP once; late arrivals join the first request's waiter list and are
//!   answered from the one [`Input::Computed`] event.
//! * [`compute_plan`] — the pure expensive step: chain construction,
//!   parameter derivation, the OPT DP, schedule layout, and (optionally) a
//!   verified [`netcheck::PlanCertificate`].
//!
//! The blocking shell lives in the CLI crate as `optmc serve` (stdin/
//! stdout and TCP) and `optmc plan` (one-shot); the `bench_plan` binary
//! drives the same engine for throughput numbers.  Service counters are
//! declared here as `telem` statics ([`REQUESTS`], [`HITS`], …) and also
//! tracked per-engine in [`EngineStats`] (deterministic, so snapshots of
//! one engine replay byte-identically).

#![forbid(unsafe_code)]

pub mod cache;
pub mod engine;
pub mod plan;
pub mod request;

pub use cache::PlanCache;
pub use engine::{Command, Engine, EngineConfig, EngineStats, Input, RequestId};
pub use plan::{compute_plan, PlanBody, PlanOptions};
pub use request::{parse_line, ParseError, ParsedLine, PlanRequest};

use telem::TelemetrySnapshot;

telem::counter!(
    pub REQUESTS,
    "plansvc_requests_total",
    "Plan requests handled"
);
telem::counter!(pub HITS, "plansvc_cache_hits_total", "Plans served from the cache");
telem::counter!(
    pub MISSES,
    "plansvc_cache_misses_total",
    "Plan requests that initiated a computation"
);
telem::counter!(
    pub COALESCED,
    "plansvc_coalesced_total",
    "Plan requests that joined an in-flight computation"
);
telem::counter!(pub DP_RUNS, "plansvc_dp_runs_total", "Completed plan computations");
telem::counter!(pub EVICTIONS, "plansvc_cache_evictions_total", "Plan-cache evictions");
telem::counter!(pub ERRORS, "plansvc_errors_total", "Rejected or failed requests");

impl EngineStats {
    /// Record these counters (plus cache occupancy) into a telemetry
    /// snapshot under the `plansvc_*` metric names.
    pub fn record_into(&self, snap: &mut TelemetrySnapshot) {
        snap.counter("plansvc_requests_total", REQUESTS.help(), self.requests);
        snap.counter("plansvc_cache_hits_total", HITS.help(), self.hits);
        snap.counter("plansvc_cache_misses_total", MISSES.help(), self.misses);
        snap.counter("plansvc_coalesced_total", COALESCED.help(), self.coalesced);
        snap.counter("plansvc_dp_runs_total", DP_RUNS.help(), self.dp_runs);
        snap.counter(
            "plansvc_cache_evictions_total",
            EVICTIONS.help(),
            self.evictions,
        );
        snap.counter("plansvc_errors_total", ERRORS.help(), self.errors);
    }
}

/// Drive the engine over one request line, executing any [`Command::Compute`]
/// synchronously via [`compute_plan`], and collect the emitted responses.
///
/// This is the canonical *blocking* shell loop in miniature — the CLI's
/// stdin mode, the tests, and `bench_plan` all use it — and it contains
/// the only call site that turns a work order back into an
/// [`Input::Computed`] event.
pub fn step_blocking(
    engine: &mut Engine,
    id: RequestId,
    text: &str,
    opts: &PlanOptions,
) -> Vec<(RequestId, String)> {
    engine.handle(Input::Line {
        id,
        text: text.to_string(),
    });
    let mut responses = Vec::new();
    while let Some(cmd) = engine.poll() {
        match cmd {
            Command::Respond { id, line } => responses.push((id, line)),
            Command::Compute { key, request } => {
                let result = compute_plan(&request, opts).map(Box::new);
                engine.handle(Input::Computed { key, result });
            }
        }
    }
    responses
}
