//! Pure plan computation: a [`PlanRequest`] in, a [`PlanBody`] out.
//!
//! This is the expensive step the cache and single-flight machinery exist
//! to amortize: build the architecture chain, derive (or accept) the
//! `(t_hold, t_end)` pair, run the OPT DP, and lay out the schedule.  It
//! is deterministic and free of any transport concern, so the engine can
//! hand it to whatever execution context the shell chooses.

use flitsim::SimConfig;
use mtree::Schedule;
use netcheck::{analyze_set, PlanCertificate, ScheduleSet};
use optmc::runner::nominal_hops;
use optmc::McastSpec;
use pcm::Time;
use serde_json::Value;

use crate::request::PlanRequest;

/// Knobs the shell fixes for every plan it computes.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanOptions {
    /// Attach a verified [`PlanCertificate`] to each plan.
    pub certify: bool,
}

/// A computed plan: the schedule, its timing, and an optional certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanBody {
    /// Topology spec string, echoed from the request.
    pub topo: String,
    /// Canonical algorithm id.
    pub algorithm: String,
    /// Participant count.
    pub k: usize,
    /// Message payload bytes.
    pub bytes: u64,
    /// `t_hold` the DP used.
    pub hold: Time,
    /// `t_end` the DP used.
    pub end: Time,
    /// Analytic (contention-free) multicast latency of the schedule.
    pub latency: Time,
    /// Tree depth in rounds.
    pub depth: usize,
    /// Participants in chain order (source at its chain position).
    pub chain: Vec<u32>,
    /// Node-level sends `(from, to, start, arrive)`, parent before child.
    pub sends: Vec<(u32, u32, Time, Time)>,
    /// The set certificate, when requested (its `clean` field is the
    /// Theorem 1/2 verdict for this single-member set).
    pub certificate: Option<PlanCertificate>,
}

impl PlanBody {
    /// The deterministic JSON form (insertion-ordered object).
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("topo".to_string(), Value::Str(self.topo.clone())),
            ("algorithm".to_string(), Value::Str(self.algorithm.clone())),
            ("k".to_string(), Value::UInt(self.k as u64)),
            ("bytes".to_string(), Value::UInt(self.bytes)),
            ("hold".to_string(), Value::UInt(self.hold)),
            ("end".to_string(), Value::UInt(self.end)),
            ("latency".to_string(), Value::UInt(self.latency)),
            ("depth".to_string(), Value::UInt(self.depth as u64)),
            (
                "chain".to_string(),
                Value::Array(self.chain.iter().map(|&n| Value::UInt(n.into())).collect()),
            ),
            (
                "sends".to_string(),
                Value::Array(
                    self.sends
                        .iter()
                        .map(|&(from, to, start, arrive)| {
                            Value::Array(vec![
                                Value::UInt(from.into()),
                                Value::UInt(to.into()),
                                Value::UInt(start),
                                Value::UInt(arrive),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(cert) = &self.certificate {
            fields.push(("clean".to_string(), Value::Bool(cert.clean)));
            fields.push((
                "certificate".to_string(),
                serde_json::from_str(&cert.to_json()).expect("certificate JSON is valid"),
            ));
        }
        Value::Object(fields)
    }
}

/// Compute the plan for one request.
///
/// # Errors
/// On an unparseable topology (the engine validates requests before they
/// get here, but the computation re-parses from the spec string), on a
/// certificate request combined with an explicit `(hold, end)` override
/// (the certificate replays the machine-derived pair, so certifying a
/// foreign pair would certify a different schedule), and on a routing
/// failure while replaying windows for the certificate.
pub fn compute_plan(req: &PlanRequest, opts: &PlanOptions) -> Result<PlanBody, String> {
    let topo = optmc::spec::parse_topology(&req.topo)?;
    let src = req.members[0];
    let k = req.members.len();
    let cfg = SimConfig::paragon_like();
    let hops = nominal_hops(&*topo, &req.members, src);
    let (hold, end) = match req.params {
        Some(pair) => pair,
        None => cfg.effective_pair_ports(hops, req.bytes, topo.graph().ports() as u64),
    };
    let chain = req.algorithm.chain(&*topo, &req.members, src);
    let splits = req.algorithm.splits(hold, end, k);
    let schedule = Schedule::build(k, chain.src_pos(), &splits, hold, end);
    let sends = schedule
        .sends
        .iter()
        .map(|s| (chain.node(s.from).0, chain.node(s.to).0, s.start, s.arrive))
        .collect();
    let certificate = if opts.certify {
        if req.params.is_some() {
            return Err(
                "cannot certify a plan with an explicit hold/end override (the certificate \
                 replays the machine-derived pair)"
                    .to_string(),
            );
        }
        let mut cert_cfg = cfg;
        cert_cfg.adaptive = false;
        let set = ScheduleSet {
            specs: vec![McastSpec {
                participants: req.members.clone(),
                src,
                bytes: req.bytes,
                start: 0,
            }],
            algorithm: req.algorithm,
        };
        let analysis = analyze_set(&*topo, &cert_cfg, &set).map_err(|e| e.to_string())?;
        Some(PlanCertificate::from_analysis(&*topo, &set, &analysis))
    } else {
        None
    };
    Ok(PlanBody {
        topo: req.topo.clone(),
        algorithm: req.algorithm.id().to_string(),
        k,
        bytes: req.bytes,
        hold,
        end,
        latency: schedule.latency(),
        depth: schedule.depth(),
        chain: chain.nodes().iter().map(|n| n.0).collect(),
        sends,
        certificate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use optmc::Algorithm;
    use topo::NodeId;

    fn req(topo: &str, members: &[u32], bytes: u64) -> PlanRequest {
        PlanRequest {
            topo: topo.to_string(),
            algorithm: Algorithm::OptArch,
            members: members.iter().map(|&n| NodeId(n)).collect(),
            bytes,
            params: None,
        }
    }

    #[test]
    fn plans_are_deterministic_and_consistent() {
        let r = req("mesh:8x8", &[0, 9, 18, 27, 36, 45, 54, 63], 4096);
        let a = compute_plan(&r, &PlanOptions::default()).unwrap();
        let b = compute_plan(&r, &PlanOptions::default()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.k, 8);
        assert_eq!(a.sends.len(), 7, "k-1 sends reach everyone");
        assert_eq!(a.chain.len(), 8);
        assert!(a.latency > 0);
        assert!(a.hold <= a.end);
        // Every send's arrive is start + t_end.
        for &(_, _, start, arrive) in &a.sends {
            assert_eq!(arrive, start + a.end);
        }
    }

    #[test]
    fn certificates_attach_and_verify() {
        let r = req("mesh:8x8", &[0, 9, 18, 27], 1024);
        let body = compute_plan(&r, &PlanOptions { certify: true }).unwrap();
        let cert = body.certificate.expect("certificate requested");
        assert!(cert.clean, "OPT-mesh is contention-free (Theorem 1)");
        cert.verify().expect("certificate verifies independently");
    }

    #[test]
    fn certify_rejects_param_overrides() {
        let mut r = req("mesh:4x4", &[0, 5, 10], 512);
        r.params = Some((10, 50));
        assert!(compute_plan(&r, &PlanOptions { certify: true }).is_err());
        assert!(compute_plan(&r, &PlanOptions::default()).is_ok());
    }

    #[test]
    fn explicit_params_drive_the_schedule() {
        let mut r = req("bmin:16", &[0, 3, 7, 12], 2048);
        r.params = Some((7, 31));
        let body = compute_plan(&r, &PlanOptions::default()).unwrap();
        assert_eq!((body.hold, body.end), (7, 31));
    }
}
