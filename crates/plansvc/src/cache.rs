//! The content-addressed plan cache.
//!
//! Bounded capacity with **deterministic LRU-by-sequence eviction**: every
//! access stamps the entry with a monotonically increasing sequence
//! number, and insertion into a full cache evicts the entry with the
//! smallest stamp.  Stamps are unique, so the victim is always unique —
//! the eviction order is a pure function of the access history, never of
//! hash-map iteration order or wall-clock time.

use std::collections::HashMap;

use crate::plan::PlanBody;

/// A cached computation: the plan plus its JSON rendering, serialized once
/// at insert so cache hits splice bytes instead of re-walking the plan.
pub struct CachedPlan {
    /// The computed plan.
    pub body: PlanBody,
    /// `body.to_value()` rendered to compact JSON.
    pub rendered: String,
}

struct Entry {
    plan: CachedPlan,
    last_used: u64,
}

/// A bounded LRU cache from request keys to computed plans.
pub struct PlanCache {
    capacity: usize,
    seq: u64,
    map: HashMap<String, Entry>,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            seq: 0,
            map: HashMap::new(),
        }
    }

    /// Look up a plan, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<&CachedPlan> {
        self.seq += 1;
        let seq = self.seq;
        self.map.get_mut(key).map(|e| {
            e.last_used = seq;
            &e.plan
        })
    }

    /// Insert a plan, evicting the least-recently-used entry when full.
    /// Returns the evicted key, if any.
    pub fn insert(&mut self, key: String, plan: CachedPlan) -> Option<String> {
        self.seq += 1;
        if let Some(e) = self.map.get_mut(&key) {
            // Re-insertion of a live key refreshes it in place.
            e.plan = plan;
            e.last_used = self.seq;
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("cache is non-empty when full");
            self.map.remove(&victim);
            Some(victim)
        } else {
            None
        };
        self.map.insert(
            key,
            Entry {
                plan,
                last_used: self.seq,
            },
        );
        evicted
    }

    /// Number of plans held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no plans are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(tag: u64) -> CachedPlan {
        let body = PlanBody {
            topo: "mesh:2x2".into(),
            algorithm: "opt-arch".into(),
            k: 2,
            bytes: tag,
            hold: 1,
            end: 2,
            latency: 2,
            depth: 1,
            chain: vec![0, 1],
            sends: vec![(0, 1, 0, 2)],
            certificate: None,
        };
        CachedPlan {
            rendered: serde_json::to_string(&body.to_value()).unwrap(),
            body,
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = PlanCache::new(2);
        assert_eq!(c.insert("a".into(), body(1)), None);
        assert_eq!(c.insert("b".into(), body(2)), None);
        // Touch `a`, making `b` the LRU entry.
        assert!(c.get("a").is_some());
        assert_eq!(c.insert("c".into(), body(3)), Some("b".into()));
        assert!(c.get("b").is_none());
        assert!(c.get("a").is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_order_is_a_function_of_access_history() {
        // Same access sequence twice ⇒ same eviction sequence, despite the
        // HashMap's arbitrary internal order.
        let run = || {
            let mut c = PlanCache::new(3);
            let mut evicted = Vec::new();
            for (i, key) in ["a", "b", "c", "d", "b", "e", "a", "f"].iter().enumerate() {
                if c.get(key).is_none() {
                    evicted.extend(c.insert((*key).to_string(), body(i as u64)));
                }
            }
            evicted
        };
        let first = run();
        assert_eq!(first, run());
        assert_eq!(first, vec!["a", "c", "d", "b"], "pure LRU victim order");
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let mut c = PlanCache::new(2);
        c.insert("a".into(), body(1));
        c.insert("b".into(), body(2));
        assert_eq!(c.insert("a".into(), body(9)), None, "no eviction");
        assert_eq!(c.get("a").unwrap().body.bytes, 9);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut c = PlanCache::new(0);
        assert_eq!(c.capacity(), 1);
        assert_eq!(c.insert("a".into(), body(1)), None);
        assert_eq!(c.insert("b".into(), body(2)), Some("a".into()));
        assert!(!c.is_empty());
    }
}
