//! The planning-service wire protocol: newline-delimited JSON requests.
//!
//! One request line is a JSON object; [`parse_line`] turns it into a
//! [`ParsedLine`] without touching any transport.  Two shapes exist:
//!
//! * a **plan request** — `{"topo": "mesh:16x16", "alg": "opt-arch",
//!   "bytes": 4096, "members": [0, 17, 34]}` or, instead of explicit
//!   members, `{"k": 16, "seed": 7}` to draw a seeded random placement.
//!   Optional `"hold"`/`"end"` supply a calibrated parameter pair;
//!   omitted, the pair is derived from the simulated machine exactly as
//!   [`flitsim::SimConfig::effective_pair_ports`] would calibrate it.
//! * a **stats request** — `{"stats": true}` — answered from engine state.
//!
//! Any `"id"` member is echoed verbatim in the response, so pipelined
//! clients can match answers to questions.
//!
//! Seeded placements are expanded to concrete members *before* the request
//! is keyed, so `{"k": 8, "seed": 1}` and the equivalent explicit
//! `"members"` list share one cache entry.

use optmc::{random_placement, Algorithm};
use pcm::Time;
use serde_json::Value;
use topo::NodeId;

/// Default message size when a request omits `"bytes"`.
pub const DEFAULT_BYTES: u64 = 4096;

/// Default placement seed when a request gives `"k"` without `"seed"`.
pub const DEFAULT_SEED: u64 = 1997;

/// A fully-resolved plan request: every field concrete, ready to key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanRequest {
    /// Topology spec string (`mesh:16x16`, `bmin:128`, …).
    pub topo: String,
    /// The algorithm hint (today: the algorithm used).
    pub algorithm: Algorithm,
    /// Participants, source first, all distinct and in range.
    pub members: Vec<NodeId>,
    /// Message payload bytes.
    pub bytes: u64,
    /// Calibrated `(t_hold, t_end)` override; `None` derives the pair
    /// from the simulated machine.
    pub params: Option<(Time, Time)>,
}

impl PlanRequest {
    /// The content-addressed cache key, via [`campaign::key::compose`]:
    /// injective over (topology, algorithm, members, bytes, params), so
    /// two requests share a cache entry exactly when their plans are
    /// interchangeable.
    pub fn key(&self) -> String {
        let members = self
            .members
            .iter()
            .map(|n| n.0.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let params = match self.params {
            None => "auto".to_string(),
            Some((hold, end)) => format!("h{hold}e{end}"),
        };
        campaign::key::compose([
            "plan".to_string(),
            self.topo.clone(),
            self.algorithm.id().to_string(),
            format!("b{}", self.bytes),
            format!("m{members}"),
            params,
        ])
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedLine {
    /// A plan request plus the `"id"` echo, if any.
    Plan(Box<PlanRequest>, Option<Value>),
    /// A stats request plus the `"id"` echo, if any.
    Stats(Option<Value>),
}

/// A request that could not be parsed: the message, plus the `"id"` echo
/// when the line was at least valid JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// The request's `"id"`, when one could be recovered.
    pub echo: Option<Value>,
}

fn bad(echo: &Option<Value>, message: impl Into<String>) -> ParseError {
    ParseError {
        message: message.into(),
        echo: echo.clone(),
    }
}

fn u64_member(v: &Value, echo: &Option<Value>, name: &str) -> Result<u64, ParseError> {
    v.as_u64()
        .ok_or_else(|| bad(echo, format!("'{name}' must be a non-negative integer")))
}

/// Parse one request line (see the module docs for the grammar).
///
/// # Errors
/// Returns a [`ParseError`] carrying the `"id"` echo whenever the line is
/// syntactically JSON but semantically broken, so the shell can still
/// route the error to the right client.
pub fn parse_line(text: &str) -> Result<ParsedLine, ParseError> {
    let v: Value = serde_json::from_str(text).map_err(|e| bad(&None, format!("bad JSON: {e}")))?;
    if v.as_object().is_none() {
        return Err(bad(&None, "request must be a JSON object"));
    }
    let echo = v.get("id").cloned();
    if let Some(s) = v.get("stats") {
        return match s {
            Value::Bool(true) => Ok(ParsedLine::Stats(echo)),
            _ => Err(bad(&echo, "'stats' must be true")),
        };
    }
    let topo = v
        .get("topo")
        .and_then(Value::as_str)
        .ok_or_else(|| bad(&echo, "missing 'topo' (a topology spec string)"))?
        .to_string();
    let spec = optmc::spec::parse_spec(&topo).map_err(|e| bad(&echo, e))?;
    let algorithm = match v.get("alg") {
        None => Algorithm::OptArch,
        Some(a) => {
            let name = a
                .as_str()
                .ok_or_else(|| bad(&echo, "'alg' must be an algorithm name"))?;
            Algorithm::parse(name).map_err(|e| bad(&echo, e))?
        }
    };
    let bytes = match v.get("bytes") {
        None => DEFAULT_BYTES,
        Some(b) => {
            let b = u64_member(b, &echo, "bytes")?;
            if b == 0 {
                return Err(bad(&echo, "'bytes' must be at least 1"));
            }
            b
        }
    };
    let params = match (v.get("hold"), v.get("end")) {
        (None, None) => None,
        (Some(h), Some(e)) => {
            let hold = u64_member(h, &echo, "hold")?;
            let end = u64_member(e, &echo, "end")?;
            if hold == 0 || end < hold {
                return Err(bad(&echo, "'hold'/'end' must satisfy 1 <= hold <= end"));
            }
            Some((hold, end))
        }
        _ => return Err(bad(&echo, "'hold' and 'end' must be given together")),
    };
    let members = match (v.get("members"), v.get("k")) {
        (Some(_), Some(_)) => {
            return Err(bad(&echo, "give either 'members' or 'k', not both"));
        }
        (Some(m), None) => {
            let items = m
                .as_array()
                .ok_or_else(|| bad(&echo, "'members' must be an array of node ids"))?;
            let mut members = Vec::with_capacity(items.len());
            for item in items {
                let id = u64_member(item, &echo, "members")?;
                if id >= spec.nodes as u64 {
                    return Err(bad(
                        &echo,
                        format!("member {id} out of range for {topo} ({} nodes)", spec.nodes),
                    ));
                }
                members.push(NodeId(u32::try_from(id).expect("bounded by node count")));
            }
            let mut sorted: Vec<NodeId> = members.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != members.len() {
                return Err(bad(&echo, "'members' must be distinct"));
            }
            members
        }
        (None, Some(k)) => {
            let k = u64_member(k, &echo, "k")? as usize;
            if k > spec.nodes {
                return Err(bad(
                    &echo,
                    format!("k={k} out of range 2..={} for {topo}", spec.nodes),
                ));
            }
            let seed = match v.get("seed") {
                None => DEFAULT_SEED,
                Some(s) => u64_member(s, &echo, "seed")?,
            };
            random_placement(spec.nodes, k, seed)
        }
        (None, None) => {
            return Err(bad(
                &echo,
                "missing 'members' (or 'k' for a seeded placement)",
            ));
        }
    };
    if members.len() < 2 {
        return Err(bad(&echo, "a multicast needs at least 2 members"));
    }
    Ok(ParsedLine::Plan(
        Box::new(PlanRequest {
            topo,
            algorithm,
            members,
            bytes,
            params,
        }),
        echo,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_explicit_members() {
        let line =
            r#"{"id": 7, "topo": "mesh:4x4", "alg": "u-arch", "bytes": 512, "members": [3, 0, 9]}"#;
        let ParsedLine::Plan(req, echo) = parse_line(line).unwrap() else {
            panic!("expected a plan request");
        };
        assert_eq!(echo, Some(Value::UInt(7)));
        assert_eq!(req.topo, "mesh:4x4");
        assert_eq!(req.algorithm, Algorithm::UArch);
        assert_eq!(req.bytes, 512);
        assert_eq!(req.members, vec![NodeId(3), NodeId(0), NodeId(9)]);
        assert_eq!(req.params, None);
        assert_eq!(req.key(), "plan|mesh:4x4|u-arch|b512|m3,0,9|auto");
    }

    #[test]
    fn seeded_placement_matches_explicit_members() {
        let seeded = parse_line(r#"{"topo": "mesh:4x4", "k": 4, "seed": 9}"#).unwrap();
        let ParsedLine::Plan(req, _) = seeded else {
            panic!("expected a plan request");
        };
        let members: Vec<u64> = req.members.iter().map(|n| u64::from(n.0)).collect();
        let explicit = format!(
            r#"{{"topo": "mesh:4x4", "members": [{}]}}"#,
            members
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        );
        let ParsedLine::Plan(req2, _) = parse_line(&explicit).unwrap() else {
            panic!("expected a plan request");
        };
        assert_eq!(req.key(), req2.key(), "expansion happens before keying");
    }

    #[test]
    fn calibrated_params_enter_the_key() {
        let a = parse_line(r#"{"topo": "bmin:16", "k": 4, "hold": 10, "end": 90}"#).unwrap();
        let b = parse_line(r#"{"topo": "bmin:16", "k": 4}"#).unwrap();
        let (ParsedLine::Plan(ra, _), ParsedLine::Plan(rb, _)) = (a, b) else {
            panic!("expected plan requests");
        };
        assert_eq!(ra.params, Some((10, 90)));
        assert_ne!(ra.key(), rb.key());
    }

    #[test]
    fn stats_line_parses() {
        assert_eq!(
            parse_line(r#"{"stats": true, "id": "s1"}"#).unwrap(),
            ParsedLine::Stats(Some(Value::Str("s1".into())))
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, what) in [
            ("{", "bad JSON"),
            ("[1]", "not an object"),
            (r#"{"topo": "ring:8", "k": 4}"#, "unknown topology"),
            (r#"{"topo": "mesh:4x4"}"#, "no members"),
            (r#"{"topo": "mesh:4x4", "members": [1]}"#, "one member"),
            (r#"{"topo": "mesh:4x4", "members": [1, 1]}"#, "duplicate"),
            (
                r#"{"topo": "mesh:4x4", "members": [1, 99]}"#,
                "out of range",
            ),
            (r#"{"topo": "mesh:4x4", "k": 99}"#, "k too large"),
            (r#"{"topo": "mesh:4x4", "k": 4, "members": [1, 2]}"#, "both"),
            (r#"{"topo": "mesh:4x4", "k": 4, "bytes": 0}"#, "zero bytes"),
            (r#"{"topo": "mesh:4x4", "k": 4, "hold": 5}"#, "hold alone"),
            (
                r#"{"topo": "mesh:4x4", "k": 4, "hold": 9, "end": 3}"#,
                "end < hold",
            ),
            (r#"{"topo": "mesh:4x4", "k": 4, "alg": "magic"}"#, "bad alg"),
            (r#"{"stats": 1}"#, "stats not true"),
        ] {
            assert!(parse_line(line).is_err(), "{what}: {line}");
        }
    }

    #[test]
    fn parse_errors_keep_the_echo() {
        let err = parse_line(r#"{"id": 42, "topo": "ring:8", "k": 4}"#).unwrap_err();
        assert_eq!(err.echo, Some(Value::UInt(42)));
        let err = parse_line("not json").unwrap_err();
        assert_eq!(err.echo, None);
    }
}
