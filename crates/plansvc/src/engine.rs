//! The sans-io planning engine: input events in, output commands out.
//!
//! The engine owns all service *state* — the plan cache, the in-flight
//! table, the counters — and none of the *transport*.  A shell feeds it
//! [`Input`]s and drains [`Command`]s:
//!
//! * [`Input::Line`] — one request line arrived (from stdin, a TCP
//!   connection, a test vector — the engine cannot tell).
//! * [`Command::Respond`] — write this response line to the client that
//!   sent request `id`.
//! * [`Command::Compute`] — run the expensive plan computation
//!   ([`crate::compute_plan`]) for this request, in whatever execution
//!   context the shell likes, and feed the result back as
//!   [`Input::Computed`].
//!
//! Cache misses for the same key are **single-flighted**: the first miss
//! emits one `Compute`; requests for that key arriving before the result
//! join a waiter list instead of emitting further `Compute`s.  When the
//! `Computed` input lands, every waiter is answered in arrival order.
//! Because every transition is a pure function of the input history, a
//! request stream replayed against a fresh engine produces byte-identical
//! response lines — the property the serve smoke test pins.

use std::collections::VecDeque;

use serde_json::Value;

use crate::cache::{CachedPlan, PlanCache};
use crate::plan::PlanBody;
use crate::request::{parse_line, ParsedLine, PlanRequest};

/// Shell-assigned identifier routing a response back to its requester.
pub type RequestId = u64;

/// An event fed into the engine.
#[derive(Debug)]
pub enum Input {
    /// A request line arrived.
    Line {
        /// Shell-assigned routing id.
        id: RequestId,
        /// The raw line (newline stripped).
        text: String,
    },
    /// A previously commanded computation finished.
    Computed {
        /// The request key the computation was for.
        key: String,
        /// The plan, or the computation's error message.
        result: Result<Box<PlanBody>, String>,
    },
}

/// An action the shell must carry out.
#[derive(Debug)]
pub enum Command {
    /// Run [`crate::compute_plan`] for `request` and feed the result back
    /// as [`Input::Computed`] with the same `key`.
    Compute {
        /// The request's cache key.
        key: String,
        /// The resolved request.
        request: Box<PlanRequest>,
    },
    /// Deliver `line` to the client that sent request `id`.
    Respond {
        /// The routing id from the originating [`Input::Line`].
        id: RequestId,
        /// A complete JSON response line (no trailing newline).
        line: String,
    },
}

/// Engine construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Plan-cache capacity (entries).
    pub capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { capacity: 1024 }
    }
}

/// Deterministic service counters (cycle- and wall-clock-free, so two
/// replays of one stream report identical stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Request lines handled (plan requests only; stats lines excluded).
    pub requests: u64,
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that initiated a computation.
    pub misses: u64,
    /// Requests that joined an already-in-flight computation.
    pub coalesced: u64,
    /// Completed plan computations (successful `Computed` inputs).
    pub dp_runs: u64,
    /// Cache evictions.
    pub evictions: u64,
    /// Requests rejected before keying (parse/validation failures) plus
    /// failed computations.
    pub errors: u64,
}

struct Waiter {
    id: RequestId,
    echo: Option<Value>,
}

/// The sans-io planning engine.  See the module docs for the contract.
pub struct Engine {
    cache: PlanCache,
    /// In-flight computations: key → waiters, in request-arrival order.
    /// A `Vec` keyed by string keeps iteration deterministic; in-flight
    /// counts are small (bounded by the shell's concurrency).
    inflight: Vec<(String, Vec<Waiter>)>,
    out: VecDeque<Command>,
    stats: EngineStats,
}

impl Engine {
    /// A fresh engine with an empty cache.
    #[must_use]
    pub fn new(cfg: EngineConfig) -> Self {
        Engine {
            cache: PlanCache::new(cfg.capacity),
            inflight: Vec::new(),
            out: VecDeque::new(),
            stats: EngineStats::default(),
        }
    }

    /// Feed one input event; drain the consequences with [`Engine::poll`].
    pub fn handle(&mut self, input: Input) {
        match input {
            Input::Line { id, text } => self.handle_line(id, &text),
            Input::Computed { key, result } => self.handle_computed(&key, result),
        }
    }

    /// Next pending command, if any.
    pub fn poll(&mut self) -> Option<Command> {
        self.out.pop_front()
    }

    /// Deterministic service counters.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Number of plans currently cached.
    #[must_use]
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// The cache capacity the engine was built with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Number of distinct computations currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    fn handle_line(&mut self, id: RequestId, text: &str) {
        match parse_line(text) {
            Err(e) => {
                self.stats.errors += 1;
                crate::ERRORS.inc();
                self.respond(id, &error_line(e.echo.as_ref(), &e.message));
            }
            Ok(ParsedLine::Stats(echo)) => {
                let line = self.stats_line(echo.as_ref());
                self.respond(id, &line);
            }
            Ok(ParsedLine::Plan(request, echo)) => {
                self.stats.requests += 1;
                crate::REQUESTS.inc();
                let key = request.key();
                if let Some(plan) = self.cache.get(&key) {
                    self.stats.hits += 1;
                    crate::HITS.inc();
                    let line = response_line(echo.as_ref(), true, &key, &plan.rendered);
                    self.respond(id, &line);
                } else if let Some((_, waiters)) = self.inflight.iter_mut().find(|(k, _)| *k == key)
                {
                    self.stats.coalesced += 1;
                    crate::COALESCED.inc();
                    waiters.push(Waiter { id, echo });
                } else {
                    self.stats.misses += 1;
                    crate::MISSES.inc();
                    self.inflight.push((key.clone(), vec![Waiter { id, echo }]));
                    self.out.push_back(Command::Compute { key, request });
                }
            }
        }
    }

    fn handle_computed(&mut self, key: &str, result: Result<Box<PlanBody>, String>) {
        let Some(pos) = self.inflight.iter().position(|(k, _)| k == key) else {
            // A stray completion (shell bug or duplicate); nothing waits,
            // nothing to do.
            return;
        };
        let (_, waiters) = self.inflight.remove(pos);
        match result {
            Ok(body) => {
                self.stats.dp_runs += 1;
                crate::DP_RUNS.inc();
                // Serialize once; every waiter now — and every future hit —
                // splices the rendered bytes instead of re-walking the plan.
                let plan = CachedPlan {
                    rendered: render(&body.to_value()),
                    body: *body,
                };
                let lines: Vec<(RequestId, String)> = waiters
                    .iter()
                    .map(|w| {
                        (
                            w.id,
                            response_line(w.echo.as_ref(), false, key, &plan.rendered),
                        )
                    })
                    .collect();
                if self.cache.insert(key.to_string(), plan).is_some() {
                    self.stats.evictions += 1;
                    crate::EVICTIONS.inc();
                }
                for (id, line) in lines {
                    self.respond(id, &line);
                }
            }
            Err(message) => {
                for w in &waiters {
                    self.stats.errors += 1;
                    crate::ERRORS.inc();
                    let line = error_line(w.echo.as_ref(), &message);
                    self.respond(w.id, &line);
                }
            }
        }
    }

    fn respond(&mut self, id: RequestId, line: &str) {
        self.out.push_back(Command::Respond {
            id,
            line: line.to_string(),
        });
    }

    fn stats_line(&self, echo: Option<&Value>) -> String {
        let s = self.stats;
        let stats = Value::Object(vec![
            ("requests".to_string(), Value::UInt(s.requests)),
            ("hits".to_string(), Value::UInt(s.hits)),
            ("misses".to_string(), Value::UInt(s.misses)),
            ("coalesced".to_string(), Value::UInt(s.coalesced)),
            ("dp_runs".to_string(), Value::UInt(s.dp_runs)),
            ("evictions".to_string(), Value::UInt(s.evictions)),
            ("errors".to_string(), Value::UInt(s.errors)),
            (
                "cached_plans".to_string(),
                Value::UInt(self.cache.len() as u64),
            ),
            (
                "capacity".to_string(),
                Value::UInt(self.cache.capacity() as u64),
            ),
        ]);
        let mut fields = Vec::new();
        if let Some(e) = echo {
            fields.push(("id".to_string(), e.clone()));
        }
        fields.push(("ok".to_string(), Value::Bool(true)));
        fields.push(("stats".to_string(), stats));
        render(&Value::Object(fields))
    }
}

fn render(v: &Value) -> String {
    serde_json::to_string(v).expect("response JSON render cannot fail")
}

/// Build a success response by splicing the pre-rendered plan bytes into
/// the envelope.  Byte-compatible with rendering the equivalent
/// [`Value::Object`] (pinned by a test below) — this is the hot path for
/// cache hits, so the plan JSON must not be re-generated per request.
fn response_line(echo: Option<&Value>, cached: bool, key: &str, plan_json: &str) -> String {
    let mut s = String::with_capacity(plan_json.len() + key.len() + 64);
    s.push('{');
    if let Some(e) = echo {
        s.push_str("\"id\":");
        s.push_str(&render(e));
        s.push(',');
    }
    s.push_str("\"ok\":true,\"cached\":");
    s.push_str(if cached { "true" } else { "false" });
    s.push_str(",\"key\":");
    s.push_str(&render(&Value::Str(key.to_string())));
    s.push_str(",\"plan\":");
    s.push_str(plan_json);
    s.push('}');
    s
}

fn error_line(echo: Option<&Value>, message: &str) -> String {
    let mut fields = Vec::new();
    if let Some(e) = echo {
        fields.push(("id".to_string(), e.clone()));
    }
    fields.push(("ok".to_string(), Value::Bool(false)));
    fields.push(("error".to_string(), Value::Str(message.to_string())));
    render(&Value::Object(fields))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spliced_response_matches_a_full_value_render() {
        // The hot-path splice must stay byte-compatible with rendering the
        // equivalent Value tree, or hit and miss responses would diverge in
        // formatting (and replay determinism claims would weaken).
        let plan_json = r#"{"topo":"mesh:2x2","k":2}"#;
        let key = "plan|mesh:2x2|opt-arch|b64|m0,1|auto";
        for echo in [None, Some(Value::UInt(7)), Some(Value::Str("x|9\"".into()))] {
            for cached in [false, true] {
                let spliced = response_line(echo.as_ref(), cached, key, plan_json);
                let mut fields = Vec::new();
                if let Some(e) = &echo {
                    fields.push(("id".to_string(), e.clone()));
                }
                fields.push(("ok".to_string(), Value::Bool(true)));
                fields.push(("cached".to_string(), Value::Bool(cached)));
                fields.push(("key".to_string(), Value::Str(key.to_string())));
                let mut want = render(&Value::Object(fields));
                // Graft the plan value into the rendered envelope.
                want.pop();
                want.push_str(",\"plan\":");
                want.push_str(plan_json);
                want.push('}');
                assert_eq!(spliced, want);
            }
        }
    }
}
