//! Property tests across the optmc stack: the analytic schedule, the
//! distributed runtime and the flit-level simulation must describe the same
//! multicast.

use flitsim::SimConfig;
use optmc::experiments::random_placement;
use optmc::{run_multicast, Algorithm};
use proptest::prelude::*;
use topo::{Bmin, Mesh, Omega, Topology, Torus, UpPolicy};

fn topologies() -> Vec<Box<dyn Topology>> {
    vec![
        Box::new(Mesh::new(&[8, 8])),
        Box::new(Mesh::hypercube(6)),
        Box::new(Bmin::new(6, UpPolicy::Straight)),
        Box::new(Omega::new(6)),
        Box::new(Torus::new(&[8, 8])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulated message set equals the schedule's send set, for every
    /// algorithm on every topology.
    #[test]
    fn sim_messages_equal_schedule_sends(
        seed in 0u64..5000,
        k in 2usize..24,
        topo_i in 0usize..5,
        alg_i in 0usize..3,
    ) {
        let topo = &topologies()[topo_i];
        let alg = [Algorithm::OptArch, Algorithm::UArch, Algorithm::OptTree][alg_i];
        let cfg = SimConfig::paragon_like();
        let n = topo.graph().n_nodes();
        let parts = random_placement(n, k.min(n), seed);
        let out = run_multicast(topo.as_ref(), &cfg, alg, &parts, parts[0], 1024);

        let mut simulated: Vec<(u32, u32)> = out
            .sim
            .messages
            .iter()
            .map(|m| (m.src.0, m.dest.0))
            .collect();
        let mut planned: Vec<(u32, u32)> = out
            .schedule
            .sends
            .iter()
            .map(|e| (out.chain_nodes[e.from].0, out.chain_nodes[e.to].0))
            .collect();
        simulated.sort_unstable();
        planned.sort_unstable();
        prop_assert_eq!(simulated, planned);
    }

    /// Simulated latency is never meaningfully below the analytic bound
    /// (contention only adds; the slack covers hop-count averaging).
    #[test]
    fn latency_respects_bound(seed in 0u64..5000, k in 2usize..32, topo_i in 0usize..5) {
        let topo = &topologies()[topo_i];
        let cfg = SimConfig::paragon_like();
        let n = topo.graph().n_nodes();
        let parts = random_placement(n, k.min(n), seed);
        let out = run_multicast(topo.as_ref(), &cfg, Algorithm::OptArch, &parts, parts[0], 2048);
        let slack = 2 * 32; // diameter-scale head-latency variation
        prop_assert!(
            out.latency as i64 >= out.analytic as i64 - slack,
            "{} < {}", out.latency, out.analytic
        );
    }

    /// Receive times in the simulation respect the tree's partial order:
    /// a child never completes before its parent (who forwarded to it).
    #[test]
    fn tree_order_is_respected(seed in 0u64..5000, k in 3usize..24) {
        let mesh = Mesh::new(&[8, 8]);
        let cfg = SimConfig::paragon_like();
        let parts = random_placement(64, k, seed);
        let out = run_multicast(&mesh, &cfg, Algorithm::OptArch, &parts, parts[0], 512);
        for e in &out.schedule.sends {
            let parent = out.chain_nodes[e.from];
            let child = out.chain_nodes[e.to];
            let child_done = out.sim.delivered_to(child).expect("delivered").completed;
            if let Some(parent_rec) = out.sim.delivered_to(parent) {
                prop_assert!(
                    child_done > parent_rec.completed,
                    "child {:?} at {} vs parent {:?} at {}",
                    child, child_done, parent, parent_rec.completed
                );
            }
        }
    }
}
