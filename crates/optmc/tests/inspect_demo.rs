//! The observability acceptance demo from the paper's flagship workload: a
//! 60-node multicast on the 16×16 mesh, traced and exported to Perfetto.
//! OPT-tree ignores the architecture ordering and contends (blocking
//! instants appear on the timeline); OPT-mesh is contention-free
//! (Theorem 1), so its export has none.

use flitsim::SimConfig;
use optmc::{random_placement, run_multicast_observed, Algorithm, RunOptions};
use topo::{Mesh, Topology};

fn traced_run(alg: Algorithm, seed: u64) -> (optmc::RunOutcome, String) {
    let mesh = Mesh::new(&[16, 16]);
    let mut cfg = SimConfig::paragon_like();
    cfg.trace = true;
    let parts = random_placement(256, 60, seed);
    let out = run_multicast_observed(
        &mesh,
        &cfg,
        alg,
        &parts,
        parts[0],
        16 * 1024,
        &RunOptions::default(),
        Some(flitsim::TraceSink::memory()),
    );
    let json = flitsim::perfetto::export_string(&out.sim, Some(mesh.graph()));
    (out, json)
}

fn blocking_instants(json: &str) -> usize {
    let v: serde_json::Value = serde_json::from_str(json).expect("perfetto export parses");
    let events = match &v {
        serde_json::Value::Object(fields) => {
            match fields.iter().find(|(k, _)| k == "traceEvents") {
                Some((_, serde_json::Value::Array(evs))) => evs.clone(),
                other => panic!("no traceEvents array: {other:?}"),
            }
        }
        other => panic!("expected object, got {other:?}"),
    };
    events
        .iter()
        .filter(|e| match e {
            serde_json::Value::Object(f) => f
                .iter()
                .any(|(k, val)| k == "ph" && *val == serde_json::Value::Str("i".into())),
            _ => false,
        })
        .count()
}

#[test]
fn opt_tree_trace_shows_blocking_opt_mesh_does_not() {
    // Not every random placement makes the placement-ordered tree contend;
    // sweep a few (deterministic) seeds and demo the first that does.
    // OPT-mesh must stay contention-free on every one of them (Theorem 1).
    let mut contended = None;
    for seed in 0..8u64 {
        let (opt, opt_json) = traced_run(Algorithm::OptArch, seed);
        assert!(
            opt.sim.contention_free(),
            "OPT-mesh contended at seed {seed}"
        );
        assert_eq!(blocking_instants(&opt_json), 0, "seed {seed}");

        let (u, u_json) = traced_run(Algorithm::OptTree, seed);
        if !u.sim.contention_free() && contended.is_none() {
            contended = Some((u, u_json));
        }
    }

    // The simulator agrees with the paper — OPT-tree contends at 60 nodes
    // / 16 KB — and the exported timeline shows every blocking episode as
    // an instant event.
    let (u, u_json) = contended.expect("no OPT-tree placement contended in 8 seeds");
    assert!(u.sim.blocked_events > 0);
    assert_eq!(blocking_instants(&u_json), u.sim.blocked_events as usize);
}
