//! # `optmc` — architecture-tuned optimal multicasting
//!
//! The paper's contribution, assembled from the substrate crates:
//!
//! * [`Algorithm`] — the five multicast algorithms of the evaluation
//!   (OPT-mesh, OPT-min, U-mesh, U-min, OPT-tree) plus the sequential-tree
//!   baseline, expressed as *(chain ordering) × (split rule)*:
//!
//!   | algorithm | chain order              | split rule  |
//!   |-----------|--------------------------|-------------|
//!   | OPT-mesh  | dimension-ordered (§3)   | OPT-tree DP |
//!   | OPT-min   | lexicographic (§4)       | OPT-tree DP |
//!   | U-mesh    | dimension-ordered        | binomial    |
//!   | U-min     | lexicographic            | binomial    |
//!   | OPT-tree  | placement (arbitrary)    | OPT-tree DP |
//!   | seq-tree  | placement                | peel-one    |
//!
//! * [`program::McastProgram`] — the runtime of Algorithms 3.1/4.1: each
//!   receiver gets the address sub-range it is responsible for and issues
//!   the next round of sends; runs unmodified on any `flitsim` topology.
//! * [`runner::run_multicast`] — one experiment: build the chain, feed the
//!   measured `(t_hold, t_end)` pair to the DP, execute on the flit-level
//!   simulator, return observed latency + the analytic lower bound.
//! * [`contention::check_schedule`] — the static checker: do any two
//!   concurrently-live sends of a schedule share a channel?  (Theorems 1
//!   and 2 say "never" for OPT-mesh/OPT-min.)
//! * [`measure`] — user-level calibration *inside the simulator*: ping for
//!   `t_end(m)`, send bursts for `t_hold(m)`, then `pcm::calibrate` fits the
//!   model exactly as the authors' methodology prescribes.
//! * [`experiments`] — seeded random placements and multi-trial averaging
//!   (the paper's 16-repetition protocol).
//! * [`gather`] — the dual collective over the same trees.
//! * [`temporal`] — §6's temporal contention avoidance for networks that
//!   cannot be partitioned (unidirectional MINs, tori).
//!
//! ```
//! use flitsim::SimConfig;
//! use optmc::{run_multicast, Algorithm};
//! use topo::{Mesh, NodeId};
//!
//! let mesh = Mesh::new(&[16, 16]);
//! let cfg = SimConfig::paragon_like();
//! let parts: Vec<NodeId> = (0..16u32).map(|i| NodeId(i * 16 + i)).collect();
//!
//! let out = run_multicast(&mesh, &cfg, Algorithm::OptArch, &parts, parts[0], 4096);
//! assert!(out.sim.contention_free());   // Theorem 1, operationally
//! let u = run_multicast(&mesh, &cfg, Algorithm::UArch, &parts, parts[0], 4096);
//! assert!(u.latency > out.latency);     // the binomial tree loses
//! ```

#![forbid(unsafe_code)]

pub mod algorithm;
pub mod concurrent;
pub mod contention;
pub mod experiments;
pub mod gather;
pub mod measure;
pub mod program;
pub mod runner;
pub mod scatter;
pub mod spec;
pub mod temporal;

pub use algorithm::Algorithm;
pub use concurrent::{run_concurrent, McastSpec};
pub use contention::{
    check_schedule, check_schedule_windowed, occupancy_windows, scan_windows, ChannelWindow,
    Conflict, ContentionMode, OccupancyParams, WindowConflict,
};
pub use experiments::{
    placement_stream, random_placement, run_trials_detailed, splitmix64, trial_seed, TrialOutcome,
    TrialStats,
};
pub use gather::{run_gather, GatherOutcome};
pub use runner::{
    run_multicast, run_multicast_observed, run_multicast_opts, run_multicast_with, RunOptions,
    RunOutcome,
};
pub use scatter::{run_scatter, ScatterOutcome};
pub use temporal::{temporal_schedule, TemporalSchedule};
