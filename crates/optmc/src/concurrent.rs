//! Concurrent multicasts — probing the paper's single-multicast assumption.
//!
//! Theorem 1 makes *one* multicast contention-free; real machines run many
//! at once (every MPI_Bcast on a different communicator).  Two OPT-mesh
//! multicasts are each internally channel-disjoint, but nothing separates
//! their channel sets from each other, so they interfere.  This module runs
//! several multicasts simultaneously and reports per-multicast latency
//! against the solo baseline — the "interference factor" of the tuned
//! algorithms.

use flitsim::{Engine, Program, SendReq, SimConfig, SimResult};
use mtree::Schedule;
use pcm::{MsgSize, Time};
use topo::{NodeId, Topology};

use crate::algorithm::Algorithm;
use crate::program::{McastProgram, Range};
use crate::runner::nominal_hops;

/// Payload of a message belonging to one of several concurrent multicasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tagged {
    /// Which multicast this message belongs to.
    pub mcast: u32,
    /// The delegated chain range within that multicast.
    pub range: Range,
}

/// A program multiplexing several independent multicast runtimes.
pub struct MultiMcast {
    programs: Vec<McastProgram>,
    completed: Vec<Option<Time>>,
}

impl MultiMcast {
    /// Wrap the per-multicast programs.
    pub fn new(programs: Vec<McastProgram>) -> Self {
        let completed = vec![None; programs.len()];
        Self {
            programs,
            completed,
        }
    }

    /// Total deliveries across all multicasts.
    pub fn deliveries(&self) -> usize {
        self.programs.iter().map(McastProgram::deliveries).sum()
    }

    /// Expected total deliveries.
    pub fn expected(&self) -> usize {
        self.programs.iter().map(McastProgram::n_dests).sum()
    }

    /// Time the last destination of multicast `mcast` finished receiving,
    /// or `None` if it had no destinations (k = 1).  Tracked per multicast
    /// tag, so it stays exact even when participant groups overlap and a
    /// node receives messages from several multicasts.
    pub fn completed(&self, mcast: usize) -> Option<Time> {
        self.completed[mcast]
    }
}

impl Program for MultiMcast {
    type Payload = Tagged;

    fn on_receive(&mut self, node: NodeId, payload: &Tagged, now: Time) -> Vec<SendReq<Tagged>> {
        let mcast = payload.mcast;
        let done = &mut self.completed[mcast as usize];
        *done = Some(done.map_or(now, |c| c.max(now)));
        let inner = self.programs[mcast as usize].on_receive(node, &payload.range, now);
        inner
            .into_iter()
            .map(|req| SendReq {
                dest: req.dest,
                bytes: req.bytes,
                payload: Tagged {
                    mcast,
                    range: req.payload,
                },
                not_before: req.not_before,
            })
            .collect()
    }
}

impl flitsim::program::ShardProgram for MultiMcast {
    fn fork(&self) -> Self {
        Self {
            programs: self.programs.iter().map(McastProgram::fork).collect(),
            completed: vec![None; self.completed.len()],
        }
    }

    fn absorb(&mut self, other: Self) {
        for (mine, theirs) in self.programs.iter_mut().zip(other.programs) {
            mine.absorb(theirs);
        }
        for (mine, theirs) in self.completed.iter_mut().zip(other.completed) {
            *mine = match (*mine, theirs) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
    }
}

/// One multicast's specification within a concurrent batch.
#[derive(Debug, Clone)]
pub struct McastSpec {
    /// Participants (source included).
    pub participants: Vec<NodeId>,
    /// The source node.
    pub src: NodeId,
    /// Message payload bytes.
    pub bytes: MsgSize,
    /// Injection time of the root's first sends — 0 for the classic
    /// all-at-once batch; an arrival process for open-loop workloads.
    pub start: Time,
}

/// Per-multicast outcome of a concurrent run.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentOutcome {
    /// This multicast's latency within the joint run, measured from its
    /// own start (arrival) time.
    pub latency: Time,
    /// Its solo analytic bound.
    pub analytic: Time,
    /// Its start (arrival) time.
    pub start: Time,
}

/// Run `specs` jointly under `algorithm`, each root injecting at its
/// spec's `start` time (all zero = the classic simultaneous batch; an
/// arrival process = an open-loop workload).  Returns per-multicast
/// outcomes plus the raw joint result.
///
/// # Panics
/// If any spec is malformed (see [`crate::run_multicast`]'s contract).
pub fn run_concurrent(
    topo: &dyn Topology,
    cfg: &SimConfig,
    algorithm: Algorithm,
    specs: &[McastSpec],
) -> (Vec<ConcurrentOutcome>, SimResult) {
    let n_nodes = topo.graph().n_nodes();
    let mut programs = Vec::with_capacity(specs.len());
    let mut roots = Vec::with_capacity(specs.len());
    let mut analytic = Vec::with_capacity(specs.len());
    for spec in specs {
        let k = spec.participants.len();
        let hops = nominal_hops(topo, &spec.participants, spec.src);
        let (hold, end) = cfg.effective_pair_ports(hops, spec.bytes, topo.graph().ports() as u64);
        let chain = algorithm.chain(topo, &spec.participants, spec.src);
        let splits = algorithm.splits(hold, end, k.max(2));
        let schedule = Schedule::build(k, chain.src_pos(), &splits, hold, end);
        analytic.push(schedule.latency());
        let program = McastProgram::new(chain, splits, spec.bytes, n_nodes)
            .with_addr_overhead(cfg.addr_bytes);
        roots.push((program.root(), spec.start, program.root_sends()));
        programs.push(program);
    }

    let multi = MultiMcast::new(programs);
    let expected = multi.expected();
    let mut engine = Engine::new(topo, cfg.clone(), multi);
    for (mcast, (root, start, sends)) in roots.into_iter().enumerate() {
        let tagged: Vec<SendReq<Tagged>> = sends
            .into_iter()
            .map(|req| SendReq {
                dest: req.dest,
                bytes: req.bytes,
                payload: Tagged {
                    mcast: mcast as u32,
                    range: req.payload,
                },
                // A multicast's schedule is built with its own start at 0;
                // shifting every send constraint by the arrival time keeps a
                // delayed multicast from launching early off a node CPU
                // another multicast already kicked.
                not_before: req.not_before.saturating_add(start).max(start),
            })
            .collect();
        engine.start(root, start, tagged);
    }
    let (multi, sim) = engine.run_auto();
    assert_eq!(
        multi.deliveries(),
        expected,
        "a concurrent multicast lost messages"
    );

    let outcomes = analytic
        .iter()
        .zip(specs)
        .enumerate()
        .map(|(i, (&a, spec))| {
            let completed = multi.completed(i).unwrap_or(spec.start);
            ConcurrentOutcome {
                latency: completed.saturating_sub(spec.start),
                analytic: a,
                start: spec.start,
            }
        })
        .collect();
    (outcomes, sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::random_placement;
    use topo::Mesh;

    fn specs_disjoint(n: usize, k: usize, count: usize, seed: u64) -> Vec<McastSpec> {
        // Disjoint participant sets drawn from one shuffled pool.
        let pool = random_placement(n, k * count, seed);
        pool.chunks(k)
            .map(|c| McastSpec {
                participants: c.to_vec(),
                src: c[0],
                bytes: 4096,
                start: 0,
            })
            .collect()
    }

    #[test]
    fn concurrent_multicasts_all_deliver() {
        let m = Mesh::new(&[16, 16]);
        let cfg = SimConfig::paragon_like();
        let specs = specs_disjoint(256, 16, 3, 11);
        let (outs, sim) = run_concurrent(&m, &cfg, Algorithm::OptArch, &specs);
        assert_eq!(outs.len(), 3);
        assert_eq!(sim.messages.len(), 3 * 15);
        for o in &outs {
            assert!(o.latency >= o.analytic - 64, "{o:?}");
        }
    }

    #[test]
    fn single_spec_matches_plain_runner() {
        let m = Mesh::new(&[16, 16]);
        let cfg = SimConfig::paragon_like();
        let parts = random_placement(256, 16, 5);
        let solo = crate::run_multicast(&m, &cfg, Algorithm::OptArch, &parts, parts[0], 4096);
        let spec = McastSpec {
            participants: parts.clone(),
            src: parts[0],
            bytes: 4096,
            start: 0,
        };
        let (outs, _) = run_concurrent(&m, &cfg, Algorithm::OptArch, &[spec]);
        assert_eq!(outs[0].latency, solo.latency);
    }

    #[test]
    fn delayed_multicast_on_a_shared_root_waits_for_its_start() {
        // Two multicasts rooted at the same node, far apart in time: the
        // second must not launch early off the root's already-kicked CPU,
        // and each must run at its solo latency.
        let m = Mesh::new(&[16, 16]);
        let cfg = SimConfig::paragon_like();
        let a = random_placement(256, 16, 21);
        let b = random_placement(256, 16, 22);
        let root = a[0];
        let mut b_parts = vec![root];
        b_parts.extend(b.iter().copied().filter(|&n| n != root).take(15));
        let solo_a = crate::run_multicast(&m, &cfg, Algorithm::OptArch, &a, root, 4096);
        let solo_b = crate::run_multicast(&m, &cfg, Algorithm::OptArch, &b_parts, root, 4096);
        let specs = [
            McastSpec {
                participants: a,
                src: root,
                bytes: 4096,
                start: 0,
            },
            McastSpec {
                participants: b_parts,
                src: root,
                bytes: 4096,
                start: 500_000,
            },
        ];
        let (outs, _) = run_concurrent(&m, &cfg, Algorithm::OptArch, &specs);
        assert_eq!(outs[0].latency, solo_a.latency);
        assert_eq!(outs[1].latency, solo_b.latency, "second start not honored");
    }

    #[test]
    fn early_forwarder_is_not_blocked_by_a_future_root() {
        // Node X forwards for an early multicast AND roots one arriving
        // much later.  X's queued future root-sends must not head-of-line
        // block the early multicast's forwards.
        let m = Mesh::new(&[16, 16]);
        let cfg = SimConfig::paragon_like();
        let a = random_placement(256, 24, 31);
        let x = a[5]; // a non-root participant that will forward
        let b = random_placement(256, 16, 32);
        let mut b_parts = vec![x];
        b_parts.extend(b.iter().copied().filter(|&n| n != x).take(15));
        let solo_a = crate::run_multicast(&m, &cfg, Algorithm::OptArch, &a, a[0], 4096);
        let solo_b = crate::run_multicast(&m, &cfg, Algorithm::OptArch, &b_parts, x, 4096);
        let specs = [
            McastSpec {
                participants: a.clone(),
                src: a[0],
                bytes: 4096,
                start: 0,
            },
            McastSpec {
                participants: b_parts,
                src: x,
                bytes: 4096,
                start: 500_000,
            },
        ];
        let (outs, _) = run_concurrent(&m, &cfg, Algorithm::OptArch, &specs);
        assert_eq!(outs[0].latency, solo_a.latency, "early multicast delayed");
        assert_eq!(outs[1].latency, solo_b.latency);
    }

    #[test]
    fn interference_shows_up_between_tuned_multicasts() {
        // Each multicast is internally contention-free; jointly they are
        // not.  Over several seeds at least one pair must interfere.
        let m = Mesh::new(&[16, 16]);
        let cfg = SimConfig::paragon_like();
        let mut blocked_total = 0;
        for seed in 0..6u64 {
            let specs = specs_disjoint(256, 24, 4, seed);
            let (_, sim) = run_concurrent(&m, &cfg, Algorithm::OptArch, &specs);
            blocked_total += sim.blocked_cycles;
        }
        assert!(blocked_total > 0, "expected cross-multicast interference");
    }
}
