//! Concurrent multicasts — probing the paper's single-multicast assumption.
//!
//! Theorem 1 makes *one* multicast contention-free; real machines run many
//! at once (every MPI_Bcast on a different communicator).  Two OPT-mesh
//! multicasts are each internally channel-disjoint, but nothing separates
//! their channel sets from each other, so they interfere.  This module runs
//! several multicasts simultaneously and reports per-multicast latency
//! against the solo baseline — the "interference factor" of the tuned
//! algorithms.

use flitsim::{Engine, Program, SendReq, SimConfig, SimResult};
use mtree::Schedule;
use pcm::{MsgSize, Time};
use topo::{NodeId, Topology};

use crate::algorithm::Algorithm;
use crate::program::{McastProgram, Range};
use crate::runner::nominal_hops;

/// Payload of a message belonging to one of several concurrent multicasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tagged {
    /// Which multicast this message belongs to.
    pub mcast: u32,
    /// The delegated chain range within that multicast.
    pub range: Range,
}

/// A program multiplexing several independent multicast runtimes.
pub struct MultiMcast {
    programs: Vec<McastProgram>,
}

impl MultiMcast {
    /// Wrap the per-multicast programs.
    pub fn new(programs: Vec<McastProgram>) -> Self {
        Self { programs }
    }

    /// Total deliveries across all multicasts.
    pub fn deliveries(&self) -> usize {
        self.programs.iter().map(McastProgram::deliveries).sum()
    }

    /// Expected total deliveries.
    pub fn expected(&self) -> usize {
        self.programs.iter().map(McastProgram::n_dests).sum()
    }
}

impl Program for MultiMcast {
    type Payload = Tagged;

    fn on_receive(&mut self, node: NodeId, payload: &Tagged, now: Time) -> Vec<SendReq<Tagged>> {
        let mcast = payload.mcast;
        let inner = self.programs[mcast as usize].on_receive(node, &payload.range, now);
        inner
            .into_iter()
            .map(|req| SendReq {
                dest: req.dest,
                bytes: req.bytes,
                payload: Tagged {
                    mcast,
                    range: req.payload,
                },
                not_before: req.not_before,
            })
            .collect()
    }
}

/// One multicast's specification within a concurrent batch.
#[derive(Debug, Clone)]
pub struct McastSpec {
    /// Participants (source included).
    pub participants: Vec<NodeId>,
    /// The source node.
    pub src: NodeId,
    /// Message payload bytes.
    pub bytes: MsgSize,
}

/// Per-multicast outcome of a concurrent run.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentOutcome {
    /// Completion time of this multicast within the joint run.
    pub latency: Time,
    /// Its solo analytic bound.
    pub analytic: Time,
}

/// Run `specs` simultaneously (all roots start at t = 0) under `algorithm`.
/// Returns per-multicast outcomes plus the raw joint result.
///
/// # Panics
/// If any spec is malformed (see [`crate::run_multicast`]'s contract).
pub fn run_concurrent(
    topo: &dyn Topology,
    cfg: &SimConfig,
    algorithm: Algorithm,
    specs: &[McastSpec],
) -> (Vec<ConcurrentOutcome>, SimResult) {
    let n_nodes = topo.graph().n_nodes();
    let mut programs = Vec::with_capacity(specs.len());
    let mut roots = Vec::with_capacity(specs.len());
    let mut analytic = Vec::with_capacity(specs.len());
    let mut dest_sets: Vec<Vec<NodeId>> = Vec::with_capacity(specs.len());
    for spec in specs {
        let k = spec.participants.len();
        let hops = nominal_hops(topo, &spec.participants, spec.src);
        let (hold, end) = cfg.effective_pair_ports(hops, spec.bytes, topo.graph().ports() as u64);
        let chain = algorithm.chain(topo, &spec.participants, spec.src);
        let splits = algorithm.splits(hold, end, k.max(2));
        let schedule = Schedule::build(k, chain.src_pos(), &splits, hold, end);
        analytic.push(schedule.latency());
        dest_sets.push(
            spec.participants
                .iter()
                .copied()
                .filter(|&n| n != spec.src)
                .collect(),
        );
        let program = McastProgram::new(chain, splits, spec.bytes, n_nodes)
            .with_addr_overhead(cfg.addr_bytes);
        roots.push((program.root(), program.root_sends()));
        programs.push(program);
    }

    let multi = MultiMcast::new(programs);
    let expected = multi.expected();
    let mut engine = Engine::new(topo, cfg.clone(), multi);
    for (mcast, (root, sends)) in roots.into_iter().enumerate() {
        let tagged: Vec<SendReq<Tagged>> = sends
            .into_iter()
            .map(|req| SendReq {
                dest: req.dest,
                bytes: req.bytes,
                payload: Tagged {
                    mcast: mcast as u32,
                    range: req.payload,
                },
                not_before: req.not_before,
            })
            .collect();
        engine.start(root, 0, tagged);
    }
    let (multi, sim) = engine.run();
    assert_eq!(
        multi.deliveries(),
        expected,
        "a concurrent multicast lost messages"
    );

    let outcomes = dest_sets
        .iter()
        .zip(&analytic)
        .map(|(dests, &a)| {
            let latency = dests
                .iter()
                .map(|&d| {
                    sim.delivered_to(d)
                        .expect("every destination delivered")
                        .completed
                })
                .max()
                .unwrap_or(0);
            ConcurrentOutcome {
                latency,
                analytic: a,
            }
        })
        .collect();
    (outcomes, sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::random_placement;
    use topo::Mesh;

    fn specs_disjoint(n: usize, k: usize, count: usize, seed: u64) -> Vec<McastSpec> {
        // Disjoint participant sets drawn from one shuffled pool.
        let pool = random_placement(n, k * count, seed);
        pool.chunks(k)
            .map(|c| McastSpec {
                participants: c.to_vec(),
                src: c[0],
                bytes: 4096,
            })
            .collect()
    }

    #[test]
    fn concurrent_multicasts_all_deliver() {
        let m = Mesh::new(&[16, 16]);
        let cfg = SimConfig::paragon_like();
        let specs = specs_disjoint(256, 16, 3, 11);
        let (outs, sim) = run_concurrent(&m, &cfg, Algorithm::OptArch, &specs);
        assert_eq!(outs.len(), 3);
        assert_eq!(sim.messages.len(), 3 * 15);
        for o in &outs {
            assert!(o.latency >= o.analytic - 64, "{o:?}");
        }
    }

    #[test]
    fn single_spec_matches_plain_runner() {
        let m = Mesh::new(&[16, 16]);
        let cfg = SimConfig::paragon_like();
        let parts = random_placement(256, 16, 5);
        let solo = crate::run_multicast(&m, &cfg, Algorithm::OptArch, &parts, parts[0], 4096);
        let spec = McastSpec {
            participants: parts.clone(),
            src: parts[0],
            bytes: 4096,
        };
        let (outs, _) = run_concurrent(&m, &cfg, Algorithm::OptArch, &[spec]);
        assert_eq!(outs[0].latency, solo.latency);
    }

    #[test]
    fn interference_shows_up_between_tuned_multicasts() {
        // Each multicast is internally contention-free; jointly they are
        // not.  Over several seeds at least one pair must interfere.
        let m = Mesh::new(&[16, 16]);
        let cfg = SimConfig::paragon_like();
        let mut blocked_total = 0;
        for seed in 0..6u64 {
            let specs = specs_disjoint(256, 24, 4, seed);
            let (_, sim) = run_concurrent(&m, &cfg, Algorithm::OptArch, &specs);
            blocked_total += sim.blocked_cycles;
        }
        assert!(blocked_total > 0, "expected cross-multicast interference");
    }
}
