//! The distributed runtime of Algorithms 3.1 / 4.1.
//!
//! Every message carries the chain sub-range `[lo, hi]` its receiver becomes
//! responsible for (the paper's "address field D").  On receipt, a node runs
//! the same while-loop the source ran: split the range with `j(i)`, send to
//! the far part's nearest node, keep the part containing itself — until the
//! range collapses to the node alone.

use flitsim::{Program, SendReq};
use mtree::SplitStrategy;
use pcm::{MsgSize, Time};
use topo::{Chain, NodeId};

/// Payload: the chain positions the receiver is responsible for (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// Lowest chain position of the delegated segment.
    pub lo: u32,
    /// Highest chain position (inclusive).
    pub hi: u32,
}

/// The multicast program: the chain, the split rule and the message size —
/// everything a node needs to interpret a received address range.
#[derive(Clone)]
pub struct McastProgram {
    chain: Chain,
    splits: SplitStrategy,
    bytes: MsgSize,
    /// position of each node in the chain, dense by NodeId.
    pos_of: Vec<Option<u32>>,
    /// Number of deliveries seen (for sanity checks).
    deliveries: usize,
    /// Optional temporal-ordering constraints (paper §6): earliest
    /// initiation time of the send delivering to each chain position.
    not_before: Option<Vec<Time>>,
    /// Bytes per carried destination address (the "address field D" of
    /// Alg. 3.1); 0 folds the list into the header flit.
    addr_bytes: MsgSize,
}

impl McastProgram {
    /// Build the program.  `n_nodes` is the topology's node count (for the
    /// reverse position index).
    pub fn new(chain: Chain, splits: SplitStrategy, bytes: MsgSize, n_nodes: usize) -> Self {
        let mut pos_of = vec![None; n_nodes];
        for (pos, &n) in chain.nodes().iter().enumerate() {
            pos_of[n.idx()] = Some(pos as u32);
        }
        Self {
            chain,
            splits,
            bytes,
            pos_of,
            deliveries: 0,
            not_before: None,
            addr_bytes: 0,
        }
    }

    /// Account `addr_bytes` of message payload per destination address a
    /// send carries beyond the receiver itself — the paper's address field
    /// `D` made explicit.  A send delegating a `d`-node range then moves
    /// `bytes + addr_bytes·(d-1)` bytes.
    pub fn with_addr_overhead(mut self, addr_bytes: MsgSize) -> Self {
        self.addr_bytes = addr_bytes;
        self
    }

    /// Attach per-receiver earliest-start times from a
    /// [`crate::temporal::TemporalSchedule`]: the send that delivers to
    /// chain position `p` will not initiate before `times[p]`.
    ///
    /// # Panics
    /// If `times` does not have one entry per chain position.
    pub fn with_timing(mut self, times: Vec<Time>) -> Self {
        assert_eq!(
            times.len(),
            self.chain.len(),
            "one earliest-start per chain position"
        );
        self.not_before = Some(times);
        self
    }

    /// The sends node at chain position `s` performs for the range
    /// `[l, r]` — the body of Algorithm 3.1 / 4.1.
    pub fn sends_for(&self, s: usize, mut l: usize, mut r: usize) -> Vec<SendReq<Range>> {
        debug_assert!(l <= s && s <= r, "node {s} outside its range [{l}, {r}]");
        let mut out = Vec::new();
        while l < r {
            let i = r - l + 1;
            let j = self.splits.j(i);
            let (rec, d_lo, d_hi);
            if s < l + j {
                rec = l + j;
                d_lo = rec;
                d_hi = r;
                r = rec - 1;
            } else {
                rec = r - j;
                d_lo = l;
                d_hi = rec;
                l = rec + 1;
            }
            let extra_addrs = (d_hi - d_lo) as MsgSize; // receiver's own address rides the header
            let mut req = SendReq::to(
                self.chain.node(rec),
                self.bytes + self.addr_bytes * extra_addrs,
                Range {
                    lo: d_lo as u32,
                    hi: d_hi as u32,
                },
            );
            if let Some(times) = &self.not_before {
                req = req.not_before(times[rec]);
            }
            out.push(req);
        }
        out
    }

    /// Initial sends of the multicast root.
    pub fn root_sends(&self) -> Vec<SendReq<Range>> {
        if self.chain.len() <= 1 {
            return Vec::new();
        }
        self.sends_for(self.chain.src_pos(), 0, self.chain.len() - 1)
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.chain.node(self.chain.src_pos())
    }

    /// Number of messages delivered so far.
    pub fn deliveries(&self) -> usize {
        self.deliveries
    }

    /// Number of destinations (chain length minus the source).
    pub fn n_dests(&self) -> usize {
        self.chain.len() - 1
    }
}

impl Program for McastProgram {
    type Payload = Range;

    fn on_receive(&mut self, node: NodeId, range: &Range, _now: Time) -> Vec<SendReq<Range>> {
        self.deliveries += 1;
        let pos = self.pos_of[node.idx()].expect("delivery to a non-participant") as usize;
        self.sends_for(pos, range.lo as usize, range.hi as usize)
    }
}

impl flitsim::program::ShardProgram for McastProgram {
    fn fork(&self) -> Self {
        let mut forked = self.clone();
        forked.deliveries = 0;
        forked
    }

    fn absorb(&mut self, other: Self) {
        self.deliveries += other.deliveries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::Mesh;

    #[test]
    fn root_sends_match_mtree_schedule() {
        // The runtime must generate exactly the sends mtree::Schedule plans.
        let mesh = Mesh::new(&[6, 6]);
        let parts: Vec<NodeId> = [0u32, 3, 7, 11, 17, 22, 28, 33].map(NodeId).to_vec();
        let chain = Chain::sorted(&mesh, &parts, NodeId(7));
        let splits = SplitStrategy::opt(20, 55, 8);
        let sched = mtree::Schedule::build(8, chain.src_pos(), &splits, 20, 55);
        let prog = McastProgram::new(chain.clone(), splits, 64, 36);

        // Collect the full send set by walking the recursion through the
        // program (delivering ranges by hand).
        let mut pairs = Vec::new();
        let mut work = vec![(chain.src_pos(), 0usize, 7usize)];
        while let Some((s, l, r)) = work.pop() {
            for req in prog.sends_for(s, l, r) {
                let rec = chain.nodes().iter().position(|&n| n == req.dest).unwrap();
                pairs.push((s, rec));
                work.push((rec, req.payload.lo as usize, req.payload.hi as usize));
            }
        }
        let mut expect: Vec<(usize, usize)> = sched.sends.iter().map(|e| (e.from, e.to)).collect();
        pairs.sort_unstable();
        expect.sort_unstable();
        assert_eq!(pairs, expect);
    }

    #[test]
    fn singleton_multicast_sends_nothing() {
        let chain = Chain::unsorted(&[NodeId(5)], NodeId(5));
        let prog = McastProgram::new(chain, SplitStrategy::Binomial, 64, 16);
        assert!(prog.root_sends().is_empty());
        assert_eq!(prog.n_dests(), 0);
    }

    #[test]
    fn every_participant_gets_one_range() {
        let parts: Vec<NodeId> = (0..13u32).map(NodeId).collect();
        let chain = Chain::unsorted(&parts, NodeId(4));
        let prog = McastProgram::new(chain, SplitStrategy::Binomial, 8, 16);
        let mut seen = [false; 13];
        seen[4] = true;
        let mut work: Vec<SendReq<Range>> = prog.root_sends();
        while let Some(req) = work.pop() {
            let d = req.dest.idx();
            assert!(!seen[d], "node {d} delivered twice");
            seen[d] = true;
            let pos = d; // placement chain: position == node id here
            work.extend(prog.sends_for(pos, req.payload.lo as usize, req.payload.hi as usize));
        }
        assert!(seen.iter().all(|&s| s));
    }
}
