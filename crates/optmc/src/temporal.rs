//! Temporal contention avoidance — the paper's §6 proposal for networks
//! that cannot be partitioned into contention-free clusters (e.g. the
//! unidirectional butterfly MIN):
//!
//! > "Instead of preventing a common communication channel used by
//! > different senders at any time, some channels are allowed to be shared.
//! > However, the senders who share the same communication channels are
//! > ordered such that they are unlikely to send at the same time.  In other
//! > words, the ordering is temporal contention-free."
//!
//! The scheduler below materialises that idea greedily: it replays the
//! chain-splitting recursion, but before admitting a send it consults a
//! per-channel reservation table; if any channel of the send's path is
//! reserved by an earlier, overlapping send, the send's initiation is
//! *delayed* past the reservation instead of letting the worm block inside
//! the network (where a blocked head would hold channels and cascade).  The
//! resulting start times are fed to the flit-level run through
//! [`flitsim::SendReq::not_before`].

use std::collections::HashMap;

use mtree::{Schedule, SendEvent, SplitStrategy};
use pcm::Time;
use topo::{Chain, ChannelId, Topology};

/// A schedule whose start times have been adjusted to be (predicted)
/// temporally contention-free.
#[derive(Debug, Clone)]
pub struct TemporalSchedule {
    /// The adjusted schedule (same sends, possibly later starts).
    pub schedule: Schedule,
    /// Earliest initiation time of the send that delivers to each chain
    /// position (0 for the source, which receives nothing).
    pub not_before: Vec<Time>,
    /// Total delay injected across all sends, relative to the naive
    /// schedule — the price paid for avoiding in-network blocking.
    pub added_delay: Time,
}

/// Build the temporally-ordered schedule for `chain` with `splits` under
/// `(hold, end)` on `topo`.
///
/// Reservation model: a send occupies every channel of its deterministic
/// path for `(start, start + t_end)` — conservative (a worm holds most
/// channels for less), which is the right bias for an *avoidance* scheduler.
pub fn temporal_schedule(
    topo: &dyn Topology,
    chain: &Chain,
    splits: &SplitStrategy,
    hold: Time,
    end: Time,
) -> TemporalSchedule {
    temporal_schedule_with_lead(topo, chain, splits, hold, end, 0)
}

/// [`temporal_schedule`] with a *software lead*: a send's worm only enters
/// the network `lead` cycles after initiation (`lead = t_send(m)`), so a
/// send may be initiated while a conflicting predecessor still drains, as
/// long as its own flits arrive after the predecessor's reservation ends.
/// `lead = 0` recovers the fully conservative scheduler whose output is
/// conflict-free even under the pessimistic static checker; a positive lead
/// produces tighter schedules that are still blocking-free in the
/// flit-level simulator (the operational criterion).
pub fn temporal_schedule_with_lead(
    topo: &dyn Topology,
    chain: &Chain,
    splits: &SplitStrategy,
    hold: Time,
    end: Time,
    lead: Time,
) -> TemporalSchedule {
    let k = chain.len();
    // Reservation: channel → (free time, chain position of the reserving
    // sender).  A sender's *own* previous reservation is ignored: its
    // consecutive worms are already serialised by the one-port injection
    // channel and `t_hold ≥ drain`, the same reasoning under which the
    // static checker skips same-sender pairs.
    let mut free_at: HashMap<ChannelId, (Time, usize)> = HashMap::new();
    let mut sends: Vec<SendEvent> = Vec::with_capacity(k.saturating_sub(1));
    let mut recv_time = vec![0 as Time; k];
    let mut not_before = vec![0 as Time; k];
    let mut added = 0;

    // Replay the recursion with a work stack, exactly as Schedule::build,
    // but let channel reservations push starts later.
    let mut stack = vec![(0usize, k.saturating_sub(1), chain.src_pos(), 0 as Time)];
    while let Some((mut l, mut r, s, mut cursor)) = stack.pop() {
        while l < r {
            let i = r - l + 1;
            let j = splits.j(i);
            let (rec, d_lo, d_hi);
            if s < l + j {
                rec = l + j;
                d_lo = rec;
                d_hi = r;
                r = rec - 1;
            } else {
                rec = r - j;
                d_lo = l;
                d_hi = rec;
                l = rec + 1;
            }
            let path = topo.det_path(chain.node(s), chain.node(rec));
            let mut start = cursor;
            for ch in &path {
                if let Some(&(f, owner)) = free_at.get(ch) {
                    if owner != s {
                        start = start.max(f.saturating_sub(lead));
                    }
                }
            }
            added += start - cursor;
            for ch in &path {
                free_at.insert(*ch, (start + end, s));
            }
            let arrive = start + end;
            sends.push(SendEvent {
                from: s,
                to: rec,
                start,
                arrive,
                range: (d_lo, d_hi),
            });
            recv_time[rec] = arrive;
            not_before[rec] = start;
            stack.push((d_lo, d_hi, rec, arrive));
            cursor = start + hold;
        }
    }
    // `added` accumulates start − cursor per send: exactly the delay
    // injected relative to running every sender at full speed.
    TemporalSchedule {
        schedule: Schedule {
            k,
            src: chain.src_pos(),
            hold,
            end,
            sends,
            recv_time,
        },
        not_before,
        added_delay: added,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use crate::contention::check_schedule;
    use topo::{Mesh, NodeId, Omega};

    #[test]
    fn temporal_schedule_is_statically_conflict_free() {
        let o = Omega::new(5);
        for seed in 0..15u64 {
            let parts = crate::experiments::random_placement(32, 12, seed);
            let chain = Algorithm::OptTree.chain(&o, &parts, parts[0]);
            let splits = Algorithm::OptTree.splits(20, 55, 12);
            let t = temporal_schedule(&o, &chain, &splits, 20, 55);
            let conflicts = check_schedule(&o, &chain, &t.schedule);
            assert!(conflicts.is_empty(), "seed {seed}: {conflicts:?}");
            t.schedule.validate().unwrap();
        }
    }

    #[test]
    fn no_delay_when_paths_are_disjoint() {
        // On a mesh with the architecture ordering, the naive schedule is
        // already conflict-free, so the temporal scheduler must not delay
        // anything.
        let m = Mesh::new(&[8, 8]);
        for seed in 0..10u64 {
            let parts = crate::experiments::random_placement(64, 10, seed);
            let chain = Algorithm::OptArch.chain(&m, &parts, parts[0]);
            let splits = Algorithm::OptArch.splits(20, 55, 10);
            let t = temporal_schedule(&m, &chain, &splits, 20, 55);
            assert_eq!(t.added_delay, 0, "seed {seed}");
            let naive = Schedule::build(10, chain.src_pos(), &splits, 20, 55);
            assert_eq!(t.schedule.latency(), naive.latency());
        }
    }

    #[test]
    fn delays_appear_on_the_omega_network() {
        // Somewhere in these seeds the unique-path omega forces a delay.
        let o = Omega::new(5);
        let total: Time = (0..15u64)
            .map(|seed| {
                let parts = crate::experiments::random_placement(32, 12, seed);
                let chain = Algorithm::OptTree.chain(&o, &parts, parts[0]);
                let splits = Algorithm::OptTree.splits(20, 55, 12);
                temporal_schedule(&o, &chain, &splits, 20, 55).added_delay
            })
            .sum();
        assert!(total > 0, "expected at least one forced delay on omega");
    }

    #[test]
    fn latency_never_below_naive() {
        let o = Omega::new(4);
        let parts: Vec<NodeId> = (0..10u32).map(NodeId).collect();
        let chain = Algorithm::OptTree.chain(&o, &parts, NodeId(0));
        let splits = Algorithm::OptTree.splits(30, 100, 10);
        let t = temporal_schedule(&o, &chain, &splits, 30, 100);
        let naive = Schedule::build(10, 0, &splits, 30, 100);
        assert!(t.schedule.latency() >= naive.latency());
    }
}
