//! User-level parameter measurement inside the simulator.
//!
//! The paper's methodology (\[5\], §2.1) measures `t_hold(m)` and `t_end(m)`
//! at the application level and feeds them to the OPT-tree DP.  We reproduce
//! that loop: these functions run micro-benchmarks *on the flit-level
//! simulator* — a one-way timed transfer for `t_end`, a send burst for
//! `t_hold` — and `pcm::calibrate` fits the affine model.  The result should
//! (and, per the crate tests, does) agree with the closed-form
//! [`SimConfig::effective_pair`].

use flitsim::program::SinkProgram;
use flitsim::{Engine, SendReq, SimConfig};
use pcm::calibrate::{fit_linear, Sample};
use pcm::{LinearFn, MsgSize, Time};
use topo::{NodeId, Topology};

/// Measure the one-way end-to-end latency of a `bytes`-sized message from
/// `src` to `dst` on an idle network.
pub fn measure_t_end(
    topo: &dyn Topology,
    cfg: &SimConfig,
    src: NodeId,
    dst: NodeId,
    bytes: MsgSize,
) -> Time {
    let mut e = Engine::new(topo, cfg.clone(), SinkProgram);
    e.start(src, 0, vec![SendReq::to(dst, bytes, ())]);
    let (_, r) = e.run_auto();
    r.messages[0].latency()
}

/// Measure the holding latency: `n` back-to-back sends from `src`; the mean
/// gap between consecutive send initiations is `t_hold(m)` (the injection
/// port and CPU jointly gate it).
pub fn measure_t_hold(
    topo: &dyn Topology,
    cfg: &SimConfig,
    src: NodeId,
    dst: NodeId,
    bytes: MsgSize,
    n: usize,
) -> Time {
    assert!(n >= 2, "a burst needs at least two sends");
    let mut e = Engine::new(topo, cfg.clone(), SinkProgram);
    let sends = vec![SendReq::to(dst, bytes, ()); n];
    e.start(src, 0, sends);
    let (_, r) = e.run_auto();
    let mut inits: Vec<Time> = r.messages.iter().map(|m| m.initiated).collect();
    inits.sort_unstable();
    (inits[n - 1] - inits[0]) / (n as Time - 1)
}

/// Calibrated affine fits of `t_hold(m)` and `t_end(m)` over a size sweep —
/// the full user-level methodology.
pub fn calibrate(
    topo: &dyn Topology,
    cfg: &SimConfig,
    src: NodeId,
    dst: NodeId,
    sizes: &[MsgSize],
) -> (LinearFn, LinearFn) {
    let hold_samples: Vec<Sample> = sizes
        .iter()
        .map(|&m| Sample::new(m, measure_t_hold(topo, cfg, src, dst, m, 8)))
        .collect();
    let end_samples: Vec<Sample> = sizes
        .iter()
        .map(|&m| Sample::new(m, measure_t_end(topo, cfg, src, dst, m)))
        .collect();
    let hold = fit_linear(&hold_samples).expect("two or more distinct sizes");
    let end = fit_linear(&end_samples).expect("two or more distinct sizes");
    (hold, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::Mesh;

    #[test]
    fn measured_t_end_matches_effective_pair() {
        let m = Mesh::new(&[16, 16]);
        let cfg = SimConfig::paragon_like();
        let (src, dst) = (NodeId(0), NodeId(136)); // 8+8 = 16 hops
        let hops = m.distance(src, dst);
        for bytes in [64u64, 1024, 8192] {
            let measured = measure_t_end(&m, &cfg, src, dst, bytes);
            let (_, predicted) = cfg.effective_pair(hops, bytes);
            assert_eq!(measured, predicted, "bytes={bytes}");
        }
    }

    #[test]
    fn measured_t_hold_matches_effective_pair() {
        let m = Mesh::new(&[16, 16]);
        let cfg = SimConfig::paragon_like();
        let (src, dst) = (NodeId(0), NodeId(136));
        for bytes in [64u64, 1024, 8192] {
            let measured = measure_t_hold(&m, &cfg, src, dst, bytes, 8);
            let (predicted, _) = cfg.effective_pair(m.distance(src, dst), bytes);
            assert_eq!(measured, predicted, "bytes={bytes}");
        }
    }

    #[test]
    fn calibration_recovers_affine_model() {
        let m = Mesh::new(&[8, 8]);
        let cfg = SimConfig::paragon_like();
        let sizes = [64u64, 512, 1024, 4096, 16384];
        let (hold, end) = calibrate(&m, &cfg, NodeId(0), NodeId(36), &sizes);
        // Slopes: hold = max(0.13 CPU, 0.125 drain) = 0.13; end has
        // software + streaming = 0.15 + 0.15 + 0.125 = 0.425.
        assert!(
            (hold.slope - 0.13).abs() < 0.01,
            "hold slope {}",
            hold.slope
        );
        assert!((end.slope - 0.425).abs() < 0.01, "end slope {}", end.slope);
        assert!(hold.base > 0.0 && end.base > 0.0);
    }
}
