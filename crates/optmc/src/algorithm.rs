//! The multicast algorithms of the paper's evaluation.

use mtree::SplitStrategy;
use pcm::Time;
use serde::{Deserialize, Serialize};
use topo::{Chain, NodeId, Topology};

/// How the participants are arranged into a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ordering {
    /// The architecture's contention-avoiding order: dimension-ordered on a
    /// mesh, lexicographic on a BMIN (the paper's tuning).
    Architecture,
    /// Whatever order the caller supplied (the portable, architecture-
    /// independent configuration — pays with contention).
    Placement,
}

/// Which split rule shapes the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitKind {
    /// The OPT-tree dynamic program on the measured `(t_hold, t_end)`.
    Opt,
    /// Recursive halving (binomial tree).
    Binomial,
    /// Peel one destination per send (sequential tree).
    Sequential,
}

/// A named multicast algorithm = ordering × split rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// OPT-mesh (Alg. 3.1) / OPT-min (Alg. 4.1): optimal splits on the
    /// architecture chain.  Which name applies depends on the topology the
    /// run uses; the code is identical — that is the paper's point.
    OptArch,
    /// U-mesh / U-min: binomial splits on the architecture chain.
    UArch,
    /// OPT-tree: optimal splits, placement order (no tuning).
    OptTree,
    /// Binomial tree in placement order (an untuned U-mesh; not in the
    /// paper's plots but a useful ablation of "ordering vs splits").
    BinomialTree,
    /// Sequential tree in placement order (\[5\]).
    Sequential,
}

impl Algorithm {
    /// All algorithms the paper's mesh figures compare, in plot order.
    pub const PAPER_SET: [Algorithm; 3] =
        [Algorithm::UArch, Algorithm::OptTree, Algorithm::OptArch];

    /// Every algorithm, in a stable order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::OptArch,
        Algorithm::UArch,
        Algorithm::OptTree,
        Algorithm::BinomialTree,
        Algorithm::Sequential,
    ];

    /// Canonical, architecture-independent identifier — the stable name
    /// used in campaign specs, cell keys, and the CLI (`opt-arch`, …).
    /// Inverse of [`Algorithm::parse`].
    pub fn id(self) -> &'static str {
        match self {
            Algorithm::OptArch => "opt-arch",
            Algorithm::UArch => "u-arch",
            Algorithm::OptTree => "opt-tree",
            Algorithm::BinomialTree => "binomial",
            Algorithm::Sequential => "sequential",
        }
    }

    /// Parse an algorithm name (canonical ids plus the paper's
    /// architecture-specific aliases).
    pub fn parse(name: &str) -> Result<Algorithm, String> {
        match name {
            "opt-arch" | "opt-mesh" | "opt-min" => Ok(Algorithm::OptArch),
            "u-arch" | "u-mesh" | "u-min" => Ok(Algorithm::UArch),
            "opt-tree" => Ok(Algorithm::OptTree),
            "binomial" => Ok(Algorithm::BinomialTree),
            "sequential" | "seq" => Ok(Algorithm::Sequential),
            other => Err(format!(
                "unknown algorithm '{other}' (expected opt-arch / u-arch / opt-tree / binomial / sequential)"
            )),
        }
    }

    /// The ordering component.
    pub fn ordering(self) -> Ordering {
        match self {
            Algorithm::OptArch | Algorithm::UArch => Ordering::Architecture,
            _ => Ordering::Placement,
        }
    }

    /// The split-rule component.
    pub fn split_kind(self) -> SplitKind {
        match self {
            Algorithm::OptArch | Algorithm::OptTree => SplitKind::Opt,
            Algorithm::UArch | Algorithm::BinomialTree => SplitKind::Binomial,
            Algorithm::Sequential => SplitKind::Sequential,
        }
    }

    /// Display name, specialised to the topology (OPT-mesh vs OPT-min etc.).
    pub fn display_name(self, topo: &dyn Topology) -> String {
        let arch = if topo.name().starts_with("mesh") {
            "mesh"
        } else {
            "min"
        };
        match self {
            Algorithm::OptArch => format!("OPT-{arch}"),
            Algorithm::UArch => format!("U-{arch}"),
            Algorithm::OptTree => "OPT-tree".to_string(),
            Algorithm::BinomialTree => "binomial-unordered".to_string(),
            Algorithm::Sequential => "sequential".to_string(),
        }
    }

    /// Build the chain this algorithm uses over `participants` (source
    /// included, any position).
    pub fn chain(self, topo: &dyn Topology, participants: &[NodeId], src: NodeId) -> Chain {
        match self.ordering() {
            Ordering::Architecture => Chain::sorted(topo, participants, src),
            Ordering::Placement => Chain::unsorted(participants, src),
        }
    }

    /// Build the split strategy for `k` participants under the measured
    /// `(t_hold, t_end)` pair.
    pub fn splits(self, hold: Time, end: Time, k: usize) -> SplitStrategy {
        match self.split_kind() {
            SplitKind::Opt => SplitStrategy::opt(hold, end, k),
            SplitKind::Binomial => SplitStrategy::Binomial,
            SplitKind::Sequential => SplitStrategy::Sequential,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::{Bmin, Mesh, UpPolicy};

    #[test]
    fn names_specialise_to_topology() {
        let mesh = Mesh::new(&[4, 4]);
        let bmin = Bmin::new(4, UpPolicy::Straight);
        assert_eq!(Algorithm::OptArch.display_name(&mesh), "OPT-mesh");
        assert_eq!(Algorithm::OptArch.display_name(&bmin), "OPT-min");
        assert_eq!(Algorithm::UArch.display_name(&mesh), "U-mesh");
        assert_eq!(Algorithm::UArch.display_name(&bmin), "U-min");
        assert_eq!(Algorithm::OptTree.display_name(&mesh), "OPT-tree");
    }

    #[test]
    fn components_decompose() {
        assert_eq!(Algorithm::OptArch.ordering(), Ordering::Architecture);
        assert_eq!(Algorithm::OptArch.split_kind(), SplitKind::Opt);
        assert_eq!(Algorithm::UArch.split_kind(), SplitKind::Binomial);
        assert_eq!(Algorithm::OptTree.ordering(), Ordering::Placement);
        assert_eq!(Algorithm::Sequential.split_kind(), SplitKind::Sequential);
    }

    #[test]
    fn chains_follow_ordering() {
        let mesh = Mesh::new(&[4, 4]);
        let parts = [NodeId(2), NodeId(9), NodeId(14)];
        // X-major keys on 4x4: 9=(1,2)->6, 2=(2,0)->8, 14=(2,3)->11.
        let sorted = Algorithm::OptArch.chain(&mesh, &parts, NodeId(9));
        assert_eq!(sorted.nodes(), &[NodeId(9), NodeId(2), NodeId(14)]);
        let placed = Algorithm::OptTree.chain(&mesh, &parts, NodeId(9));
        assert_eq!(placed.nodes(), &parts);
    }
}
