//! The static contention checker — the operational form of Theorems 1 & 2.
//!
//! Takes a position-level [`Schedule`] together with the physical chain and
//! topology, materialises every send's deterministic channel path, and asks:
//! do two sends from *different* senders with overlapping lifetimes share a
//! channel?  A worm's lifetime is approximated conservatively by
//! `(start, start + t_end)` — the whole interval during which any of its
//! channels might be held.  (Sends from the *same* node are serialised by
//! the one-port injection channel and the `t_hold ≥ drain` invariant, so
//! they are excluded.)

use mtree::Schedule;
use serde::{Deserialize, Serialize};
use topo::{Chain, ChannelId, Topology};

/// A detected conflict between two sends of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conflict {
    /// Index of the first send in `schedule.sends`.
    pub send_a: usize,
    /// Index of the second send.
    pub send_b: usize,
    /// A channel both paths traverse.
    pub channel: ChannelId,
}

/// Find all pairwise conflicts of `schedule` embedded on `topo` via `chain`.
///
/// Returns an empty vector exactly when the schedule is (statically)
/// contention-free.  Quadratic in the number of sends; schedules have `k-1`
/// sends, so this is fine up to thousands of nodes.
pub fn check_schedule(topo: &dyn Topology, chain: &Chain, schedule: &Schedule) -> Vec<Conflict> {
    let paths: Vec<Vec<ChannelId>> = schedule
        .sends
        .iter()
        .map(|e| topo.det_path(chain.node(e.from), chain.node(e.to)))
        .collect();
    let mut conflicts = Vec::new();
    for a in 0..schedule.sends.len() {
        for b in (a + 1)..schedule.sends.len() {
            let (ea, eb) = (&schedule.sends[a], &schedule.sends[b]);
            if ea.from == eb.from {
                continue; // serialised by the sender's own port
            }
            // Open-interval overlap of (start, arrive).
            if ea.start < eb.arrive && eb.start < ea.arrive {
                if let Some(ch) = topo::graph::shared_channel(&paths[a], &paths[b]) {
                    conflicts.push(Conflict {
                        send_a: a,
                        send_b: b,
                        channel: ch,
                    });
                }
            }
        }
    }
    conflicts
}

/// Convenience: is the schedule statically contention-free on this
/// embedding?
pub fn is_contention_free(topo: &dyn Topology, chain: &Chain, schedule: &Schedule) -> bool {
    check_schedule(topo, chain, schedule).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;

    use topo::{Mesh, NodeId};

    fn schedule_for(
        topo: &dyn Topology,
        alg: Algorithm,
        parts: &[NodeId],
        src: NodeId,
        hold: u64,
        end: u64,
    ) -> (Chain, Schedule) {
        let chain = alg.chain(topo, parts, src);
        let splits = alg.splits(hold, end, parts.len().max(2));
        let sched = Schedule::build(parts.len(), chain.src_pos(), &splits, hold, end);
        (chain, sched)
    }

    /// The paper's Fig. 1 setting: 8 nodes in a 6×6 mesh, t_hold=20,
    /// t_end=55 — OPT-mesh must be contention-free.
    #[test]
    fn fig1_opt_mesh_is_contention_free() {
        let m = Mesh::new(&[6, 6]);
        let parts: Vec<NodeId> = [1u32, 4, 9, 13, 19, 25, 28, 33].map(NodeId).to_vec();
        for src in &parts {
            let (chain, sched) = schedule_for(&m, Algorithm::OptArch, &parts, *src, 20, 55);
            assert!(
                is_contention_free(&m, &chain, &sched),
                "conflicts from src {src:?}: {:?}",
                check_schedule(&m, &chain, &sched)
            );
        }
    }

    /// U-mesh (binomial on the dimension-ordered chain) is contention-free
    /// as well — the McKinley result the paper builds on.
    #[test]
    fn u_mesh_is_contention_free() {
        let m = Mesh::new(&[8, 8]);
        let parts: Vec<NodeId> = [2u32, 5, 11, 17, 23, 31, 38, 44, 50, 57, 61, 63]
            .map(NodeId)
            .to_vec();
        let (chain, sched) = schedule_for(&m, Algorithm::UArch, &parts, NodeId(17), 30, 30);
        assert!(is_contention_free(&m, &chain, &sched));
    }

    /// The unordered OPT-tree generally conflicts — that is the paper's
    /// motivation for tuning.  Over random placements, scrambled chains
    /// must produce conflicts for a solid fraction of seeds while the
    /// architecture-ordered OPT-mesh never does.
    #[test]
    fn unordered_opt_tree_conflicts_where_opt_mesh_does_not() {
        let m = Mesh::new(&[6, 6]);
        let mut scrambled_conflicts = 0;
        let n_seeds = 40;
        for seed in 0..n_seeds {
            let parts = crate::experiments::random_placement(36, 12, seed);
            let src = parts[0];
            let (chain, sched) = schedule_for(&m, Algorithm::OptTree, &parts, src, 20, 55);
            if !check_schedule(&m, &chain, &sched).is_empty() {
                scrambled_conflicts += 1;
            }
            let (chain, sched) = schedule_for(&m, Algorithm::OptArch, &parts, src, 20, 55);
            assert!(
                is_contention_free(&m, &chain, &sched),
                "OPT-mesh conflicted at seed {seed}: {:?}",
                check_schedule(&m, &chain, &sched)
            );
        }
        assert!(
            scrambled_conflicts > n_seeds / 4,
            "only {scrambled_conflicts}/{n_seeds} scrambled placements conflicted"
        );
    }

    #[test]
    fn single_send_never_conflicts() {
        let m = Mesh::new(&[4, 4]);
        let parts = [NodeId(0), NodeId(15)];
        let (chain, sched) = schedule_for(&m, Algorithm::OptArch, &parts, NodeId(0), 10, 50);
        assert!(check_schedule(&m, &chain, &sched).is_empty());
    }
}
