//! The static contention checker — the operational form of Theorems 1 & 2.
//!
//! Two precision levels share this module:
//!
//! * **Conservative** ([`check_schedule`]): takes a position-level
//!   [`Schedule`], materialises every send's deterministic channel path,
//!   and asks whether two sends from *different* senders with overlapping
//!   lifetimes share a channel.  A worm's lifetime is approximated by
//!   `(start, start + t_end)` — the whole interval during which any of its
//!   channels might be held.  (Sends from the *same* node are serialised by
//!   the one-port injection channel and the `t_hold ≥ drain` invariant, so
//!   they are excluded.)
//! * **Windowed** ([`check_schedule_windowed`]): replays the schedule's
//!   tree under the engine's exact contention-free timing rules
//!   ([`OccupancyParams`], derived from a [`SimConfig`]) and computes a
//!   *per-channel occupancy window* `[acquire, release)` for every channel
//!   of every worm.  Two sends conflict exactly when their windows on a
//!   shared channel intersect — which is also exactly when the wormhole
//!   simulator would record blocked time, making this mode a sound *and*
//!   complete certificate for deterministic (non-adaptive, one-port)
//!   configurations.  Conflicts are counted per (send pair, channel), so
//!   OPT-tree's contention is quantified rather than merely detected.

use flitsim::SimConfig;
use mtree::Schedule;
use pcm::{MsgSize, Time};
use serde::{Deserialize, Serialize};
use topo::{Chain, ChannelId, RoutingError, Topology};

/// A detected conflict between two sends of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conflict {
    /// Index of the first send in `schedule.sends`.
    pub send_a: usize,
    /// Index of the second send.
    pub send_b: usize,
    /// A channel both paths traverse.
    pub channel: ChannelId,
}

/// Find all pairwise conflicts of `schedule` embedded on `topo` via `chain`.
///
/// Returns an empty vector exactly when the schedule is (statically)
/// contention-free.  Quadratic in the number of sends; schedules have `k-1`
/// sends, so this is fine up to thousands of nodes.
pub fn check_schedule(topo: &dyn Topology, chain: &Chain, schedule: &Schedule) -> Vec<Conflict> {
    let paths: Vec<Vec<ChannelId>> = schedule
        .sends
        .iter()
        .map(|e| topo.det_path(chain.node(e.from), chain.node(e.to)))
        .collect();
    let mut conflicts = Vec::new();
    for a in 0..schedule.sends.len() {
        for b in (a + 1)..schedule.sends.len() {
            let (ea, eb) = (&schedule.sends[a], &schedule.sends[b]);
            if ea.from == eb.from {
                continue; // serialised by the sender's own port
            }
            // Open-interval overlap of (start, arrive).
            if ea.start < eb.arrive && eb.start < ea.arrive {
                if let Some(ch) = topo::graph::shared_channel(&paths[a], &paths[b]) {
                    conflicts.push(Conflict {
                        send_a: a,
                        send_b: b,
                        channel: ch,
                    });
                }
            }
        }
    }
    conflicts
}

/// Convenience: is the schedule statically contention-free on this
/// embedding?
pub fn is_contention_free(topo: &dyn Topology, chain: &Chain, schedule: &Schedule) -> bool {
    check_schedule(topo, chain, schedule).is_empty()
}

/// The timing constants the windowed checker replays — the engine's
/// contention-free rules evaluated at one message size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccupancyParams {
    /// Send software latency (initiation → first flit enters the network).
    pub t_send: Time,
    /// Receive software latency (tail consumed → receiver owns the message).
    pub t_recv: Time,
    /// CPU occupancy per send (spacing between a node's initiations).
    pub t_hold: Time,
    /// Worm length in flits.
    pub flits: u64,
    /// Head traversal cycles per channel.
    pub router_delay: Time,
    /// Flit capacity of each channel buffer (≥ 1).
    pub buffer_flits: u64,
}

impl OccupancyParams {
    /// Evaluate a simulator configuration at one message size.
    pub fn from_config(cfg: &SimConfig, bytes: MsgSize) -> Self {
        Self {
            t_send: cfg.software.t_send.eval(bytes),
            t_recv: cfg.software.t_recv.eval(bytes),
            t_hold: cfg.software.t_hold.eval(bytes),
            flits: cfg.flits(bytes),
            router_delay: cfg.router_delay,
            buffer_flits: cfg.buffer_flits.max(1),
        }
    }
}

/// How precisely to model worm lifetimes when checking a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentionMode {
    /// Whole-lifetime `(start, arrive)` intervals from the schedule's model
    /// times — the original, cheap approximation.
    Conservative,
    /// Per-channel occupancy windows under the engine's exact timing.
    Windowed(OccupancyParams),
}

/// One channel held by one send for the half-open interval
/// `[acquire, release)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelWindow {
    /// Index of the send in `schedule.sends`.
    pub send: usize,
    /// The held channel.
    pub channel: ChannelId,
    /// Cycle the worm's head acquires the channel.
    pub acquire: Time,
    /// Cycle the worm's tail frees it (exclusive).
    pub release: Time,
}

/// A conflict found by the windowed checker: two sends whose occupancy
/// windows on `channel` intersect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowConflict {
    /// Index of the earlier-acquiring send in `schedule.sends`.
    pub send_a: usize,
    /// Index of the later-acquiring send.
    pub send_b: usize,
    /// The contended channel.
    pub channel: ChannelId,
    /// Start of the overlap.
    pub from: Time,
    /// End of the overlap (exclusive).
    pub until: Time,
}

/// Per-channel occupancy windows of every send in the schedule, replayed
/// under the engine's contention-free timing.
///
/// The replay follows the schedule's tree structure (who sends to whom, in
/// each node's issue order — `schedule.sends` is emitted parent-before-child
/// with each node's sends consecutive) but recomputes all times from
/// `params` by the engine's rules: a node picks up queued sends `t_hold`
/// apart starting at its receive completion, the worm's head enters the
/// network `t_send` later and advances one channel per `router_delay`, the
/// tail compresses into `ceil(flits/buffer)`-channel spans while climbing
/// and streams out one flit per cycle while draining.
///
/// Returns a [`RoutingError`] if any send's deterministic path cannot be
/// materialised (a topology bug — netcheck reports it as a diagnostic).
pub fn occupancy_windows(
    topo: &dyn Topology,
    chain: &Chain,
    schedule: &Schedule,
    params: &OccupancyParams,
) -> Result<Vec<ChannelWindow>, RoutingError> {
    let k = schedule.k;
    let rd = params.router_delay;
    let span = params.flits.div_ceil(params.buffer_flits) as usize;
    // Next CPU pickup time per chain position; the source starts at 0,
    // everyone else at their receive completion.
    let mut next_free: Vec<Option<Time>> = vec![None; k];
    next_free[schedule.src] = Some(0);
    let mut windows = Vec::new();
    for (idx, e) in schedule.sends.iter().enumerate() {
        let t0 = next_free[e.from].expect("schedule delivers a node before it sends");
        next_free[e.from] = Some(t0 + params.t_hold);
        let inject = t0 + params.t_send;
        let path = topo.try_det_path(chain.node(e.from), chain.node(e.to))?;
        let p = path.len();
        let acquire: Vec<Time> = (0..p).map(|i| inject + i as Time * rd).collect();
        let tail_consumed = acquire[p - 1] + rd + params.flits - 1;
        for (i, &ch) in path.iter().enumerate() {
            let release = if i + span < p {
                // Tail leaves channel i when the head takes channel i+span.
                acquire[i + span]
            } else {
                // Streams out during the drain; at most `buffer` flits fit
                // in each of the (p-1-i) downstream buffers.
                let downstream = params.buffer_flits * (p - 1 - i) as Time;
                tail_consumed.saturating_sub(downstream).max(acquire[i] + 1)
            };
            windows.push(ChannelWindow {
                send: idx,
                channel: ch,
                acquire: acquire[i],
                release,
            });
        }
        next_free[e.to] = Some(tail_consumed + params.t_recv);
    }
    Ok(windows)
}

/// Find all windowed conflicts of `schedule` embedded on `topo` via
/// `chain`: pairs of sends whose occupancy windows on a shared channel
/// intersect.  Unlike the conservative checker, same-sender pairs are *not*
/// excluded — if `t_hold` is shorter than the injection drain, a node's
/// consecutive worms really do collide on the injection channel and the
/// simulator counts it as blocked time.
pub fn check_schedule_windowed(
    topo: &dyn Topology,
    chain: &Chain,
    schedule: &Schedule,
    params: &OccupancyParams,
) -> Result<Vec<WindowConflict>, RoutingError> {
    Ok(scan_windows(&occupancy_windows(
        topo, chain, schedule, params,
    )?))
}

/// The pure scan underneath [`check_schedule_windowed`]: find every pair of
/// windows from *different* sends that intersect on a shared channel.
/// Windows are half-open `[acquire, release)`, so touching windows (one
/// releases exactly when the other acquires) and zero-length windows never
/// conflict.  Conflicts come back sorted by (overlap start, send pair).
pub fn scan_windows(windows: &[ChannelWindow]) -> Vec<WindowConflict> {
    // Group windows per channel, then scan each group pairwise (groups are
    // tiny: a channel is shared by at most a handful of sends).
    let mut by_channel: Vec<(ChannelId, ChannelWindow)> =
        windows.iter().map(|w| (w.channel, *w)).collect();
    by_channel.sort_by_key(|(c, w)| (c.0, w.acquire, w.send));
    let mut conflicts = Vec::new();
    let mut lo = 0;
    while lo < by_channel.len() {
        let ch = by_channel[lo].0;
        let hi = by_channel[lo..]
            .iter()
            .position(|(c, _)| *c != ch)
            .map_or(by_channel.len(), |off| lo + off);
        let group = &by_channel[lo..hi];
        for (i, (_, a)) in group.iter().enumerate() {
            for (_, b) in &group[i + 1..] {
                if a.send == b.send {
                    continue; // a buggy path revisiting its own channel
                }
                let from = a.acquire.max(b.acquire);
                let until = a.release.min(b.release);
                if from < until {
                    conflicts.push(WindowConflict {
                        send_a: a.send,
                        send_b: b.send,
                        channel: ch,
                        from,
                        until,
                    });
                }
            }
        }
        lo = hi;
    }
    conflicts.sort_by_key(|c| (c.from, c.send_a, c.send_b));
    conflicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;

    use topo::{Mesh, NodeId};

    fn schedule_for(
        topo: &dyn Topology,
        alg: Algorithm,
        parts: &[NodeId],
        src: NodeId,
        hold: u64,
        end: u64,
    ) -> (Chain, Schedule) {
        let chain = alg.chain(topo, parts, src);
        let splits = alg.splits(hold, end, parts.len().max(2));
        let sched = Schedule::build(parts.len(), chain.src_pos(), &splits, hold, end);
        (chain, sched)
    }

    /// The paper's Fig. 1 setting: 8 nodes in a 6×6 mesh, t_hold=20,
    /// t_end=55 — OPT-mesh must be contention-free.
    #[test]
    fn fig1_opt_mesh_is_contention_free() {
        let m = Mesh::new(&[6, 6]);
        let parts: Vec<NodeId> = [1u32, 4, 9, 13, 19, 25, 28, 33].map(NodeId).to_vec();
        for src in &parts {
            let (chain, sched) = schedule_for(&m, Algorithm::OptArch, &parts, *src, 20, 55);
            assert!(
                is_contention_free(&m, &chain, &sched),
                "conflicts from src {src:?}: {:?}",
                check_schedule(&m, &chain, &sched)
            );
        }
    }

    /// U-mesh (binomial on the dimension-ordered chain) is contention-free
    /// as well — the McKinley result the paper builds on.
    #[test]
    fn u_mesh_is_contention_free() {
        let m = Mesh::new(&[8, 8]);
        let parts: Vec<NodeId> = [2u32, 5, 11, 17, 23, 31, 38, 44, 50, 57, 61, 63]
            .map(NodeId)
            .to_vec();
        let (chain, sched) = schedule_for(&m, Algorithm::UArch, &parts, NodeId(17), 30, 30);
        assert!(is_contention_free(&m, &chain, &sched));
    }

    /// The unordered OPT-tree generally conflicts — that is the paper's
    /// motivation for tuning.  Over random placements, scrambled chains
    /// must produce conflicts for a solid fraction of seeds while the
    /// architecture-ordered OPT-mesh never does.
    #[test]
    fn unordered_opt_tree_conflicts_where_opt_mesh_does_not() {
        let m = Mesh::new(&[6, 6]);
        let mut scrambled_conflicts = 0;
        let n_seeds = 40;
        for seed in 0..n_seeds {
            let parts = crate::experiments::random_placement(36, 12, seed);
            let src = parts[0];
            let (chain, sched) = schedule_for(&m, Algorithm::OptTree, &parts, src, 20, 55);
            if !check_schedule(&m, &chain, &sched).is_empty() {
                scrambled_conflicts += 1;
            }
            let (chain, sched) = schedule_for(&m, Algorithm::OptArch, &parts, src, 20, 55);
            assert!(
                is_contention_free(&m, &chain, &sched),
                "OPT-mesh conflicted at seed {seed}: {:?}",
                check_schedule(&m, &chain, &sched)
            );
        }
        assert!(
            scrambled_conflicts > n_seeds / 4,
            "only {scrambled_conflicts}/{n_seeds} scrambled placements conflicted"
        );
    }

    #[test]
    fn single_send_never_conflicts() {
        let m = Mesh::new(&[4, 4]);
        let parts = [NodeId(0), NodeId(15)];
        let (chain, sched) = schedule_for(&m, Algorithm::OptArch, &parts, NodeId(0), 10, 50);
        assert!(check_schedule(&m, &chain, &sched).is_empty());
    }

    /// The windowed checker certifies Fig. 1's OPT-mesh conflict-free under
    /// the engine's own timing, not just the model approximation.
    #[test]
    fn fig1_opt_mesh_is_windowed_clean() {
        let m = Mesh::new(&[6, 6]);
        let cfg = flitsim::SimConfig::paragon_like();
        let bytes = 1024;
        let parts: Vec<NodeId> = [1u32, 4, 9, 13, 19, 25, 28, 33].map(NodeId).to_vec();
        let hops = crate::runner::nominal_hops(&m, &parts, parts[0]);
        let (hold, end) = cfg.effective_pair(hops, bytes);
        for src in &parts {
            let (chain, sched) = schedule_for(&m, Algorithm::OptArch, &parts, *src, hold, end);
            let params = OccupancyParams::from_config(&cfg, bytes);
            let conflicts = check_schedule_windowed(&m, &chain, &sched, &params).unwrap();
            assert!(conflicts.is_empty(), "src {src:?}: {conflicts:?}");
        }
    }

    /// Windowed occupancy agrees with the simulator: a scrambled OPT-tree
    /// that the windowed checker flags really blocks, and the conflict
    /// *count* is positive (the counting upgrade over bare detection).
    #[test]
    fn windowed_verdict_matches_simulator_on_scrambles() {
        let m = Mesh::new(&[6, 6]);
        let mut cfg = flitsim::SimConfig::paragon_like();
        cfg.adaptive = false; // deterministic paths = exact replay
        let bytes = 2048;
        let mut agree = 0;
        for seed in 0..12 {
            let parts = crate::experiments::random_placement(36, 10, seed);
            let src = parts[0];
            let hops = crate::runner::nominal_hops(&m, &parts, src);
            let (hold, end) = cfg.effective_pair(hops, bytes);
            let (chain, sched) = schedule_for(&m, Algorithm::OptTree, &parts, src, hold, end);
            let params = OccupancyParams::from_config(&cfg, bytes);
            let conflicts = check_schedule_windowed(&m, &chain, &sched, &params).unwrap();
            let out =
                crate::runner::run_multicast(&m, &cfg, Algorithm::OptTree, &parts, src, bytes);
            assert_eq!(
                conflicts.is_empty(),
                out.sim.blocked_cycles == 0,
                "seed {seed}: {} static conflicts vs {} blocked cycles",
                conflicts.len(),
                out.sim.blocked_cycles
            );
            agree += 1;
        }
        assert_eq!(agree, 12);
    }

    /// Overlap intervals are well-formed and windows cover every path
    /// channel exactly once per send.
    #[test]
    fn occupancy_windows_cover_paths() {
        let m = Mesh::new(&[6, 6]);
        let cfg = flitsim::SimConfig::paragon_like();
        let parts: Vec<NodeId> = [0u32, 7, 14, 21, 28, 35].map(NodeId).to_vec();
        let (chain, sched) = schedule_for(&m, Algorithm::OptArch, &parts, NodeId(0), 300, 700);
        let params = OccupancyParams::from_config(&cfg, 256);
        let windows = occupancy_windows(&m, &chain, &sched, &params).unwrap();
        for (idx, e) in sched.sends.iter().enumerate() {
            let path = m.det_path(chain.node(e.from), chain.node(e.to));
            let mine: Vec<_> = windows.iter().filter(|w| w.send == idx).collect();
            assert_eq!(mine.len(), path.len(), "send {idx}");
            for w in mine {
                assert!(w.acquire < w.release, "empty window {w:?}");
                assert!(path.contains(&w.channel));
            }
        }
    }

    /// Boundary semantics of the half-open `[acquire, release)` windows,
    /// pinned on synthetic populations fed straight to [`scan_windows`].
    mod scan_boundaries {
        use super::*;

        fn w(send: usize, channel: u32, acquire: Time, release: Time) -> ChannelWindow {
            ChannelWindow {
                send,
                channel: ChannelId(channel),
                acquire,
                release,
            }
        }

        #[test]
        fn touching_windows_do_not_conflict() {
            // One releases exactly when the other acquires: a clean handoff.
            assert!(scan_windows(&[w(0, 7, 100, 200), w(1, 7, 200, 300)]).is_empty());
        }

        #[test]
        fn one_cycle_overlap_conflicts() {
            let c = scan_windows(&[w(0, 7, 100, 201), w(1, 7, 200, 300)]);
            assert_eq!(c.len(), 1);
            assert_eq!((c[0].from, c[0].until), (200, 201));
        }

        #[test]
        fn zero_length_windows_overlap_nothing() {
            // A degenerate `[t, t)` window holds the channel for no cycle.
            assert!(scan_windows(&[w(0, 7, 150, 150), w(1, 7, 100, 200)]).is_empty());
            assert!(scan_windows(&[w(0, 7, 150, 150), w(1, 7, 150, 150)]).is_empty());
        }

        #[test]
        fn identical_starts_conflict_with_canonical_pair_order() {
            let c = scan_windows(&[w(1, 7, 100, 250), w(0, 7, 100, 200)]);
            assert_eq!(c.len(), 1);
            // The tie on acquire breaks by send index, so send 0 is `send_a`.
            assert_eq!((c[0].send_a, c[0].send_b), (0, 1));
            assert_eq!((c[0].from, c[0].until), (100, 200));
        }

        #[test]
        fn different_channels_never_conflict() {
            assert!(scan_windows(&[w(0, 7, 100, 200), w(1, 8, 100, 200)]).is_empty());
        }

        #[test]
        fn same_send_revisiting_a_channel_is_skipped() {
            assert!(scan_windows(&[w(0, 7, 100, 200), w(0, 7, 150, 250)]).is_empty());
        }

        #[test]
        fn conflicts_come_back_in_overlap_time_order() {
            let c = scan_windows(&[
                w(0, 9, 500, 600),
                w(1, 9, 550, 650),
                w(2, 3, 0, 100),
                w(3, 3, 50, 150),
            ]);
            assert_eq!(c.len(), 2);
            assert!(c[0].from <= c[1].from);
            assert_eq!(c[0].channel, ChannelId(3));
        }
    }
}
