//! Topology specification strings (`mesh:16x16`, `bmin:128`, …).
//!
//! Parsing lives here — below the CLI — so the `campaign` crate's
//! declarative sweeps, the `plansvc` planning engine, and every `optmc`
//! subcommand accept exactly the same grammar.  [`parse_spec`] produces a
//! structured [`TopoSpec`] (kind, dimensions, node count) for callers that
//! need to reason about the architecture without instantiating it — the
//! CLI's routing-discipline mapping, the planning service's request
//! validation — and [`TopoSpec::build`] / [`parse_topology`] turn one into
//! a boxed [`Topology`].

use topo::{Bmin, Mesh, Omega, Topology, Torus, UpPolicy};

/// The topology family a spec names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecKind {
    /// `mesh:AxB[xC…][:ports]` — k-ary n-dimensional mesh.
    Mesh,
    /// `torus:AxB[xC…][:novc]` — wrap-around mesh (dateline VCs unless `novc`).
    Torus,
    /// `hypercube:D` — binary D-cube (a `2x2x…` mesh).
    Hypercube,
    /// `bmin:N` — bidirectional multistage interconnection network.
    Bmin,
    /// `omega:N` — unidirectional omega network.
    Omega,
}

/// A parsed topology spec, structured but not yet instantiated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoSpec {
    /// The topology family.
    pub kind: SpecKind,
    /// Per-dimension extents for direct networks (hypercubes report
    /// `[2; D]`); empty for the indirect `bmin`/`omega` families.
    pub dims: Vec<usize>,
    /// Total endpoint count.
    pub nodes: usize,
    /// Injection/consumption ports per node (meshes only; 1 elsewhere).
    pub ports: usize,
    /// Torus without dateline virtual channels (deliberately
    /// deadlock-prone, for exercising `optmc check`).
    pub novc: bool,
}

fn parse_dims(kind: &str, arg: &str) -> Result<Vec<usize>, String> {
    let dims: Result<Vec<usize>, _> = arg.split('x').map(str::parse).collect();
    let dims = dims.map_err(|_| format!("bad {kind} dimensions '{arg}'"))?;
    if dims.is_empty() || dims.contains(&0) {
        return Err(format!("bad {kind} dimensions '{arg}'"));
    }
    Ok(dims)
}

/// Parse a topology spec string into its structured form.
///
/// Grammar: `mesh:AxB[xC…][:ports]`, `torus:AxB[xC…][:novc]`,
/// `hypercube:D`, `bmin:N`, `omega:N` (`N` a power of two).
pub fn parse_spec(spec: &str) -> Result<TopoSpec, String> {
    let mut parts = spec.split(':');
    let kind = parts.next().unwrap_or_default();
    let arg = parts
        .next()
        .ok_or_else(|| format!("topology '{spec}' needs an argument"))?;
    let extra = parts.next();
    if parts.next().is_some() {
        return Err(format!("topology '{spec}' has trailing fields"));
    }
    match kind {
        "mesh" => {
            let dims = parse_dims(kind, arg)?;
            let ports = match extra {
                None => 1,
                Some(p) => {
                    let p: usize = p.parse().map_err(|_| format!("bad port count '{p}'"))?;
                    if p == 0 {
                        return Err("bad port count '0'".into());
                    }
                    p
                }
            };
            Ok(TopoSpec {
                kind: SpecKind::Mesh,
                nodes: dims.iter().product(),
                dims,
                ports,
                novc: false,
            })
        }
        "torus" => {
            let dims = parse_dims(kind, arg)?;
            let novc = match extra {
                Some("novc") => true,
                None => false,
                Some(other) => return Err(format!("bad torus option '{other}' (only 'novc')")),
            };
            Ok(TopoSpec {
                kind: SpecKind::Torus,
                nodes: dims.iter().product(),
                dims,
                ports: 1,
                novc,
            })
        }
        "hypercube" => {
            if extra.is_some() {
                return Err(format!("topology '{spec}' has trailing fields"));
            }
            let d: usize = arg
                .parse()
                .map_err(|_| format!("bad cube dimension '{arg}'"))?;
            if !(1..=20).contains(&d) {
                return Err(format!("cube dimension {d} out of range 1..=20"));
            }
            Ok(TopoSpec {
                kind: SpecKind::Hypercube,
                dims: vec![2; d],
                nodes: 1 << d,
                ports: 1,
                novc: false,
            })
        }
        "bmin" | "omega" => {
            if extra.is_some() {
                return Err(format!("topology '{spec}' has trailing fields"));
            }
            let n: usize = arg.parse().map_err(|_| format!("bad node count '{arg}'"))?;
            if !n.is_power_of_two() || n < 2 {
                return Err(format!(
                    "{kind} node count must be a power of two >= 2, got {n}"
                ));
            }
            Ok(TopoSpec {
                kind: if kind == "bmin" {
                    SpecKind::Bmin
                } else {
                    SpecKind::Omega
                },
                dims: Vec::new(),
                nodes: n,
                ports: 1,
                novc: false,
            })
        }
        other => Err(format!(
            "unknown topology '{other}' (expected mesh / torus / hypercube / bmin / omega)"
        )),
    }
}

impl TopoSpec {
    /// Instantiate the topology this spec describes.
    #[must_use]
    pub fn build(&self) -> Box<dyn Topology> {
        match self.kind {
            SpecKind::Mesh => Box::new(Mesh::with_ports(&self.dims, self.ports)),
            SpecKind::Torus if self.novc => Box::new(Torus::unvirtualized(&self.dims)),
            SpecKind::Torus => Box::new(Torus::new(&self.dims)),
            SpecKind::Hypercube => Box::new(Mesh::hypercube(self.dims.len())),
            SpecKind::Bmin => Box::new(Bmin::new(self.nodes.trailing_zeros(), UpPolicy::Straight)),
            SpecKind::Omega => Box::new(Omega::new(self.nodes.trailing_zeros())),
        }
    }
}

/// Parse a topology spec into a boxed topology (see [`parse_spec`] for
/// the grammar).
pub fn parse_topology(spec: &str) -> Result<Box<dyn Topology>, String> {
    Ok(parse_spec(spec)?.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_topology_kind() {
        assert_eq!(parse_topology("mesh:4x4").unwrap().graph().n_nodes(), 16);
        assert_eq!(parse_topology("mesh:2x3x4").unwrap().graph().n_nodes(), 24);
        assert_eq!(parse_topology("mesh:4x4:2").unwrap().graph().ports(), 2);
        assert_eq!(parse_topology("hypercube:5").unwrap().graph().n_nodes(), 32);
        assert_eq!(parse_topology("bmin:128").unwrap().graph().n_nodes(), 128);
        assert_eq!(parse_topology("omega:64").unwrap().graph().n_nodes(), 64);
        assert_eq!(parse_topology("torus:4x4").unwrap().name(), "torus-4x4");
        assert_eq!(
            parse_topology("torus:4x4:novc").unwrap().name(),
            "torus-4x4-novc"
        );
    }

    #[test]
    fn structured_specs_report_shape() {
        let m = parse_spec("mesh:4x6").unwrap();
        assert_eq!((m.kind, m.nodes, m.ports), (SpecKind::Mesh, 24, 1));
        assert_eq!(m.dims, vec![4, 6]);
        let h = parse_spec("hypercube:3").unwrap();
        assert_eq!(h.dims, vec![2, 2, 2]);
        assert_eq!(h.nodes, 8);
        let b = parse_spec("bmin:128").unwrap();
        assert_eq!((b.kind, b.nodes), (SpecKind::Bmin, 128));
        assert!(b.dims.is_empty());
        let t = parse_spec("torus:8x8:novc").unwrap();
        assert!(t.novc);
        // build() matches the one-shot path.
        assert_eq!(
            t.build().name(),
            parse_topology("torus:8x8:novc").unwrap().name()
        );
    }

    #[test]
    fn rejects_bad_specs() {
        for bad in [
            "mesh",
            "mesh:0x4",
            "mesh:ax4",
            "mesh:4x4:0",
            "bmin:100",
            "omega:1",
            "ring:8",
            "bmin:",
            "bmin:64:x",
            "torus:4x4:vc9",
            "mesh:4x4:2:9",
            "hypercube:3:x",
        ] {
            assert!(parse_topology(bad).is_err(), "{bad} should fail");
        }
    }
}
