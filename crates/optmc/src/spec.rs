//! Topology specification strings (`mesh:16x16`, `bmin:128`, …).
//!
//! Parsing lives here — below the CLI — so the `campaign` crate can expand
//! declarative sweep specs into concrete topologies with exactly the same
//! grammar `optmc` commands accept.

use topo::{Bmin, Mesh, Omega, Topology, Torus, UpPolicy};

fn parse_dims(kind: &str, arg: &str) -> Result<Vec<usize>, String> {
    let dims: Result<Vec<usize>, _> = arg.split('x').map(str::parse).collect();
    let dims = dims.map_err(|_| format!("bad {kind} dimensions '{arg}'"))?;
    if dims.is_empty() || dims.contains(&0) {
        return Err(format!("bad {kind} dimensions '{arg}'"));
    }
    Ok(dims)
}

/// Parse a topology spec into a boxed topology.
///
/// Grammar: `mesh:AxB[xC…][:ports]`, `torus:AxB[xC…][:novc]`,
/// `hypercube:D`, `bmin:N`, `omega:N` (`N` a power of two).
pub fn parse_topology(spec: &str) -> Result<Box<dyn Topology>, String> {
    let mut parts = spec.split(':');
    let kind = parts.next().unwrap_or_default();
    let arg = parts
        .next()
        .ok_or_else(|| format!("topology '{spec}' needs an argument"))?;
    let extra = parts.next();
    match kind {
        "mesh" => {
            let dims = parse_dims(kind, arg)?;
            let ports = match extra {
                None => 1,
                Some(p) => p.parse().map_err(|_| format!("bad port count '{p}'"))?,
            };
            Ok(Box::new(Mesh::with_ports(&dims, ports)))
        }
        "torus" => {
            let dims = parse_dims(kind, arg)?;
            match extra {
                // `novc` drops the dateline virtual channels — deliberately
                // deadlock-prone, for exercising `optmc check`.
                Some("novc") => Ok(Box::new(Torus::unvirtualized(&dims))),
                None => Ok(Box::new(Torus::new(&dims))),
                Some(other) => Err(format!("bad torus option '{other}' (only 'novc')")),
            }
        }
        "hypercube" => {
            let d: usize = arg
                .parse()
                .map_err(|_| format!("bad cube dimension '{arg}'"))?;
            if !(1..=20).contains(&d) {
                return Err(format!("cube dimension {d} out of range 1..=20"));
            }
            Ok(Box::new(Mesh::hypercube(d)))
        }
        "bmin" | "omega" => {
            let n: usize = arg.parse().map_err(|_| format!("bad node count '{arg}'"))?;
            if !n.is_power_of_two() || n < 2 {
                return Err(format!(
                    "{kind} node count must be a power of two >= 2, got {n}"
                ));
            }
            let s = n.trailing_zeros();
            if kind == "bmin" {
                Ok(Box::new(Bmin::new(s, UpPolicy::Straight)))
            } else {
                Ok(Box::new(Omega::new(s)))
            }
        }
        other => Err(format!(
            "unknown topology '{other}' (expected mesh / torus / hypercube / bmin / omega)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_topology_kind() {
        assert_eq!(parse_topology("mesh:4x4").unwrap().graph().n_nodes(), 16);
        assert_eq!(parse_topology("mesh:2x3x4").unwrap().graph().n_nodes(), 24);
        assert_eq!(parse_topology("mesh:4x4:2").unwrap().graph().ports(), 2);
        assert_eq!(parse_topology("hypercube:5").unwrap().graph().n_nodes(), 32);
        assert_eq!(parse_topology("bmin:128").unwrap().graph().n_nodes(), 128);
        assert_eq!(parse_topology("omega:64").unwrap().graph().n_nodes(), 64);
        assert_eq!(parse_topology("torus:4x4").unwrap().name(), "torus-4x4");
        assert_eq!(
            parse_topology("torus:4x4:novc").unwrap().name(),
            "torus-4x4-novc"
        );
    }

    #[test]
    fn rejects_bad_specs() {
        for bad in [
            "mesh",
            "mesh:0x4",
            "mesh:ax4",
            "bmin:100",
            "omega:1",
            "ring:8",
            "bmin:",
            "torus:4x4:vc9",
        ] {
            assert!(parse_topology(bad).is_err(), "{bad} should fail");
        }
    }
}
