//! One multicast experiment, end to end.

use flitsim::{Engine, SimConfig, SimResult, TraceSink};
use mtree::Schedule;
use pcm::{MsgSize, Time};
use topo::{NodeId, Topology};

use crate::algorithm::Algorithm;
use crate::program::McastProgram;

/// Everything one run produces.
#[derive(Debug)]
pub struct RunOutcome {
    /// Observed multicast latency: root initiation → last receive
    /// completion, contention included.
    pub latency: Time,
    /// The analytic (contention-free) latency of the same tree under the
    /// `(t_hold, t_end)` the DP was fed — the theoretical lower bound the
    /// tuned algorithms are supposed to meet.
    pub analytic: Time,
    /// The `(t_hold, t_end)` pair used.
    pub pair: (Time, Time),
    /// The position-level schedule (for contention checking / plotting).
    pub schedule: Schedule,
    /// The participants in chain order.
    pub chain_nodes: Vec<NodeId>,
    /// Raw simulator result.
    pub sim: SimResult,
}

impl RunOutcome {
    /// Contention overhead: observed minus analytic, clamped at 0 (the
    /// paper's Figures 2–3 plot exactly this gap growing for
    /// U-mesh/OPT-tree).  The analytic bound folds a *mean* hop count into
    /// `t_end`, so integer rounding at small messages can push it above
    /// the observed latency; that anomaly is clamped here and logged as a
    /// [`flitsim::trace::TraceKind::Anomaly`] event by the runner (see
    /// [`RunOutcome::bound_anomaly`] for the raw gap).
    pub fn overhead(&self) -> Time {
        self.latency.saturating_sub(self.analytic)
    }

    /// The signed observed-minus-analytic gap (negative exactly when the
    /// bound anomaly occurred).
    pub fn overhead_signed(&self) -> i64 {
        self.latency as i64 - self.analytic as i64
    }

    /// Cycles by which the analytic bound exceeded the observed latency
    /// (`None` in the normal case where observed ≥ analytic).
    pub fn bound_anomaly(&self) -> Option<Time> {
        (self.analytic > self.latency).then(|| self.analytic - self.latency)
    }
}

/// Nominal hop count used to convert the simulator configuration into the
/// model's distance-insensitive `(t_hold, t_end)`: the mean deterministic
/// distance from the source to each destination.
pub fn nominal_hops(topo: &dyn Topology, participants: &[NodeId], src: NodeId) -> usize {
    let dists: Vec<usize> = participants
        .iter()
        .filter(|&&n| n != src)
        .map(|&n| topo.distance(src, n))
        .collect();
    if dists.is_empty() {
        0
    } else {
        (dists.iter().sum::<usize>() as f64 / dists.len() as f64).round() as usize
    }
}

/// Run `algorithm` multicasting `bytes` from `src` to the other
/// `participants` over `topo` under `cfg`.
///
/// The model pair `(t_hold, t_end)` is derived from the simulator
/// configuration exactly as a user-level calibration would measure it
/// ([`SimConfig::effective_pair`]), then drives both the OPT-tree DP and the
/// analytic bound.
///
/// # Panics
/// If `participants` does not contain `src` or contains duplicates.
pub fn run_multicast(
    topo: &dyn Topology,
    cfg: &SimConfig,
    algorithm: Algorithm,
    participants: &[NodeId],
    src: NodeId,
    bytes: MsgSize,
) -> RunOutcome {
    run_multicast_with(topo, cfg, algorithm, participants, src, bytes, false)
}

/// Knobs beyond the basic experiment.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Pre-delay conflicting senders with the §6 temporal scheduler
    /// (see [`crate::temporal`]).
    pub temporal: bool,
    /// Override the NI port count *assumed by the model* when deriving
    /// `(t_hold, t_end)` for the DP.  `None` uses the topology's actual
    /// port count; forcing `Some(1)` on a multi-port network asks "what if
    /// we keep the conservative one-port model?" (ABL4).
    pub model_ports: Option<u64>,
}

/// [`run_multicast`] with the §6 *temporal ordering* switch: when `temporal`
/// is true, send initiations are pre-delayed by the channel-reservation
/// scheduler in [`crate::temporal`] so conflicting senders never transmit
/// simultaneously — the strategy for networks (like the unidirectional MIN)
/// that no node ordering can make contention-free.
pub fn run_multicast_with(
    topo: &dyn Topology,
    cfg: &SimConfig,
    algorithm: Algorithm,
    participants: &[NodeId],
    src: NodeId,
    bytes: MsgSize,
    temporal: bool,
) -> RunOutcome {
    run_multicast_opts(
        topo,
        cfg,
        algorithm,
        participants,
        src,
        bytes,
        &RunOptions {
            temporal,
            ..RunOptions::default()
        },
    )
}

/// The fully-configurable experiment runner.
pub fn run_multicast_opts(
    topo: &dyn Topology,
    cfg: &SimConfig,
    algorithm: Algorithm,
    participants: &[NodeId],
    src: NodeId,
    bytes: MsgSize,
    opts: &RunOptions,
) -> RunOutcome {
    run_multicast_observed(topo, cfg, algorithm, participants, src, bytes, opts, None)
}

/// [`run_multicast_opts`] with an explicit engine observer.  `observer`
/// (any [`TraceSink`] arm — bounded ring, streaming JSONL, custom hooks)
/// replaces whatever [`SimConfig::trace`] would have selected; `None`
/// keeps the config-derived default.  This is what `optmc inspect` uses to
/// stream traces without holding them in memory.
#[allow(clippy::too_many_arguments)]
pub fn run_multicast_observed(
    topo: &dyn Topology,
    cfg: &SimConfig,
    algorithm: Algorithm,
    participants: &[NodeId],
    src: NodeId,
    bytes: MsgSize,
    opts: &RunOptions,
    observer: Option<TraceSink>,
) -> RunOutcome {
    let temporal = opts.temporal;
    let k = participants.len();
    let hops = nominal_hops(topo, participants, src);
    let ports = opts.model_ports.unwrap_or(topo.graph().ports() as u64);
    let (hold, end) = cfg.effective_pair_ports(hops, bytes, ports);
    let chain = algorithm.chain(topo, participants, src);
    let splits = algorithm.splits(hold, end, k.max(2));
    let (schedule, timing) = if temporal && k >= 2 {
        // The worm enters the network t_send after initiation — the lead
        // lets the scheduler overlap a send's software phase with the
        // predecessor's drain.
        let lead = cfg.software.t_send.eval(bytes);
        let t =
            crate::temporal::temporal_schedule_with_lead(topo, &chain, &splits, hold, end, lead);
        (t.schedule, Some(t.not_before))
    } else {
        (
            Schedule::build(k, chain.src_pos(), &splits, hold, end),
            None,
        )
    };
    let analytic = schedule.latency();
    let chain_nodes = chain.nodes().to_vec();

    let mut program = McastProgram::new(chain, splits, bytes, topo.graph().n_nodes())
        .with_addr_overhead(cfg.addr_bytes);
    if let Some(times) = timing {
        program = program.with_timing(times);
    }
    let root = program.root();
    let first = program.root_sends();
    let mut engine = Engine::new(topo, cfg.clone(), program);
    if let Some(sink) = observer {
        engine.set_observer(sink);
    }
    engine.start(root, 0, first);
    let (program, sim) = engine.run_auto();
    assert_eq!(
        program.deliveries(),
        program.n_dests(),
        "multicast did not reach everyone"
    );

    // A single-node multicast has no destinations and finishes at 0.
    let latency = sim.last_completion().unwrap_or(0);
    let mut sim = sim;
    if latency < analytic {
        // The distance-insensitive model rounded the bound above the
        // observed latency — log it through the observer stream so the
        // anomaly is visible in traces and reports instead of silently
        // producing a negative overhead.
        sim.trace.push(flitsim::trace::TraceEvent {
            t: latency,
            worm: 0,
            channel: None,
            node: None,
            kind: flitsim::trace::TraceKind::Anomaly,
        });
    }
    RunOutcome {
        latency,
        analytic,
        pair: (hold, end),
        schedule,
        chain_nodes,
        sim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::{Bmin, Mesh, UpPolicy};

    fn mesh_participants() -> Vec<NodeId> {
        // 8 nodes of a 6x6 mesh, scattered.
        [0u32, 3, 8, 14, 20, 23, 29, 35].map(NodeId).to_vec()
    }

    #[test]
    fn opt_mesh_meets_analytic_bound() {
        let m = Mesh::new(&[6, 6]);
        let cfg = SimConfig::paragon_like();
        let out = run_multicast(
            &m,
            &cfg,
            Algorithm::OptArch,
            &mesh_participants(),
            NodeId(0),
            1024,
        );
        assert_eq!(out.sim.messages.len(), 7);
        // Contention-free (Theorem 1) …
        assert!(
            out.sim.contention_free(),
            "blocked {} cycles",
            out.sim.blocked_cycles
        );
        // … and within the distance-sensitivity slack of the bound: the
        // model folds a *mean* hop count into t_end, individual paths vary
        // by at most the network diameter of extra head cycles.
        let slack = 2 * 12 * cfg.router_delay;
        assert!(
            (out.latency as i64 - out.analytic as i64).unsigned_abs() <= slack,
            "latency {} vs analytic {}",
            out.latency,
            out.analytic
        );
    }

    #[test]
    fn u_mesh_matches_binomial_shape() {
        let m = Mesh::new(&[6, 6]);
        let cfg = SimConfig::paragon_like();
        let out = run_multicast(
            &m,
            &cfg,
            Algorithm::UArch,
            &mesh_participants(),
            NodeId(0),
            1024,
        );
        assert!(out.sim.contention_free(), "U-mesh is contention-free too");
        // But its tree is worse: analytic latency strictly above OPT's.
        let opt = run_multicast(
            &m,
            &cfg,
            Algorithm::OptArch,
            &mesh_participants(),
            NodeId(0),
            1024,
        );
        assert!(
            out.analytic > opt.analytic,
            "{} vs {}",
            out.analytic,
            opt.analytic
        );
    }

    #[test]
    fn opt_min_on_bmin_runs_clean() {
        let b = Bmin::new(5, UpPolicy::Straight);
        let cfg = SimConfig::paragon_like();
        let parts: Vec<NodeId> = [0u32, 3, 7, 12, 15, 18, 22, 25, 28, 31]
            .map(NodeId)
            .to_vec();
        let out = run_multicast(&b, &cfg, Algorithm::OptArch, &parts, NodeId(12), 2048);
        assert_eq!(out.sim.messages.len(), 9);
        assert!(
            out.overhead_signed().unsigned_abs() <= 60,
            "overhead {}",
            out.overhead_signed()
        );
    }

    #[test]
    fn overhead_clamps_and_logs_bound_anomalies() {
        let m = Mesh::new(&[4, 4]);
        let cfg = SimConfig::paragon_like();
        let mut out = run_multicast(
            &m,
            &cfg,
            Algorithm::OptArch,
            &[NodeId(0), NodeId(5)],
            NodeId(0),
            64,
        );
        // Force the rounding anomaly: analytic bound above observed.
        out.analytic = out.latency + 7;
        assert_eq!(out.overhead(), 0, "clamped at zero");
        assert_eq!(out.overhead_signed(), -7);
        assert_eq!(out.bound_anomaly(), Some(7));
        // The normal case stays a plain difference.
        out.analytic = out.latency.saturating_sub(3);
        assert_eq!(out.overhead(), 3);
        assert_eq!(out.bound_anomaly(), None);
    }

    #[test]
    fn bound_anomaly_is_logged_through_the_observer_stream() {
        use flitsim::trace::TraceKind;
        // A degenerate single-participant multicast delivers nothing and
        // finishes at 0, while the analytic schedule of one node is 0 too —
        // craft an anomalous run instead by shrinking the message under the
        // software constant so rounding can bite.  Scan a few small cells
        // and require that every negative raw gap comes with an Anomaly
        // trace event (and every non-negative one does not).
        let m = Mesh::new(&[6, 6]);
        let cfg = SimConfig::paragon_like();
        for k in [2usize, 3, 4] {
            for seed in 0..4u64 {
                let parts = crate::experiments::random_placement(36, k, seed);
                let out = run_multicast(&m, &cfg, Algorithm::OptArch, &parts, parts[0], 0);
                let logged = out
                    .sim
                    .trace
                    .iter()
                    .filter(|e| e.kind == TraceKind::Anomaly)
                    .count();
                if out.latency < out.analytic {
                    assert_eq!(logged, 1, "anomalous run must log exactly one event");
                } else {
                    assert_eq!(logged, 0, "clean run must not log anomalies");
                }
            }
        }
    }

    #[test]
    fn two_node_multicast_is_one_send() {
        let m = Mesh::new(&[4, 4]);
        let cfg = SimConfig::paragon_like();
        let parts = [NodeId(0), NodeId(9)];
        let out = run_multicast(&m, &cfg, Algorithm::OptArch, &parts, NodeId(0), 256);
        assert_eq!(out.sim.messages.len(), 1);
        assert!(out.sim.contention_free());
    }

    #[test]
    fn nominal_hops_is_mean_distance() {
        let m = Mesh::new(&[6, 6]);
        let parts = [NodeId(0), NodeId(1), NodeId(3)];
        // Distances from 0: 1 and 3 → mean 2.
        assert_eq!(nominal_hops(&m, &parts, NodeId(0)), 2);
    }
}
