//! Scatter execution — personalized multicast on the flit-level simulator.
//!
//! The runtime is the multicast recursion with shrinking payloads: a send
//! delegating chain range `[lo, hi]` carries `(hi - lo + 1) · unit` bytes;
//! the receiver keeps its slice and forwards the rest.  Tree shape comes
//! from the size-aware scatter DP (`mtree::scatter`) by default, with any
//! [`SplitStrategy`] accepted for comparisons.

use flitsim::{Engine, Program, SendReq, SimConfig, SimResult};
use mtree::scatter::{scatter_latency, scatter_table};
use mtree::SplitStrategy;
use pcm::{LinearFn, MsgSize, Time};
use topo::{Chain, NodeId, Topology};

use crate::algorithm::Algorithm;
use crate::program::Range;
use crate::runner::nominal_hops;

/// The scatter runtime.
pub struct ScatterProgram {
    chain: Chain,
    splits: SplitStrategy,
    unit: MsgSize,
    pos_of: Vec<Option<u32>>,
    deliveries: usize,
}

impl ScatterProgram {
    /// Build over `chain` with per-destination payload `unit`.
    pub fn new(chain: Chain, splits: SplitStrategy, unit: MsgSize, n_nodes: usize) -> Self {
        let mut pos_of = vec![None; n_nodes];
        for (pos, &n) in chain.nodes().iter().enumerate() {
            pos_of[n.idx()] = Some(pos as u32);
        }
        Self {
            chain,
            splits,
            unit,
            pos_of,
            deliveries: 0,
        }
    }

    /// The sends node at position `s` performs for `[l, r]`; each message
    /// carries the whole delegated range's payload.
    pub fn sends_for(&self, s: usize, mut l: usize, mut r: usize) -> Vec<SendReq<Range>> {
        let mut out = Vec::new();
        while l < r {
            let i = r - l + 1;
            let j = self.splits.j(i);
            let (rec, d_lo, d_hi);
            if s < l + j {
                rec = l + j;
                d_lo = rec;
                d_hi = r;
                r = rec - 1;
            } else {
                rec = r - j;
                d_lo = l;
                d_hi = rec;
                l = rec + 1;
            }
            let range_size = (d_hi - d_lo + 1) as MsgSize;
            out.push(SendReq::to(
                self.chain.node(rec),
                range_size * self.unit,
                Range {
                    lo: d_lo as u32,
                    hi: d_hi as u32,
                },
            ));
        }
        out
    }

    /// Initial sends of the scatter root.
    pub fn root_sends(&self) -> Vec<SendReq<Range>> {
        if self.chain.len() <= 1 {
            return Vec::new();
        }
        self.sends_for(self.chain.src_pos(), 0, self.chain.len() - 1)
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.chain.node(self.chain.src_pos())
    }

    /// Deliveries so far.
    pub fn deliveries(&self) -> usize {
        self.deliveries
    }
}

impl Program for ScatterProgram {
    type Payload = Range;

    fn on_receive(&mut self, node: NodeId, range: &Range, _now: Time) -> Vec<SendReq<Range>> {
        self.deliveries += 1;
        let pos = self.pos_of[node.idx()].expect("delivery to a non-participant") as usize;
        self.sends_for(pos, range.lo as usize, range.hi as usize)
    }
}

/// Result of a scatter run.
#[derive(Debug)]
pub struct ScatterOutcome {
    /// Observed completion (root start → last destination owns its slice).
    pub latency: Time,
    /// The scatter DP's bound under the same size-aware cost model.
    pub analytic: Time,
    /// Raw simulation result.
    pub sim: SimResult,
}

/// The affine `(t_hold(m), t_end(m))` functions of a simulated machine, for
/// feeding the scatter DP.
pub fn model_functions(cfg: &SimConfig, hops: usize) -> (LinearFn, LinearFn) {
    let params = cfg.to_comm_params(hops as f64);
    (
        params.t_hold,
        // end(m) = t_send + per-hop + size terms; reconstruct as affine.
        LinearFn::new(
            params.t_send.base
                + params.t_recv.base
                + params.t_net_size.base
                + params.net_hops * params.per_hop,
            params.t_send.slope + params.t_recv.slope + params.t_net_size.slope,
        ),
    )
}

/// Run a scatter of `unit` bytes per destination using the size-aware
/// optimal tree (or binomial when `algorithm` asks for it), architecture
/// chain ordering throughout.
pub fn run_scatter(
    topo: &dyn Topology,
    cfg: &SimConfig,
    algorithm: Algorithm,
    participants: &[NodeId],
    src: NodeId,
    unit: MsgSize,
) -> ScatterOutcome {
    let k = participants.len();
    let hops = nominal_hops(topo, participants, src);
    let (hold_f, end_f) = model_functions(cfg, hops);
    let chain = algorithm.chain(topo, participants, src);
    let splits = match algorithm.split_kind() {
        crate::algorithm::SplitKind::Opt => scatter_table(&hold_f, &end_f, unit, k.max(2)).splits(),
        _ => algorithm.splits(hold_f.eval(unit), end_f.eval(unit), k.max(2)),
    };
    let analytic = scatter_latency(&splits, &hold_f, &end_f, unit, k.max(1));

    let program = ScatterProgram::new(chain, splits, unit, topo.graph().n_nodes());
    let root = program.root();
    let first = program.root_sends();
    let mut engine = Engine::new(topo, cfg.clone(), program);
    engine.start(root, 0, first);
    let (program, sim) = engine.run();
    assert_eq!(program.deliveries(), k - 1, "scatter lost messages");
    // A single-node scatter (k = 1) sends nothing and finishes at 0.
    ScatterOutcome {
        latency: sim.last_completion().unwrap_or(0),
        analytic,
        sim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::random_placement;
    use topo::Mesh;

    #[test]
    fn scatter_delivers_every_slice() {
        let m = Mesh::new(&[16, 16]);
        let cfg = SimConfig::paragon_like();
        for seed in 0..4u64 {
            let parts = random_placement(256, 16, seed);
            let out = run_scatter(&m, &cfg, Algorithm::OptArch, &parts, parts[0], 4096);
            assert_eq!(out.sim.messages.len(), 15, "seed {seed}");
            // Every destination's final message carries at least its slice.
            for &d in &parts[1..] {
                let rec = out.sim.delivered_to(d).expect("slice delivered");
                assert!(rec.bytes >= 4096);
            }
        }
    }

    #[test]
    fn scatter_optimal_tree_beats_binomial_in_sim() {
        let m = Mesh::new(&[16, 16]);
        let cfg = SimConfig::paragon_like();
        let (mut opt_total, mut bin_total) = (0u64, 0u64);
        for seed in 0..6u64 {
            let parts = random_placement(256, 32, seed);
            opt_total += run_scatter(&m, &cfg, Algorithm::OptArch, &parts, parts[0], 8192).latency;
            bin_total += run_scatter(&m, &cfg, Algorithm::UArch, &parts, parts[0], 8192).latency;
        }
        assert!(
            opt_total < bin_total,
            "opt {opt_total} vs binomial {bin_total}"
        );
    }

    #[test]
    fn scatter_meets_its_bound_when_contention_free() {
        let m = Mesh::new(&[16, 16]);
        let cfg = SimConfig::paragon_like();
        let parts = random_placement(256, 16, 9);
        let out = run_scatter(&m, &cfg, Algorithm::OptArch, &parts, parts[0], 2048);
        if out.sim.contention_free() {
            let err = (out.latency as i64 - out.analytic as i64).abs();
            assert!(err <= 80, "sim {} vs bound {}", out.latency, out.analytic);
        }
    }
}
