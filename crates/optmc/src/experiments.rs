//! The paper's experimental protocol: random processor placements and
//! multi-trial averaging.
//!
//! §5: "we perform 16 independent experiments with the same input
//! parameters, but different processor locations (randomly picked).  Each
//! data point ... is the average of the multicast latency from all 16
//! experiments."

use flitsim::SimConfig;
use pcm::{MsgSize, Time};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use topo::{NodeId, Topology};

use crate::algorithm::Algorithm;
use crate::runner::run_multicast;

// ---------------------------------------------------------------------------
// Seed derivation.
//
// Per-trial placement seeds are *mixed*, not added: `seed + t` makes the
// series for seed 1997 overlap the series for seed 1998 shifted by one, and
// couples unrelated experimental cells that happen to use nearby base
// seeds.  Instead every placement seed is
// `trial_seed(seed, placement_stream(topo, k), trial)` — a splitmix64 chain
// over (campaign seed, placement-cell identity, trial index).  The stream
// id is derived from exactly the parameters that determine a placement
// (topology identity and participant count), so all algorithms, message
// sizes, and simulator configurations of the same cell see identical
// placements (the paper's §5 protocol), while a campaign cell and a solo
// rerun of that cell are bit-identical by construction.

/// SplitMix64: the statistically strong 64-bit mixer used to derive seeds.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over `bytes` — stable content hashing for cell identities.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The placement-relevant identity of an experimental cell: topology name
/// and participant count.  Algorithms and message sizes deliberately do
/// *not* participate — the paper compares algorithms on identical
/// placements.
#[must_use]
pub fn placement_stream(topo_name: &str, k: usize) -> u64 {
    let mut key = topo_name.as_bytes().to_vec();
    key.push(b'#');
    key.extend_from_slice(&(k as u64).to_le_bytes());
    fnv1a64(&key)
}

/// Derive the placement seed for `trial` of the cell identified by
/// `stream` under campaign/base seed `seed` (a splitmix64 chain; shared by
/// [`run_trials`] and the `campaign` crate so solo and campaign runs of
/// the same cell are bit-identical).
#[must_use]
pub fn trial_seed(seed: u64, stream: u64, trial: usize) -> u64 {
    splitmix64(splitmix64(seed ^ splitmix64(stream)).wrapping_add(trial as u64))
}

/// Pick `k` distinct participant nodes (the first is a convenient source)
/// uniformly at random, in random order — the "placement order" the
/// architecture-independent OPT-tree has to live with.
pub fn random_placement(n_nodes: usize, k: usize, seed: u64) -> Vec<NodeId> {
    assert!(
        k <= n_nodes,
        "cannot place {k} participants on {n_nodes} nodes"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut all: Vec<NodeId> = (0..n_nodes as u32).map(NodeId).collect();
    all.shuffle(&mut rng);
    all.truncate(k);
    all
}

/// Aggregate over trials of one experimental point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialStats {
    /// Number of trials.
    pub trials: usize,
    /// Mean observed multicast latency.
    pub mean_latency: f64,
    /// Minimum / maximum observed latency.
    pub min_latency: Time,
    /// Maximum observed latency.
    pub max_latency: Time,
    /// Mean analytic (contention-free) latency of the constructed trees.
    pub mean_analytic: f64,
    /// Mean head-blocked cycles per run (contention overhead).
    pub mean_blocked: f64,
    /// Fraction of runs with zero blocking.
    pub contention_free_fraction: f64,
}

impl TrialStats {
    /// Aggregate per-trial outcomes in trial order (the arithmetic is
    /// order-stable, so parallel and sequential execution agree bit for
    /// bit).
    ///
    /// # Panics
    /// If `outcomes` is empty.
    #[must_use]
    pub fn from_outcomes(outcomes: &[TrialOutcome]) -> TrialStats {
        assert!(!outcomes.is_empty(), "cannot aggregate zero trials");
        let trials = outcomes.len();
        let latencies: Vec<Time> = outcomes.iter().map(|o| o.latency).collect();
        TrialStats {
            trials,
            mean_latency: latencies.iter().sum::<Time>() as f64 / trials as f64,
            min_latency: *latencies.iter().min().expect("at least one trial"),
            max_latency: *latencies.iter().max().expect("at least one trial"),
            mean_analytic: outcomes.iter().map(|o| o.analytic as f64).sum::<f64>() / trials as f64,
            mean_blocked: outcomes.iter().map(|o| o.blocked as f64).sum::<f64>() / trials as f64,
            contention_free_fraction: outcomes.iter().filter(|o| o.contention_free).count() as f64
                / trials as f64,
        }
    }
}

/// One trial of one experimental cell, with the engine vitals the
/// observability layer attaches to every run — the campaign runner uses
/// these for its progress metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Trial index within the cell.
    pub trial: usize,
    /// The derived placement seed ([`trial_seed`]).
    pub placement_seed: u64,
    /// Observed multicast latency (cycles).
    pub latency: Time,
    /// Analytic (contention-free) latency of the constructed tree.
    pub analytic: Time,
    /// Head-blocked cycles.
    pub blocked: Time,
    /// No head ever waited.
    pub contention_free: bool,
    /// Simulator events processed (deterministic).
    pub events: u64,
    /// Wall-clock nanoseconds inside the engine (non-deterministic).
    pub wall_ns: u64,
}

/// Run `trials` random placements of `k` participants, exactly mirroring
/// the paper's protocol, and return every trial's outcome in trial order.
/// `seed` makes the whole series reproducible; trial `i` uses placement
/// seed [`trial_seed`]`(seed, placement_stream(topo, k), i)` so all
/// algorithms see identical placements.
///
/// `workers` caps the scoped worker threads trials run on; `0` means one
/// per available core.  The result is identical for any worker count
/// (results land in fixed per-trial slots).
#[allow(clippy::too_many_arguments)]
pub fn run_trials_detailed(
    topo: &dyn Topology,
    cfg: &SimConfig,
    algorithm: Algorithm,
    k: usize,
    bytes: MsgSize,
    trials: usize,
    seed: u64,
    workers: usize,
) -> Vec<TrialOutcome> {
    assert!(trials >= 1);
    let stream = placement_stream(&topo.name(), k);
    let one = |t: usize| {
        let placement_seed = trial_seed(seed, stream, t);
        let placement = random_placement(topo.graph().n_nodes(), k, placement_seed);
        let src = placement[0];
        let out = run_multicast(topo, cfg, algorithm, &placement, src, bytes);
        TrialOutcome {
            trial: t,
            placement_seed,
            latency: out.latency,
            analytic: out.analytic,
            blocked: out.sim.blocked_cycles,
            contention_free: out.sim.contention_free(),
            events: out.sim.meta.events_processed,
            wall_ns: out.sim.meta.wall_ns,
        }
    };
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    } else {
        workers
    }
    .min(trials);
    if workers <= 1 {
        return (0..trials).map(one).collect();
    }
    // Static block partition: worker w takes trials [lo, hi); results land
    // in a fixed slot per trial, so aggregation order is stable.
    let mut results = vec![
        TrialOutcome {
            trial: 0,
            placement_seed: 0,
            latency: 0,
            analytic: 0,
            blocked: 0,
            contention_free: false,
            events: 0,
            wall_ns: 0,
        };
        trials
    ];
    std::thread::scope(|scope| {
        let chunk = trials.div_ceil(workers);
        for (w, slots) in results.chunks_mut(chunk).enumerate() {
            let one = &one;
            scope.spawn(move || {
                for (i, slot) in slots.iter_mut().enumerate() {
                    *slot = one(w * chunk + i);
                }
            });
        }
    });
    results
}

/// Run `trials` random placements of `k` participants and average, exactly
/// mirroring the paper's protocol (see [`run_trials_detailed`] for the
/// seed derivation and parallelism contract).
pub fn run_trials(
    topo: &dyn Topology,
    cfg: &SimConfig,
    algorithm: Algorithm,
    k: usize,
    bytes: MsgSize,
    trials: usize,
    seed: u64,
) -> TrialStats {
    TrialStats::from_outcomes(&run_trials_detailed(
        topo, cfg, algorithm, k, bytes, trials, seed, 0,
    ))
}

/// Deterministic jitter helper for tests and ablations: a placement biased
/// toward a sub-region (densities stress contention differently).
pub fn clustered_placement(n_nodes: usize, k: usize, cluster: usize, seed: u64) -> Vec<NodeId> {
    assert!(cluster <= n_nodes && k <= cluster.max(1));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let offset = if n_nodes > cluster {
        rng.gen_range(0..n_nodes - cluster)
    } else {
        0
    };
    let mut region: Vec<NodeId> = (offset..offset + cluster)
        .map(|i| NodeId(i as u32))
        .collect();
    region.shuffle(&mut rng);
    region.truncate(k);
    region
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::Mesh;

    #[test]
    fn placement_is_distinct_and_seeded() {
        let p1 = random_placement(256, 32, 7);
        let p2 = random_placement(256, 32, 7);
        let p3 = random_placement(256, 32, 8);
        assert_eq!(p1, p2, "same seed, same placement");
        assert_ne!(p1, p3, "different seed, different placement");
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 32, "participants must be distinct");
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn oversized_placement_panics() {
        random_placement(16, 17, 0);
    }

    #[test]
    fn trials_average_and_bound() {
        let m = Mesh::new(&[8, 8]);
        let cfg = SimConfig::paragon_like();
        let s = run_trials(&m, &cfg, Algorithm::OptArch, 8, 512, 4, 42);
        assert_eq!(s.trials, 4);
        assert!(s.min_latency as f64 <= s.mean_latency);
        assert!(s.mean_latency <= s.max_latency as f64);
        assert!(s.mean_analytic > 0.0);
    }

    #[test]
    fn trial_seeds_are_mixed_not_added() {
        // The old `seed + t` derivation made (1997, t=1) collide with
        // (1998, t=0); the splitmix chain must not.
        let s = placement_stream("mesh-16x16", 32);
        assert_ne!(trial_seed(1997, s, 1), trial_seed(1998, s, 0));
        // Deterministic, distinct across trials and streams.
        assert_eq!(trial_seed(7, s, 3), trial_seed(7, s, 3));
        assert_ne!(trial_seed(7, s, 3), trial_seed(7, s, 4));
        assert_ne!(
            trial_seed(7, placement_stream("mesh-16x16", 32), 0),
            trial_seed(7, placement_stream("bmin-128", 32), 0)
        );
    }

    #[test]
    fn placements_are_shared_across_algorithms_and_sizes() {
        // The paper's protocol: one cell's placements depend only on
        // (topology, k, seed) — identical for every algorithm and message
        // size.
        let m = Mesh::new(&[8, 8]);
        let cfg = SimConfig::paragon_like();
        let a = run_trials_detailed(&m, &cfg, Algorithm::OptArch, 8, 512, 3, 42, 1);
        let b = run_trials_detailed(&m, &cfg, Algorithm::UArch, 8, 4096, 3, 42, 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.placement_seed, y.placement_seed);
        }
    }

    #[test]
    fn detailed_trials_are_worker_count_invariant() {
        let m = Mesh::new(&[8, 8]);
        let cfg = SimConfig::paragon_like();
        let seq = run_trials_detailed(&m, &cfg, Algorithm::OptArch, 8, 512, 5, 42, 1);
        let par = run_trials_detailed(&m, &cfg, Algorithm::OptArch, 8, 512, 5, 42, 4);
        // wall_ns is non-deterministic; everything else must agree.
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.trial, b.trial);
            assert_eq!(a.placement_seed, b.placement_seed);
            assert_eq!(a.latency, b.latency);
            assert_eq!(a.analytic, b.analytic);
            assert_eq!(a.blocked, b.blocked);
            assert_eq!(a.events, b.events);
        }
        assert_eq!(
            TrialStats::from_outcomes(&seq),
            TrialStats::from_outcomes(&par)
        );
    }

    #[test]
    fn clustered_placement_is_contained() {
        let p = clustered_placement(256, 16, 32, 3);
        assert_eq!(p.len(), 16);
        let min = p.iter().map(|n| n.0).min().unwrap();
        let max = p.iter().map(|n| n.0).max().unwrap();
        assert!(max - min < 32);
    }
}
