//! The paper's experimental protocol: random processor placements and
//! multi-trial averaging.
//!
//! §5: "we perform 16 independent experiments with the same input
//! parameters, but different processor locations (randomly picked).  Each
//! data point ... is the average of the multicast latency from all 16
//! experiments."

use flitsim::SimConfig;
use pcm::{MsgSize, Time};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use topo::{NodeId, Topology};

use crate::algorithm::Algorithm;
use crate::runner::run_multicast;

/// Pick `k` distinct participant nodes (the first is a convenient source)
/// uniformly at random, in random order — the "placement order" the
/// architecture-independent OPT-tree has to live with.
pub fn random_placement(n_nodes: usize, k: usize, seed: u64) -> Vec<NodeId> {
    assert!(
        k <= n_nodes,
        "cannot place {k} participants on {n_nodes} nodes"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut all: Vec<NodeId> = (0..n_nodes as u32).map(NodeId).collect();
    all.shuffle(&mut rng);
    all.truncate(k);
    all
}

/// Aggregate over trials of one experimental point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialStats {
    /// Number of trials.
    pub trials: usize,
    /// Mean observed multicast latency.
    pub mean_latency: f64,
    /// Minimum / maximum observed latency.
    pub min_latency: Time,
    /// Maximum observed latency.
    pub max_latency: Time,
    /// Mean analytic (contention-free) latency of the constructed trees.
    pub mean_analytic: f64,
    /// Mean head-blocked cycles per run (contention overhead).
    pub mean_blocked: f64,
    /// Fraction of runs with zero blocking.
    pub contention_free_fraction: f64,
}

/// Run `trials` random placements of `k` participants and average, exactly
/// mirroring the paper's protocol.  `seed` makes the whole series
/// reproducible; trial `i` uses placement seed `seed + i` so all algorithms
/// see identical placements.
///
/// Trials are independent simulations, so they run on scoped worker threads
/// (one per available core); results are aggregated in seed order, keeping
/// the statistics bit-identical to a sequential run.
pub fn run_trials(
    topo: &dyn Topology,
    cfg: &SimConfig,
    algorithm: Algorithm,
    k: usize,
    bytes: MsgSize,
    trials: usize,
    seed: u64,
) -> TrialStats {
    assert!(trials >= 1);
    let one = |t: usize| {
        let placement = random_placement(topo.graph().n_nodes(), k, seed + t as u64);
        let src = placement[0];
        let out = run_multicast(topo, cfg, algorithm, &placement, src, bytes);
        (
            out.latency,
            out.analytic,
            out.sim.blocked_cycles,
            out.sim.contention_free(),
        )
    };
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZero::get)
        .min(trials);
    let results: Vec<(Time, Time, Time, bool)> = if workers <= 1 {
        (0..trials).map(one).collect()
    } else {
        // Static block partition: worker w takes trials [lo, hi); results
        // land in a fixed slot per trial, so aggregation order is stable.
        let mut results = vec![(0, 0, 0, false); trials];
        std::thread::scope(|scope| {
            let chunk = trials.div_ceil(workers);
            for (w, slots) in results.chunks_mut(chunk).enumerate() {
                let one = &one;
                scope.spawn(move || {
                    for (i, slot) in slots.iter_mut().enumerate() {
                        *slot = one(w * chunk + i);
                    }
                });
            }
        });
        results
    };
    let latencies: Vec<Time> = results.iter().map(|r| r.0).collect();
    TrialStats {
        trials,
        mean_latency: latencies.iter().sum::<Time>() as f64 / trials as f64,
        min_latency: *latencies.iter().min().expect("at least one trial"),
        max_latency: *latencies.iter().max().expect("at least one trial"),
        mean_analytic: results.iter().map(|r| r.1 as f64).sum::<f64>() / trials as f64,
        mean_blocked: results.iter().map(|r| r.2 as f64).sum::<f64>() / trials as f64,
        contention_free_fraction: results.iter().filter(|r| r.3).count() as f64 / trials as f64,
    }
}

/// Deterministic jitter helper for tests and ablations: a placement biased
/// toward a sub-region (densities stress contention differently).
pub fn clustered_placement(n_nodes: usize, k: usize, cluster: usize, seed: u64) -> Vec<NodeId> {
    assert!(cluster <= n_nodes && k <= cluster.max(1));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let offset = if n_nodes > cluster {
        rng.gen_range(0..n_nodes - cluster)
    } else {
        0
    };
    let mut region: Vec<NodeId> = (offset..offset + cluster)
        .map(|i| NodeId(i as u32))
        .collect();
    region.shuffle(&mut rng);
    region.truncate(k);
    region
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::Mesh;

    #[test]
    fn placement_is_distinct_and_seeded() {
        let p1 = random_placement(256, 32, 7);
        let p2 = random_placement(256, 32, 7);
        let p3 = random_placement(256, 32, 8);
        assert_eq!(p1, p2, "same seed, same placement");
        assert_ne!(p1, p3, "different seed, different placement");
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 32, "participants must be distinct");
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn oversized_placement_panics() {
        random_placement(16, 17, 0);
    }

    #[test]
    fn trials_average_and_bound() {
        let m = Mesh::new(&[8, 8]);
        let cfg = SimConfig::paragon_like();
        let s = run_trials(&m, &cfg, Algorithm::OptArch, 8, 512, 4, 42);
        assert_eq!(s.trials, 4);
        assert!(s.min_latency as f64 <= s.mean_latency);
        assert!(s.mean_latency <= s.max_latency as f64);
        assert!(s.mean_analytic > 0.0);
    }

    #[test]
    fn clustered_placement_is_contained() {
        let p = clustered_placement(256, 16, 32, 3);
        assert_eq!(p.len(), 16);
        let min = p.iter().map(|n| n.0).min().unwrap();
        let max = p.iter().map(|n| n.0).max().unwrap();
        assert!(max - min < 32);
    }
}
