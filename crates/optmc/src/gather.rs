//! Gather — the dual collective: every participant sends one message to the
//! root, combined up the same trees the multicast uses.
//!
//! The parameterized model is symmetric in send and receive (§2.1 defines
//! `t_hold` over "any two consecutive send **or receive** operations"), so
//! reversing an optimal multicast tree gives a gather tree with the *same*
//! completion bound `t[k]` — when the leaves follow the mirrored stagger.
//! This implementation is *eager* (leaves transmit at t = 0) — earlier
//! starts can only help — yet measured gather sits *above* the bound on
//! OPT-shaped trees, because the symmetry is imperfect in two physical
//! ways: receives serialise on the single CPU at `t_recv(m)` intervals
//! (and `t_recv > t_hold` in realistic stacks, so the gather-side "hold"
//! is worse than the multicast-side one), and the reversed traffic uses
//! the opposite-direction channels — on a mesh the XY path from child to
//! parent is not the reverse of the XY path from parent to child (that
//! would be YX), so gather has its own contention behaviour.  Both effects
//! are measured by the tests and the `gather_study` experiment rather than
//! assumed.

use flitsim::{Engine, Program, SendReq, SimConfig, SimResult};
use mtree::{MulticastTree, Schedule};
use pcm::{MsgSize, Time};
use topo::{NodeId, Topology};

use crate::algorithm::Algorithm;
use crate::runner::nominal_hops;

/// The gather runtime: leaves send immediately; an internal node forwards
/// to its parent once all children have arrived.
pub struct GatherProgram {
    /// Parent of each node (dense by NodeId), `None` off-tree or at root.
    parent: Vec<Option<NodeId>>,
    /// Outstanding child messages per node.
    pending: Vec<usize>,
    bytes: MsgSize,
    root: NodeId,
    deliveries: usize,
}

impl GatherProgram {
    /// Build from a multicast tree over `chain` (reversing its edges).
    pub fn from_tree(
        tree: &MulticastTree,
        chain_nodes: &[NodeId],
        n_nodes: usize,
        bytes: MsgSize,
    ) -> Self {
        let mut parent = vec![None; n_nodes];
        let mut pending = vec![0usize; n_nodes];
        for pos in 0..tree.k {
            let node = chain_nodes[pos];
            if let Some(par) = tree.parent[pos] {
                parent[node.idx()] = Some(chain_nodes[par]);
            }
            pending[node.idx()] = tree.children[pos].len();
        }
        Self {
            parent,
            pending,
            bytes,
            root: chain_nodes[tree.root],
            deliveries: 0,
        }
    }

    /// The nodes that may transmit at time zero (tree leaves).
    pub fn leaves(&self, chain_nodes: &[NodeId]) -> Vec<NodeId> {
        chain_nodes
            .iter()
            .copied()
            .filter(|n| self.pending[n.idx()] == 0 && *n != self.root)
            .collect()
    }

    /// Messages absorbed so far.
    pub fn deliveries(&self) -> usize {
        self.deliveries
    }

    fn send_up(&self, node: NodeId) -> Vec<SendReq<()>> {
        match self.parent[node.idx()] {
            Some(p) => vec![SendReq::to(p, self.bytes, ())],
            None => Vec::new(),
        }
    }
}

impl Program for GatherProgram {
    type Payload = ();

    fn on_receive(&mut self, node: NodeId, _payload: &(), _now: Time) -> Vec<SendReq<()>> {
        self.deliveries += 1;
        debug_assert!(
            self.pending[node.idx()] > 0,
            "unexpected message at {node:?}"
        );
        self.pending[node.idx()] -= 1;
        if self.pending[node.idx()] == 0 {
            self.send_up(node)
        } else {
            Vec::new()
        }
    }
}

/// Result of a gather run.
#[derive(Debug)]
pub struct GatherOutcome {
    /// Observed completion: all k−1 messages absorbed at the root.
    pub latency: Time,
    /// The multicast bound `t[k]` of the same tree — the model's symmetric
    /// prediction.
    pub analytic: Time,
    /// Raw simulation result.
    pub sim: SimResult,
}

/// Run a gather into `root` over `algorithm`'s tree.
///
/// # Panics
/// If `participants` lacks `root` or holds duplicates.
pub fn run_gather(
    topo: &dyn Topology,
    cfg: &SimConfig,
    algorithm: Algorithm,
    participants: &[NodeId],
    root: NodeId,
    bytes: MsgSize,
) -> GatherOutcome {
    let k = participants.len();
    let hops = nominal_hops(topo, participants, root);
    let (hold, end) = cfg.effective_pair_ports(hops, bytes, topo.graph().ports() as u64);
    let chain = algorithm.chain(topo, participants, root);
    let splits = algorithm.splits(hold, end, k.max(2));
    let schedule = Schedule::build(k, chain.src_pos(), &splits, hold, end);
    let analytic = schedule.latency();
    let tree = MulticastTree::from_schedule(&schedule);
    let chain_nodes = chain.nodes().to_vec();

    let program = GatherProgram::from_tree(&tree, &chain_nodes, topo.graph().n_nodes(), bytes);
    let leaves = program.leaves(&chain_nodes);
    let mut engine = Engine::new(topo, cfg.clone(), program);
    for leaf in leaves {
        let up = GatherProgram::from_tree(&tree, &chain_nodes, topo.graph().n_nodes(), bytes)
            .send_up(leaf);
        engine.start(leaf, 0, up);
    }
    let (program, sim) = engine.run();
    assert_eq!(program.deliveries(), k - 1, "gather lost messages");
    // A single-node gather (k = 1) sends nothing and finishes at 0.
    GatherOutcome {
        latency: sim.last_completion().unwrap_or(0),
        analytic,
        sim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::random_placement;
    use topo::{Bmin, Mesh, UpPolicy};

    #[test]
    fn gather_collects_everything_on_mesh() {
        let m = Mesh::new(&[8, 8]);
        let cfg = SimConfig::paragon_like();
        for seed in 0..5u64 {
            let parts = random_placement(64, 12, seed);
            let out = run_gather(&m, &cfg, Algorithm::OptArch, &parts, parts[0], 2048);
            assert_eq!(out.sim.messages.len(), 11, "seed {seed}");
            // Eager gather is bracketed by the single-message floor and the
            // mirrored multicast bound inflated by the t_recv/t_hold
            // asymmetry (see module docs): receives gate on t_recv where
            // the bound assumed t_hold, costing ~(t_recv-t_hold) per level.
            let floor = cfg.predict_p2p(1, 2048);
            assert!(
                out.latency >= floor,
                "seed {seed}: {} under the floor",
                out.latency
            );
            assert!(
                out.latency <= out.analytic + out.analytic / 4,
                "seed {seed}: gather {} far above bound {}",
                out.latency,
                out.analytic
            );
        }
    }

    #[test]
    fn gather_works_on_bmin() {
        let b = Bmin::new(5, UpPolicy::Straight);
        let cfg = SimConfig::paragon_like();
        let parts = random_placement(32, 10, 3);
        let out = run_gather(&b, &cfg, Algorithm::OptArch, &parts, parts[0], 4096);
        assert_eq!(out.sim.messages.len(), 9);
    }

    #[test]
    fn two_node_gather_is_one_send() {
        let m = Mesh::new(&[4, 4]);
        let cfg = SimConfig::paragon_like();
        let parts = [topo::NodeId(3), topo::NodeId(12)];
        let out = run_gather(&m, &cfg, Algorithm::OptArch, &parts, parts[0], 64);
        assert_eq!(out.sim.messages.len(), 1);
        assert!(out.sim.contention_free());
    }

    /// Gather and multicast use the same tree, so their analytic bounds
    /// agree — the model's send/receive symmetry.
    #[test]
    fn gather_bound_equals_multicast_bound() {
        let m = Mesh::new(&[8, 8]);
        let cfg = SimConfig::paragon_like();
        let parts = random_placement(64, 16, 9);
        let g = run_gather(&m, &cfg, Algorithm::OptArch, &parts, parts[0], 2048);
        let mc = crate::run_multicast(&m, &cfg, Algorithm::OptArch, &parts, parts[0], 2048);
        assert_eq!(g.analytic, mc.analytic);
    }
}
