//! Chains — ordered sequences of the participating nodes.
//!
//! The architecture-dependent tuning of the paper is *precisely* the choice
//! of this order: OPT-mesh sorts participants into the dimension-ordered
//! chain, OPT-min into the lexicographic chain, while the portable OPT-tree
//! leaves them in whatever order the caller supplied (and pays for it with
//! contention).

use serde::{Deserialize, Serialize};

use crate::graph::NodeId;
use crate::topology::Topology;

/// Why a participant list could not be turned into a [`Chain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainError {
    /// A node appears more than once among the participants.
    Duplicate(NodeId),
    /// The multicast source is not among the participants.
    MissingSource(NodeId),
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::Duplicate(n) => write!(f, "duplicate participant {n:?}"),
            ChainError::MissingSource(n) => {
                write!(f, "source {n:?} not among the participants")
            }
        }
    }
}

impl std::error::Error for ChainError {}

/// An ordered chain of participants with the source's position.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chain {
    nodes: Vec<NodeId>,
    src_pos: usize,
}

impl Chain {
    /// Build a chain in the topology's architecture order (dimension-ordered
    /// for meshes, lexicographic for BMINs).  `participants` must contain
    /// `src` exactly once and no duplicates.
    ///
    /// # Panics
    /// If `participants` has duplicates or does not contain `src`.  Use
    /// [`Chain::try_sorted`] for a typed error instead.
    pub fn sorted<T: Topology + ?Sized>(topo: &T, participants: &[NodeId], src: NodeId) -> Self {
        Self::try_sorted(topo, participants, src).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Chain::sorted`].
    pub fn try_sorted<T: Topology + ?Sized>(
        topo: &T,
        participants: &[NodeId],
        src: NodeId,
    ) -> Result<Self, ChainError> {
        let mut nodes = participants.to_vec();
        topo.sort_chain(&mut nodes);
        Self::try_from_ordered(nodes, src)
    }

    /// Build a chain that keeps the caller's order — the
    /// architecture-independent configuration (paper §2.2: node order
    /// unspecified, so a portable library sees arrival order).
    ///
    /// # Panics
    /// If `participants` has duplicates or does not contain `src`.  Use
    /// [`Chain::try_unsorted`] for a typed error instead.
    pub fn unsorted(participants: &[NodeId], src: NodeId) -> Self {
        Self::try_unsorted(participants, src).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Chain::unsorted`].
    pub fn try_unsorted(participants: &[NodeId], src: NodeId) -> Result<Self, ChainError> {
        Self::try_from_ordered(participants.to_vec(), src)
    }

    fn try_from_ordered(nodes: Vec<NodeId>, src: NodeId) -> Result<Self, ChainError> {
        for (i, n) in nodes.iter().enumerate() {
            if nodes[..i].contains(n) {
                return Err(ChainError::Duplicate(*n));
            }
        }
        let src_pos = nodes
            .iter()
            .position(|&n| n == src)
            .ok_or(ChainError::MissingSource(src))?;
        Ok(Self { nodes, src_pos })
    }

    /// Number of participants (source included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the chain holds just the source.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Chain position of the source.
    pub fn src_pos(&self) -> usize {
        self.src_pos
    }

    /// Node at a chain position.
    pub fn node(&self, pos: usize) -> NodeId {
        self.nodes[pos]
    }

    /// All nodes in chain order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh;

    #[test]
    fn sorted_chain_orders_by_key() {
        let m = Mesh::new(&[4, 4]);
        // Keys are X-major on a 4x4 mesh: 5=(1,1)->5, 9=(1,2)->6,
        // 2=(2,0)->8, 14=(2,3)->11.
        let parts = [NodeId(9), NodeId(2), NodeId(14), NodeId(5)];
        let c = Chain::sorted(&m, &parts, NodeId(9));
        assert_eq!(c.nodes(), &[NodeId(5), NodeId(9), NodeId(2), NodeId(14)]);
        assert_eq!(c.src_pos(), 1);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn unsorted_chain_preserves_order() {
        let parts = [NodeId(9), NodeId(2), NodeId(14)];
        let c = Chain::unsorted(&parts, NodeId(14));
        assert_eq!(c.nodes(), &parts);
        assert_eq!(c.src_pos(), 2);
    }

    #[test]
    #[should_panic(expected = "not among the participants")]
    fn missing_source_panics() {
        Chain::unsorted(&[NodeId(1), NodeId(2)], NodeId(3));
    }

    #[test]
    #[should_panic(expected = "duplicate participant")]
    fn duplicate_panics() {
        Chain::unsorted(&[NodeId(1), NodeId(1)], NodeId(1));
    }

    #[test]
    fn try_variants_return_typed_errors() {
        assert_eq!(
            Chain::try_unsorted(&[NodeId(1), NodeId(2)], NodeId(3)),
            Err(ChainError::MissingSource(NodeId(3)))
        );
        assert_eq!(
            Chain::try_unsorted(&[NodeId(1), NodeId(1)], NodeId(1)),
            Err(ChainError::Duplicate(NodeId(1)))
        );
        let m = Mesh::new(&[4, 4]);
        assert!(Chain::try_sorted(&m, &[NodeId(2), NodeId(5)], NodeId(5)).is_ok());
    }

    #[test]
    fn singleton_chain() {
        let c = Chain::unsorted(&[NodeId(7)], NodeId(7));
        assert!(c.is_empty());
        assert_eq!(c.src_pos(), 0);
    }
}
