//! n-dimensional mesh with dimension-ordered (e-cube / XY) routing.
//!
//! The paper's mesh experiments use a 16×16 2-D mesh with XY routing and a
//! one-port architecture (§5).  We implement the general n-dimensional mesh
//! of §3: node addresses are mixed-radix digit strings
//! `δ_{n-1}(x) … δ_0(x)`, e-cube routing corrects the lowest differing digit
//! first (X before Y in 2-D), and the *dimension-ordered* relation `<_d`
//! orders nodes so that the first-routed dimension is the most significant
//! chain digit (see [`crate::Topology::chain_key`] below for why that
//! pairing, and only that pairing, keeps disjoint chain intervals on
//! disjoint channels).

use crate::graph::{ChannelId, NetworkGraph, NodeId, RouterId};
use crate::route_table::{RouteCache, RouteTable};
use crate::topology::Topology;

/// An n-dimensional mesh. Each node has a dedicated router; routers connect
/// to neighbours along each dimension in both directions.
#[derive(Debug, Clone)]
pub struct Mesh {
    dims: Vec<usize>,
    ports: usize,
    graph: NetworkGraph,
    /// `links[(router * ndim + dim) * 2 + dir]`, `dir` 0 = toward higher
    /// coordinate, 1 = toward lower.
    links: Vec<Option<ChannelId>>,
    routes: RouteCache,
}

impl Mesh {
    /// Build a mesh with the given side lengths (e.g. `&[16, 16]` for the
    /// paper's 16×16 network).  Dimension 0 varies fastest in the node index
    /// and is resolved first by the router (the "X" of XY routing).
    ///
    /// # Panics
    /// If `dims` is empty or any side length is zero.
    pub fn new(dims: &[usize]) -> Self {
        Self::with_ports(dims, 1)
    }

    /// A mesh whose nodes have `ports` injection and `ports` consumption
    /// channels — the multi-port NI ablation (the paper's experiments use
    /// the one-port architecture, `ports = 1`).
    pub fn with_ports(dims: &[usize], ports: usize) -> Self {
        assert!(!dims.is_empty(), "a mesh needs at least one dimension");
        assert!(dims.iter().all(|&m| m > 0), "side lengths must be positive");
        assert!(ports >= 1, "a node needs at least one NI port");
        let n: usize = dims.iter().product();
        let ndim = dims.len();
        let mut b = NetworkGraph::builder(n, n);
        for i in 0..n {
            for _ in 0..ports {
                b.injection(NodeId(i as u32), RouterId(i as u32));
                b.consumption(NodeId(i as u32), RouterId(i as u32));
            }
        }
        let mut links = vec![None; n * ndim * 2];
        let dims_v = dims.to_vec();
        for r in 0..n {
            let c = coords_of(&dims_v, r);
            for d in 0..ndim {
                // +1 neighbour.
                if c[d] + 1 < dims_v[d] {
                    let mut nc = c.clone();
                    nc[d] += 1;
                    let nb = index_of(&dims_v, &nc);
                    links[(r * ndim + d) * 2] =
                        Some(b.link(RouterId(r as u32), RouterId(nb as u32)));
                }
                // -1 neighbour.
                if c[d] > 0 {
                    let mut nc = c.clone();
                    nc[d] -= 1;
                    let nb = index_of(&dims_v, &nc);
                    links[(r * ndim + d) * 2 + 1] =
                        Some(b.link(RouterId(r as u32), RouterId(nb as u32)));
                }
            }
        }
        Self {
            dims: dims_v,
            ports,
            graph: b.build(),
            links,
            routes: RouteCache::default(),
        }
    }

    /// A binary `d`-cube: the mesh `[2; d]`.  E-cube routing on it is the
    /// classic hypercube dimension-ordered routing, and the dimension-
    /// ordered chain is the one the original U-cube algorithm (McKinley et
    /// al.) uses — the historical root of the U-mesh/OPT-mesh family.
    pub fn hypercube(d: usize) -> Self {
        assert!(d >= 1, "a hypercube needs at least one dimension");
        Self::new(&vec![2; d])
    }

    /// Side lengths.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Coordinates (digit string, `δ_0` first) of a node.
    pub fn coords(&self, n: NodeId) -> Vec<usize> {
        coords_of(&self.dims, n.idx())
    }

    /// Node at the given coordinates.
    ///
    /// # Panics
    /// If the coordinate count or any coordinate is out of range.
    pub fn node_at(&self, coords: &[usize]) -> NodeId {
        assert_eq!(coords.len(), self.dims.len());
        for (d, (&c, &m)) in coords.iter().zip(&self.dims).enumerate() {
            assert!(c < m, "coordinate {c} out of range in dimension {d}");
        }
        NodeId(index_of(&self.dims, coords) as u32)
    }

    /// Manhattan distance between two nodes (the e-cube hop count).
    pub fn manhattan(&self, a: NodeId, b: NodeId) -> usize {
        self.coords(a)
            .iter()
            .zip(self.coords(b))
            .map(|(&x, y)| x.abs_diff(y))
            .sum()
    }

    fn link(&self, r: RouterId, dim: usize, toward_higher: bool) -> ChannelId {
        self.links[(r.idx() * self.dims.len() + dim) * 2 + usize::from(!toward_higher)]
            .expect("e-cube routing never walks off the mesh edge")
    }
}

fn coords_of(dims: &[usize], mut idx: usize) -> Vec<usize> {
    dims.iter()
        .map(|&m| {
            let c = idx % m;
            idx /= m;
            c
        })
        .collect()
}

fn index_of(dims: &[usize], coords: &[usize]) -> usize {
    let mut idx = 0;
    let mut stride = 1;
    for (&c, &m) in coords.iter().zip(dims) {
        idx += c * stride;
        stride *= m;
    }
    idx
}

impl Topology for Mesh {
    fn graph(&self) -> &NetworkGraph {
        &self.graph
    }

    fn route_candidates(&self, r: RouterId, _src: NodeId, dest: NodeId, out: &mut Vec<ChannelId>) {
        // Router r is co-located with node r in a mesh.
        let here = coords_of(&self.dims, r.idx());
        let there = self.coords(dest);
        for d in 0..self.dims.len() {
            if here[d] != there[d] {
                out.push(self.link(r, d, there[d] > here[d]));
                return;
            }
        }
        out.extend_from_slice(self.graph.consumptions(dest));
    }

    fn route_table(&self) -> &RouteTable {
        // E-cube routing ignores the source; src = dest is a placeholder.
        self.routes.get_or_build(|| {
            RouteTable::src_invariant(&self.graph, |r, dest, out| {
                self.route_candidates(r, dest, dest, out);
            })
        })
    }

    fn chain_key(&self, n: NodeId) -> u64 {
        // The chain's most significant digit must be the dimension e-cube
        // resolves FIRST (dimension 0, the "X" of XY routing): a worm leaves
        // its source's X-column region immediately and approaches the
        // destination within it, so sends confined to disjoint chain
        // intervals stay on disjoint channels.  (With the opposite pairing a
        // chain-downward send sweeps across the sender's row and collides
        // with up-chain traffic — verified by the contention checker.)
        let c = self.coords(n);
        let mut key = 0u64;
        for (&dim, &coord) in self.dims.iter().zip(&c) {
            key = key * dim as u64 + coord as u64;
        }
        key
    }

    fn name(&self) -> String {
        let dims: Vec<String> = self
            .dims
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        if self.ports == 1 {
            format!("mesh-{}", dims.join("x"))
        } else {
            format!("mesh-{}-{}port", dims.join("x"), self.ports)
        }
    }

    fn max_path_channels(&self) -> usize {
        // Dimension-ordered routing: at most (side - 1) hops per dimension,
        // plus the injection and consumption channels.
        self.dims.iter().map(|&m| m - 1).sum::<usize>() + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::shared_channel;

    #[test]
    fn sizes() {
        let m = Mesh::new(&[16, 16]);
        assert_eq!(m.graph().n_nodes(), 256);
        assert_eq!(m.graph().n_routers(), 256);
        // 2 ports per node + 2 directed channels per internal edge:
        // edges = 2 * 16*15 per dimension pair... count explicitly:
        // per dimension: 15*16 undirected links → 2 directed each, 2 dims.
        assert_eq!(m.graph().n_channels(), 2 * 256 + 2 * (2 * 15 * 16));
    }

    #[test]
    fn coords_roundtrip() {
        let m = Mesh::new(&[4, 3, 2]);
        for i in 0..24u32 {
            let c = m.coords(NodeId(i));
            assert_eq!(m.node_at(&c), NodeId(i));
        }
    }

    #[test]
    fn xy_routing_goes_x_first() {
        let m = Mesh::new(&[6, 6]);
        // From (0,0) to (3,2): path visits (1,0),(2,0),(3,0),(3,1),(3,2).
        let src = m.node_at(&[0, 0]);
        let dst = m.node_at(&[3, 2]);
        let path = m.det_path(src, dst);
        // injection + 5 hops + consumption = 7 channels.
        assert_eq!(path.len(), 7);
        assert_eq!(m.distance(src, dst), m.manhattan(src, dst));
        // The second-to-last router channel must enter router (3,2).
        let g = m.graph();
        assert_eq!(g.dst_node(*path.last().unwrap()), Some(dst));
    }

    #[test]
    fn one_dim_mesh_is_a_line() {
        let m = Mesh::new(&[8]);
        let path = m.det_path(NodeId(1), NodeId(5));
        assert_eq!(path.len(), 2 + 4);
        assert_eq!(m.distance(NodeId(7), NodeId(0)), 7);
    }

    #[test]
    fn chain_is_column_major() {
        let m = Mesh::new(&[4, 4]);
        // The first-routed dimension (X) dominates the chain order:
        // (x=0,y=3) <_d (x=1,y=0).
        assert!(m.chain_key(m.node_at(&[0, 3])) < m.chain_key(m.node_at(&[1, 0])));
        // Same column: Y decides.
        assert!(m.chain_key(m.node_at(&[2, 1])) < m.chain_key(m.node_at(&[2, 2])));
    }

    /// Row-interval separation: XY paths between nodes drawn from disjoint
    /// *row bands* never share a channel (a path touches only the sender's
    /// row and the column segment between the two rows, all inside the
    /// band's hull).  This is the geometric core the U-mesh/OPT-mesh
    /// orderings exploit; the full schedule-level contention-freedom check
    /// lives in the `optmc` crate.
    #[test]
    fn disjoint_row_bands_have_disjoint_paths() {
        let m = Mesh::new(&[4, 4]);
        // Band 1: rows 0-1 (chain positions 0..8); band 2: rows 2-3.
        let band1: Vec<u32> = (0..8).collect();
        let band2: Vec<u32> = (8..16).collect();
        for &a in &band1 {
            for &b in &band1 {
                if a == b {
                    continue;
                }
                let p1 = m.det_path(NodeId(a), NodeId(b));
                for &c in &band2 {
                    for &d in &band2 {
                        if c == d {
                            continue;
                        }
                        let p2 = m.det_path(NodeId(c), NodeId(d));
                        assert_eq!(shared_channel(&p1, &p2), None, "({a}->{b}) vs ({c}->{d})");
                    }
                }
            }
        }
    }

    /// Every XY path stays inside the bounding box of its endpoints.
    #[test]
    fn paths_stay_in_bounding_box() {
        let m = Mesh::new(&[5, 4]);
        let g = m.graph();
        for a in 0..20u32 {
            for b in 0..20u32 {
                if a == b {
                    continue;
                }
                let (ca, cb) = (m.coords(NodeId(a)), m.coords(NodeId(b)));
                for ch in m.det_path(NodeId(a), NodeId(b)) {
                    if let Some(r) = g.dst_router(ch) {
                        let rc = m.coords(NodeId(r.0));
                        for d in 0..2 {
                            let (lo, hi) = (ca[d].min(cb[d]), ca[d].max(cb[d]));
                            assert!(
                                rc[d] >= lo && rc[d] <= hi,
                                "path {a}->{b} leaves its box at {rc:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn hypercube_is_binary_mesh() {
        let h = Mesh::hypercube(5);
        assert_eq!(h.graph().n_nodes(), 32);
        // E-cube distance == Hamming distance.
        for a in 0..32u32 {
            for b in 0..32u32 {
                let hamming = (a ^ b).count_ones() as usize;
                assert_eq!(h.manhattan(NodeId(a), NodeId(b)), hamming);
                if a != b {
                    assert_eq!(h.distance(NodeId(a), NodeId(b)), hamming);
                }
            }
        }
    }

    #[test]
    fn hypercube_chain_is_bit_reversed_order() {
        // Chain key folds coordinates lowest-dimension-most-significant, so
        // on a binary cube it is the bit-reversed address — still a total
        // order pairing with e-cube routing.
        let h = Mesh::hypercube(3);
        let mut keys: Vec<u64> = (0..8u32).map(|n| h.chain_key(NodeId(n))).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 8, "chain keys must be distinct");
        // Node 1 (bit 0 set) has the most significant digit set: largest key
        // among single-bit addresses.
        assert!(h.chain_key(NodeId(1)) > h.chain_key(NodeId(4)));
    }

    #[test]
    #[should_panic(expected = "no path from a node to itself")]
    fn self_path_panics() {
        Mesh::new(&[4, 4]).det_path(NodeId(3), NodeId(3));
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_dims_panics() {
        Mesh::new(&[]);
    }
}
