//! # `topo` — wormhole network topologies
//!
//! The two network architectures the paper tunes for, plus the graph- and
//! routing-level machinery the flit-level simulator (`flitsim`) and the
//! static contention checker (`optmc`) need:
//!
//! * [`mesh::Mesh`] — an n-dimensional mesh with dimension-ordered (e-cube;
//!   XY in 2-D) routing, the topology of the Intel Paragon.  Provides the
//!   **dimension-ordered chain** (`<_d` of paper §3) used by U-mesh and
//!   OPT-mesh.
//! * [`bmin::Bmin`] — a bidirectional multistage interconnection network
//!   built from 2×2 switches with turnaround routing, the topology of the
//!   IBM SP series.  Provides the **lexicographic chain** (paper §4) used by
//!   U-min and OPT-min, and both deterministic and adaptive up-phase routing
//!   (the "extra paths" §5 credits for BMIN's milder contention).
//! * [`graph::NetworkGraph`] — the directed-channel graph shared by all
//!   topologies: every physical link, injection port and consumption port is
//!   a *channel*, the unit of wormhole arbitration and hence of contention.
//! * [`topology::Topology`] — the trait the simulator routes through.
//!
//! Channels are the load-bearing abstraction: wormhole switching reserves
//! whole channels for the duration of a worm's passage, so "two multicasts
//! conflict" is exactly "two concurrently live worms want the same
//! [`graph::ChannelId`]".
//!
//! ```
//! use topo::{Mesh, NodeId, Topology};
//!
//! let mesh = Mesh::new(&[16, 16]);                  // the paper's network
//! let (a, b) = (mesh.node_at(&[0, 0]), mesh.node_at(&[3, 2]));
//! assert_eq!(mesh.distance(a, b), 5);               // XY: 3 east + 2 north
//!
//! // The dimension-ordered chain OPT-mesh sorts participants into:
//! let mut nodes = vec![b, a, mesh.node_at(&[1, 5])];
//! mesh.sort_chain(&mut nodes);
//! assert_eq!(nodes[0], a);
//! ```

#![forbid(unsafe_code)]

pub mod bmin;
pub mod chain;
pub mod graph;
pub mod mesh;
pub mod omega;
pub mod partition;
pub mod route_table;
pub mod topology;
pub mod torus;

pub use bmin::{Bmin, UpPolicy};
pub use chain::{Chain, ChainError};
pub use graph::{Channel, ChannelId, Endpoint, NetworkGraph, NodeId, RouterId};
pub use mesh::Mesh;
pub use omega::Omega;
pub use partition::Partition;
pub use route_table::{RouteCache, RouteTable, RouteTableBuilder};
pub use topology::{RoutingError, Topology};
pub use torus::Torus;
