//! Bidirectional multistage interconnection network (BMIN) with turnaround
//! routing — the topology of the paper's §4/§5 experiments (128 nodes built
//! from 2×2 bidirectional switches, as in the IBM SP series).
//!
//! # Construction
//!
//! For `N = 2^s` nodes there are `s` stages of `N/2` switches.  Writing a
//! stage-`ℓ` switch index as `r = a·2^ℓ + b` (`a` the top `s-1-ℓ` bits, `b`
//! the low `ℓ` bits), switch `(ℓ, r)` is an ancestor of exactly the nodes
//! whose address agrees with `a` in the top bits — the aligned block
//! `[a·2^{ℓ+1}, (a+1)·2^{ℓ+1})`.  Its two up-ports lead to the stage-`ℓ+1`
//! switches `( (a>>1)·2^{ℓ+1} + u·2^ℓ + b )` for `u ∈ {0,1}`; its two
//! down-ports select bit `ℓ` of the destination.  This is the classic
//! butterfly fat-tree: full bisection, `2^h` distinct up-paths to height `h`.
//!
//! # Turnaround routing
//!
//! A message from `x` to `y` climbs until `y` enters the current switch's
//! block — i.e. to stage `h`, the index of the highest differing address
//! bit — then descends deterministically, choosing down-port `δ_ℓ(y)` at
//! each stage `ℓ`.  The up-phase may use *either* up-port at every step:
//! these are the "more communication paths between any pair of nodes" that
//! §5 credits for the BMIN's milder contention.  [`UpPolicy`] fixes the
//! preferred port; the simulator may fall back to the alternative when the
//! preferred channel is busy (adaptive up-phase).

use crate::graph::{ChannelId, NetworkGraph, NodeId, RouterId};
use crate::route_table::{RouteCache, RouteTable, RouteTableBuilder};
use crate::topology::Topology;

/// Which up-port a climbing worm prefers (the first-listed routing
/// candidate; the other port is always offered as the fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpPolicy {
    /// `u = δ_{ℓ+1}(src)`: the worm climbs "straight up", staying in switch
    /// column `src >> 1` at every stage.  Distinct non-sibling sources never
    /// share an up-channel.
    #[default]
    Straight,
    /// `u = δ_{ℓ+1}(dest)`: climb toward the destination's column, so the
    /// turn lands in column `dest >> 1` and the whole down-phase is a
    /// function of the destination alone.
    DestColumn,
}

/// A bidirectional MIN on `2^s` nodes built from 2×2 switches.
#[derive(Debug, Clone)]
pub struct Bmin {
    s: u32,
    graph: NetworkGraph,
    /// `up[(ℓ * W + r) * 2 + u]` — up channel from stage-`ℓ` switch `r`,
    /// port `u` (only for `ℓ < s-1`).
    up: Vec<ChannelId>,
    /// `down[(ℓ * W + r) * 2 + c]` — down channel from stage-`ℓ` switch `r`,
    /// port `c` (only for `ℓ >= 1`).
    down: Vec<ChannelId>,
    policy: UpPolicy,
    routes: RouteCache,
}

impl Bmin {
    /// Build a BMIN with `2^s` nodes (`s ≥ 1`); the paper's network is
    /// `Bmin::new(7, UpPolicy::Straight)` — 128 nodes, 7 stages of 64
    /// switches.
    ///
    /// # Panics
    /// If `s == 0` or `s > 20` (over a million nodes is surely a typo).
    pub fn new(s: u32, policy: UpPolicy) -> Self {
        assert!(
            (1..=20).contains(&s),
            "s={s} out of the sensible range 1..=20"
        );
        let n = 1usize << s;
        let w = n / 2; // switches per stage
        let stages = s as usize;
        let mut b = NetworkGraph::builder(n, stages * w);
        let router = |l: usize, r: usize| RouterId((l * w + r) as u32);
        for node in 0..n {
            b.injection(NodeId(node as u32), router(0, node >> 1));
            b.consumption(NodeId(node as u32), router(0, node >> 1));
        }
        let invalid = ChannelId(u32::MAX);
        let mut up = vec![invalid; stages * w * 2];
        let mut down = vec![invalid; stages * w * 2];
        for l in 1..stages {
            for p in 0..w {
                for c in 0..2usize {
                    let child = child_index(l, p, c);
                    let u = (p >> (l - 1)) & 1;
                    up[((l - 1) * w + child) * 2 + u] = b.link(router(l - 1, child), router(l, p));
                    down[(l * w + p) * 2 + c] = b.link(router(l, p), router(l - 1, child));
                }
            }
        }
        Self {
            s,
            graph: b.build(),
            up,
            down,
            policy,
            routes: RouteCache::default(),
        }
    }

    /// Number of address bits / stages.
    pub fn stages(&self) -> u32 {
        self.s
    }

    /// The up-port preference policy.
    pub fn policy(&self) -> UpPolicy {
        self.policy
    }

    /// Switches per stage.
    fn width(&self) -> usize {
        self.graph.n_nodes() / 2
    }

    /// Decompose a router id into (stage, switch index).
    pub fn stage_of(&self, r: RouterId) -> (usize, usize) {
        (r.idx() / self.width(), r.idx() % self.width())
    }

    /// The aligned node block covered by a switch.
    pub fn block_of(&self, r: RouterId) -> std::ops::Range<usize> {
        let (l, idx) = self.stage_of(r);
        let a = idx >> l;
        (a << (l + 1))..((a + 1) << (l + 1))
    }

    /// Turn stage for a (src, dst) pair: index of the highest differing
    /// address bit.
    pub fn turn_stage(&self, x: NodeId, y: NodeId) -> u32 {
        assert_ne!(x, y);
        31 - (x.0 ^ y.0).leading_zeros()
    }

    fn up_channel(&self, l: usize, r: usize, u: usize) -> ChannelId {
        let c = self.up[(l * self.width() + r) * 2 + u];
        debug_assert_ne!(
            c.0,
            u32::MAX,
            "no up channel at stage {l} switch {r} port {u}"
        );
        c
    }

    fn down_channel(&self, l: usize, r: usize, c: usize) -> ChannelId {
        let ch = self.down[(l * self.width() + r) * 2 + c];
        debug_assert_ne!(
            ch.0,
            u32::MAX,
            "no down channel at stage {l} switch {r} port {c}"
        );
        ch
    }
}

/// Child of stage-`l` switch `p` through down-port `c` (at stage `l-1`).
fn child_index(l: usize, p: usize, c: usize) -> usize {
    let a = p >> l;
    let b = p & ((1 << l) - 1);
    (((a << 1) | c) << (l - 1)) | (b & ((1 << (l - 1)) - 1))
}

impl Topology for Bmin {
    fn graph(&self) -> &NetworkGraph {
        &self.graph
    }

    fn route_candidates(&self, r: RouterId, src: NodeId, dest: NodeId, out: &mut Vec<ChannelId>) {
        let (l, idx) = self.stage_of(r);
        if self.block_of(r).contains(&dest.idx()) {
            // Down phase (deterministic): port = δ_l(dest); at stage 0 that
            // is the consumption channel.
            if l == 0 {
                out.extend_from_slice(self.graph.consumptions(dest));
            } else {
                out.push(self.down_channel(l, idx, (dest.idx() >> l) & 1));
            }
        } else {
            // Up phase: preferred port per policy, other port as fallback.
            let pref = match self.policy {
                UpPolicy::Straight => (src.idx() >> (l + 1)) & 1,
                UpPolicy::DestColumn => (dest.idx() >> (l + 1)) & 1,
            };
            out.push(self.up_channel(l, idx, pref));
            out.push(self.up_channel(l, idx, 1 - pref));
        }
    }

    fn route_table(&self) -> &RouteTable {
        self.routes.get_or_build(|| {
            let n = self.graph.n_nodes();
            let w = self.width();
            let stages = self.s as usize;
            let mut b = RouteTableBuilder::new(self.graph.n_routers(), n);
            for l in 0..stages {
                for idx in 0..w {
                    let r = RouterId((l * w + idx) as u32);
                    // The up-port pair is a property of the switch alone;
                    // intern it once and reference it from every
                    // outside-block destination.
                    let pair = (l + 1 < stages).then(|| {
                        b.intern(&[self.up_channel(l, idx, 0), self.up_channel(l, idx, 1)])
                    });
                    let block = self.block_of(r);
                    for dest in 0..n as u32 {
                        let d = NodeId(dest);
                        if block.contains(&d.idx()) {
                            if l == 0 {
                                b.fixed(r, d, self.graph.consumptions(d));
                            } else {
                                b.fixed(r, d, &[self.down_channel(l, idx, (d.idx() >> l) & 1)]);
                            }
                        } else {
                            let pair = pair.expect("top stage covers every destination");
                            match self.policy {
                                // Preference flips on δ_{ℓ+1}(src).
                                UpPolicy::Straight => b.src_bit(r, d, pair, (l + 1) as u8),
                                // Preference is a function of dest alone.
                                UpPolicy::DestColumn => {
                                    let pref = (d.idx() >> (l + 1)) & 1;
                                    b.fixed(
                                        r,
                                        d,
                                        &[
                                            self.up_channel(l, idx, pref),
                                            self.up_channel(l, idx, 1 - pref),
                                        ],
                                    );
                                }
                            }
                        }
                    }
                }
            }
            b.build()
        })
    }

    fn chain_key(&self, n: NodeId) -> u64 {
        // Lexicographic order on the binary address (§4) = numeric order.
        n.0 as u64
    }

    fn name(&self) -> String {
        format!("bmin-{}x2x2", self.graph.n_nodes())
    }

    fn max_path_channels(&self) -> usize {
        // Turnaround routing: up at most (stages - 1) levels and back down,
        // plus the injection and consumption channels.
        2 * (self.s as usize - 1) + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_network_shape() {
        let b = Bmin::new(7, UpPolicy::Straight);
        assert_eq!(b.graph().n_nodes(), 128);
        assert_eq!(b.graph().n_routers(), 7 * 64);
        // Channels: 2 ports/node + 2 directions * 2 links per switch pair:
        // between consecutive stages there are W*2 = 128 links, each
        // bidirectional => 256 channels per stage boundary, 6 boundaries.
        assert_eq!(b.graph().n_channels(), 2 * 128 + 6 * 256);
    }

    #[test]
    fn sibling_route_is_local() {
        let b = Bmin::new(4, UpPolicy::Straight);
        let p = b.det_path(NodeId(6), NodeId(7));
        // injection -> stage0 switch -> consumption.
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn path_lengths_match_turn_stage() {
        let b = Bmin::new(5, UpPolicy::Straight);
        for x in 0..32u32 {
            for y in 0..32u32 {
                if x == y {
                    continue;
                }
                let h = b.turn_stage(NodeId(x), NodeId(y)) as usize;
                let p = b.det_path(NodeId(x), NodeId(y));
                // injection + h ups + h downs + consumption.
                assert_eq!(p.len(), 2 * h + 2, "{x}->{y}");
            }
        }
    }

    #[test]
    fn straight_policy_keeps_source_column() {
        let b = Bmin::new(5, UpPolicy::Straight);
        let g = b.graph();
        for x in 0..32u32 {
            let y = NodeId(x ^ 16); // force a full climb
            for ch in b.det_path(NodeId(x), y) {
                if let Some(r) = g.dst_router(ch) {
                    let (l, idx) = b.stage_of(r);
                    // While climbing (before the turn) the column is x >> 1.
                    if !b.block_of(r).contains(&y.idx()) {
                        assert_eq!(idx, (x as usize) >> 1, "stage {l}");
                    }
                }
            }
        }
    }

    #[test]
    fn dest_column_policy_descends_in_dest_column() {
        let b = Bmin::new(5, UpPolicy::DestColumn);
        let g = b.graph();
        for x in [0u32, 5, 17, 31] {
            let y = NodeId(x ^ 16);
            let path = b.det_path(NodeId(x), y);
            // After the turn every router is in column y >> 1.
            let mut turned = false;
            for ch in path {
                if let Some(r) = g.dst_router(ch) {
                    if b.block_of(r).contains(&y.idx()) {
                        turned = true;
                    }
                    if turned {
                        let (_, idx) = b.stage_of(r);
                        assert_eq!(idx, y.idx() >> 1);
                    }
                }
            }
        }
    }

    #[test]
    fn every_pair_routes_correctly() {
        for policy in [UpPolicy::Straight, UpPolicy::DestColumn] {
            let b = Bmin::new(4, policy);
            let g = b.graph();
            for x in 0..16u32 {
                for y in 0..16u32 {
                    if x == y {
                        continue;
                    }
                    let p = b.det_path(NodeId(x), NodeId(y));
                    assert_eq!(g.dst_node(*p.last().unwrap()), Some(NodeId(y)));
                    // No channel repeats (wormhole paths must be simple).
                    for (i, c) in p.iter().enumerate() {
                        assert!(!p[..i].contains(c), "cycle in path {x}->{y}");
                    }
                }
            }
        }
    }

    #[test]
    fn block_nesting() {
        let b = Bmin::new(4, UpPolicy::Straight);
        // Stage-0 switch 3 covers nodes 6..8; its parents cover supersets.
        let r = RouterId(3);
        assert_eq!(b.block_of(r), 6..8);
        let mut cand = Vec::new();
        b.route_candidates(r, NodeId(6), NodeId(0), &mut cand);
        assert_eq!(cand.len(), 2, "two up candidates while climbing");
        for c in cand {
            let parent = b.graph().dst_router(c).unwrap();
            let blk = b.block_of(parent);
            assert!(blk.contains(&6) && blk.contains(&7), "parent block {blk:?}");
        }
    }

    #[test]
    fn turn_stage_is_highest_differing_bit() {
        let b = Bmin::new(6, UpPolicy::Straight);
        assert_eq!(b.turn_stage(NodeId(0), NodeId(1)), 0);
        assert_eq!(b.turn_stage(NodeId(0), NodeId(32)), 5);
        assert_eq!(b.turn_stage(NodeId(5), NodeId(7)), 1);
    }
}
