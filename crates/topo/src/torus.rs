//! n-dimensional torus with e-cube routing and dateline virtual channels.
//!
//! The wrap-around links halve average distance but reintroduce channel
//! cycles, which wormhole switching turns into deadlock; the classic cure
//! (Dally & Seitz) is two *virtual channels* per physical link with a
//! **dateline**: a worm travels on VC0 until it crosses the wrap edge of a
//! dimension, then switches to VC1 for the rest of that dimension.  Each VC
//! is its own [`crate::graph::ChannelId`] — the unit of wormhole
//! arbitration — so the engine needs no special casing.  (Bandwidth
//! multiplexing between the two VCs of a physical link is *not* modelled;
//! in the studied workloads the VCs of one link are rarely busy
//! simultaneously, and the approximation is conservative in their favour.)
//!
//! The paper's §6 invites applying the contention-avoidance idea to other
//! networks; the torus is the natural next instance of the mesh family —
//! the `torus_study` experiment measures how much of the dimension-ordered
//! chain's contention-freedom survives the wraparound (spoiler: not all of
//! it — wrap paths escape the interval hull that Theorem 1's geometry
//! relies on).

use crate::graph::{ChannelId, NetworkGraph, NodeId, RouterId};
use crate::route_table::{RouteCache, RouteTable, RouteTableBuilder};
use crate::topology::Topology;

/// An n-dimensional torus; every node has a router with two virtual
/// channels per direction per dimension (one in the unvirtualized variant,
/// which is deliberately deadlock-*prone* — `netcheck` uses it as the
/// positive control for its channel-dependency-graph analysis).
#[derive(Debug, Clone)]
pub struct Torus {
    dims: Vec<usize>,
    graph: NetworkGraph,
    /// `links[((r * ndim + d) * 2 + dir) * 2 + vc]`; `dir` 0 = +, 1 = −.
    /// In the unvirtualized variant both `vc` slots hold the *same*
    /// channel, so the routing function needs no special casing.
    links: Vec<ChannelId>,
    /// False for the unvirtualized (single-VC) variant.
    virtualized: bool,
    routes: RouteCache,
}

impl Torus {
    /// Build a torus with the given side lengths (each ≥ 2; a side of 2 has
    /// coincident +/− neighbours but distinct channels).
    ///
    /// # Panics
    /// If `dims` is empty or any side is < 2.
    pub fn new(dims: &[usize]) -> Self {
        Self::build(dims, true)
    }

    /// Build a torus *without* dateline virtual channels: a single channel
    /// per physical link, so every ring of every dimension closes a cycle in
    /// the channel-dependency graph.  Wormhole routing on this network can
    /// deadlock — it exists so the static analyzer has a known-bad topology
    /// to flag with a witness cycle.
    ///
    /// # Panics
    /// If `dims` is empty or any side is < 2.
    pub fn unvirtualized(dims: &[usize]) -> Self {
        Self::build(dims, false)
    }

    fn build(dims: &[usize], virtualized: bool) -> Self {
        assert!(!dims.is_empty(), "a torus needs at least one dimension");
        assert!(
            dims.iter().all(|&m| m >= 2),
            "torus sides must be at least 2"
        );
        let n: usize = dims.iter().product();
        let ndim = dims.len();
        let mut b = NetworkGraph::builder(n, n);
        for i in 0..n {
            b.injection(NodeId(i as u32), RouterId(i as u32));
            b.consumption(NodeId(i as u32), RouterId(i as u32));
        }
        let dims_v = dims.to_vec();
        let mut links = vec![ChannelId(u32::MAX); n * ndim * 4];
        for r in 0..n {
            let c = coords_of(&dims_v, r);
            for d in 0..ndim {
                for (dir, step) in [(0usize, 1isize), (1, -1)] {
                    let m = dims_v[d] as isize;
                    let mut nc = c.clone();
                    nc[d] = ((c[d] as isize + step + m) % m) as usize;
                    let nb = index_of(&dims_v, &nc);
                    if virtualized {
                        for vc in 0..2usize {
                            links[((r * ndim + d) * 2 + dir) * 2 + vc] =
                                b.link(RouterId(r as u32), RouterId(nb as u32));
                        }
                    } else {
                        let ch = b.link(RouterId(r as u32), RouterId(nb as u32));
                        for vc in 0..2usize {
                            links[((r * ndim + d) * 2 + dir) * 2 + vc] = ch;
                        }
                    }
                }
            }
        }
        Self {
            dims: dims_v,
            graph: b.build(),
            links,
            virtualized,
            routes: RouteCache::default(),
        }
    }

    /// True when the torus carries dateline virtual channels (the default,
    /// deadlock-free configuration).
    pub fn is_virtualized(&self) -> bool {
        self.virtualized
    }

    /// Side lengths.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Coordinates of a node.
    pub fn coords(&self, n: NodeId) -> Vec<usize> {
        coords_of(&self.dims, n.idx())
    }

    /// Node at coordinates.
    pub fn node_at(&self, coords: &[usize]) -> NodeId {
        NodeId(index_of(&self.dims, coords) as u32)
    }

    /// Wrap-aware Manhattan distance.
    pub fn distance_coords(&self, a: NodeId, b: NodeId) -> usize {
        self.coords(a)
            .iter()
            .zip(self.coords(b))
            .zip(&self.dims)
            .map(|((&x, y), &m)| {
                let d = x.abs_diff(y);
                d.min(m - d)
            })
            .sum()
    }

    fn link(&self, r: RouterId, d: usize, dir: usize, vc: usize) -> ChannelId {
        self.links[((r.idx() * self.dims.len() + d) * 2 + dir) * 2 + vc]
    }
}

fn coords_of(dims: &[usize], mut idx: usize) -> Vec<usize> {
    dims.iter()
        .map(|&m| {
            let c = idx % m;
            idx /= m;
            c
        })
        .collect()
}

fn index_of(dims: &[usize], coords: &[usize]) -> usize {
    let mut idx = 0;
    let mut stride = 1;
    for (&c, &m) in coords.iter().zip(dims) {
        idx += c * stride;
        stride *= m;
    }
    idx
}

impl Topology for Torus {
    fn graph(&self) -> &NetworkGraph {
        &self.graph
    }

    fn route_candidates(&self, r: RouterId, src: NodeId, dest: NodeId, out: &mut Vec<ChannelId>) {
        let here = coords_of(&self.dims, r.idx());
        let from = self.coords(src);
        let to = self.coords(dest);
        for d in 0..self.dims.len() {
            if here[d] == to[d] {
                continue;
            }
            let m = self.dims[d];
            // Direction fixed for the whole dimension by the shortest way
            // from the *source* coordinate (ties go +); recomputing from
            // `here` would agree because moving shrinks the same residue.
            let fwd = (to[d] + m - from[d]) % m;
            let (dir, crossed) = if fwd <= m - fwd {
                // dir = +; the wrap edge m-1 → 0 is crossed once the
                // position falls below the starting coordinate.
                (0, here[d] < from[d])
            } else {
                // dir = −; the wrap edge 0 → m-1 is crossed once the
                // position rises above the starting coordinate.
                (1, here[d] > from[d])
            };
            out.push(self.link(r, d, dir, usize::from(crossed)));
            return;
        }
        out.extend_from_slice(self.graph.consumptions(dest));
    }

    fn route_table(&self) -> &RouteTable {
        self.routes.get_or_build(|| {
            let n = self.graph.n_nodes();
            let ndim = self.dims.len();
            let mut b = RouteTableBuilder::new(self.graph.n_routers(), n);
            let mut coords = Vec::with_capacity(n * ndim);
            for node in 0..n {
                coords.extend(coords_of(&self.dims, node).iter().map(|&c| c as u32));
            }
            b.set_wrap_geometry(self.dims.iter().map(|&m| m as u32).collect(), coords);
            // The quad of one (router, dim) serves every destination that
            // still differs in that dim; intern each quad once.
            let mut quads = vec![u32::MAX; n * ndim];
            for r in 0..n {
                let here = coords_of(&self.dims, r);
                let router = RouterId(r as u32);
                for dest in 0..n {
                    let d = NodeId(dest as u32);
                    let to = coords_of(&self.dims, dest);
                    match (0..ndim).find(|&dim| here[dim] != to[dim]) {
                        None => b.fixed(router, d, self.graph.consumptions(d)),
                        Some(dim) => {
                            let q = &mut quads[r * ndim + dim];
                            if *q == u32::MAX {
                                *q = b.intern(&[
                                    self.link(router, dim, 0, 0),
                                    self.link(router, dim, 0, 1),
                                    self.link(router, dim, 1, 0),
                                    self.link(router, dim, 1, 1),
                                ]);
                            }
                            b.wrap(router, d, dim as u8, *q);
                        }
                    }
                }
            }
            b.build()
        })
    }

    fn chain_key(&self, n: NodeId) -> u64 {
        // Same convention as the mesh: first-routed dimension is most
        // significant.  (On a torus this order is *not* contention-free —
        // that is precisely what `torus_study` measures.)
        let c = self.coords(n);
        let mut key = 0u64;
        for (&dim, &coord) in self.dims.iter().zip(&c) {
            key = key * dim as u64 + coord as u64;
        }
        key
    }

    fn name(&self) -> String {
        let dims: Vec<String> = self
            .dims
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let suffix = if self.virtualized { "" } else { "-novc" };
        format!("torus-{}{suffix}", dims.join("x"))
    }

    fn max_path_channels(&self) -> usize {
        // Shortest-direction routing: at most floor(side / 2) hops per
        // dimension, plus the injection and consumption channels.
        self.dims.iter().map(|&m| m / 2).sum::<usize>() + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_count() {
        let t = Torus::new(&[4, 4]);
        // 2 NI ports per node + ndim(2) * 2 dirs * 2 VCs per router.
        assert_eq!(t.graph().n_channels(), 16 * 2 + 16 * 2 * 2 * 2);
    }

    #[test]
    fn paths_take_the_short_way() {
        let t = Torus::new(&[8]);
        // 0 -> 6 is 2 hops through the wrap, not 6 the long way.
        assert_eq!(t.distance(NodeId(0), NodeId(6)), 2);
        assert_eq!(t.distance_coords(NodeId(0), NodeId(6)), 2);
        // 0 -> 4 ties; the + direction wins and is still 4 hops.
        assert_eq!(t.distance(NodeId(0), NodeId(4)), 4);
    }

    #[test]
    fn every_pair_routes() {
        let t = Torus::new(&[4, 3]);
        for a in 0..12u32 {
            for b in 0..12u32 {
                if a == b {
                    continue;
                }
                let p = t.det_path(NodeId(a), NodeId(b));
                assert_eq!(t.graph().dst_node(*p.last().unwrap()), Some(NodeId(b)));
                assert_eq!(
                    p.len() - 2,
                    t.distance_coords(NodeId(a), NodeId(b)),
                    "{a}->{b}"
                );
                for (i, c) in p.iter().enumerate() {
                    assert!(!p[..i].contains(c), "cycle in {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn dateline_switches_vc_exactly_at_the_wrap() {
        let t = Torus::new(&[6]);
        // 5 -> 1 goes +: 5, (wrap) 0, 1. First link VC0, post-wrap link VC1.
        let p = t.det_path(NodeId(5), NodeId(1));
        assert_eq!(p.len(), 4); // inject, 5->0, 0->1, consume
        let c0 = t.link(RouterId(5), 0, 0, 0);
        let c1 = t.link(RouterId(0), 0, 0, 1);
        assert_eq!(p[1], c0, "pre-wrap hop rides VC0");
        assert_eq!(p[2], c1, "post-wrap hop rides VC1");
    }

    #[test]
    fn non_wrapping_paths_stay_on_vc0() {
        let t = Torus::new(&[8]);
        let p = t.det_path(NodeId(1), NodeId(3));
        for ch in &p[1..p.len() - 1] {
            // All router links in [1,3) direction + on VC0.
            let found = (1..3).any(|r| t.link(RouterId(r), 0, 0, 0) == *ch);
            assert!(found, "unexpected channel {ch:?}");
        }
    }

    #[test]
    fn vcs_are_distinct_channels() {
        let t = Torus::new(&[4, 4]);
        let a = t.link(RouterId(0), 0, 0, 0);
        let b = t.link(RouterId(0), 0, 0, 1);
        assert_ne!(a, b);
        // Same physical endpoints though.
        assert_eq!(t.graph().channel(a).dst, t.graph().channel(b).dst);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_side_panics() {
        Torus::new(&[1, 4]);
    }

    #[test]
    fn unvirtualized_torus_shares_one_channel_per_link() {
        let t = Torus::unvirtualized(&[4, 4]);
        assert!(!t.is_virtualized());
        // 2 NI ports per node + ndim(2) * 2 dirs * 1 channel per router.
        assert_eq!(t.graph().n_channels(), 16 * 2 + 16 * 2 * 2);
        assert_eq!(t.link(RouterId(0), 0, 0, 0), t.link(RouterId(0), 0, 0, 1));
        assert!(t.name().ends_with("-novc"));
        // Routing still delivers everywhere (deadlock is a *dynamic*
        // hazard; single worms are fine).
        for a in 0..16u32 {
            for b in 0..16u32 {
                if a == b {
                    continue;
                }
                let p = t.det_path(NodeId(a), NodeId(b));
                assert_eq!(t.graph().dst_node(*p.last().unwrap()), Some(NodeId(b)));
            }
        }
    }
}
