//! The directed-channel graph underlying every topology.
//!
//! A *channel* is the unit of wormhole arbitration: a physical link direction,
//! an injection port (NI → router) or a consumption port (router → NI).  The
//! one-port architecture of the paper's experiments falls out naturally: each
//! node owns exactly one injection and one consumption channel.

use serde::{Deserialize, Serialize};

/// A processing node (compute node with its network interface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A router / switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RouterId(pub u32);

/// A directed channel — the resource a worm acquires hop by hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl RouterId {
    /// The raw index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ChannelId {
    /// The raw index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One end of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// A node's network interface.
    Node(NodeId),
    /// A router/switch port.
    Router(RouterId),
}

/// A directed channel with its two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Channel {
    /// Source endpoint (who drives flits into the channel).
    pub src: Endpoint,
    /// Destination endpoint (who receives flits from the channel).
    pub dst: Endpoint,
}

/// An immutable directed-channel graph.  Built once by a topology
/// constructor; the simulator and checkers only read it.
///
/// A node owns one or more injection channels (NI → router) and the same
/// number of consumption channels: the paper's experiments use the one-port
/// architecture (exactly one of each), while the multi-port ablation gives
/// every node several.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkGraph {
    n_nodes: usize,
    n_routers: usize,
    channels: Vec<Channel>,
    /// Injection channels of each node (NI → router), at least one.
    injection: Vec<Vec<ChannelId>>,
    /// Consumption channels of each node (router → NI), at least one.
    consumption: Vec<Vec<ChannelId>>,
}

impl NetworkGraph {
    /// Start building a graph with `n_nodes` nodes and `n_routers` routers.
    pub fn builder(n_nodes: usize, n_routers: usize) -> NetworkGraphBuilder {
        NetworkGraphBuilder {
            n_nodes,
            n_routers,
            channels: Vec::new(),
            injection: vec![Vec::new(); n_nodes],
            consumption: vec![Vec::new(); n_nodes],
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of routers.
    pub fn n_routers(&self) -> usize {
        self.n_routers
    }

    /// Number of channels.
    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }

    /// Look up a channel.
    ///
    /// # Panics
    /// If the id is out of range.
    pub fn channel(&self, c: ChannelId) -> Channel {
        self.channels[c.idx()]
    }

    /// The primary injection channel (NI → router) of `n`.
    pub fn injection(&self, n: NodeId) -> ChannelId {
        self.injection[n.idx()][0]
    }

    /// All injection channels of `n` (one in the one-port architecture).
    pub fn injections(&self, n: NodeId) -> &[ChannelId] {
        &self.injection[n.idx()]
    }

    /// The primary consumption channel (router → NI) of `n`.
    pub fn consumption(&self, n: NodeId) -> ChannelId {
        self.consumption[n.idx()][0]
    }

    /// All consumption channels of `n`.
    pub fn consumptions(&self, n: NodeId) -> &[ChannelId] {
        &self.consumption[n.idx()]
    }

    /// The NI port count (uniform across nodes by construction).
    pub fn ports(&self) -> usize {
        self.injection.first().map_or(1, Vec::len)
    }

    /// The router a channel delivers into, or `None` for consumption
    /// channels (which deliver into a node).
    pub fn dst_router(&self, c: ChannelId) -> Option<RouterId> {
        match self.channel(c).dst {
            Endpoint::Router(r) => Some(r),
            Endpoint::Node(_) => None,
        }
    }

    /// The node a channel delivers into, if it is a consumption channel.
    pub fn dst_node(&self, c: ChannelId) -> Option<NodeId> {
        match self.channel(c).dst {
            Endpoint::Node(n) => Some(n),
            Endpoint::Router(_) => None,
        }
    }

    /// All channels (for analyses / statistics).
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }
}

/// Incremental builder for [`NetworkGraph`].
pub struct NetworkGraphBuilder {
    n_nodes: usize,
    n_routers: usize,
    channels: Vec<Channel>,
    injection: Vec<Vec<ChannelId>>,
    consumption: Vec<Vec<ChannelId>>,
}

impl NetworkGraphBuilder {
    /// Add a router→router channel, returning its id.
    pub fn link(&mut self, from: RouterId, to: RouterId) -> ChannelId {
        assert!(from.idx() < self.n_routers && to.idx() < self.n_routers);
        self.push(Channel {
            src: Endpoint::Router(from),
            dst: Endpoint::Router(to),
        })
    }

    /// Add an injection channel for node `n` into router `r` (call several
    /// times for a multi-port NI).
    pub fn injection(&mut self, n: NodeId, r: RouterId) -> ChannelId {
        let c = self.push(Channel {
            src: Endpoint::Node(n),
            dst: Endpoint::Router(r),
        });
        self.injection[n.idx()].push(c);
        c
    }

    /// Add a consumption channel for node `n` from router `r`.
    pub fn consumption(&mut self, n: NodeId, r: RouterId) -> ChannelId {
        let c = self.push(Channel {
            src: Endpoint::Router(r),
            dst: Endpoint::Node(n),
        });
        self.consumption[n.idx()].push(c);
        c
    }

    fn push(&mut self, ch: Channel) -> ChannelId {
        let id = ChannelId(self.channels.len() as u32);
        self.channels.push(ch);
        id
    }

    /// Finish building.
    ///
    /// # Panics
    /// If any node lacks an injection or consumption channel, or port
    /// counts differ across nodes.
    pub fn build(self) -> NetworkGraph {
        for (n, ports) in self.injection.iter().enumerate() {
            assert!(!ports.is_empty(), "node {n} lacks an injection channel");
        }
        for (n, ports) in self.consumption.iter().enumerate() {
            assert!(!ports.is_empty(), "node {n} lacks a consumption channel");
        }
        let port_counts: Vec<usize> = self.injection.iter().map(Vec::len).collect();
        assert!(
            port_counts.windows(2).all(|w| w[0] == w[1]),
            "port count must be uniform across nodes"
        );
        NetworkGraph {
            n_nodes: self.n_nodes,
            n_routers: self.n_routers,
            channels: self.channels,
            injection: self.injection,
            consumption: self.consumption,
        }
    }
}

/// Do two channel paths share any channel?  Returns the first shared one.
/// Paths are short (≤ 2·diameter), so the quadratic scan beats hashing.
pub fn shared_channel(a: &[ChannelId], b: &[ChannelId]) -> Option<ChannelId> {
    a.iter().find(|c| b.contains(c)).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> NetworkGraph {
        // Two nodes, two routers, one link each way.
        let mut b = NetworkGraph::builder(2, 2);
        b.injection(NodeId(0), RouterId(0));
        b.consumption(NodeId(0), RouterId(0));
        b.injection(NodeId(1), RouterId(1));
        b.consumption(NodeId(1), RouterId(1));
        b.link(RouterId(0), RouterId(1));
        b.link(RouterId(1), RouterId(0));
        b.build()
    }

    #[test]
    fn builder_wires_ports() {
        let g = tiny();
        assert_eq!(g.n_channels(), 6);
        assert_eq!(g.dst_router(g.injection(NodeId(0))), Some(RouterId(0)));
        assert_eq!(g.dst_node(g.consumption(NodeId(1))), Some(NodeId(1)));
        assert_eq!(g.dst_node(g.injection(NodeId(0))), None);
    }

    #[test]
    #[should_panic(expected = "lacks an injection")]
    fn missing_port_panics() {
        let mut b = NetworkGraph::builder(1, 1);
        b.consumption(NodeId(0), RouterId(0));
        b.build();
    }

    #[test]
    fn multi_port_builder() {
        let mut b = NetworkGraph::builder(1, 1);
        b.injection(NodeId(0), RouterId(0));
        b.injection(NodeId(0), RouterId(0));
        b.consumption(NodeId(0), RouterId(0));
        b.consumption(NodeId(0), RouterId(0));
        let g = b.build();
        assert_eq!(g.ports(), 2);
        assert_eq!(g.injections(NodeId(0)).len(), 2);
        assert_eq!(g.consumptions(NodeId(0)).len(), 2);
        assert_eq!(g.injection(NodeId(0)), g.injections(NodeId(0))[0]);
    }

    #[test]
    fn shared_channel_detection() {
        let p1 = [ChannelId(0), ChannelId(3), ChannelId(5)];
        let p2 = [ChannelId(1), ChannelId(5)];
        let p3 = [ChannelId(2), ChannelId(4)];
        assert_eq!(shared_channel(&p1, &p2), Some(ChannelId(5)));
        assert_eq!(shared_channel(&p1, &p3), None);
        assert_eq!(shared_channel(&[], &p1), None);
    }
}
