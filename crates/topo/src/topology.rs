//! The [`Topology`] trait — everything the simulator and the schedulers need
//! to know about a network.

use crate::graph::{ChannelId, NetworkGraph, NodeId, RouterId};

/// A wormhole network: a channel graph plus a routing function and the
/// architecture-specific total order (chain) over nodes.
pub trait Topology: Send + Sync {
    /// The channel graph.
    fn graph(&self) -> &NetworkGraph;

    /// Append the preference-ordered candidate output channels at router `r`
    /// for a worm from `src` headed to `dest`.  Deterministic topologies
    /// yield exactly one candidate; the BMIN up-phase yields two.  When the
    /// worm has reached `dest`'s router the single candidate is the
    /// consumption channel.
    fn route_candidates(&self, r: RouterId, src: NodeId, dest: NodeId, out: &mut Vec<ChannelId>);

    /// The architecture's chain-ordering key: dimension-ordered (`<_d`) for
    /// meshes, lexicographic (binary address value) for BMINs.  Sorting nodes
    /// by this key yields the chain OPT-mesh/OPT-min split.
    fn chain_key(&self, n: NodeId) -> u64;

    /// Human-readable topology name for reports.
    fn name(&self) -> String;

    /// The deterministic path from `src` to `dst`, injection and consumption
    /// channels inclusive, following first-preference candidates.  This is
    /// the path the static contention checker reasons about.
    ///
    /// # Panics
    /// If `src == dst` (a node does not route to itself) or routing fails to
    /// make progress (a topology bug).
    fn det_path(&self, src: NodeId, dst: NodeId) -> Vec<ChannelId> {
        assert_ne!(src, dst, "no path from a node to itself");
        let g = self.graph();
        let mut path = vec![g.injection(src)];
        let mut at = g
            .dst_router(g.injection(src))
            .expect("injection leads to a router");
        let mut cand = Vec::new();
        // A worm never needs more hops than channels exist.
        for _ in 0..=g.n_channels() {
            cand.clear();
            self.route_candidates(at, src, dst, &mut cand);
            let next = *cand.first().expect("routing returned no candidate");
            path.push(next);
            match g.dst_router(next) {
                Some(r) => at = r,
                None => {
                    debug_assert_eq!(g.dst_node(next), Some(dst), "consumed at the wrong node");
                    return path;
                }
            }
        }
        panic!("routing from {src:?} to {dst:?} did not terminate");
    }

    /// Number of router-to-router hops on the deterministic path.
    fn distance(&self, src: NodeId, dst: NodeId) -> usize {
        if src == dst {
            0
        } else {
            // path = injection + (hops between routers) + consumption.
            self.det_path(src, dst).len().saturating_sub(2)
        }
    }

    /// Sort `nodes` into this topology's chain order (stable, by
    /// [`Topology::chain_key`]).
    fn sort_chain(&self, nodes: &mut [NodeId]) {
        nodes.sort_by_key(|&n| self.chain_key(n));
    }
}
