//! The [`Topology`] trait — everything the simulator and the schedulers need
//! to know about a network.

use crate::graph::{ChannelId, NetworkGraph, NodeId, RouterId};
use crate::route_table::RouteTable;

/// Why a deterministic route could not be materialised.
///
/// Routing bugs used to surface as panics deep inside the contention
/// checker; static analysis wants them as *findings*, so the walk is
/// fallible and the panic lives only in the infallible convenience wrapper
/// [`Topology::det_path`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingError {
    /// `src == dst` — a node does not route to itself.
    SelfRoute {
        /// The node in question.
        node: NodeId,
    },
    /// The routing function returned no candidate at an intermediate router.
    NoCandidate {
        /// Router where the worm was stranded.
        at: RouterId,
        /// Worm source.
        src: NodeId,
        /// Worm destination.
        dst: NodeId,
    },
    /// The walk exceeded the channel count without reaching a consumption
    /// channel — the routing function loops.
    NonTerminating {
        /// Worm source.
        src: NodeId,
        /// Worm destination.
        dst: NodeId,
        /// Number of hops taken before giving up (= channel count + 1).
        hops: usize,
    },
    /// The path ended on a consumption channel of the wrong node.
    WrongConsumption {
        /// Worm source.
        src: NodeId,
        /// Intended destination.
        dst: NodeId,
        /// Node actually reached (if the channel leads to one).
        reached: Option<NodeId>,
    },
}

impl std::fmt::Display for RoutingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingError::SelfRoute { node } => {
                write!(f, "no path from a node to itself ({node:?})")
            }
            RoutingError::NoCandidate { at, src, dst } => {
                write!(
                    f,
                    "routing {src:?} -> {dst:?} returned no candidate at {at:?}"
                )
            }
            RoutingError::NonTerminating { src, dst, hops } => {
                write!(
                    f,
                    "routing from {src:?} to {dst:?} did not terminate ({hops} hops)"
                )
            }
            RoutingError::WrongConsumption { src, dst, reached } => {
                write!(
                    f,
                    "routing {src:?} -> {dst:?} consumed at the wrong node ({reached:?})"
                )
            }
        }
    }
}

impl std::error::Error for RoutingError {}

/// A wormhole network: a channel graph plus a routing function and the
/// architecture-specific total order (chain) over nodes.
pub trait Topology: Send + Sync {
    /// The channel graph.
    fn graph(&self) -> &NetworkGraph;

    /// Append the preference-ordered candidate output channels at router `r`
    /// for a worm from `src` headed to `dest`.  Deterministic topologies
    /// yield exactly one candidate; the BMIN up-phase yields two.  When the
    /// worm has reached `dest`'s router the single candidate is the
    /// consumption channel.
    fn route_candidates(&self, r: RouterId, src: NodeId, dest: NodeId, out: &mut Vec<ChannelId>);

    /// The precomputed next-hop table for this instance, built lazily on
    /// first use and cached for the instance's lifetime (clones share it).
    /// Contract: [`RouteTable::candidates`] returns exactly what
    /// [`Topology::route_candidates`] would for every (router, src, dest)
    /// the routing function is defined on — the simulator routes through
    /// the table, the checkers through the dynamic function, and the
    /// differential tests in `tests/route_table.rs` pin the two together.
    fn route_table(&self) -> &RouteTable;

    /// The architecture's chain-ordering key: dimension-ordered (`<_d`) for
    /// meshes, lexicographic (binary address value) for BMINs.  Sorting nodes
    /// by this key yields the chain OPT-mesh/OPT-min split.
    fn chain_key(&self, n: NodeId) -> u64;

    /// Human-readable topology name for reports.
    fn name(&self) -> String;

    /// Fallible form of [`Topology::det_path`]: the deterministic path from
    /// `src` to `dst` following first-preference candidates, or a typed
    /// [`RoutingError`] when the routing function misbehaves.  Static
    /// analysis (`netcheck`) reports these as diagnostics instead of
    /// aborting.
    fn try_det_path(&self, src: NodeId, dst: NodeId) -> Result<Vec<ChannelId>, RoutingError> {
        if src == dst {
            return Err(RoutingError::SelfRoute { node: src });
        }
        let g = self.graph();
        let mut path = vec![g.injection(src)];
        let mut at = g
            .dst_router(g.injection(src))
            .expect("injection leads to a router");
        let mut cand = Vec::new();
        // A worm never needs more hops than channels exist.
        for _ in 0..=g.n_channels() {
            cand.clear();
            self.route_candidates(at, src, dst, &mut cand);
            let Some(&next) = cand.first() else {
                return Err(RoutingError::NoCandidate { at, src, dst });
            };
            path.push(next);
            match g.dst_router(next) {
                Some(r) => at = r,
                None => {
                    if g.dst_node(next) != Some(dst) {
                        return Err(RoutingError::WrongConsumption {
                            src,
                            dst,
                            reached: g.dst_node(next),
                        });
                    }
                    return Ok(path);
                }
            }
        }
        Err(RoutingError::NonTerminating {
            src,
            dst,
            hops: g.n_channels() + 1,
        })
    }

    /// The deterministic path from `src` to `dst`, injection and consumption
    /// channels inclusive, following first-preference candidates.  This is
    /// the path the static contention checker reasons about.
    ///
    /// # Panics
    /// If `src == dst` (a node does not route to itself) or routing fails to
    /// make progress (a topology bug).  Use [`Topology::try_det_path`] to
    /// get a typed error instead.
    fn det_path(&self, src: NodeId, dst: NodeId) -> Vec<ChannelId> {
        match self.try_det_path(src, dst) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of router-to-router hops on the deterministic path.
    fn distance(&self, src: NodeId, dst: NodeId) -> usize {
        if src == dst {
            0
        } else {
            // path = injection + (hops between routers) + consumption.
            self.det_path(src, dst).len().saturating_sub(2)
        }
    }

    /// Sort `nodes` into this topology's chain order (stable, by
    /// [`Topology::chain_key`]).
    fn sort_chain(&self, nodes: &mut [NodeId]) {
        nodes.sort_by_key(|&n| self.chain_key(n));
    }

    /// An upper bound on the number of channels (injection and consumption
    /// inclusive) on any deterministic path in this topology.
    ///
    /// The sharded engine uses this to decide whether a workload's worms are
    /// long enough that every channel release lands strictly in the future
    /// (DESIGN.md §15 "when sharding loses"); a tight bound admits more
    /// workloads.  The default is the trivially safe `n_channels + 2`, which
    /// effectively disables sharding — topologies with a known diameter
    /// should override.
    fn max_path_channels(&self) -> usize {
        self.graph().n_channels() + 2
    }
}
