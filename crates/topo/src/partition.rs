//! Deterministic topology partitioning for the sharded simulation engine.
//!
//! A [`Partition`] assigns every router — and, derived from that, every
//! channel and node — to one of `n_shards` shards.  The assignment is a
//! pure function of the graph, the shard count, and a seed: the same
//! inputs always yield the same partition, which the sharded engine needs
//! for reproducible runs (DESIGN.md §15).
//!
//! Ownership rules:
//!
//! * a **router** belongs to the shard the partitioner assigned it;
//! * a **node** belongs to the shard of the router behind its consumption
//!   ports — that is where worms drain and receives are processed.  (On
//!   meshes, tori and BMINs a node's injection and consumption ports share
//!   one router; on unidirectional Omega networks they do not, and the
//!   consumption side wins);
//! * a **channel** belongs to the shard of its *source*: the source
//!   router's shard for router→router and consumption channels, the
//!   owning node's shard for injection channels.  All wormhole
//!   arbitration for a channel (candidate scan, acquire, waiter list) is
//!   therefore local to one shard.
//!
//! A channel *crosses* when the router it feeds lives in a different
//! shard than the channel's owner: router→router channels between shards,
//! and (Omega only) injection channels whose stage-0 router is remote
//! from the node's consumption-side home.  Consumption channels never
//! cross.  The partitioner greedily grows balanced regions from
//! farthest-point seeds and then runs a few boundary-refinement passes to
//! shrink the edge cut.

use crate::graph::{ChannelId, Endpoint, NetworkGraph, NodeId, RouterId};
use std::collections::VecDeque;

/// An assignment of routers, channels and nodes to shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    n_shards: usize,
    shard_of_router: Vec<u32>,
    shard_of_channel: Vec<u32>,
    shard_of_node: Vec<u32>,
    /// Router→router channels whose src and dst routers are in different
    /// shards, in channel-id order.
    crossing: Vec<ChannelId>,
}

impl Partition {
    /// Partition `g` into `n_shards` shards, deterministically in
    /// `(g, n_shards, seed)`.
    ///
    /// # Panics
    /// If `n_shards` is zero or exceeds the number of routers, or if some
    /// node's ports attach to routers the partitioner placed in different
    /// shards (no standard topology does this).
    pub fn build(g: &NetworkGraph, n_shards: usize, seed: u64) -> Self {
        let nr = g.n_routers();
        assert!(n_shards >= 1, "need at least one shard");
        assert!(
            n_shards <= nr,
            "cannot split {nr} routers into {n_shards} shards"
        );

        let adj = router_adjacency(g);
        let shard_of_router = if n_shards == 1 {
            vec![0u32; nr]
        } else {
            let mut assign = grow_regions(&adj, nr, n_shards, seed);
            refine(&adj, &mut assign, n_shards);
            assign
        };

        // Nodes: the shard of the router behind their consumption ports.
        let shard_of_node: Vec<u32> = (0..g.n_nodes())
            .map(|n| {
                let node = NodeId(n as u32);
                let home = match g.channel(g.consumption(node)).src {
                    Endpoint::Router(r) => r,
                    Endpoint::Node(_) => unreachable!("consumption channels start at a router"),
                };
                let s = shard_of_router[home.idx()];
                for &c in g.consumptions(node) {
                    if let Endpoint::Router(r) = g.channel(c).src {
                        assert_eq!(
                            shard_of_router[r.idx()],
                            s,
                            "node {node:?} consumes from routers in different shards"
                        );
                    }
                }
                s
            })
            .collect();

        // Channels: owned by their source side.  A channel crosses when
        // the router it feeds lives in a different shard than its owner.
        let mut shard_of_channel = vec![0u32; g.n_channels()];
        let mut crossing = Vec::new();
        for (i, ch) in g.channels().iter().enumerate() {
            let owner = match ch.src {
                Endpoint::Router(s) => shard_of_router[s.idx()],
                Endpoint::Node(n) => shard_of_node[n.idx()],
            };
            shard_of_channel[i] = owner;
            if let Endpoint::Router(d) = ch.dst {
                if owner != shard_of_router[d.idx()] {
                    crossing.push(ChannelId(i as u32));
                }
            }
        }

        Self {
            n_shards,
            shard_of_router,
            shard_of_channel,
            shard_of_node,
            crossing,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Shard owning router `r`.
    pub fn router_shard(&self, r: RouterId) -> usize {
        self.shard_of_router[r.idx()] as usize
    }

    /// Shard owning channel `c` (its source router's shard).
    pub fn channel_shard(&self, c: ChannelId) -> usize {
        self.shard_of_channel[c.idx()] as usize
    }

    /// Shard owning node `n`.
    pub fn node_shard(&self, n: NodeId) -> usize {
        self.shard_of_node[n.idx()] as usize
    }

    /// Channels that cross a shard boundary (owner shard differs from the
    /// fed router's shard), in id order.
    pub fn crossing_channels(&self) -> &[ChannelId] {
        &self.crossing
    }

    /// Does channel `c` cross a shard boundary?
    pub fn channel_crosses(&self, c: ChannelId) -> bool {
        self.crossing.binary_search(&c).is_ok()
    }

    /// Size of the edge cut (number of crossing channels).
    pub fn cut(&self) -> usize {
        self.crossing.len()
    }

    /// The minimum latency over all crossing channels, per the caller's
    /// latency function — the conservative-window lookahead of DESIGN.md
    /// §15.  `None` when no channel crosses (single shard or disconnected
    /// regions), in which case shards never interact.
    pub fn min_cross_latency<L, T>(&self, latency: L) -> Option<T>
    where
        L: Fn(ChannelId) -> T,
        T: Ord,
    {
        self.crossing.iter().map(|&c| latency(c)).min()
    }

    /// For every router, the minimum number of channel traversals before a
    /// worm advancing out of that router can first occupy a crossing
    /// channel: `1` if some outgoing channel crosses, `1 + min(next)`
    /// otherwise, `u32::MAX` if no boundary is reachable.  The sharded
    /// engine multiplies this by the per-hop latency to lower-bound when
    /// local work can next affect another shard.
    pub fn crossing_distance(&self, g: &NetworkGraph) -> Vec<u32> {
        let per_dest = self.crossing_distance_to(g);
        (0..g.n_routers())
            .map(|r| per_dest.iter().map(|d| d[r]).min().unwrap_or(u32::MAX))
            .collect()
    }

    /// Per-destination-shard refinement of [`crossing_distance`]:
    /// `dist[j][r]` is the minimum number of channel traversals before a
    /// worm advancing out of router `r` can first occupy a channel that
    /// crosses *into* shard `j`, walking only channels internal to `r`'s
    /// own shard until that final crossing hop (a worm that leaves its
    /// shard earlier migrates there instead — that emission is charged to
    /// the intermediate shard, and the window protocol's relay terms cover
    /// the rest of the journey).  `u32::MAX` when shard `j` cannot be
    /// reached that way.  Taking the minimum over `j` recovers the global
    /// [`crossing_distance`], because a shortest path to *any* boundary
    /// never crosses an intermediate boundary.
    pub fn crossing_distance_to(&self, g: &NetworkGraph) -> Vec<Vec<u32>> {
        let nr = g.n_routers();
        // Reverse adjacency restricted to intra-shard router→router
        // channels: predecessors reach the seed without crossing early.
        let mut radj: Vec<Vec<u32>> = vec![Vec::new(); nr];
        for ch in g.channels() {
            if let (Endpoint::Router(s), Endpoint::Router(d)) = (ch.src, ch.dst) {
                if self.shard_of_router[s.idx()] == self.shard_of_router[d.idx()] {
                    radj[d.idx()].push(s.idx() as u32);
                }
            }
        }
        let mut out = Vec::with_capacity(self.n_shards);
        let mut queue = VecDeque::new();
        for j in 0..self.n_shards as u32 {
            let mut dist = vec![u32::MAX; nr];
            queue.clear();
            for &c in &self.crossing {
                let ch = g.channel(c);
                if let (Endpoint::Router(s), Endpoint::Router(d)) = (ch.src, ch.dst) {
                    if self.shard_of_router[d.idx()] == j && dist[s.idx()] == u32::MAX {
                        dist[s.idx()] = 1;
                        queue.push_back(s.idx());
                    }
                }
            }
            while let Some(r) = queue.pop_front() {
                let next = dist[r] + 1;
                for &p in &radj[r] {
                    if dist[p as usize] == u32::MAX {
                        dist[p as usize] = next;
                        queue.push_back(p as usize);
                    }
                }
            }
            out.push(dist);
        }
        out
    }

    /// Direct shard-to-shard message adjacency: `adj[i][j]` is true when
    /// some crossing channel owned by shard `i` feeds a router in shard
    /// `j` — the only way a worm migration (or an Omega injection) can
    /// carry work from `i` to `j` in one hop.  `adj[i][i]` is never set.
    pub fn shard_adjacency(&self, g: &NetworkGraph) -> Vec<Vec<bool>> {
        let k = self.n_shards;
        let mut adj = vec![vec![false; k]; k];
        for &c in &self.crossing {
            if let Endpoint::Router(d) = g.channel(c).dst {
                let owner = self.shard_of_channel[c.idx()] as usize;
                adj[owner][self.shard_of_router[d.idx()] as usize] = true;
            }
        }
        adj
    }

    /// Transitive closure (one or more hops) of [`shard_adjacency`]:
    /// `reach[i][j]` is true when a worm can migrate from shard `i` to
    /// shard `j` through any chain of crossing channels.  The sharded
    /// engine uses the *reverse* direction for releases: a worm draining
    /// in `j` may still hold channels in every shard `i` with
    /// `reach[i][j]`, and their releases ship backward.
    pub fn shard_reachability(&self, g: &NetworkGraph) -> Vec<Vec<bool>> {
        let k = self.n_shards;
        let mut reach = self.shard_adjacency(g);
        for via in 0..k {
            let via_row = reach[via].clone();
            for row in &mut reach {
                if row[via] {
                    for (cell, &through) in row.iter_mut().zip(&via_row) {
                        *cell |= through;
                    }
                }
            }
        }
        reach
    }
}

/// Undirected router adjacency (neighbors sorted, deduplicated).
fn router_adjacency(g: &NetworkGraph) -> Vec<Vec<u32>> {
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); g.n_routers()];
    for ch in g.channels() {
        if let (Endpoint::Router(s), Endpoint::Router(d)) = (ch.src, ch.dst) {
            adj[s.idx()].push(d.idx() as u32);
            adj[d.idx()].push(s.idx() as u32);
        }
    }
    for nb in &mut adj {
        nb.sort_unstable();
        nb.dedup();
    }
    adj
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Pick `k` seed routers (first at random from `seed`, the rest by
/// farthest-point sampling) and grow balanced BFS regions around them.
fn grow_regions(adj: &[Vec<u32>], nr: usize, k: usize, seed: u64) -> Vec<u32> {
    let mut rng = seed;
    let first = (splitmix(&mut rng) % nr as u64) as usize;
    let mut seeds = vec![first];
    let mut dist = vec![u32::MAX; nr];
    let mut queue = VecDeque::new();
    while seeds.len() < k {
        // Multi-source BFS distance from the chosen seed set; the next
        // seed is the router farthest from all of them (smallest id on
        // ties — deterministic).
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        queue.clear();
        for &s in &seeds {
            dist[s] = 0;
            queue.push_back(s);
        }
        while let Some(r) = queue.pop_front() {
            for &nb in &adj[r] {
                if dist[nb as usize] == u32::MAX {
                    dist[nb as usize] = dist[r] + 1;
                    queue.push_back(nb as usize);
                }
            }
        }
        let far = (0..nr)
            .filter(|&r| !seeds.contains(&r))
            .max_by_key(|&r| (dist[r], std::cmp::Reverse(r)))
            .expect("k <= n_routers leaves an unseeded router");
        seeds.push(far);
    }

    let mut assign = vec![u32::MAX; nr];
    let mut frontiers: Vec<VecDeque<usize>> = vec![VecDeque::new(); k];
    let mut sizes = vec![0usize; k];
    let mut assigned = 0usize;
    for (s, &r) in seeds.iter().enumerate() {
        assign[r] = s as u32;
        sizes[s] += 1;
        assigned += 1;
        frontiers[s].extend(adj[r].iter().map(|&nb| nb as usize));
    }
    let mut next_unassigned = 0usize;
    while assigned < nr {
        // Grow the currently smallest shard (smallest id on ties).
        let s = (0..k).min_by_key(|&s| (sizes[s], s)).expect("k >= 1");
        let mut claimed = None;
        while let Some(r) = frontiers[s].pop_front() {
            if assign[r] == u32::MAX {
                claimed = Some(r);
                break;
            }
        }
        let r = claimed.unwrap_or_else(|| {
            // Frontier exhausted (disconnected graph or fully enclosed
            // region): claim the smallest-id unassigned router.
            while assign[next_unassigned] != u32::MAX {
                next_unassigned += 1;
            }
            next_unassigned
        });
        assign[r] = s as u32;
        sizes[s] += 1;
        assigned += 1;
        frontiers[s].extend(adj[r].iter().map(|&nb| nb as usize));
    }
    assign
}

/// A few deterministic boundary-refinement passes: move a router to a
/// neighboring shard when that strictly reduces the cut and keeps every
/// shard above three quarters of its fair share.
fn refine(adj: &[Vec<u32>], assign: &mut [u32], k: usize) {
    let nr = assign.len();
    let lo = std::cmp::max(1, nr / k - nr / (k * 4));
    let mut sizes = vec![0usize; k];
    for &s in assign.iter() {
        sizes[s as usize] += 1;
    }
    let mut gain = vec![0i64; k];
    for _pass in 0..3 {
        let mut moved = false;
        for r in 0..nr {
            let cur = assign[r] as usize;
            if sizes[cur] <= lo {
                continue;
            }
            gain.iter_mut().for_each(|g| *g = 0);
            for &nb in &adj[r] {
                gain[assign[nb as usize] as usize] += 1;
            }
            let here = gain[cur];
            // Best strictly-improving destination, smallest shard id wins
            // ties so the scan order can't depend on map iteration.
            let best = (0..k)
                .filter(|&s| s != cur && gain[s] > here)
                .max_by_key(|&s| (gain[s], std::cmp::Reverse(s)));
            if let Some(dst) = best {
                assign[r] = dst as u32;
                sizes[cur] -= 1;
                sizes[dst] += 1;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bmin, Mesh, Omega, Topology, Torus, UpPolicy};

    fn all_graphs() -> Vec<(String, NetworkGraph)> {
        let topos: Vec<Box<dyn Topology>> = vec![
            Box::new(Mesh::new(&[8, 8])),
            Box::new(Torus::new(&[6, 6])),
            Box::new(Bmin::new(6, UpPolicy::Straight)),
            Box::new(Omega::new(6)),
        ];
        topos
            .into_iter()
            .map(|t| (t.name(), t.graph().clone()))
            .collect()
    }

    #[test]
    fn deterministic_for_fixed_inputs() {
        for (name, g) in all_graphs() {
            for shards in [1, 2, 4, 8] {
                for seed in [0u64, 1997, u64::MAX] {
                    let a = Partition::build(&g, shards, seed);
                    let b = Partition::build(&g, shards, seed);
                    assert_eq!(a, b, "{name} shards={shards} seed={seed}");
                }
            }
        }
    }

    #[test]
    fn every_router_assigned_exactly_once_and_balanced() {
        for (name, g) in all_graphs() {
            for shards in [2usize, 4, 8] {
                let p = Partition::build(&g, shards, 1997);
                let mut sizes = vec![0usize; shards];
                for r in 0..g.n_routers() {
                    let s = p.router_shard(RouterId(r as u32));
                    assert!(s < shards, "{name}: router {r} in out-of-range shard {s}");
                    sizes[s] += 1;
                }
                assert_eq!(sizes.iter().sum::<usize>(), g.n_routers());
                assert!(
                    sizes.iter().all(|&s| s > 0),
                    "{name} shards={shards}: empty shard ({sizes:?})"
                );
            }
        }
    }

    #[test]
    fn channels_follow_src_side_and_nodes_follow_consumption() {
        for (name, g) in all_graphs() {
            let p = Partition::build(&g, 4, 7);
            for n in 0..g.n_nodes() {
                let node = NodeId(n as u32);
                let home = match g.channel(g.consumption(node)).src {
                    Endpoint::Router(r) => r,
                    Endpoint::Node(_) => unreachable!(),
                };
                assert_eq!(p.node_shard(node), p.router_shard(home), "{name} node {n}");
            }
            for (i, ch) in g.channels().iter().enumerate() {
                let c = ChannelId(i as u32);
                let expect = match ch.src {
                    Endpoint::Router(r) => p.router_shard(r),
                    Endpoint::Node(n) => p.node_shard(n),
                };
                assert_eq!(p.channel_shard(c), expect, "{name} channel {i}");
            }
        }
    }

    #[test]
    fn crossing_set_is_exact() {
        for (name, g) in all_graphs() {
            let p = Partition::build(&g, 4, 3);
            let mut expect = Vec::new();
            for (i, ch) in g.channels().iter().enumerate() {
                let c = ChannelId(i as u32);
                if let Endpoint::Router(d) = ch.dst {
                    if p.channel_shard(c) != p.router_shard(d) {
                        expect.push(c);
                    }
                }
            }
            assert_eq!(p.crossing_channels(), expect.as_slice(), "{name}");
            assert_eq!(p.cut(), expect.len(), "{name}");
            for (i, _) in g.channels().iter().enumerate() {
                let c = ChannelId(i as u32);
                assert_eq!(p.channel_crosses(c), expect.contains(&c), "{name} ch {i}");
            }
        }
    }

    #[test]
    fn lookahead_is_true_minimum_latency() {
        // Property test: under an arbitrary per-channel latency function,
        // min_cross_latency equals a brute-force scan over the exact
        // crossing set.
        for (name, g) in all_graphs() {
            for seed in 0..8u64 {
                let p = Partition::build(&g, 4, seed);
                let lat = |c: ChannelId| {
                    let mut s = seed ^ (u64::from(c.0) << 17);
                    1 + splitmix(&mut s) % 97
                };
                let brute = g
                    .channels()
                    .iter()
                    .enumerate()
                    .filter(|&(i, ch)| match ch.dst {
                        Endpoint::Router(d) => {
                            p.channel_shard(ChannelId(i as u32)) != p.router_shard(d)
                        }
                        Endpoint::Node(_) => false,
                    })
                    .map(|(i, _)| lat(ChannelId(i as u32)))
                    .min();
                assert_eq!(p.min_cross_latency(lat), brute, "{name} seed={seed}");
            }
        }
    }

    #[test]
    fn crossing_distance_is_shortest_hop_count_to_boundary() {
        for (name, g) in all_graphs() {
            let p = Partition::build(&g, 4, 11);
            let dist = p.crossing_distance(&g);
            // Verify against a per-router forward BFS.
            let mut adj: Vec<Vec<usize>> = vec![Vec::new(); g.n_routers()];
            let mut crosses = vec![false; g.n_routers()];
            for ch in g.channels() {
                if let (Endpoint::Router(s), Endpoint::Router(d)) = (ch.src, ch.dst) {
                    adj[s.idx()].push(d.idx());
                    if p.router_shard(s) != p.router_shard(d) {
                        crosses[s.idx()] = true;
                    }
                }
            }
            for r in 0..g.n_routers() {
                let mut best = u32::MAX;
                let mut seen = vec![false; g.n_routers()];
                let mut q = std::collections::VecDeque::from([(r, 1u32)]);
                seen[r] = true;
                while let Some((at, hops)) = q.pop_front() {
                    if crosses[at] {
                        best = best.min(hops);
                        continue;
                    }
                    for &nb in &adj[at] {
                        if !seen[nb] {
                            seen[nb] = true;
                            q.push_back((nb, hops + 1));
                        }
                    }
                }
                assert_eq!(dist[r], best, "{name} router {r}");
            }
        }
    }

    #[test]
    fn per_destination_distance_matches_restricted_bfs_oracle() {
        // `crossing_distance_to[j][r]` must equal a forward BFS from `r`
        // that walks only channels internal to `r`'s shard and stops on
        // the first channel crossing into shard `j`.
        for (name, g) in all_graphs() {
            for shards in [2usize, 4] {
                let p = Partition::build(&g, shards, 11);
                let dist = p.crossing_distance_to(&g);
                let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); g.n_routers()];
                for ch in g.channels() {
                    if let (Endpoint::Router(s), Endpoint::Router(d)) = (ch.src, ch.dst) {
                        adj[s.idx()].push((d.idx(), p.router_shard(d)));
                    }
                }
                for r in 0..g.n_routers() {
                    let home = p.router_shard(RouterId(r as u32));
                    for (j, dist_j) in dist.iter().enumerate() {
                        let mut best = u32::MAX;
                        let mut seen = vec![false; g.n_routers()];
                        let mut q = std::collections::VecDeque::from([(r, 1u32)]);
                        seen[r] = true;
                        while let Some((at, hops)) = q.pop_front() {
                            for &(nb, nb_shard) in &adj[at] {
                                if nb_shard == j && home != j {
                                    best = best.min(hops);
                                } else if nb_shard == home && !seen[nb] {
                                    seen[nb] = true;
                                    q.push_back((nb, hops + 1));
                                }
                            }
                        }
                        assert_eq!(
                            dist_j[r], best,
                            "{name} shards={shards} router {r} -> shard {j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shard_adjacency_and_reachability_are_exact() {
        for (name, g) in all_graphs() {
            for shards in [2usize, 4, 8] {
                let p = Partition::build(&g, shards, 1997);
                let adj = p.shard_adjacency(&g);
                // Oracle adjacency: scan every channel directly.
                let mut expect = vec![vec![false; shards]; shards];
                for (i, ch) in g.channels().iter().enumerate() {
                    if let Endpoint::Router(d) = ch.dst {
                        let owner = p.channel_shard(ChannelId(i as u32));
                        let dst = p.router_shard(d);
                        if owner != dst {
                            expect[owner][dst] = true;
                        }
                    }
                }
                assert_eq!(adj, expect, "{name} shards={shards}");

                // Oracle closure: DFS over the oracle adjacency.
                let reach = p.shard_reachability(&g);
                for i in 0..shards {
                    let mut seen = vec![false; shards];
                    let mut stack: Vec<usize> = (0..shards).filter(|&j| expect[i][j]).collect();
                    while let Some(j) = stack.pop() {
                        if !seen[j] {
                            seen[j] = true;
                            stack.extend((0..shards).filter(|&n| expect[j][n]));
                        }
                    }
                    assert_eq!(reach[i], seen, "{name} shards={shards} from {i}");
                }
            }
        }
    }

    #[test]
    fn single_shard_owns_everything_and_never_crosses() {
        let g = Mesh::new(&[4, 4]).graph().clone();
        let p = Partition::build(&g, 1, 42);
        assert_eq!(p.cut(), 0);
        assert_eq!(p.min_cross_latency(|_| 1u64), None);
        for r in 0..g.n_routers() {
            assert_eq!(p.router_shard(RouterId(r as u32)), 0);
        }
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn more_shards_than_routers_panics() {
        let g = Mesh::new(&[2, 2]).graph().clone();
        let _ = Partition::build(&g, 5, 0);
    }
}
