//! Precomputed next-hop tables — the static image of a topology's routing
//! function.
//!
//! [`crate::Topology::route_candidates`] is a virtual call that recomputes
//! coordinates (mesh/torus) or block membership (BMIN) on every head
//! advance; the simulator asks it once per hop per worm, millions of times
//! per campaign.  A [`RouteTable`] evaluates the routing function once per
//! topology instance and reduces every later query to an array lookup.
//!
//! # Layout
//!
//! The table is a flat `routers × nodes` array of 8-byte [`Entry`] records
//! indexing into one shared channel pool.  Three entry kinds cover every
//! topology in the workspace:
//!
//! * **Fixed** — the candidate list is a function of (router, dest) alone:
//!   meshes, omega, the BMIN down-phase and the BMIN up-phase under
//!   [`crate::UpPolicy::DestColumn`].  The pool holds the candidates in
//!   preference order.
//! * **SrcBit** — the candidate *set* is fixed but the preference order
//!   flips on one source-address bit: the BMIN up-phase under
//!   [`crate::UpPolicy::Straight`] prefers up-port `δ_{ℓ+1}(src)`.  The
//!   pool holds the port-0 and port-1 channels; `aux` is the bit index.
//! * **Wrap** — the torus e-cube step: direction and dateline VC depend on
//!   the *source* coordinate in the active dimension.  The pool holds the
//!   four (direction × VC) channels; `aux` is the dimension, and the table
//!   carries the node coordinate grid to resolve the comparison at lookup
//!   time.  Requires router `i` to be co-located with node `i` (true for
//!   the torus, the only wrap user).
//!
//! Entries left unset stay [`Entry::EMPTY`]; querying one panics.  This is
//! deliberate: the omega network's routing function is only defined at
//! (router, dest) pairs its single path can reach, and a table miss there
//! is a routing bug, not a recoverable condition.

use std::sync::{Arc, OnceLock};

use crate::graph::{ChannelId, NetworkGraph, NodeId, RouterId};

const KIND_EMPTY: u8 = 0;
const KIND_FIXED: u8 = 1;
const KIND_SRC_BIT: u8 = 2;
const KIND_WRAP: u8 = 3;

/// One (router, dest) record: a kind tag plus an offset into the pool.
#[derive(Debug, Clone, Copy)]
struct Entry {
    off: u32,
    len: u8,
    kind: u8,
    aux: u8,
}

impl Entry {
    const EMPTY: Entry = Entry {
        off: 0,
        len: 0,
        kind: KIND_EMPTY,
        aux: 0,
    };
}

/// A precomputed routing table for one topology instance.  Built once (see
/// [`RouteCache`]), then read-only and lock-free.
pub struct RouteTable {
    n_nodes: usize,
    entries: Vec<Entry>,
    pool: Vec<ChannelId>,
    /// Node coordinates, `coords[node * ndim + d]` — only populated when
    /// wrap entries exist (torus).
    coords: Vec<u32>,
    /// Side lengths per dimension (wrap entries only).
    dims: Vec<u32>,
}

impl std::fmt::Debug for RouteTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteTable")
            .field("routers", &(self.entries.len() / self.n_nodes.max(1)))
            .field("nodes", &self.n_nodes)
            .field("pool", &self.pool.len())
            .finish()
    }
}

impl RouteTable {
    /// Append the preference-ordered candidates at router `r` for a worm
    /// `src → dest` — semantically identical to the dynamic
    /// [`crate::Topology::route_candidates`] of the topology that built the
    /// table.
    ///
    /// # Panics
    /// If the (router, dest) pair has no entry — routing is undefined there.
    #[inline]
    pub fn candidates(&self, r: RouterId, src: NodeId, dest: NodeId, out: &mut Vec<ChannelId>) {
        let e = self.entries[r.idx() * self.n_nodes + dest.idx()];
        let off = e.off as usize;
        match e.kind {
            KIND_FIXED => out.extend_from_slice(&self.pool[off..off + e.len as usize]),
            KIND_SRC_BIT => {
                let pref = ((src.0 >> e.aux) & 1) as usize;
                out.push(self.pool[off + pref]);
                out.push(self.pool[off + (1 - pref)]);
            }
            KIND_WRAP => {
                let d = e.aux as usize;
                let ndim = self.dims.len();
                let m = self.dims[d];
                let here = self.coords[r.idx() * ndim + d];
                let from = self.coords[src.idx() * ndim + d];
                let to = self.coords[dest.idx() * ndim + d];
                // Same decision as the torus routing function: direction by
                // the shortest way from the source coordinate (ties go +),
                // dateline VC once the wrap edge has been crossed.
                let fwd = (to + m - from) % m;
                let (dir, crossed) = if fwd <= m - fwd {
                    (0, here < from)
                } else {
                    (1, here > from)
                };
                out.push(self.pool[off + dir * 2 + usize::from(crossed)]);
            }
            _ => panic!("no route entry at {r:?} for dest {dest:?}"),
        }
    }

    /// Build a table for a topology whose candidates depend only on
    /// (router, dest): `route` is queried once per pair.  Covers the mesh,
    /// and any topology whose `route_candidates` ignores `src`.
    pub fn src_invariant(
        g: &NetworkGraph,
        route: impl Fn(RouterId, NodeId, &mut Vec<ChannelId>),
    ) -> Self {
        let mut b = RouteTableBuilder::new(g.n_routers(), g.n_nodes());
        let mut cand = Vec::new();
        for r in 0..g.n_routers() as u32 {
            for dest in 0..g.n_nodes() as u32 {
                cand.clear();
                route(RouterId(r), NodeId(dest), &mut cand);
                b.fixed(RouterId(r), NodeId(dest), &cand);
            }
        }
        b.build()
    }
}

/// Incremental builder for [`RouteTable`].
pub struct RouteTableBuilder {
    n_nodes: usize,
    entries: Vec<Entry>,
    pool: Vec<ChannelId>,
    /// Offset/length of the most recently interned segment, for the
    /// run-length dedup in [`RouteTableBuilder::intern`] (consecutive dests
    /// at one router usually share a next hop).
    last: (u32, u8),
    coords: Vec<u32>,
    dims: Vec<u32>,
}

impl RouteTableBuilder {
    /// An empty table over `n_routers × n_nodes` entry slots.
    pub fn new(n_routers: usize, n_nodes: usize) -> Self {
        Self {
            n_nodes,
            entries: vec![Entry::EMPTY; n_routers * n_nodes],
            pool: Vec::new(),
            last: (0, 0),
            coords: Vec::new(),
            dims: Vec::new(),
        }
    }

    /// Intern a candidate segment into the pool, reusing the previous
    /// segment when identical, and return its offset.
    ///
    /// # Panics
    /// If the segment is longer than 255 channels.
    pub fn intern(&mut self, chans: &[ChannelId]) -> u32 {
        assert!(chans.len() <= u8::MAX as usize, "candidate list too long");
        let (off, len) = self.last;
        if len as usize == chans.len()
            && self.pool[off as usize..off as usize + len as usize] == *chans
        {
            return off;
        }
        let off = self.pool.len() as u32;
        self.pool.extend_from_slice(chans);
        self.last = (off, chans.len() as u8);
        off
    }

    fn slot(&mut self, r: RouterId, dest: NodeId) -> &mut Entry {
        &mut self.entries[r.idx() * self.n_nodes + dest.idx()]
    }

    /// Record a source-independent candidate list at (`r`, `dest`).
    pub fn fixed(&mut self, r: RouterId, dest: NodeId, chans: &[ChannelId]) {
        let off = self.intern(chans);
        *self.slot(r, dest) = Entry {
            off,
            len: chans.len() as u8,
            kind: KIND_FIXED,
            aux: 0,
        };
    }

    /// Record a source-bit entry: the pair at `pair_off` (port-0 channel
    /// then port-1 channel, as returned by [`RouteTableBuilder::intern`])
    /// is emitted preferred-first by bit `shift` of the source address.
    pub fn src_bit(&mut self, r: RouterId, dest: NodeId, pair_off: u32, shift: u8) {
        *self.slot(r, dest) = Entry {
            off: pair_off,
            len: 2,
            kind: KIND_SRC_BIT,
            aux: shift,
        };
    }

    /// Record a torus wrap entry: the quad at `quad_off` holds the
    /// `[+vc0, +vc1, −vc0, −vc1]` channels of dimension `dim` at router
    /// `r`; the coordinate grid (see
    /// [`RouteTableBuilder::set_wrap_geometry`]) resolves direction and VC
    /// at lookup time.
    pub fn wrap(&mut self, r: RouterId, dest: NodeId, dim: u8, quad_off: u32) {
        *self.slot(r, dest) = Entry {
            off: quad_off,
            len: 1,
            kind: KIND_WRAP,
            aux: dim,
        };
    }

    /// Supply the node coordinate grid wrap entries resolve against:
    /// `coords[node * dims.len() + d]`, sides in `dims`.
    pub fn set_wrap_geometry(&mut self, dims: Vec<u32>, coords: Vec<u32>) {
        self.dims = dims;
        self.coords = coords;
    }

    /// Finish building.
    pub fn build(self) -> RouteTable {
        RouteTable {
            n_nodes: self.n_nodes,
            entries: self.entries,
            pool: self.pool,
            coords: self.coords,
            dims: self.dims,
        }
    }
}

/// Lazily-built, per-instance [`RouteTable`] cache.  Cloning a topology
/// shares the cache (the table is a pure function of the immutable
/// topology, so sharing is safe and saves the rebuild).
#[derive(Debug, Clone, Default)]
pub struct RouteCache(Arc<OnceLock<RouteTable>>);

impl RouteCache {
    /// The cached table, building it on first use.
    pub fn get_or_build(&self, build: impl FnOnce() -> RouteTable) -> &RouteTable {
        self.0.get_or_init(build)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_entries_round_trip() {
        let mut b = RouteTableBuilder::new(2, 2);
        b.fixed(RouterId(0), NodeId(0), &[ChannelId(7)]);
        b.fixed(RouterId(0), NodeId(1), &[ChannelId(7)]); // dedup run
        b.fixed(RouterId(1), NodeId(0), &[ChannelId(3), ChannelId(4)]);
        b.fixed(RouterId(1), NodeId(1), &[ChannelId(5)]);
        let t = b.build();
        assert_eq!(t.pool.len(), 4, "run-length dedup shares the pool slot");
        let mut out = Vec::new();
        t.candidates(RouterId(1), NodeId(0), NodeId(0), &mut out);
        assert_eq!(out, vec![ChannelId(3), ChannelId(4)]);
        out.clear();
        t.candidates(RouterId(0), NodeId(0), NodeId(1), &mut out);
        assert_eq!(out, vec![ChannelId(7)]);
    }

    #[test]
    fn src_bit_orders_by_source_bit() {
        let mut b = RouteTableBuilder::new(1, 2);
        let pair = b.intern(&[ChannelId(10), ChannelId(11)]);
        b.src_bit(RouterId(0), NodeId(0), pair, 1);
        b.src_bit(RouterId(0), NodeId(1), pair, 1);
        let t = b.build();
        let mut out = Vec::new();
        t.candidates(RouterId(0), NodeId(0), NodeId(1), &mut out);
        assert_eq!(out, vec![ChannelId(10), ChannelId(11)], "bit 1 of src 0");
        out.clear();
        t.candidates(RouterId(0), NodeId(2), NodeId(1), &mut out);
        assert_eq!(out, vec![ChannelId(11), ChannelId(10)], "bit 1 of src 2");
    }

    #[test]
    #[should_panic(expected = "no route entry")]
    fn empty_entry_panics() {
        let t = RouteTableBuilder::new(1, 1).build();
        let mut out = Vec::new();
        t.candidates(RouterId(0), NodeId(0), NodeId(0), &mut out);
    }

    #[test]
    fn cache_builds_once_and_shares_across_clones() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let builds = AtomicUsize::new(0);
        let cache = RouteCache::default();
        let clone = cache.clone();
        for c in [&cache, &clone, &cache] {
            let t = c.get_or_build(|| {
                builds.fetch_add(1, Ordering::Relaxed);
                RouteTableBuilder::new(1, 1).build()
            });
            assert_eq!(t.n_nodes, 1);
        }
        assert_eq!(builds.load(Ordering::Relaxed), 1);
    }
}
