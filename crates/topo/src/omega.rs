//! Unidirectional multistage interconnection network (Omega / butterfly) —
//! the §6 "future work" architecture.
//!
//! Unlike the BMIN, a unidirectional MIN has *exactly one* path between any
//! source and destination: every message traverses all `log2 N` stages, and
//! the output port taken at stage `ℓ` is forced to bit `s-1-ℓ` of the
//! destination.  Consequently the network **cannot be partitioned into
//! contention-free processor clusters** (paper §6, citing Ni/Gui/Moore) —
//! no node ordering makes chain-splitting multicast statically
//! channel-disjoint.  The best one can do is the paper's *temporal*
//! contention avoidance: order conflicting senders in time
//! (`optmc::temporal`).
//!
//! Construction (classic Omega): `s` stages of `N/2` 2×2 switches; node `i`
//! feeds stage-0 input position `i`; a perfect shuffle (left bit-rotation)
//! connects each stage's output positions to the next stage's inputs; the
//! last stage's output position `q` feeds node `q`.

use crate::graph::{ChannelId, NetworkGraph, NodeId, RouterId};
use crate::route_table::{RouteCache, RouteTable, RouteTableBuilder};
use crate::topology::Topology;

/// An `N = 2^s` node unidirectional Omega network.
#[derive(Debug, Clone)]
pub struct Omega {
    s: u32,
    graph: NetworkGraph,
    /// `inter[(ℓ * W + r) * 2 + c]`: channel leaving stage-`ℓ` switch `r`
    /// through output port `c` (for `ℓ < s-1`; the last stage uses
    /// consumption channels).
    inter: Vec<ChannelId>,
    routes: RouteCache,
}

impl Omega {
    /// Build an Omega network on `2^s` nodes.
    ///
    /// # Panics
    /// If `s` is outside `1..=20`.
    pub fn new(s: u32) -> Self {
        assert!(
            (1..=20).contains(&s),
            "s={s} out of the sensible range 1..=20"
        );
        let n = 1usize << s;
        let w = n / 2;
        let stages = s as usize;
        let mut b = NetworkGraph::builder(n, stages * w);
        let router = |l: usize, r: usize| RouterId((l * w + r) as u32);
        // Nodes inject into stage 0 at position i and consume from the last
        // stage at position i.
        for i in 0..n {
            b.injection(NodeId(i as u32), router(0, i >> 1));
            b.consumption(NodeId(i as u32), router(stages - 1, i >> 1));
        }
        let shuffle = |q: usize| ((q << 1) | (q >> (s - 1))) & (n - 1);
        let invalid = ChannelId(u32::MAX);
        let mut inter = vec![invalid; stages * w * 2];
        for l in 0..stages - 1 {
            for r in 0..w {
                for c in 0..2usize {
                    let q = 2 * r + c; // output position
                    let p = shuffle(q); // next stage input position
                    inter[(l * w + r) * 2 + c] = b.link(router(l, r), router(l + 1, p >> 1));
                }
            }
        }
        Self {
            s,
            graph: b.build(),
            inter,
            routes: RouteCache::default(),
        }
    }

    /// Number of stages (`log2 N`).
    pub fn stages(&self) -> u32 {
        self.s
    }

    fn width(&self) -> usize {
        self.graph.n_nodes() / 2
    }

    /// Decompose a router id into (stage, switch index).
    pub fn stage_of(&self, r: RouterId) -> (usize, usize) {
        (r.idx() / self.width(), r.idx() % self.width())
    }
}

impl Topology for Omega {
    fn graph(&self) -> &NetworkGraph {
        &self.graph
    }

    fn route_candidates(&self, r: RouterId, _src: NodeId, dest: NodeId, out: &mut Vec<ChannelId>) {
        let (l, idx) = self.stage_of(r);
        let s = self.s as usize;
        // Output port at stage ℓ = bit (s-1-ℓ) of the destination: the
        // shuffle rotates that bit into the switch-select position of the
        // next stage, so after s stages the wire position equals `dest`.
        let c = (dest.idx() >> (s - 1 - l)) & 1;
        if l == s - 1 {
            debug_assert_eq!(
                2 * idx + c,
                dest.idx(),
                "omega routing must terminate at the destination's switch"
            );
            out.extend_from_slice(self.graph.consumptions(dest));
        } else {
            out.push(self.inter[(l * self.width() + idx) * 2 + c]);
        }
    }

    fn route_table(&self) -> &RouteTable {
        self.routes.get_or_build(|| {
            let s = self.s as usize;
            let w = self.width();
            let n = self.graph.n_nodes();
            let mut b = RouteTableBuilder::new(self.graph.n_routers(), n);
            for l in 0..s {
                for idx in 0..w {
                    let r = RouterId((l * w + idx) as u32);
                    if l == s - 1 {
                        // Routing is only defined at the switch owning the
                        // destination wire; other pairs stay empty (a worm
                        // that single path never strands there).
                        for c in 0..2 {
                            let dest = NodeId((2 * idx + c) as u32);
                            b.fixed(r, dest, self.graph.consumptions(dest));
                        }
                    } else {
                        for dest in 0..n as u32 {
                            let c = ((dest >> (s - 1 - l)) & 1) as usize;
                            b.fixed(r, NodeId(dest), &[self.inter[(l * w + idx) * 2 + c]]);
                        }
                    }
                }
            }
            b.build()
        })
    }

    fn chain_key(&self, n: NodeId) -> u64 {
        // Lexicographic, as for the BMIN — though no order is
        // contention-free here (§6).
        n.0 as u64
    }

    fn name(&self) -> String {
        format!("omega-{}", self.graph.n_nodes())
    }

    fn max_path_channels(&self) -> usize {
        // Unidirectional: every worm crosses all stages exactly once —
        // (stages - 1) inter-stage hops plus injection and consumption.
        self.s as usize + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::shared_channel;

    #[test]
    fn every_pair_routes_to_destination() {
        for s in [1u32, 3, 5] {
            let o = Omega::new(s);
            let n = o.graph().n_nodes() as u32;
            for x in 0..n {
                for y in 0..n {
                    if x == y {
                        continue;
                    }
                    let p = o.det_path(NodeId(x), NodeId(y));
                    // injection + (s-1) inter-stage + consumption.
                    assert_eq!(p.len(), s as usize + 1, "{x}->{y} in omega-{n}");
                    assert_eq!(o.graph().dst_node(*p.last().unwrap()), Some(NodeId(y)));
                }
            }
        }
    }

    #[test]
    fn distance_is_uniform() {
        let o = Omega::new(4);
        let d = o.distance(NodeId(0), NodeId(1));
        for x in 0..16u32 {
            for y in 0..16u32 {
                if x != y {
                    assert_eq!(o.distance(NodeId(x), NodeId(y)), d);
                }
            }
        }
    }

    /// §6's premise: the omega network cannot be partitioned into
    /// contention-free clusters at *arbitrary* cut points (chain-splitting
    /// needs every recursive split to be clean, and the OPT splits land
    /// anywhere).  Aligned power-of-two cuts are clean (the butterfly's
    /// block structure), every unaligned cut collides.
    #[test]
    fn unaligned_cuts_do_not_partition() {
        let o = Omega::new(4);
        let n = 16u32;
        let cut_is_clean = |cut: u32| -> bool {
            for a in 0..cut {
                for b in 0..cut {
                    if a == b {
                        continue;
                    }
                    let p1 = o.det_path(NodeId(a), NodeId(b));
                    for c in cut..n {
                        for d in cut..n {
                            if c == d {
                                continue;
                            }
                            let p2 = o.det_path(NodeId(c), NodeId(d));
                            if shared_channel(&p1, &p2).is_some() {
                                return false;
                            }
                        }
                    }
                }
            }
            true
        };
        // Each side needs >= 2 nodes to host an internal send.
        for cut in 2..n - 1 {
            let aligned =
                cut.is_power_of_two() || (n - cut).is_power_of_two() && cut % (n - cut) == 0;
            if !aligned {
                assert!(
                    !cut_is_clean(cut),
                    "unaligned cut {cut} unexpectedly partitions omega"
                );
            }
        }
        // And the block structure shows through at the half cut.
        assert!(cut_is_clean(8), "the aligned half cut must be clean");
    }

    #[test]
    fn paths_with_same_destination_converge() {
        // All paths to one destination share the final channel — the
        // consumption port — and typically the last stages.
        let o = Omega::new(4);
        let p1 = o.det_path(NodeId(0), NodeId(9));
        let p2 = o.det_path(NodeId(5), NodeId(9));
        assert_eq!(p1.last(), p2.last());
    }
}
