//! Golden-path and property tests for BMIN turnaround routing.
//!
//! The golden sequences are hand-derived from the butterfly construction
//! (§4 of the paper): a send climbs straight up in its source column to the
//! turn stage (highest differing address bit), then descends selecting
//! destination address bits high-to-low.  The property tests pin down the
//! channel-disjointness facts the OPT-min scheduler relies on.

use proptest::prelude::*;
use std::collections::HashSet;
use topo::{Bmin, ChannelId, NodeId, Topology, UpPolicy};

/// The (stage, switch-index) sequence of routers a path enters, in order.
/// The final (consumption) channel ends at a node, not a router, so it
/// contributes nothing.
fn router_seq(b: &Bmin, x: u32, y: u32) -> Vec<(usize, usize)> {
    b.det_path(NodeId(x), NodeId(y))
        .iter()
        .filter_map(|&c| b.graph().dst_router(c))
        .map(|r| b.stage_of(r))
        .collect()
}

/// The aligned `2^(h+1)` node block containing both endpoints of a send,
/// where `h` is the turn stage — exactly the block of the turn switch.
fn turn_block(b: &Bmin, x: u32, y: u32) -> std::ops::Range<usize> {
    let h = b.turn_stage(NodeId(x), NodeId(y));
    let a = (x >> (h + 1)) as usize;
    (a << (h + 1))..((a + 1) << (h + 1))
}

fn disjoint(a: &std::ops::Range<usize>, b: &std::ops::Range<usize>) -> bool {
    a.end <= b.start || b.end <= a.start
}

#[test]
fn golden_corner_to_corner_on_the_paper_network() {
    // 128-node BMIN, 0 -> 127: full climb in column 0, turn at stage 6,
    // then descend taking down-port 1 at every stage (dest bits all set).
    let b = Bmin::new(7, UpPolicy::Straight);
    assert_eq!(
        router_seq(&b, 0, 127),
        vec![
            (0, 0),
            (1, 0),
            (2, 0),
            (3, 0),
            (4, 0),
            (5, 0),
            (6, 0),
            (5, 32),
            (4, 48),
            (3, 56),
            (2, 60),
            (1, 62),
            (0, 63),
        ]
    );
}

#[test]
fn golden_short_hop_across_a_block_boundary() {
    // 8-node BMIN, 5 -> 6: addresses differ in bit 1, so one climb from
    // stage-0 switch 2 (nodes 4..6) to stage-1 switch 2 (block 4..8),
    // then one descent into stage-0 switch 3 (nodes 6..8).
    let b = Bmin::new(3, UpPolicy::Straight);
    assert_eq!(router_seq(&b, 5, 6), vec![(0, 2), (1, 2), (0, 3)]);
}

#[test]
fn golden_sibling_send_never_leaves_stage_zero() {
    let b = Bmin::new(7, UpPolicy::Straight);
    assert_eq!(router_seq(&b, 40, 41), vec![(0, 20)]);
}

#[test]
fn paths_climb_to_the_turn_stage_then_descend() {
    // Leg structure: stages rise 0,1,…,h then fall h-1,…,0 — no
    // double-turn, no plateau (each hop changes stage by exactly one).
    let b = Bmin::new(6, UpPolicy::Straight);
    for x in 0..64u32 {
        for y in [x ^ 1, x ^ 7, x ^ 32, x ^ 63] {
            if x == y {
                continue;
            }
            let h = b.turn_stage(NodeId(x), NodeId(y)) as usize;
            let stages: Vec<usize> = router_seq(&b, x, y).iter().map(|&(l, _)| l).collect();
            let expect: Vec<usize> = (0..=h).chain((0..h).rev()).collect();
            assert_eq!(stages, expect, "{x}->{y}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sends whose aligned turnaround blocks are disjoint use disjoint
    /// channel sets — the geometric fact behind OPT-min's contention-free
    /// step structure.  (Plain destination-interval disjointness is NOT
    /// enough: sibling-column sources share up-ladders.)
    #[test]
    fn disjoint_turn_blocks_use_disjoint_channels(
        s in 2u32..7,
        raw in proptest::collection::vec(any::<u32>(), 4..5),
    ) {
        let b = Bmin::new(s, UpPolicy::Straight);
        let n = b.graph().n_nodes() as u32;
        let (x1, y1, x2, y2) = (raw[0] % n, raw[1] % n, raw[2] % n, raw[3] % n);
        prop_assume!(x1 != y1 && x2 != y2);
        prop_assume!(disjoint(&turn_block(&b, x1, y1), &turn_block(&b, x2, y2)));
        let p1: HashSet<ChannelId> = b.det_path(NodeId(x1), NodeId(y1)).into_iter().collect();
        let p2: HashSet<ChannelId> = b.det_path(NodeId(x2), NodeId(y2)).into_iter().collect();
        prop_assert!(
            p1.is_disjoint(&p2),
            "sends {x1}->{y1} and {x2}->{y2} share a channel"
        );
    }

    /// Under the straight-up policy, sends from non-sibling sources
    /// (different stage-0 switches) never share an up-phase channel, no
    /// matter where they are going.
    #[test]
    fn non_sibling_sources_have_disjoint_up_ladders(
        s in 2u32..7,
        raw in proptest::collection::vec(any::<u32>(), 4..5),
    ) {
        let b = Bmin::new(s, UpPolicy::Straight);
        let n = b.graph().n_nodes() as u32;
        let (x1, y1, x2, y2) = (raw[0] % n, raw[1] % n, raw[2] % n, raw[3] % n);
        prop_assume!(x1 != y1 && x2 != y2);
        prop_assume!(x1 >> 1 != x2 >> 1);
        let up = |x: u32, y: u32| -> HashSet<ChannelId> {
            let h = b.turn_stage(NodeId(x), NodeId(y)) as usize;
            // Path layout: [injection, up × h, down × h, consumption].
            b.det_path(NodeId(x), NodeId(y))[1..=h].iter().copied().collect()
        };
        prop_assert!(
            up(x1, y1).is_disjoint(&up(x2, y2)),
            "up ladders of {x1}->{y1} and {x2}->{y2} intersect"
        );
    }

    /// Both up policies produce simple minimal paths of length 2h+2.
    #[test]
    fn both_policies_are_minimal(
        s in 2u32..7,
        sa in any::<u32>(),
        sb in any::<u32>(),
    ) {
        for policy in [UpPolicy::Straight, UpPolicy::DestColumn] {
            let b = Bmin::new(s, policy);
            let n = b.graph().n_nodes() as u32;
            let (x, y) = (NodeId(sa % n), NodeId(sb % n));
            prop_assume!(x != y);
            let h = b.turn_stage(x, y) as usize;
            let p = b.det_path(x, y);
            prop_assert_eq!(p.len(), 2 * h + 2);
            prop_assert_eq!(b.graph().dst_node(*p.last().unwrap()), Some(y));
        }
    }
}
