//! Property tests over randomly shaped networks: routing invariants the
//! simulator and schedulers silently rely on.

use proptest::prelude::*;
use topo::{Bmin, Mesh, NodeId, Omega, Topology, Torus, UpPolicy};

fn mesh_dims() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(2usize..6, 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every mesh path terminates at its destination, is cycle-free, and
    /// has exactly Manhattan-distance router hops.
    #[test]
    fn mesh_paths_are_minimal_and_simple(dims in mesh_dims(), sa in any::<u32>(), sb in any::<u32>()) {
        let m = Mesh::new(&dims);
        let n = m.graph().n_nodes() as u32;
        let (a, b) = (NodeId(sa % n), NodeId(sb % n));
        prop_assume!(a != b);
        let p = m.det_path(a, b);
        prop_assert_eq!(m.graph().dst_node(*p.last().unwrap()), Some(b));
        prop_assert_eq!(p.len() - 2, m.manhattan(a, b));
        for (i, c) in p.iter().enumerate() {
            prop_assert!(!p[..i].contains(c), "repeated channel in {:?}->{:?}", a, b);
        }
    }

    /// Chain keys are a total order on every mesh (all distinct).
    #[test]
    fn mesh_chain_keys_are_distinct(dims in mesh_dims()) {
        let m = Mesh::new(&dims);
        let mut keys: Vec<u64> =
            (0..m.graph().n_nodes() as u32).map(|i| m.chain_key(NodeId(i))).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        prop_assert_eq!(keys.len(), before);
    }

    /// Torus paths never exceed half the ring in any dimension.
    #[test]
    fn torus_paths_take_short_arcs(side in 2usize..8, sa in any::<u32>(), sb in any::<u32>()) {
        let t = Torus::new(&[side, side]);
        let n = (side * side) as u32;
        let (a, b) = (NodeId(sa % n), NodeId(sb % n));
        prop_assume!(a != b);
        let p = t.det_path(a, b);
        prop_assert_eq!(p.len() - 2, t.distance_coords(a, b));
        prop_assert!(p.len() - 2 <= 2 * (side / 2) + 1);
    }

    /// BMIN routing is symmetric in hop count and respects the turn stage.
    #[test]
    fn bmin_hops_match_turn_stage(s in 2u32..7, sa in any::<u32>(), sb in any::<u32>()) {
        let b = Bmin::new(s, UpPolicy::Straight);
        let n = b.graph().n_nodes() as u32;
        let (x, y) = (NodeId(sa % n), NodeId(sb % n));
        prop_assume!(x != y);
        let fwd = b.det_path(x, y).len();
        let rev = b.det_path(y, x).len();
        prop_assert_eq!(fwd, rev, "turnaround distance must be symmetric");
        prop_assert_eq!(fwd, 2 * b.turn_stage(x, y) as usize + 2);
    }

    /// Omega: all paths have uniform length s+1 channels.
    #[test]
    fn omega_uniform_path_length(s in 2u32..7, sa in any::<u32>(), sb in any::<u32>()) {
        let o = Omega::new(s);
        let n = o.graph().n_nodes() as u32;
        let (x, y) = (NodeId(sa % n), NodeId(sb % n));
        prop_assume!(x != y);
        prop_assert_eq!(o.det_path(x, y).len(), s as usize + 1);
    }

    /// Sorting a chain is idempotent and preserves the node multiset.
    #[test]
    fn chain_sort_is_permutation(dims in mesh_dims(), seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let m = Mesh::new(&dims);
        let n = m.graph().n_nodes();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut nodes: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        nodes.shuffle(&mut rng);
        nodes.truncate((n / 2).max(1));
        let mut sorted = nodes.clone();
        m.sort_chain(&mut sorted);
        let mut resorted = sorted.clone();
        m.sort_chain(&mut resorted);
        prop_assert_eq!(&sorted, &resorted, "sort must be idempotent");
        let mut a = nodes;
        let mut b = sorted;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "sort must be a permutation");
    }
}
