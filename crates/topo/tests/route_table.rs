//! Differential tests: the precomputed [`RouteTable`] must agree with the
//! dynamic `route_candidates` for every (router, src, dest) triple the
//! routing function is defined on — the simulator routes through the table,
//! so any divergence silently changes simulation results.

use topo::{Bmin, Mesh, NodeId, Omega, RouterId, Topology, Torus, UpPolicy};

/// Compare table vs dynamic candidates on the full triple product.
fn assert_table_matches(topo: &dyn Topology) {
    let g = topo.graph();
    let table = topo.route_table();
    let mut dynamic = Vec::new();
    let mut cached = Vec::new();
    let mut triples = 0u64;
    for r in 0..g.n_routers() as u32 {
        for src in 0..g.n_nodes() as u32 {
            for dest in 0..g.n_nodes() as u32 {
                if src == dest {
                    continue;
                }
                dynamic.clear();
                cached.clear();
                topo.route_candidates(RouterId(r), NodeId(src), NodeId(dest), &mut dynamic);
                table.candidates(RouterId(r), NodeId(src), NodeId(dest), &mut cached);
                assert_eq!(
                    dynamic,
                    cached,
                    "{} diverges at router {r}, src {src}, dest {dest}",
                    topo.name()
                );
                triples += 1;
            }
        }
    }
    assert!(triples > 0, "vacuous comparison for {}", topo.name());
}

#[test]
fn mesh_table_matches_dynamic_routing() {
    for mesh in [
        Mesh::new(&[5]),
        Mesh::new(&[4, 4]),
        Mesh::new(&[3, 3, 2]),
        Mesh::with_ports(&[4], 2),
        Mesh::hypercube(3),
    ] {
        assert_table_matches(&mesh);
    }
}

#[test]
fn torus_table_matches_dynamic_routing() {
    for torus in [
        Torus::new(&[5]),
        Torus::new(&[4, 3]),
        Torus::new(&[2, 2]),
        Torus::unvirtualized(&[4, 4]),
    ] {
        assert_table_matches(&torus);
    }
}

#[test]
fn bmin_table_matches_dynamic_routing() {
    for policy in [UpPolicy::Straight, UpPolicy::DestColumn] {
        for s in [2, 3, 4] {
            assert_table_matches(&Bmin::new(s, policy));
        }
    }
}

/// Omega routing is only defined at (router, dest) pairs its single path
/// can reach — the last stage only hosts its own two wires — so the
/// comparison enumerates the reachable pairs instead of the full product.
#[test]
fn omega_table_matches_dynamic_routing() {
    for s in [2u32, 3, 4] {
        let o = Omega::new(s);
        let g = o.graph();
        let table = o.route_table();
        let w = g.n_nodes() / 2;
        let last = s as usize - 1;
        let mut dynamic = Vec::new();
        let mut cached = Vec::new();
        for l in 0..s as usize {
            for idx in 0..w {
                let r = RouterId((l * w + idx) as u32);
                for dest in 0..g.n_nodes() as u32 {
                    if l == last && (dest as usize) >> 1 != idx {
                        continue;
                    }
                    for src in 0..g.n_nodes() as u32 {
                        if src == dest {
                            continue;
                        }
                        dynamic.clear();
                        cached.clear();
                        o.route_candidates(r, NodeId(src), NodeId(dest), &mut dynamic);
                        table.candidates(r, NodeId(src), NodeId(dest), &mut cached);
                        assert_eq!(dynamic, cached, "omega-{s} at {r:?}, {src}->{dest}");
                    }
                }
            }
        }
    }
}

/// Every channel on every deterministic path is what the table's
/// first-preference walk would produce — the path-level view of the same
/// contract, covering exactly the states a climbing worm visits.
#[test]
fn table_first_preference_reproduces_det_paths() {
    let topos: Vec<Box<dyn Topology>> = vec![
        Box::new(Mesh::new(&[4, 4])),
        Box::new(Torus::new(&[4, 3])),
        Box::new(Bmin::new(4, UpPolicy::Straight)),
        Box::new(Omega::new(3)),
    ];
    for topo in &topos {
        let g = topo.graph();
        let table = topo.route_table();
        let mut cand = Vec::new();
        for src in 0..g.n_nodes() as u32 {
            for dest in 0..g.n_nodes() as u32 {
                if src == dest {
                    continue;
                }
                let path = topo.det_path(NodeId(src), NodeId(dest));
                let mut at = g.dst_router(path[0]).expect("injection enters a router");
                for &expect in &path[1..] {
                    cand.clear();
                    table.candidates(at, NodeId(src), NodeId(dest), &mut cand);
                    assert_eq!(cand[0], expect, "{} {src}->{dest}", topo.name());
                    match g.dst_router(expect) {
                        Some(r) => at = r,
                        None => break,
                    }
                }
            }
        }
    }
}
