//! The LogP model and its relation to the parameterized model.
//!
//! LogP (Culler et al., PPoPP'93) describes a system by four size-independent
//! constants: network latency `L`, processing overhead `o`, gap `g`, and
//! processor count `P`.  The parameterized model generalises it with
//! size-dependent functions; this module provides the mapping both ways so
//! that LogP-based schedules and bounds can be compared against
//! parameterized-model ones.

use serde::{Deserialize, Serialize};

use crate::{CommParams, LinearFn, MsgSize, Time};

/// The classic LogP machine model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogP {
    /// Upper bound on network latency for a small message.
    pub l: Time,
    /// Processing overhead of a send or receive.
    pub o: Time,
    /// Minimum gap between consecutive message injections.
    pub g: Time,
    /// Number of processors.
    pub p: usize,
}

impl LogP {
    /// End-to-end latency of one small message under LogP: `o + L + o`.
    pub fn t_end(&self) -> Time {
        2 * self.o + self.l
    }

    /// Effective holding latency of a send under LogP: the sender is busy for
    /// `o` and may not inject again for `g`, so `max(o, g)`.
    pub fn t_hold(&self) -> Time {
        self.o.max(self.g)
    }

    /// Lower bound on the completion time of a `k`-node single-item broadcast
    /// under LogP (the classic LogP broadcast-tree recurrence, equal to the
    /// OPT-tree bound with `t_hold = max(o,g)` and `t_end = 2o + L`).
    pub fn broadcast_lower_bound(&self, k: usize) -> Time {
        // t[1] = 0; t[i] = min_j max(t[j] + hold, t[i-j] + end).
        let hold = self.t_hold();
        let end = self.t_end();
        let mut t = vec![0u64; k.max(1) + 1];
        for i in 2..=k.max(1) {
            t[i] = (1..i)
                .map(|j| (t[j] + hold).max(t[i - j] + end))
                .min()
                .expect("i >= 2 so the range is non-empty");
        }
        t[k.max(1)]
    }

    /// Convert to the parameterized model: all functions constant, `t_net = L`,
    /// software overheads `o` on each side, hold `max(o, g)`.
    pub fn to_params(&self) -> CommParams {
        CommParams {
            t_send: LinearFn::constant(self.o as f64),
            t_recv: LinearFn::constant(self.o as f64),
            t_hold: LinearFn::constant(self.t_hold() as f64),
            t_net_size: LinearFn::constant(self.l as f64),
            net_hops: 0.0,
            per_hop: 0.0,
        }
    }

    /// Project a parameterized model down to LogP at a fixed message size.
    /// Information about size dependence is lost — that loss is precisely the
    /// motivation for the parameterized model (paper §1).
    pub fn from_params(params: &CommParams, m: MsgSize, p: usize) -> Self {
        Self {
            l: params.t_net(m),
            o: params.t_send.eval(m).max(params.t_recv.eval(m)),
            g: params.t_hold(m),
            p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_at_fixed_size() {
        let lp = LogP {
            l: 100,
            o: 30,
            g: 40,
            p: 64,
        };
        let params = lp.to_params();
        let back = LogP::from_params(&params, 4096, 64);
        assert_eq!(back.l, 100);
        assert_eq!(back.o, 30);
        assert_eq!(back.g, 40);
    }

    #[test]
    fn t_end_and_hold() {
        let lp = LogP {
            l: 100,
            o: 30,
            g: 10,
            p: 4,
        };
        assert_eq!(lp.t_end(), 160);
        assert_eq!(lp.t_hold(), 30); // o > g
    }

    #[test]
    fn broadcast_bound_binomial_when_hold_equals_end() {
        // With o = 0 and g = L... make hold == end: o=0, g = l => hold = g = l,
        // end = l.  Binomial: ceil(log2(k)) * l.
        let lp = LogP {
            l: 50,
            o: 0,
            g: 50,
            p: 16,
        };
        assert_eq!(lp.broadcast_lower_bound(1), 0);
        assert_eq!(lp.broadcast_lower_bound(2), 50);
        assert_eq!(lp.broadcast_lower_bound(4), 100);
        assert_eq!(lp.broadcast_lower_bound(8), 150);
        assert_eq!(lp.broadcast_lower_bound(16), 200);
    }

    #[test]
    fn broadcast_bound_small_hold_prefers_wide_trees() {
        // hold = 1, end = 100: the root can spray messages nearly for free, so
        // t[k] grows far slower than binomial.
        let lp = LogP {
            l: 100,
            o: 0,
            g: 1,
            p: 32,
        };
        let t8 = lp.broadcast_lower_bound(8);
        // Binomial would be 300; spraying gives about end + a few holds.
        assert!(t8 < 120, "expected a flat tree, got {t8}");
    }
}
