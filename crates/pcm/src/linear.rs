//! Affine cost functions of message size.
//!
//! Every parameter of the model is, to first order, an affine function of the
//! message size `m`: a fixed software/hardware overhead plus a per-byte cost
//! (copying, checksumming, flit transmission).  The authors' measurement
//! methodology fits exactly this shape, so we make it a first-class type.

use serde::{Deserialize, Serialize};

use crate::{MsgSize, Time};

/// An affine function `f(m) = base + slope · m` from message size (bytes) to
/// time (cycles).
///
/// `slope` is kept as an `f64` because per-byte costs are usually fractional
/// cycle counts; evaluation rounds to the nearest whole cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFn {
    /// Fixed cost in cycles, independent of message size.
    pub base: f64,
    /// Marginal cost in cycles per byte.
    pub slope: f64,
}

impl LinearFn {
    /// A new affine cost function.
    pub const fn new(base: f64, slope: f64) -> Self {
        Self { base, slope }
    }

    /// The constant function `f(m) = c`.
    pub const fn constant(c: f64) -> Self {
        Self {
            base: c,
            slope: 0.0,
        }
    }

    /// The zero function.
    pub const fn zero() -> Self {
        Self::constant(0.0)
    }

    /// Evaluate at message size `m`, rounding to the nearest cycle and
    /// clamping at zero (a fitted function may have a slightly negative
    /// intercept).
    pub fn eval(&self, m: MsgSize) -> Time {
        let v = self.base + self.slope * m as f64;
        if v <= 0.0 {
            0
        } else {
            v.round() as Time
        }
    }

    /// Evaluate without rounding.
    pub fn eval_f64(&self, m: MsgSize) -> f64 {
        self.base + self.slope * m as f64
    }

    /// Pointwise sum of two affine functions.
    pub fn add(&self, other: &LinearFn) -> LinearFn {
        LinearFn::new(self.base + other.base, self.slope + other.slope)
    }

    /// Pointwise difference of two affine functions.
    pub fn sub(&self, other: &LinearFn) -> LinearFn {
        LinearFn::new(self.base - other.base, self.slope - other.slope)
    }

    /// Scale the function by a constant factor.
    pub fn scale(&self, k: f64) -> LinearFn {
        LinearFn::new(self.base * k, self.slope * k)
    }
}

impl std::fmt::Display for LinearFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} + {:.4}·m", self.base, self.slope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_rounds_to_nearest() {
        let f = LinearFn::new(10.0, 0.5);
        assert_eq!(f.eval(0), 10);
        assert_eq!(f.eval(1), 11); // 10.5 rounds up
        assert_eq!(f.eval(2), 11);
        assert_eq!(f.eval(3), 12); // 11.5 rounds up
    }

    #[test]
    fn eval_clamps_negative() {
        let f = LinearFn::new(-5.0, 0.0);
        assert_eq!(f.eval(1000), 0);
    }

    #[test]
    fn arithmetic() {
        let f = LinearFn::new(1.0, 2.0);
        let g = LinearFn::new(3.0, 4.0);
        assert_eq!(f.add(&g), LinearFn::new(4.0, 6.0));
        assert_eq!(g.sub(&f), LinearFn::new(2.0, 2.0));
        assert_eq!(f.scale(2.0), LinearFn::new(2.0, 4.0));
    }

    #[test]
    fn constant_and_zero() {
        assert_eq!(LinearFn::constant(7.0).eval(12345), 7);
        assert_eq!(LinearFn::zero().eval(12345), 0);
    }

    #[test]
    fn display_is_readable() {
        let s = format!("{}", LinearFn::new(400.0, 0.25));
        assert!(s.contains("400.00"));
        assert!(s.contains("0.2500"));
    }
}
