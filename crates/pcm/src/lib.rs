//! # `pcm` — the Parameterized Communication Model
//!
//! This crate implements the communication-cost model that the IPPS'97 paper
//! "Architecture-Dependent Tuning of the Parameterized Communication Model for
//! Optimal Multicasting" (Nupairoj, Ni, Park, Choi) builds on.  The model is
//! an extension of LogP (Culler et al.) that characterises a message-passing
//! system by five *measurable*, message-size-dependent parameters:
//!
//! * `t_send` — software latency at the sender (packetisation, checksums,
//!   copies) before the message enters the network,
//! * `t_recv` — software latency at the receiver after the last flit arrives,
//! * `t_net`  — time to move the message across the network,
//! * `t_hold` — the minimum interval between two consecutive send (or
//!   receive) operations issued by one node, i.e. the CPU occupancy of a send,
//! * `t_end`  — the end-to-end latency `t_send + t_net + t_recv`.
//!
//! Multicast performance is predicted from `t_hold` and `t_end` alone
//! (paper §2.1): `t_hold` is the cost a sender pays before it may continue,
//! `t_end` is the delay until a receiver owns the message.
//!
//! The crate provides:
//! * [`LinearFn`] — affine per-message-size cost functions (`base + slope·m`),
//! * [`CommParams`] — the five parameters as functions of message size,
//! * [`logp`] — the LogP model and mappings to/from the parameterized model,
//! * [`predict`] — closed-form latency predictors for point-to-point and
//!   tree-structured communication under the model,
//! * [`calibrate`] — least-squares fitting of [`LinearFn`] from measured
//!   `(size, time)` samples, mirroring the user-level measurement methodology
//!   of the authors' benchmarking report (MSU-CPS-ACS-103).
//!
//! Times are in abstract *cycles* ([`Time`], a `u64`); the flit-level
//! simulator in the `flitsim` crate uses the same unit.
//!
//! ```
//! use pcm::{CommParams, predict};
//!
//! // The paper's Fig. 1 parameters: t_hold = 20, t_end = 55.
//! let params = CommParams::from_pair(20, 55);
//! assert_eq!(params.pair(4096), (20, 55));
//!
//! // The binomial tree the U-mesh algorithm builds takes 165 time units
//! // for 8 nodes — the number the paper quotes.
//! assert_eq!(predict::binomial_tree_latency(&params, 0, 8), 165);
//!
//! // Measured samples fit back to an affine model:
//! use pcm::calibrate::{fit_linear, Sample};
//! let samples = [Sample::new(1024, 612), Sample::new(4096, 1380), Sample::new(16384, 4452)];
//! let f = fit_linear(&samples).unwrap();
//! assert!((f.slope - 0.25).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]

pub mod calibrate;
pub mod linear;
pub mod logp;
pub mod params;
pub mod predict;

pub use linear::LinearFn;
pub use params::{CommParams, ParamPoint};

/// Simulation/model time in cycles.
pub type Time = u64;

/// Message size in bytes.
pub type MsgSize = u64;
