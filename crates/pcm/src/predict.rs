//! Closed-form latency predictors under the parameterized model.
//!
//! These are the *contention-free* predictions: they assume `t_hold` and
//! `t_end` are location-independent (paper §2.2).  The whole point of the
//! paper is that on real wormhole networks this assumption breaks unless the
//! multicast tree is embedded carefully — the `optmc` crate's simulations
//! quantify the gap between these predictions and observed latency.

use crate::{CommParams, MsgSize, Time};

/// Predicted end-to-end latency of a single point-to-point message.
pub fn p2p_latency(params: &CommParams, m: MsgSize) -> Time {
    params.t_end(m)
}

/// Predicted completion time of a node that sends `n` back-to-back messages:
/// the last injection starts at `(n-1)·t_hold` and completes `t_end` later.
pub fn scatter_latency(params: &CommParams, m: MsgSize, n: usize) -> Time {
    if n == 0 {
        return 0;
    }
    (n as Time - 1) * params.t_hold(m) + params.t_end(m)
}

/// Latency of a *sequential* multicast tree (root sends to each of the `k-1`
/// destinations one after another; paper \[5\] shows this simple tree can beat
/// the binomial one when `t_hold ≪ t_end`).
pub fn sequential_tree_latency(params: &CommParams, m: MsgSize, k: usize) -> Time {
    if k <= 1 {
        0
    } else {
        scatter_latency(params, m, k - 1)
    }
}

/// Latency of a *binomial* multicast tree with `k` nodes: recursive halving,
/// `⌈log2 k⌉` rounds; each round costs `t_hold` to the sender's remaining
/// work and `t_end` to the new subtree.
pub fn binomial_tree_latency(params: &CommParams, m: MsgSize, k: usize) -> Time {
    let (hold, end) = params.pair(m);
    binomial_latency_from_pair(hold, end, k)
}

/// Binomial-tree latency from an explicit `(t_hold, t_end)` pair.
///
/// `t(1) = 0`, `t(i) = max(t(⌈i/2⌉) + t_hold, t(⌊i/2⌋) + t_end)` — the sender
/// keeps the larger half, matching the recursive-halving U-mesh/U-min
/// construction.
pub fn binomial_latency_from_pair(hold: Time, end: Time, k: usize) -> Time {
    if k <= 1 {
        return 0;
    }
    let upper = k / 2; // receiver's half (lower half keeps the extra node)
    let keep = k - upper;
    (binomial_latency_from_pair(hold, end, keep) + hold)
        .max(binomial_latency_from_pair(hold, end, upper) + end)
}

/// Number of multicast steps (tree depth) of a binomial tree on `k` nodes:
/// `⌈log2 k⌉`.
pub fn binomial_depth(k: usize) -> u32 {
    if k <= 1 {
        0
    } else {
        usize::BITS - (k - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CommParams;

    #[test]
    fn p2p_is_t_end() {
        let p = CommParams::paragon_like(8.0);
        assert_eq!(p2p_latency(&p, 4096), p.t_end(4096));
    }

    #[test]
    fn scatter_accumulates_holds() {
        let p = CommParams::from_pair(20, 55);
        assert_eq!(scatter_latency(&p, 0, 0), 0);
        assert_eq!(scatter_latency(&p, 0, 1), 55);
        assert_eq!(scatter_latency(&p, 0, 4), 3 * 20 + 55);
    }

    #[test]
    fn binomial_matches_log_rounds_when_hold_equals_end() {
        let p = CommParams::binomial_regime(10);
        for k in 1..=64usize {
            assert_eq!(
                binomial_tree_latency(&p, 0, k),
                10 * binomial_depth(k) as u64,
                "k={k}"
            );
        }
    }

    #[test]
    fn paper_example_binomial_is_165() {
        // Fig. 1: t_hold = 20, t_end = 55, 8 nodes — U-mesh (binomial) is 165.
        let p = CommParams::from_pair(20, 55);
        assert_eq!(binomial_tree_latency(&p, 0, 8), 165);
    }

    #[test]
    fn sequential_beats_binomial_with_tiny_hold() {
        // t_hold = 1, t_end = 100, k = 8: sequential = 7*1 + 100 = 107,
        // binomial = 3 rounds >= 300.
        let p = CommParams::from_pair(1, 100);
        assert!(
            sequential_tree_latency(&p, 0, 8) < binomial_tree_latency(&p, 0, 8),
            "the paper's motivating observation ([5], §1)"
        );
    }

    #[test]
    fn depth_is_ceil_log2() {
        let cases = [
            (1, 0),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
            (16, 4),
            (17, 5),
        ];
        for (k, d) in cases {
            assert_eq!(binomial_depth(k), d, "k={k}");
        }
    }
}
