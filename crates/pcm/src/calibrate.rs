//! Fitting model parameters from measurements.
//!
//! The authors evaluate `t_hold` and `t_end` "at the user-application level"
//! (§2.1, citing their benchmarking report MSU-CPS-ACS-103): time a burst of
//! back-to-back sends to get `t_hold(m)`, and a ping (or synchronised
//! one-way) transfer to get `t_end(m)`, across a sweep of message sizes, then
//! fit an affine function.  This module supplies the fitting; the `optmc`
//! crate runs the corresponding microbenchmarks *inside the flit-level
//! simulator* (see the `calibrate` example), closing the loop: measured
//! parameters go into the OPT-tree DP exactly as they would on real hardware.

use crate::{LinearFn, MsgSize, Time};

/// A single measurement: message size and observed time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Message size in bytes.
    pub msg_size: MsgSize,
    /// Observed time in cycles.
    pub time: Time,
}

impl Sample {
    /// Convenience constructor.
    pub fn new(msg_size: MsgSize, time: Time) -> Self {
        Self { msg_size, time }
    }
}

/// Error from [`fit_linear`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two samples were supplied.
    TooFewSamples,
    /// All samples share one message size, so the slope is unidentifiable.
    DegenerateSizes,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewSamples => write!(f, "need at least two samples to fit a line"),
            FitError::DegenerateSizes => {
                write!(
                    f,
                    "all samples have the same message size; slope unidentifiable"
                )
            }
        }
    }
}

impl std::error::Error for FitError {}

/// Ordinary least-squares fit of `time = base + slope · msg_size`.
pub fn fit_linear(samples: &[Sample]) -> Result<LinearFn, FitError> {
    if samples.len() < 2 {
        return Err(FitError::TooFewSamples);
    }
    let n = samples.len() as f64;
    let mean_x = samples.iter().map(|s| s.msg_size as f64).sum::<f64>() / n;
    let mean_y = samples.iter().map(|s| s.time as f64).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for s in samples {
        let dx = s.msg_size as f64 - mean_x;
        let dy = s.time as f64 - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
    }
    if sxx == 0.0 {
        return Err(FitError::DegenerateSizes);
    }
    let slope = sxy / sxx;
    let base = mean_y - slope * mean_x;
    Ok(LinearFn::new(base, slope))
}

/// Goodness-of-fit (coefficient of determination R²) of `f` on `samples`.
/// Returns 1.0 for a perfect fit; may be negative for a terrible one.
pub fn r_squared(f: &LinearFn, samples: &[Sample]) -> f64 {
    if samples.is_empty() {
        return 1.0;
    }
    let n = samples.len() as f64;
    let mean_y = samples.iter().map(|s| s.time as f64).sum::<f64>() / n;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for s in samples {
        let pred = f.eval_f64(s.msg_size);
        ss_res += (s.time as f64 - pred).powi(2);
        ss_tot += (s.time as f64 - mean_y).powi(2);
    }
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Standard errors of a fitted line's parameters, for reporting calibration
/// confidence the way a measurement paper would.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitErrors {
    /// Standard error of the intercept (cycles).
    pub base_se: f64,
    /// Standard error of the slope (cycles/byte).
    pub slope_se: f64,
    /// Residual standard deviation (cycles).
    pub residual_sd: f64,
}

/// Standard errors of `f` as a least-squares fit of `samples` (the usual
/// OLS formulas with `n - 2` degrees of freedom).
///
/// Returns `None` with fewer than three samples or degenerate sizes.
pub fn fit_errors(f: &LinearFn, samples: &[Sample]) -> Option<FitErrors> {
    if samples.len() < 3 {
        return None;
    }
    let n = samples.len() as f64;
    let mean_x = samples.iter().map(|s| s.msg_size as f64).sum::<f64>() / n;
    let sxx: f64 = samples
        .iter()
        .map(|s| (s.msg_size as f64 - mean_x).powi(2))
        .sum();
    if sxx == 0.0 {
        return None;
    }
    let ss_res: f64 = samples
        .iter()
        .map(|s| (s.time as f64 - f.eval_f64(s.msg_size)).powi(2))
        .sum();
    let var = ss_res / (n - 2.0);
    let sum_x2: f64 = samples.iter().map(|s| (s.msg_size as f64).powi(2)).sum();
    Some(FitErrors {
        base_se: (var * sum_x2 / (n * sxx)).sqrt(),
        slope_se: (var / sxx).sqrt(),
        residual_sd: var.sqrt(),
    })
}

/// Derive `t_hold(m)` samples from burst measurements: if `n` back-to-back
/// sends of size `m` take `total` cycles measured from first to last
/// *initiation*, then `t_hold(m) ≈ total / (n-1)`.
pub fn hold_sample_from_burst(msg_size: MsgSize, n_sends: usize, total: Time) -> Option<Sample> {
    if n_sends < 2 {
        return None;
    }
    Some(Sample::new(msg_size, total / (n_sends as Time - 1)))
}

/// Derive a `t_end(m)` sample from a ping-pong round trip: one-way latency is
/// half the round trip (both directions have identical cost in the model).
pub fn end_sample_from_pingpong(msg_size: MsgSize, round_trip: Time) -> Sample {
    Sample::new(msg_size, round_trip / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_line() {
        let f = LinearFn::new(100.0, 0.5);
        let samples: Vec<Sample> = (0..10)
            .map(|i| Sample::new(i * 1000, f.eval(i * 1000)))
            .collect();
        let fitted = fit_linear(&samples).unwrap();
        assert!((fitted.base - 100.0).abs() < 1.0, "base {}", fitted.base);
        assert!((fitted.slope - 0.5).abs() < 1e-3, "slope {}", fitted.slope);
        assert!(r_squared(&fitted, &samples) > 0.9999);
    }

    #[test]
    fn rejects_too_few() {
        assert_eq!(
            fit_linear(&[Sample::new(1, 1)]),
            Err(FitError::TooFewSamples)
        );
    }

    #[test]
    fn rejects_degenerate() {
        let s = [Sample::new(8, 10), Sample::new(8, 20)];
        assert_eq!(fit_linear(&s), Err(FitError::DegenerateSizes));
    }

    #[test]
    fn fits_noisy_line_reasonably() {
        // Deterministic pseudo-noise ±3 cycles.
        let f = LinearFn::new(200.0, 0.25);
        let samples: Vec<Sample> = (1..20)
            .map(|i| {
                let m = i * 512;
                let noise = ((i * 7919) % 7) as i64 - 3;
                Sample::new(m, (f.eval_f64(m) as i64 + noise).max(0) as u64)
            })
            .collect();
        let fitted = fit_linear(&samples).unwrap();
        assert!((fitted.slope - 0.25).abs() < 0.01);
        assert!(r_squared(&fitted, &samples) > 0.999);
    }

    #[test]
    fn perfect_fit_has_zero_errors() {
        let f = LinearFn::new(10.0, 2.0);
        let samples: Vec<Sample> = (0..6)
            .map(|i| Sample::new(i * 10, f.eval(i * 10)))
            .collect();
        let e = fit_errors(&f, &samples).unwrap();
        assert!(
            e.base_se < 1e-6 && e.slope_se < 1e-9 && e.residual_sd < 1e-6,
            "{e:?}"
        );
    }

    #[test]
    fn noisy_fit_has_positive_errors() {
        let f = LinearFn::new(100.0, 1.0);
        let samples: Vec<Sample> = (0..10)
            .map(|i| {
                let noise = if i % 2 == 0 { 5 } else { 0 };
                Sample::new(i * 100, f.eval(i * 100) + noise)
            })
            .collect();
        let fitted = fit_linear(&samples).unwrap();
        let e = fit_errors(&fitted, &samples).unwrap();
        assert!(e.residual_sd > 1.0, "{e:?}");
        assert!(e.slope_se > 0.0);
    }

    #[test]
    fn errors_need_three_samples() {
        let f = LinearFn::new(0.0, 1.0);
        assert!(fit_errors(&f, &[Sample::new(1, 1), Sample::new(2, 2)]).is_none());
        assert!(fit_errors(&f, &[Sample::new(1, 1); 5]).is_none());
    }

    #[test]
    fn burst_and_pingpong_helpers() {
        assert_eq!(hold_sample_from_burst(64, 1, 100), None);
        assert_eq!(
            hold_sample_from_burst(64, 11, 1000),
            Some(Sample::new(64, 100))
        );
        assert_eq!(end_sample_from_pingpong(64, 222), Sample::new(64, 111));
    }
}
