//! The five-parameter communication model.

use serde::{Deserialize, Serialize};

use crate::{LinearFn, MsgSize, Time};

/// The parameterized communication model (paper §2.1).
///
/// Each of the software parameters is an affine function of message size; the
/// network parameter additionally carries a per-hop term.  `t_end` is always
/// the derived sum `t_send + t_net + t_recv`.
///
/// For multicast-tree construction only the *pair* (`t_hold`, `t_end`)
/// matters; [`CommParams::pair`] evaluates it for a message size, and
/// [`CommParams::from_pair`] builds a degenerate model from explicit values
/// (used to replay the paper's worked example with `t_hold = 20`,
/// `t_end = 55`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommParams {
    /// Sender software latency `t_send(m)`.
    pub t_send: LinearFn,
    /// Receiver software latency `t_recv(m)`.
    pub t_recv: LinearFn,
    /// Minimum interval between consecutive send operations, `t_hold(m)`.
    pub t_hold: LinearFn,
    /// Size-dependent part of the network latency `t_net(m)` (serialisation:
    /// flits × cycles/flit), excluding the per-hop term.
    pub t_net_size: LinearFn,
    /// Per-hop head latency in cycles (router delay × hops); the model
    /// assumes distance-insensitivity, so a *nominal* hop count is folded in.
    pub net_hops: f64,
    /// Router/channel delay per hop in cycles.
    pub per_hop: f64,
}

impl CommParams {
    /// Network latency `t_net(m)` under the nominal hop count.
    pub fn t_net(&self, m: MsgSize) -> Time {
        (self.net_hops * self.per_hop).round() as Time + self.t_net_size.eval(m)
    }

    /// End-to-end latency `t_end(m) = t_send(m) + t_net(m) + t_recv(m)`.
    pub fn t_end(&self, m: MsgSize) -> Time {
        self.t_send.eval(m) + self.t_net(m) + self.t_recv.eval(m)
    }

    /// Holding latency `t_hold(m)`.
    pub fn t_hold(&self, m: MsgSize) -> Time {
        self.t_hold.eval(m)
    }

    /// The `(t_hold, t_end)` pair that drives multicast-tree construction.
    pub fn pair(&self, m: MsgSize) -> (Time, Time) {
        (self.t_hold(m), self.t_end(m))
    }

    /// Evaluate all five parameters at message size `m`.
    pub fn at(&self, m: MsgSize) -> ParamPoint {
        ParamPoint {
            msg_size: m,
            t_send: self.t_send.eval(m),
            t_recv: self.t_recv.eval(m),
            t_net: self.t_net(m),
            t_hold: self.t_hold(m),
            t_end: self.t_end(m),
        }
    }

    /// A degenerate model whose `(t_hold, t_end)` pair is constant and equal
    /// to the given values for every message size.  All of `t_end` is
    /// attributed to `t_net`.
    pub fn from_pair(t_hold: Time, t_end: Time) -> Self {
        Self {
            t_send: LinearFn::zero(),
            t_recv: LinearFn::zero(),
            t_hold: LinearFn::constant(t_hold as f64),
            t_net_size: LinearFn::constant(t_end as f64),
            net_hops: 0.0,
            per_hop: 0.0,
        }
    }

    /// Default parameters loosely modelled on a mid-1990s wormhole machine
    /// (Intel Paragon class), in router-cycle units:
    ///
    /// * flit width 8 bytes, 1 cycle per flit per channel
    ///   (`t_net_size = m / 8` cycles),
    /// * 1 cycle router delay per hop, `hops` nominal hops,
    /// * send software: 350 cycles + 0.15 cycles/byte (copy + checksum),
    /// * receive software: 300 cycles + 0.15 cycles/byte,
    /// * hold: 250 cycles + 0.13 cycles/byte (the CPU is released before the
    ///   NI finishes streaming, hence `t_hold < t_send` — the regime in which
    ///   the OPT tree beats the binomial tree).
    pub fn paragon_like(hops: f64) -> Self {
        Self {
            t_send: LinearFn::new(350.0, 0.15),
            t_recv: LinearFn::new(300.0, 0.15),
            t_hold: LinearFn::new(250.0, 0.13),
            t_net_size: LinearFn::new(0.0, 1.0 / 8.0),
            net_hops: hops,
            per_hop: 1.0,
        }
    }

    /// Parameters for a store-and-forward-ish system where `t_hold == t_end`
    /// for every size — the regime in which the binomial tree is optimal.
    /// Useful for tests that check the OPT tree degenerates to binomial.
    pub fn binomial_regime(t: Time) -> Self {
        Self::from_pair(t, t)
    }
}

/// All five parameters evaluated at one message size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamPoint {
    /// The message size at which the parameters were evaluated.
    pub msg_size: MsgSize,
    /// Sender software latency.
    pub t_send: Time,
    /// Receiver software latency.
    pub t_recv: Time,
    /// Network latency.
    pub t_net: Time,
    /// Holding latency.
    pub t_hold: Time,
    /// End-to-end latency.
    pub t_end: Time,
}

impl ParamPoint {
    /// `t_end` must equal `t_send + t_net + t_recv`; returns whether the
    /// invariant holds (it always does for points produced by
    /// [`CommParams::at`]).
    pub fn is_consistent(&self) -> bool {
        self.t_end == self.t_send + self.t_net + self.t_recv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_end_is_sum_of_parts() {
        let p = CommParams::paragon_like(16.0);
        for m in [0u64, 1, 8, 1024, 65536] {
            let pt = p.at(m);
            assert!(pt.is_consistent(), "inconsistent at m={m}: {pt:?}");
        }
    }

    #[test]
    fn from_pair_reproduces_pair_at_any_size() {
        let p = CommParams::from_pair(20, 55);
        for m in [0u64, 100, 4096, 65536] {
            assert_eq!(p.pair(m), (20, 55));
        }
    }

    #[test]
    fn paragon_like_has_hold_below_end() {
        let p = CommParams::paragon_like(16.0);
        for m in [0u64, 512, 4096, 65536] {
            let (h, e) = p.pair(m);
            assert!(h < e, "t_hold must stay below t_end (m={m}: {h} vs {e})");
        }
    }

    #[test]
    fn net_latency_includes_hops_and_size() {
        let p = CommParams::paragon_like(10.0);
        // 10 hops at 1 cycle/hop + 80 bytes at 1/8 cycles/byte.
        assert_eq!(p.t_net(80), 10 + 10);
    }

    #[test]
    fn binomial_regime_pair_is_equal() {
        let p = CommParams::binomial_regime(42);
        assert_eq!(p.pair(12345), (42, 42));
    }
}
