//! Steady-state simulation steps must not touch the heap.
//!
//! The engine pre-sizes all per-run state (channel table, event-queue node
//! pool, scratch buffers) and recycles worm slots, so once a run is warmed
//! up, processing more events performs no further allocations.  This test
//! pins that property with a counting global allocator: a long point-to-point
//! run processes hundreds more events than a short one, yet allocates at most
//! a handful more times (first-touch growth of the path/pool buffers), i.e.
//! allocation count does not scale with event count.

use flitsim::program::SinkProgram;
use flitsim::{Engine, SendReq, SimConfig, SoftwareModel};
use topo::{Mesh, NodeId, Topology};

#[global_allocator]
static COUNTER: allocmeter::Counting = allocmeter::Counting;

/// The allocation counter is process-global, so the two tests below must not
/// measure concurrently — a sibling's engine warm-up would bleed into the
/// probe window.  Each test holds this for its whole body.
static MEASURE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Run a single p2p message down a 64-node line and return
/// `(events_processed, allocations during Engine::run)`.
fn run_line_p2p(m: &Mesh, dst: u32) -> (u64, u64) {
    run_line_p2p_observed(m, dst, false)
}

/// [`run_line_p2p`], optionally under the counters-only observer.
fn run_line_p2p_observed(m: &Mesh, dst: u32, counters: bool) -> (u64, u64) {
    let cfg = SimConfig {
        software: SoftwareModel::zero(),
        ..SimConfig::paragon_like()
    };
    let mut e = Engine::new(m, cfg, SinkProgram);
    if counters {
        e.set_observer(flitsim::TraceSink::counters());
    }
    e.start(NodeId(0), 0, vec![SendReq::to(NodeId(dst), 4096, ())]);
    let before = allocmeter::allocations();
    let (_, res) = e.run();
    let allocs = allocmeter::allocations() - before;
    (res.meta.events_processed, allocs)
}

#[test]
fn event_processing_does_not_allocate_per_event() {
    let _serial = MEASURE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let m = Mesh::new(&[64]);
    // Build the route table outside the measured window — it is a one-time,
    // per-topology cost shared by every engine over this instance.
    let _ = m.route_table();

    let (short_events, _short_allocs) = run_line_p2p(&m, 3);
    // Second short run: buffers for this workload shape are now warm in a
    // fresh engine too, giving the fair per-run baseline.
    let (short_events_2, short_allocs) = run_line_p2p(&m, 3);
    assert_eq!(short_events, short_events_2, "engine must be deterministic");

    let (long_events, long_allocs) = run_line_p2p(&m, 63);

    assert!(
        long_events > short_events + 100,
        "long run must process far more events (short {short_events}, long {long_events})"
    );
    // The long run walks a 20x longer path but may allocate only a constant
    // amount more (one longer path Vec + a few event-pool growth doublings),
    // never per-event or per-hop.
    assert!(
        long_allocs <= short_allocs + 24,
        "allocations scale with events: short run {short_allocs} allocs \
         ({short_events} events), long run {long_allocs} allocs ({long_events} events)"
    );
}

#[test]
fn counters_observer_and_telem_flush_do_not_allocate_per_event() {
    // The telemetry substrate's core promise: the counters-only observer
    // (per-event `u64` tallies) and the end-of-run bulk flush into the
    // `telem` statics add ZERO steady-state allocations — the allocation
    // profile under `TraceSink::counters()` is identical in shape to the
    // unobserved engine's.
    let _serial = MEASURE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let m = Mesh::new(&[64]);
    let _ = m.route_table();

    let _ = run_line_p2p_observed(&m, 3, true); // warm buffers
    let (short_events, short_allocs) = run_line_p2p_observed(&m, 3, true);
    let (long_events, long_allocs) = run_line_p2p_observed(&m, 63, true);
    assert!(long_events > short_events + 100);
    assert!(
        long_allocs <= short_allocs + 24,
        "counters observer allocates per event: short {short_allocs} allocs \
         ({short_events} events), long {long_allocs} allocs ({long_events} events)"
    );

    // A telem counter update itself is allocation-free.
    telem::counter!(PROBE, "zero_alloc_probe_total", "allocmeter probe");
    let before = allocmeter::allocations();
    for _ in 0..10_000 {
        PROBE.inc();
    }
    assert_eq!(
        allocmeter::allocations() - before,
        0,
        "Counter::inc must not touch the heap"
    );
    assert_eq!(PROBE.get(), 10_000);
}
