//! Golden-file test for the Perfetto export.
//!
//! Pins the exact serialized form of a small deterministic run so format
//! regressions (field renames, ordering changes, lost tracks) are caught
//! by `cargo test` instead of by someone's broken trace viewer.
//!
//! To regenerate after an *intentional* format change:
//! `PERFETTO_GOLDEN_REGEN=1 cargo test -p flitsim --test perfetto_golden`
//! and commit the updated `tests/golden/perfetto_small.json`.

use flitsim::program::SinkProgram;
use flitsim::{perfetto, Engine, SendReq, SimConfig, SoftwareModel};
use topo::{Mesh, NodeId, Topology};

/// The pinned scenario: two senders contending for node 2's consumption
/// channel on a 5-node line — small enough to eyeball, rich enough to
/// exercise slices, instants, and counter tracks.  Fully deterministic:
/// no randomness, no wall-clock content in the export.
fn golden_run() -> String {
    let m = Mesh::new(&[5]);
    let mut cfg = SimConfig::paragon_like();
    cfg.software = SoftwareModel::zero();
    cfg.trace = true;
    let mut e = Engine::new(&m, cfg, SinkProgram);
    e.start(NodeId(0), 0, vec![SendReq::to(NodeId(2), 4000, ())]);
    e.start(NodeId(4), 0, vec![SendReq::to(NodeId(2), 4000, ())]);
    let (_, r) = e.run();
    perfetto::export_string(&r, Some(m.graph()))
}

#[test]
fn perfetto_export_matches_golden_file() {
    let text = golden_run();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/perfetto_small.json"
    );
    if std::env::var_os("PERFETTO_GOLDEN_REGEN").is_some() {
        std::fs::write(path, &text).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(path).expect(
        "golden file missing — regenerate with \
         PERFETTO_GOLDEN_REGEN=1 cargo test -p flitsim --test perfetto_golden",
    );
    assert_eq!(
        text, golden,
        "Perfetto export drifted from tests/golden/perfetto_small.json; \
         if the change is intentional, regenerate with PERFETTO_GOLDEN_REGEN=1"
    );
}

#[test]
fn golden_scenario_is_deterministic() {
    assert_eq!(golden_run(), golden_run());
}
