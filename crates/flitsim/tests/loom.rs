//! Model-checked interleaving tests for the sharded engine's adaptive
//! window protocol (`flitsim::shard::run_sharded`).
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the `verify` stage of
//! `scripts/check.sh`); a plain `cargo test` sees an empty test binary.
//!
//! The production shard workers run whole flit simulations under
//! `std::thread::scope`, so they cannot execute on the model checker's
//! instrumented primitives directly.  Instead these tests replicate the
//! round protocol's synchronization skeleton operation-for-operation —
//! run the window, publish handoffs plus their per-destination earliest
//! timestamps, publish the queue's per-destination earliest-input-time
//! promises and the pending count onto the round-parity board, cross the
//! *single* sense-reversing rendezvous, read the same board back, run the
//! shared horizon fixpoint, absorb the mailbox column — and let the
//! explorer drive shard interleavings against the invariants the
//! deterministic merge relies on:
//!
//! * every shard derives the **same** horizon vector in the **same**
//!   round (the fixpoint inputs are the published board, so the window
//!   structure is global even though each shard advances by its own
//!   per-neighbor entry),
//! * **promise floor**: a shard's published promise never undercuts its
//!   own executed horizon plus the lookahead — the monotone quantity the
//!   fixpoint's soundness induction rests on,
//! * a handoff is never delivered below the receiver's already-executed
//!   window (no event is delivered before its promised time),
//! * **coalesced-window conservation**: no handoff is lost or duplicated
//!   and every event is processed exactly once, however many PR 9-sized
//!   windows one rendezvous advances,
//! * shutdown is unanimous and only when the whole system is drained
//!   (join completes; a shard exiting early wedges the rendezvous, which
//!   the bounded spin reports as a panic).
//!
//! Two negative controls keep the suite honest.  `stale_promise_read_is_
//! detected` reads the *wrong parity* board — the very first
//! (preemption-free) schedule then consumes promise slots the peers never
//! posted this round, which the sentinel check flags.  `single_buffer_
//! board_race_is_detected` collapses the double buffer into one board:
//! a fast shard's next-round publication then overwrites values a slow
//! shard is still reading, and the divergence trips an invariant (the
//! horizon ledger, or a non-unanimous shutdown wedging the rendezvous).
//! If `shard.rs` changes its round structure, this model must change with
//! it — the module-level comments there point back here.

#![cfg(loom)]

use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

/// "Promise not posted yet" sentinel.  Real promises are either
/// `>= LOOKAHEAD` (event times are non-negative) or `IDLE`, so a correct
/// rendezvous + parity discipline makes `UNPOSTED` unobservable.
const UNPOSTED: u64 = 0;

/// An empty queue promises nothing — the coalescing case.
const IDLE: u64 = u64::MAX;

/// Cross-shard latency lower bound (the plan's per-hop lookahead `rd`).
const LOOKAHEAD: u64 = 2;

/// Mirror of `shard::Rendezvous`: parity-indexed arrival counts plus a
/// monotone generation compared against the caller's round, the shape
/// that survives early next-round arrivals (see shard.rs for the two
/// races the naive single-count design loses).
struct Rendezvous {
    parties: usize,
    counts: [AtomicUsize; 2],
    generation: AtomicU64,
}

impl Rendezvous {
    fn new(parties: usize) -> Self {
        Self {
            parties,
            counts: [AtomicUsize::new(0), AtomicUsize::new(0)],
            generation: AtomicU64::new(0),
        }
    }

    fn wait(&self, round: u64) {
        let count = &self.counts[(round & 1) as usize];
        if count.fetch_add(1, Ordering::SeqCst) + 1 == self.parties {
            count.store(0, Ordering::SeqCst);
            self.generation.store(round + 1, Ordering::SeqCst);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::SeqCst) <= round {
                spins += 1;
                assert!(spins < 5_000, "rendezvous stuck: a peer never arrived");
                thread::yield_now();
            }
        }
    }
}

/// Mirror of `shard::Board`: one round's published matrices.
struct Board {
    /// `eits[i][j]`: shard `i`'s promise toward shard `j`.
    eits: Vec<Vec<AtomicU64>>,
    /// `outmins[i][j]`: earliest handoff `i` shipped to `j` this round.
    outmins: Vec<Vec<AtomicU64>>,
    pendings: Vec<AtomicU64>,
}

impl Board {
    fn new(n: usize) -> Self {
        Self {
            eits: (0..n)
                .map(|_| (0..n).map(|_| AtomicU64::new(UNPOSTED)).collect())
                .collect(),
            outmins: (0..n)
                .map(|_| (0..n).map(|_| AtomicU64::new(IDLE)).collect())
                .collect(),
            pendings: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Mirror of `shard::horizon_fixpoint`, verbatim semantics.
fn horizon_fixpoint(
    l: &[Vec<u64>],
    inbound: &[u64],
    msg_graph: &[Vec<bool>],
    rd: u64,
    a: &mut [u64],
) {
    let k = l.len();
    for j in 0..k {
        a[j] = (0..k).map(|i| l[i][j]).min().unwrap_or(u64::MAX);
    }
    for _ in 0..k {
        let mut changed = false;
        for i in 0..k {
            let source = a[i].min(inbound[i]);
            if source == u64::MAX {
                continue;
            }
            let relayed = source.saturating_add(rd);
            for j in 0..k {
                if msg_graph[i][j] && relayed < a[j] {
                    a[j] = relayed;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// One in-flight handoff: `(deliver_at, remaining_forward_hops)`.
type Event = (u64, u32);

/// Which board the read phase of the protocol consults.
#[derive(Clone, Copy)]
enum Fault {
    /// Production behavior: the board published before the rendezvous.
    None,
    /// Negative control: read the opposite-parity board — a stale (or
    /// never-posted) promise set.
    StaleParity,
    /// Negative control: collapse the double buffer — every round
    /// publishes to and reads from board 0, recreating the
    /// publication/read race the parity scheme exists to prevent.
    SingleBuffer,
}

struct Proto {
    rendezvous: Rendezvous,
    boards: [Board; 2],
    /// `mailboxes[src][dst]` — written only by `src`, drained only by
    /// `dst`; a fast sender may append its next round's handoffs before
    /// the receiver drained the current ones (harmless, asserted so).
    mailboxes: Vec<Vec<Mutex<Vec<Event>>>>,
    /// Per-round horizon agreement ledger: first shard to compute a
    /// round's fixpoint records the whole vector, every other shard must
    /// derive the same one.
    horizons: Mutex<Vec<(u64, Vec<u64>)>>,
    emitted: AtomicU64,
    delivered: AtomicU64,
    processed: AtomicU64,
    fault: Fault,
}

impl Proto {
    fn new(n: usize, fault: Fault) -> Self {
        Self {
            rendezvous: Rendezvous::new(n),
            boards: [Board::new(n), Board::new(n)],
            mailboxes: (0..n)
                .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            horizons: Mutex::new(Vec::new()),
            emitted: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            fault: Fault::None,
        }
        .with_fault(fault)
    }

    fn with_fault(mut self, fault: Fault) -> Self {
        self.fault = fault;
        self
    }
}

/// Run one shard of the round protocol to completion.  The model network
/// is a directed ring (shard `i` messages only `i + 1 mod n`, like worm
/// migrations over a partition's crossing channels); each processed event
/// with hops left emits a handoff to the successor at `t + LOOKAHEAD`.
fn shard_main(me: usize, n: usize, proto: &Proto, mut events: Vec<Event>) {
    let succ = (me + 1) % n;
    let msg_graph: Vec<Vec<bool>> = (0..n)
        .map(|i| (0..n).map(|j| j == (i + 1) % n).collect())
        .collect();
    let mut l = vec![vec![IDLE; n]; n];
    let mut inbound = vec![IDLE; n];
    let mut horizons = vec![IDLE; n];
    let mut horizon = 0u64;
    let mut round = 0u64;
    loop {
        // The workloads drain in a handful of windows; a shard still
        // rounding after this many means the unanimous-shutdown decision
        // broke.  Panic rather than loop: a hang here would also wedge
        // every later schedule of the exploration.
        assert!(
            round < 64,
            "shard {me} exceeded the round bound — shutdown never became unanimous"
        );

        // Window: process strictly-below-horizon events (the first
        // round's horizon is 0: publish-only).  One rendezvous may have
        // advanced the horizon through many PR 9-sized windows — the
        // conservation counters check that coalescing drops nothing.
        let mut rest = Vec::new();
        let mut outbox: Vec<Event> = Vec::new();
        for (t, hops) in events.drain(..) {
            if t >= horizon {
                rest.push((t, hops));
                continue;
            }
            proto.processed.fetch_add(1, Ordering::SeqCst);
            if hops > 0 {
                outbox.push((t + LOOKAHEAD, hops - 1));
            }
        }
        events = rest;

        let board = match proto.fault {
            Fault::SingleBuffer => &proto.boards[0],
            _ => &proto.boards[(round & 1) as usize],
        };

        // Publish handoffs and their earliest timestamp per destination.
        let outmin = outbox.iter().map(|&(t, _)| t).min().unwrap_or(IDLE);
        board.outmins[me][succ].store(outmin, Ordering::SeqCst);
        let published = outbox.len() as u64;
        if !outbox.is_empty() {
            proto.emitted.fetch_add(published, Ordering::SeqCst);
            proto.mailboxes[me][succ]
                .lock()
                .unwrap()
                .append(&mut outbox);
        }

        // Publish the post-window queue's promises.  Promise floor: the
        // window just processed everything below `horizon`, so nothing
        // left (or absorbed later) can emit below `horizon + LOOKAHEAD`.
        let promise = events
            .iter()
            .filter(|&&(_, hops)| hops > 0)
            .map(|&(t, _)| t + LOOKAHEAD)
            .min()
            .unwrap_or(IDLE);
        assert!(
            promise >= horizon.saturating_add(LOOKAHEAD),
            "shard {me} promised {promise} below its executed horizon {horizon} + lookahead"
        );
        for j in 0..n {
            let p = if j == succ { promise } else { IDLE };
            board.eits[me][j].store(p, Ordering::SeqCst);
        }
        board.pendings[me].store(events.len() as u64 + published, Ordering::SeqCst);

        // The round's single synchronization point.
        proto.rendezvous.wait(round);
        round += 1;

        // Everyone reads the same board, so every shard takes the same
        // termination branch and computes the same horizon vector.
        let pending: u64 = (0..n)
            .map(|j| board.pendings[j].load(Ordering::SeqCst))
            .sum();
        if pending == 0 {
            break;
        }
        // The fault injection: take the promises from the *next* round's
        // parity — a board nobody posted this round's values to.
        let promise_board = match proto.fault {
            Fault::StaleParity => &proto.boards[(round & 1) as usize],
            _ => board,
        };
        for i in 0..n {
            for j in 0..n {
                let p = promise_board.eits[i][j].load(Ordering::SeqCst);
                assert_ne!(
                    p, UNPOSTED,
                    "shard {me} read shard {i}'s promise toward {j} before it was posted \
                     (the rendezvous/parity discipline failed to order post before read)"
                );
                l[i][j] = p;
            }
            inbound[i] = (0..n)
                .map(|s| promise_board.outmins[s][i].load(Ordering::SeqCst))
                .min()
                .unwrap();
        }
        horizon_fixpoint(&l, &inbound, &msg_graph, LOOKAHEAD, &mut horizons);
        {
            let mut ledger = proto.horizons.lock().unwrap();
            match ledger.iter().find(|&&(r, _)| r == round) {
                Some((_, h)) => assert_eq!(
                    h, &horizons,
                    "shard {me} derived a different horizon vector in round {round}"
                ),
                None => ledger.push((round, horizons.clone())),
            }
        }
        let executed = horizon;
        horizon = horizon.max(horizons[me]);

        // Absorb the own mailbox column.  Conservatism: nothing lands
        // below the window that already ran — a fast sender's early
        // next-round handoffs satisfy this too (their round's fixpoint
        // bounds them even further out).
        for src in 0..n {
            for (t, hops) in proto.mailboxes[src][me].lock().unwrap().drain(..) {
                assert!(
                    t >= executed,
                    "shard {me} received a handoff at t={t} below its executed window {executed}"
                );
                proto.delivered.fetch_add(1, Ordering::SeqCst);
                events.push((t, hops));
            }
        }
    }
}

/// Run the protocol over `n` shards with the given workload, joining all
/// workers and checking the global conservation invariants.
fn run_protocol(n: usize, fault: Fault, workload: Vec<Vec<Event>>) {
    let initial: u64 = workload.iter().map(|w| w.len() as u64).sum();
    let proto = Arc::new(Proto::new(n, fault));
    let handles: Vec<_> = workload
        .into_iter()
        .enumerate()
        .map(|(me, events)| {
            let proto = Arc::clone(&proto);
            thread::spawn(move || shard_main(me, n, &proto, events))
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let emitted = proto.emitted.load(Ordering::SeqCst);
    assert_eq!(
        emitted,
        proto.delivered.load(Ordering::SeqCst),
        "handoffs were lost or duplicated"
    );
    assert_eq!(
        proto.processed.load(Ordering::SeqCst),
        initial + emitted,
        "coalesced windows dropped or replayed events"
    );
}

#[test]
fn eit_promises_agree_and_conserve_across_coalesced_windows() {
    loom::model(|| {
        // Two shards, interleaved start times, a two-hop cascade: shard
        // 0's t=0 event migrates to shard 1 (t=2), then back to shard 0
        // (t=4).  The hop-0 event at t=7 keeps shard 0's queue non-empty
        // while promising nothing — the promise (not the queue minimum)
        // is what must drive the peer's horizon.
        run_protocol(2, Fault::None, vec![vec![(0, 2), (7, 0)], vec![(1, 1)]]);
    });
}

#[test]
fn idle_neighbor_promises_let_windows_coalesce() {
    loom::model(|| {
        // Shard 1 holds only hop-0 events: it promises IDLE, so shard
        // 0's fixpoint entry goes unbounded and its whole workload —
        // spanning many PR 9 global-minimum windows — drains in one
        // round.  The conservation counters verify nothing is skipped.
        run_protocol(
            2,
            Fault::None,
            vec![vec![(0, 1), (9, 1), (20, 0)], vec![(5, 0)]],
        );
    });
}

#[test]
fn three_shard_ring_with_an_idle_shard_terminates_unanimously() {
    loom::model(|| {
        // Three shards, one initially idle — it only ever works on
        // migrated-in events, the shape that would expose a shutdown
        // verdict derived from stale pending counts.
        run_protocol(3, Fault::None, vec![vec![(0, 3)], vec![(0, 1)], vec![]]);
    });
}

#[test]
#[should_panic(expected = "before it was posted")]
fn stale_promise_read_is_detected() {
    // Negative control: reading the opposite-parity board consumes
    // promises the peers posted for a *different* round — round 0 reads
    // slots never posted at all, which the sentinel check flags on the
    // very first (preemption-free) schedule.  If this test ever stops
    // panicking, the suite has gone vacuous.
    loom::model(|| {
        run_protocol(
            2,
            Fault::StaleParity,
            vec![vec![(0, 2), (7, 0)], vec![(1, 1)]],
        );
    });
}

#[test]
#[should_panic]
fn single_buffer_board_race_is_detected() {
    // Negative control for the double buffer itself: with one shared
    // board, a shard that clears the rendezvous first publishes its next
    // round on top of values a slower shard is still reading.  The mixed
    // read diverges — a mismatched horizon ledger, a non-unanimous
    // shutdown wedging the rendezvous, or a stale-promise sentinel —
    // any of which must panic.
    loom::model(|| {
        run_protocol(
            2,
            Fault::SingleBuffer,
            vec![vec![(0, 2), (7, 0)], vec![(1, 1)]],
        );
    });
}
