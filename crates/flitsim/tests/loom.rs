//! Model-checked interleaving tests for the sharded engine's window
//! protocol (`flitsim::shard::run_sharded`).
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the `verify` stage of
//! `scripts/check.sh`); a plain `cargo test` sees an empty test binary.
//!
//! The production shard workers run whole flit simulations under
//! `std::thread::scope`, so they cannot execute on the model checker's
//! instrumented primitives directly.  Instead these tests replicate the
//! round protocol's synchronization skeleton operation-for-operation —
//! post EIT + pending count to per-shard atomics, barrier, every shard
//! computes the same horizon (and the unanimous-shutdown decision) from
//! the posted values, process the window, append handoffs to the
//! mutex-protected mailbox matrix, barrier, drain the own column — and
//! let the explorer drive shard interleavings against the invariants the
//! deterministic merge relies on:
//!
//! * every shard derives the **same** horizon in the **same** round
//!   (identical `(round, H)` streams — the window structure is global),
//! * a handoff is never delivered below the receiver's current horizon
//!   (conservative lookahead: events only flow into *future* windows),
//! * no handoff is lost or duplicated (emitted == delivered),
//! * shutdown is unanimous and only when the whole system is drained
//!   (join completes; a shard exiting early would deadlock the barrier,
//!   which the shim reports as a stuck spin).
//!
//! The negative control swaps the barrier for a broken one that never
//! waits: the explorer's very first (preemption-free) schedule then reads
//! a peer's EIT slot before the peer posted it, which the model flags —
//! demonstrating the suite detects a broken barrier rather than vacuously
//! passing.  If `shard.rs` changes its round structure, this model must
//! change with it — the module-level comments there point back here.

#![cfg(loom)]

use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

/// "EIT not posted yet" sentinel — a correct barrier makes it unobservable.
const UNPOSTED: u64 = u64::MAX;

/// Cross-shard latency lower bound (the plan's lookahead).
const LOOKAHEAD: u64 = 2;

/// A sense-reversing barrier over the shim's instrumented atomics, standing
/// in for the `std::sync::Barrier` the production workers use.
struct SenseBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicUsize,
}

impl SenseBarrier {
    fn new(n: usize) -> Self {
        Self {
            n,
            count: AtomicUsize::new(0),
            sense: AtomicUsize::new(0),
        }
    }
}

/// The barrier under test: the real one, or the negative control.
trait Rendezvous: Send + Sync {
    fn wait(&self);
}

impl Rendezvous for SenseBarrier {
    fn wait(&self) {
        let sense = self.sense.load(Ordering::SeqCst);
        if self.count.fetch_add(1, Ordering::SeqCst) + 1 == self.n {
            self.count.store(0, Ordering::SeqCst);
            self.sense.store(sense + 1, Ordering::SeqCst);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::SeqCst) == sense {
                spins += 1;
                assert!(spins < 5_000, "barrier stuck: a peer never arrived");
                thread::yield_now();
            }
        }
    }
}

/// Negative control: a "barrier" that never waits for anyone.
struct BrokenBarrier;

impl Rendezvous for BrokenBarrier {
    fn wait(&self) {}
}

/// One in-flight handoff: `(deliver_at, remaining_forward_hops)`.
type Event = (u64, u32);

struct Proto {
    barrier: Box<dyn Rendezvous>,
    eits: Vec<AtomicU64>,
    pendings: Vec<AtomicU64>,
    /// `mailboxes[src][dst]` — written only by `src` (under its mutex),
    /// drained only by `dst` after the second barrier.
    mailboxes: Vec<Vec<Mutex<Vec<Event>>>>,
    /// Per-round horizon agreement ledger: first shard to finish a round
    /// records its H, every other shard must derive the same one.
    horizons: Mutex<Vec<(usize, u64)>>,
    emitted: AtomicU64,
    delivered: AtomicU64,
}

impl Proto {
    fn new(n: usize, barrier: Box<dyn Rendezvous>) -> Self {
        Self {
            barrier,
            eits: (0..n).map(|_| AtomicU64::new(UNPOSTED)).collect(),
            pendings: (0..n).map(|_| AtomicU64::new(0)).collect(),
            mailboxes: (0..n)
                .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            horizons: Mutex::new(Vec::new()),
            emitted: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
        }
    }
}

/// Run one shard of the round protocol to completion.  `events` is the
/// shard's initial pending set; each processed event with hops left emits
/// a handoff to the next shard at `t + LOOKAHEAD`.
fn shard_main(me: usize, n: usize, proto: &Proto, mut events: Vec<Event>) {
    let mut round = 0usize;
    loop {
        // The workloads drain in a handful of windows; a shard still
        // rounding after this many means the unanimous-shutdown decision
        // broke (e.g. a peer died and its stale pending count is being
        // re-read forever).  Panic rather than loop: a hang here would
        // also wedge every later schedule of the exploration.
        assert!(
            round < 64,
            "shard {me} exceeded the round bound — shutdown never became unanimous"
        );
        // Post this shard's earliest-emission bound and pending count.
        let eit = events
            .iter()
            .map(|&(t, _)| t + LOOKAHEAD)
            .min()
            .unwrap_or(UNPOSTED - 1);
        proto.eits[me].store(eit, Ordering::SeqCst);
        proto.pendings[me].store(events.len() as u64, Ordering::SeqCst);

        proto.barrier.wait();

        // Every shard reads the same posted values, so every shard derives
        // the same horizon and the same unanimous-shutdown verdict.
        let mut horizon = UNPOSTED - 1;
        let mut pending_sum = 0u64;
        for j in 0..n {
            let peer = proto.eits[j].load(Ordering::SeqCst);
            assert_ne!(
                peer, UNPOSTED,
                "shard {me} read shard {j}'s EIT before it was posted \
                 (the barrier failed to order post before read)"
            );
            horizon = horizon.min(peer);
            pending_sum += proto.pendings[j].load(Ordering::SeqCst);
        }
        if pending_sum == 0 {
            break; // Unanimous: same inputs, same verdict on every shard.
        }
        {
            let mut ledger = proto.horizons.lock().unwrap();
            match ledger.iter().find(|&&(r, _)| r == round) {
                Some(&(_, h)) => assert_eq!(
                    h, horizon,
                    "shard {me} derived a different horizon in round {round}"
                ),
                None => ledger.push((round, horizon)),
            }
        }

        // Process the window: strictly-below-horizon events only.  Every
        // emission lands at t + LOOKAHEAD >= this shard's posted EIT >= H,
        // i.e. in a *future* window of the receiver.
        let mut rest = Vec::new();
        for (t, hops) in events.drain(..) {
            if t >= horizon {
                rest.push((t, hops));
                continue;
            }
            if hops > 0 {
                let dst = (me + 1) % n;
                proto.emitted.fetch_add(1, Ordering::SeqCst);
                proto.mailboxes[me][dst]
                    .lock()
                    .unwrap()
                    .push((t + LOOKAHEAD, hops - 1));
            }
        }
        events = rest;

        proto.barrier.wait();

        // Drain own column: the conservative-window guarantee is that no
        // handoff lands below the horizon whose window just ran.
        for src in 0..n {
            for (t, hops) in proto.mailboxes[src][me].lock().unwrap().drain(..) {
                assert!(
                    t >= horizon,
                    "shard {me} received a handoff at t={t} below horizon {horizon}"
                );
                proto.delivered.fetch_add(1, Ordering::SeqCst);
                events.push((t, hops));
            }
        }
        round += 1;
    }
}

/// Run the protocol over `n` shards with the given barrier and workload,
/// joining all workers and checking the global conservation invariant.
fn run_protocol(n: usize, barrier: Box<dyn Rendezvous>, workload: Vec<Vec<Event>>) {
    let proto = Arc::new(Proto::new(n, barrier));
    let handles: Vec<_> = workload
        .into_iter()
        .enumerate()
        .map(|(me, events)| {
            let proto = Arc::clone(&proto);
            thread::spawn(move || shard_main(me, n, &proto, events))
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        proto.emitted.load(Ordering::SeqCst),
        proto.delivered.load(Ordering::SeqCst),
        "handoffs were lost or duplicated"
    );
}

#[test]
fn window_protocol_agrees_on_horizons_and_conserves_handoffs() {
    loom::model(|| {
        // Two shards, interleaved start times, a two-hop cascade: shard 0's
        // t=0 event migrates to shard 1 (t=2), then back to shard 0 (t=4).
        run_protocol(
            2,
            Box::new(SenseBarrier::new(2)),
            vec![vec![(0, 2), (3, 0)], vec![(1, 1)]],
        );
    });
}

#[test]
fn window_protocol_survives_a_three_shard_ring() {
    loom::model(|| {
        // Three shards, one idle at the start — it only ever works on
        // migrated-in events, the shape that would expose a shutdown
        // verdict derived from stale pending counts.
        run_protocol(
            3,
            Box::new(SenseBarrier::new(3)),
            vec![vec![(0, 3)], vec![(0, 1)], vec![]],
        );
    });
}

#[test]
#[should_panic(expected = "before it was posted")]
fn broken_barrier_is_detected() {
    // Negative control: with a barrier that never waits, the very first
    // explored schedule lets shard 0 race through its round and read shard
    // 1's EIT slot while it still holds the UNPOSTED sentinel.  If this
    // test ever stops panicking, the suite has gone vacuous.
    loom::model(|| {
        run_protocol(
            2,
            Box::new(BrokenBarrier),
            vec![vec![(0, 2), (3, 0)], vec![(1, 1)]],
        );
    });
}
