//! Property tests: the engine under arbitrary traffic.
//!
//! These don't check multicast semantics (optmc does); they hammer the
//! wormhole core — delivery, lower bounds, monotonicity, determinism, and
//! the engine's internal acquire/release accounting (which panics on any
//! leak, so merely *finishing* is already an invariant check).

use flitsim::program::SinkProgram;
use flitsim::{Engine, SendReq, SimConfig};
use proptest::prelude::*;
use topo::{Bmin, Mesh, NodeId, Topology, UpPolicy};

#[derive(Debug, Clone)]
struct TrafficCase {
    sends: Vec<(u32, u32, u64, u64)>, // (src, dst, bytes, start)
}

fn traffic(n_nodes: u32) -> impl Strategy<Value = TrafficCase> {
    proptest::collection::vec((0..n_nodes, 0..n_nodes, 0u64..4096, 0u64..2000), 1..25).prop_map(
        move |mut v| {
            // A node may not send to itself; remap collisions.
            for (s, d, _, _) in &mut v {
                if s == d {
                    *d = (*d + 1) % n_nodes;
                }
            }
            TrafficCase { sends: v }
        },
    )
}

fn run_case(topo: &dyn Topology, case: &TrafficCase) -> flitsim::SimResult {
    let mut e = Engine::new(topo, SimConfig::paragon_like(), SinkProgram);
    for &(s, d, bytes, start) in &case.sends {
        e.start(NodeId(s), start, vec![SendReq::to(NodeId(d), bytes, ())]);
    }
    e.run().1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every send is delivered exactly once on a mesh, and each message's
    /// latency is at least its uncontended prediction.
    #[test]
    fn mesh_delivers_everything(case in traffic(36)) {
        let m = Mesh::new(&[6, 6]);
        let cfg = SimConfig::paragon_like();
        let r = run_case(&m, &case);
        prop_assert_eq!(r.messages.len(), case.sends.len());
        for rec in &r.messages {
            let hops = m.distance(rec.src, rec.dest);
            prop_assert!(rec.latency() >= cfg.predict_p2p(hops, rec.bytes),
                "{:?} beat the uncontended bound", rec);
        }
    }

    /// Same on a BMIN with the adaptive up-phase.
    #[test]
    fn bmin_delivers_everything(case in traffic(32)) {
        let b = Bmin::new(5, UpPolicy::Straight);
        let r = run_case(&b, &case);
        prop_assert_eq!(r.messages.len(), case.sends.len());
    }

    /// Bit-identical reruns (the engine has no hidden nondeterminism).
    #[test]
    fn reruns_are_identical(case in traffic(36)) {
        let m = Mesh::new(&[6, 6]);
        let a = run_case(&m, &case);
        let b = run_case(&m, &case);
        prop_assert_eq!(format!("{:?}", a.messages), format!("{:?}", b.messages));
        prop_assert_eq!(a.blocked_cycles, b.blocked_cycles);
        prop_assert_eq!(a.channel_busy_cycles, b.channel_busy_cycles);
    }

    /// Blocked time only ever increases total channel occupancy, never the
    /// conservation: busy cycles are at least (flits+path) per message.
    #[test]
    fn busy_cycles_lower_bound(case in traffic(16)) {
        let m = Mesh::new(&[16]);
        let cfg = SimConfig::paragon_like();
        let r = run_case(&m, &case);
        let mut min_busy = 0u64;
        for rec in &r.messages {
            // Each of the path's channels is held for >= 1 cycle; the
            // consumption channel alone is held for >= flits cycles.
            let hops = m.distance(rec.src, rec.dest) as u64;
            min_busy += hops + 2 + cfg.flits(rec.bytes) - 1;
        }
        prop_assert!(r.channel_busy_cycles >= min_busy,
            "busy {} < floor {}", r.channel_busy_cycles, min_busy);
    }
}
