//! Integration tests for the observability layer: serde round-trips of the
//! public trace/result types, and observer-neutrality of a full run.

use flitsim::program::SinkProgram;
use flitsim::trace::{TraceEvent, TraceKind};
use flitsim::{Engine, SendReq, SimConfig, SimResult, TraceSink};
use topo::{ChannelId, Mesh, NodeId};

/// A small mesh run with enough crossing traffic to block at least once.
fn run(cfg: SimConfig) -> SimResult {
    let m = Mesh::new(&[4, 4]);
    let mut e = Engine::new(&m, cfg, SinkProgram);
    // Two worms crossing the same column, plus a long payload to hold
    // channels; a third send from the far corner.
    e.start(NodeId(0), 0, vec![SendReq::to(NodeId(15), 4096, ())]);
    e.start(NodeId(3), 0, vec![SendReq::to(NodeId(12), 4096, ())]);
    e.start(NodeId(12), 5, vec![SendReq::to(NodeId(3), 1024, ())]);
    e.run().1
}

fn traced_cfg() -> SimConfig {
    let mut cfg = SimConfig::paragon_like();
    cfg.trace = true;
    cfg
}

#[test]
fn trace_event_round_trips_through_json() {
    let events = [
        TraceEvent::on_channel(42, 7, Some(ChannelId(3)), TraceKind::Acquire),
        TraceEvent::on_channel(99, 0, None, TraceKind::Blocked),
        TraceEvent::on_node(5, 2, NodeId(11), TraceKind::CpuBusy),
        TraceEvent::on_node(6, 2, NodeId(11), TraceKind::CpuIdle),
    ];
    for ev in events {
        let text = serde_json::to_string(&ev).unwrap();
        let back: TraceEvent = serde_json::from_str(&text).unwrap();
        assert_eq!(back, ev, "{text}");
    }
}

#[test]
fn sim_result_round_trips_through_json() {
    let sim = run(traced_cfg());
    assert!(!sim.trace.is_empty(), "traced run produced no events");
    assert_eq!(sim.messages.len(), 3);

    let text = serde_json::to_string_pretty(&sim).unwrap();
    let back: SimResult = serde_json::from_str(&text).unwrap();

    assert_eq!(back.finish, sim.finish);
    assert_eq!(back.messages, sim.messages);
    assert_eq!(back.blocked_cycles, sim.blocked_cycles);
    assert_eq!(back.blocked_events, sim.blocked_events);
    assert_eq!(back.channel_busy_cycles, sim.channel_busy_cycles);
    assert_eq!(back.trace, sim.trace);
    assert_eq!(back.truncated, sim.truncated);
    assert_eq!(back.meta, sim.meta);
    assert_eq!(back.last_completion(), sim.last_completion());
}

/// The whole-result JSON of an untraced run is byte-identical across
/// reruns and across observer choices, once the (intentionally
/// non-deterministic) wall-clock fields are zeroed.
#[test]
fn disabled_observer_results_are_bit_identical() {
    let canon = |mut sim: SimResult| -> String {
        sim.meta.wall_ns = 0;
        sim.meta.events_per_sec = 0.0;
        serde_json::to_string_pretty(&sim).unwrap()
    };

    let untraced = canon(run(SimConfig::paragon_like()));
    let rerun = canon(run(SimConfig::paragon_like()));
    assert_eq!(untraced, rerun, "engine reruns diverged");

    // An explicit Null sink must match the config-derived disabled path.
    let m = Mesh::new(&[4, 4]);
    let mut e = Engine::new(&m, SimConfig::paragon_like(), SinkProgram);
    e.set_observer(TraceSink::Null);
    e.start(NodeId(0), 0, vec![SendReq::to(NodeId(15), 4096, ())]);
    e.start(NodeId(3), 0, vec![SendReq::to(NodeId(12), 4096, ())]);
    e.start(NodeId(12), 5, vec![SendReq::to(NodeId(3), 1024, ())]);
    assert_eq!(canon(e.run().1), untraced, "Null sink altered the result");
}

/// Tracing must not perturb the simulation itself: every field except the
/// trace (and trace-counting vitals) matches the untraced run.
#[test]
fn tracing_never_alters_the_simulation() {
    let plain = run(SimConfig::paragon_like());
    let traced = run(traced_cfg());
    assert_eq!(traced.messages, plain.messages);
    assert_eq!(traced.finish, plain.finish);
    assert_eq!(traced.blocked_cycles, plain.blocked_cycles);
    assert_eq!(traced.meta.events_processed, plain.meta.events_processed);
    assert_eq!(traced.meta.events_scheduled, plain.meta.events_scheduled);
    assert!(traced.meta.trace_events > 0);
    assert_eq!(plain.meta.trace_events, 0);
}

/// A traced contended run feeds the whole reporting chain: metrics see the
/// blocking, the report renders, and the Perfetto export parses.
#[test]
fn traced_run_drives_metrics_and_export() {
    let sim = run(traced_cfg());
    let metrics = flitsim::Metrics::from_result(&sim);
    assert_eq!(metrics.latency.count, 3);
    let report = flitsim::obs::render_report(&sim);
    assert!(
        report.contains("engine:") && report.contains("phases:"),
        "{report}"
    );

    let text = flitsim::perfetto::export_string(&sim, None);
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    match v {
        serde_json::Value::Object(fields) => {
            assert!(fields.iter().any(|(k, _)| k == "traceEvents"));
        }
        other => panic!("expected object, got {other:?}"),
    }
}
