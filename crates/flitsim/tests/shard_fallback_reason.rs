//! Fallback attribution: when a shard-eligible run disengages the sharded
//! engine, the *reason* must land in the per-reason counter and in the
//! process-wide last-fallback slot that `optmc run --fingerprint`
//! surfaces.
//!
//! This lives in its own test binary on purpose: `last_shard_fallback` is
//! process-global state that every sharded `run_auto` rewrites, so the
//! assertions below are only deterministic when nothing else in the
//! process is sharding concurrently.

use flitsim::engine::ShardFallback;
use flitsim::program::SinkProgram;
use flitsim::{Engine, SendReq, SimConfig};
use topo::{Mesh, NodeId};

fn run_with(mutate: impl FnOnce(&mut SimConfig), bytes: u64) -> flitsim::SimResult {
    let mesh = Mesh::new(&[8, 8]);
    let mut cfg = SimConfig::paragon_like();
    cfg.shards = 4;
    mutate(&mut cfg);
    let mut e = Engine::new(&mesh, cfg, SinkProgram);
    e.start(NodeId(0), 0, vec![SendReq::to(NodeId(63), bytes, ())]);
    e.start(NodeId(9), 40, vec![SendReq::to(NodeId(20), bytes, ())]);
    e.run_auto().1
}

#[test]
fn fallbacks_are_attributed_per_reason_and_surfaced() {
    // A tracing observer needs the sequential engine's global pop order.
    let observer_before = flitsim::metrics::SHARD_FALLBACKS_OBSERVER.get();
    let total_before = flitsim::metrics::SHARD_FALLBACKS.get();
    let r = run_with(|cfg| cfg.trace = true, 4096);
    assert!(!r.trace.is_empty(), "the traced run must actually trace");
    assert_eq!(
        flitsim::metrics::SHARD_FALLBACKS_OBSERVER.get(),
        observer_before + 1
    );
    assert_eq!(
        flitsim::metrics::last_shard_fallback(),
        Some(ShardFallback::Observer.reason()),
    );

    // Worms below the condition C floor can release at non-future times.
    let tiny_before = flitsim::metrics::SHARD_FALLBACKS_TINY_MESSAGE.get();
    let _ = run_with(|_| {}, 16);
    assert_eq!(
        flitsim::metrics::SHARD_FALLBACKS_TINY_MESSAGE.get(),
        tiny_before + 1
    );
    assert_eq!(
        flitsim::metrics::last_shard_fallback(),
        Some(ShardFallback::TinyMessage.reason()),
    );

    // Zero router delay leaves no cross-shard lookahead at all.
    let zero_before = flitsim::metrics::SHARD_FALLBACKS_ZERO_ROUTER_DELAY.get();
    let _ = run_with(|cfg| cfg.router_delay = 0, 4096);
    assert_eq!(
        flitsim::metrics::SHARD_FALLBACKS_ZERO_ROUTER_DELAY.get(),
        zero_before + 1
    );
    assert_eq!(
        flitsim::metrics::last_shard_fallback(),
        Some(ShardFallback::ZeroRouterDelay.reason()),
    );

    // Every fallback above also bumped the roll-up counter.
    assert_eq!(flitsim::metrics::SHARD_FALLBACKS.get(), total_before + 3);

    // A run that does shard clears the reason.
    let sharded_before = flitsim::metrics::SHARDED_RUNS.get();
    let _ = run_with(|_| {}, 4096);
    assert_eq!(flitsim::metrics::SHARDED_RUNS.get(), sharded_before + 1);
    assert_eq!(flitsim::metrics::last_shard_fallback(), None);
}
