//! Differential testing of the sharded engine: for every topology family,
//! across many seeds and shard counts, the sharded run's canonical result
//! fingerprint must be **byte-identical** to the sequential run's.
//!
//! The workloads deliberately mix staggered start times, repeated senders,
//! hot destinations (consumption-port contention) and relay cascades
//! (program-generated sends), because those are the paths where a
//! conservative-window bug would show up as a reordered acquisition.

use flitsim::program::{RelayProgram, SinkProgram};
use flitsim::{Engine, SendReq, SimConfig};
use topo::{Bmin, Mesh, NodeId, Omega, Topology, Torus, UpPolicy};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded workload of point-to-point sends: `(src, start_at, dest, bytes)`.
/// Sizes stay >= 512 B so condition C holds on every topology under test
/// (the sharded path engages instead of falling back).
fn workload(n_nodes: u32, seed: u64, sends: usize) -> Vec<(u32, u64, u32, u64)> {
    let mut s = seed.wrapping_mul(0x5851_f42d_4c95_7f2d) ^ 0x1997;
    (0..sends)
        .map(|_| {
            let src = (splitmix(&mut s) % u64::from(n_nodes)) as u32;
            let mut dst = (splitmix(&mut s) % u64::from(n_nodes)) as u32;
            if dst == src {
                dst = (dst + 1) % n_nodes;
            }
            let at = splitmix(&mut s) % 5_000;
            let bytes = 512 + splitmix(&mut s) % 7_500;
            (src, at, dst, bytes)
        })
        .collect()
}

fn run_p2p(topo: &dyn Topology, shards: usize, wl: &[(u32, u64, u32, u64)]) -> String {
    let mut cfg = SimConfig::paragon_like();
    cfg.shards = shards;
    let mut e = Engine::new(topo, cfg, SinkProgram);
    for &(src, at, dst, bytes) in wl {
        e.start(NodeId(src), at, vec![SendReq::to(NodeId(dst), bytes, ())]);
    }
    e.run_auto().1.fingerprint()
}

fn topologies() -> Vec<(&'static str, Box<dyn Topology>)> {
    vec![
        ("mesh-8x8", Box::new(Mesh::new(&[8, 8]))),
        ("torus-8x8", Box::new(Torus::new(&[8, 8]))),
        ("bmin-64", Box::new(Bmin::new(6, UpPolicy::Straight))),
        ("omega-64", Box::new(Omega::new(6))),
    ]
}

/// The core gate: 20 seeds x 4 topologies x shard counts {2, 4, 8}, every
/// fingerprint byte-identical to sequential, and zero fallbacks (the runs
/// really exercised the sharded path).
#[test]
fn sharded_matches_sequential_across_topologies_and_seeds() {
    let fallbacks_before = flitsim::metrics::SHARD_FALLBACKS.get();
    let sharded_before = flitsim::metrics::SHARDED_RUNS.get();
    let mut sharded_runs = 0u64;
    for (name, topo) in topologies() {
        for seed in 0..20u64 {
            let wl = workload(topo.graph().n_nodes() as u32, seed, 40);
            let sequential = run_p2p(topo.as_ref(), 1, &wl);
            for shards in [2usize, 4, 8] {
                let sharded = run_p2p(topo.as_ref(), shards, &wl);
                assert_eq!(
                    sequential, sharded,
                    "{name} seed {seed}: {shards}-shard run diverged from sequential"
                );
                sharded_runs += 1;
            }
        }
    }
    assert_eq!(
        flitsim::metrics::SHARD_FALLBACKS.get(),
        fallbacks_before,
        "differential runs must engage the sharded engine, not fall back"
    );
    assert!(flitsim::metrics::SHARDED_RUNS.get() >= sharded_before + sharded_runs);
}

/// Relay cascades: program-generated sends (`on_receive` issuing new worms
/// mid-run) must also merge bit-identically — they exercise the
/// RecvDone -> kick -> fresh-worm chain the window bounds reason about.
#[test]
fn sharded_matches_sequential_with_program_cascades() {
    for (name, topo) in topologies() {
        let n = topo.graph().n_nodes() as u32;
        let ring: Vec<NodeId> = (0..n).step_by(3).map(NodeId).collect();
        let run = |shards: usize| {
            let mut cfg = SimConfig::paragon_like();
            cfg.shards = shards;
            let prog = RelayProgram {
                ring: ring.clone(),
                bytes: 2048,
            };
            let mut e = Engine::new(topo.as_ref(), cfg, prog);
            // Two interleaved relay cascades plus background traffic.
            e.start(ring[0], 0, vec![SendReq::to(ring[1], 2048, 6u32)]);
            e.start(ring[2], 700, vec![SendReq::to(ring[3], 2048, 5u32)]);
            e.start(NodeId(1), 100, vec![SendReq::to(NodeId(n - 2), 4096, 0u32)]);
            e.run_auto().1.fingerprint()
        };
        let sequential = run(1);
        for shards in [2usize, 4, 8] {
            assert_eq!(sequential, run(shards), "{name}: relay cascade diverged");
        }
    }
}

/// Concurrent hot-spot traffic: many senders, one destination — the
/// consumption channel serialises everything, so release wakeup order (the
/// subtlest merge invariant) decides every completion time.
#[test]
fn sharded_matches_sequential_under_hotspot_contention() {
    for (name, topo) in topologies() {
        let n = topo.graph().n_nodes() as u32;
        let hot = n / 2;
        let run = |shards: usize| {
            let mut cfg = SimConfig::paragon_like();
            cfg.shards = shards;
            let mut e = Engine::new(topo.as_ref(), cfg, SinkProgram);
            for src in 0..n {
                if src != hot {
                    let at = u64::from(src % 7) * 150;
                    e.start(NodeId(src), at, vec![SendReq::to(NodeId(hot), 1024, ())]);
                }
            }
            e.run_auto().1.fingerprint()
        };
        let sequential = run(1);
        for shards in [2usize, 4, 8] {
            assert_eq!(sequential, run(shards), "{name}: hotspot run diverged");
        }
    }
}

/// Deeper buffers change the release schedule (worms compress); the window
/// bounds must stay conservative for them too.
#[test]
fn sharded_matches_sequential_with_deep_buffers() {
    let mesh = Mesh::new(&[8, 8]);
    for buf in [2u64, 8] {
        for seed in 100..105u64 {
            let wl = workload(64, seed, 30);
            let run = |shards: usize| {
                let mut cfg = SimConfig::paragon_like();
                cfg.buffer_flits = buf;
                // Deeper buffers raise the condition C floor; keep worms long.
                cfg.shards = shards;
                let mut e = Engine::new(&mesh, cfg, SinkProgram);
                for &(src, at, dst, bytes) in &wl {
                    e.start(
                        NodeId(src),
                        at,
                        vec![SendReq::to(NodeId(dst), bytes * buf, ())],
                    );
                }
                e.run_auto().1.fingerprint()
            };
            let sequential = run(1);
            for shards in [2usize, 4] {
                assert_eq!(sequential, run(shards), "buf {buf} seed {seed} diverged");
            }
        }
    }
}

/// The counters observer must survive sharding with identical tallies on
/// every topology family and across seeds (per-kind sums are associative
/// across shards, and the per-shard accumulators merge deterministically).
/// The fallback counters pin that these runs really sharded: `Counters`
/// is the one observer arm that must *not* disengage the sharded engine.
#[test]
fn sharded_counters_observer_matches_across_topologies_and_seeds() {
    let observer_fallbacks_before = flitsim::metrics::SHARD_FALLBACKS_OBSERVER.get();
    let fallbacks_before = flitsim::metrics::SHARD_FALLBACKS.get();
    for (name, topo) in topologies() {
        for seed in [7u64, 23, 91] {
            let wl = workload(topo.graph().n_nodes() as u32, seed, 40);
            let run = |shards: usize| {
                let mut cfg = SimConfig::paragon_like();
                cfg.shards = shards;
                let mut e = Engine::new(topo.as_ref(), cfg, SinkProgram);
                e.set_observer(flitsim::TraceSink::counters());
                for &(src, at, dst, bytes) in &wl {
                    e.start(NodeId(src), at, vec![SendReq::to(NodeId(dst), bytes, ())]);
                }
                e.run_auto().1
            };
            let sequential = run(1);
            for shards in [2usize, 4] {
                let sharded = run(shards);
                assert_eq!(
                    sequential.fingerprint(),
                    sharded.fingerprint(),
                    "{name} seed {seed}: observed {shards}-shard run diverged"
                );
                let (a, b) = (sequential.counts.unwrap(), sharded.counts.unwrap());
                assert_eq!(
                    a, b,
                    "{name} seed {seed}: per-kind event tallies must merge exactly"
                );
                assert!(a.acquires > 0);
            }
        }
    }
    assert_eq!(
        flitsim::metrics::SHARD_FALLBACKS_OBSERVER.get(),
        observer_fallbacks_before,
        "the Counters observer must shard, not fall back to sequential"
    );
    assert_eq!(
        flitsim::metrics::SHARD_FALLBACKS.get(),
        fallbacks_before,
        "observed differential runs must engage the sharded engine"
    );
}
