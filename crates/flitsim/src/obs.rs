//! Observability: engine observer hooks, trace sinks, metrics and run
//! metadata.
//!
//! The engine publishes its lifecycle through the [`Observer`] trait —
//! channel acquire/release, worm injection/drain, blocking episodes, CPU
//! busy/idle, event-loop ticks.  [`TraceSink`] is the enum-dispatched
//! built-in observer the engine holds: the [`TraceSink::Null`] arm reduces
//! every hook to a discriminant test, so a run with observation disabled
//! pays nothing and produces results identical to one with the hooks
//! compiled out.  The other arms collect in memory (optionally bounded),
//! keep a bounded ring of the most recent events, stream JSONL to a
//! writer, or forward to a caller-supplied [`Observer`].
//!
//! Between `Null` and the retaining sinks sits [`TraceSink::Counters`]:
//! it tallies events by kind into plain-`u64` [`EventCounts`] without
//! retaining anything, so (unlike the full observers) it does not need
//! globally unique worm ids and leaves the engine's worm-slab slot-reuse
//! fast path enabled — see [`TraceSink::needs_unique_worm_ids`].
//!
//! On top of the raw stream, [`Metrics`] derives latency/blocking
//! histograms ([`Histogram`], log₂ buckets — promoted to the `telem`
//! crate and re-exported here), the per-worm phase breakdown
//! ([`PhaseBreakdown`]: queued → climbing → draining → software), and
//! per-channel utilisation; [`RunMeta`] records the engine's own vitals
//! (events processed, wall time, throughput, peak event-heap size) and is
//! attached to every [`SimResult`].  [`render_report`] turns all of it
//! into a human-readable run report; [`crate::perfetto`] exports the same
//! stream for the Perfetto / `chrome://tracing` UI.

use std::collections::VecDeque;
use std::io::Write;

use pcm::Time;
use serde::{Deserialize, Serialize};
use topo::{ChannelId, NodeId};

use crate::stats::{MessageRecord, SimResult};
use crate::trace::{self, TraceEvent, TraceKind};

// ---------------------------------------------------------------------------
// Observer.

/// Engine lifecycle hooks.  All methods default to no-ops so an observer
/// implements only what it needs; `wants_events` lets the engine skip
/// argument preparation (e.g. holder lookups) when nobody listens.
pub trait Observer {
    /// Return `false` to let the engine skip event construction entirely.
    fn wants_events(&self) -> bool {
        true
    }

    /// A raw trace event (every specialised hook funnels through this).
    fn on_event(&mut self, _e: TraceEvent) {}

    /// A worm's head acquired `channel` at `t`.
    fn on_channel_acquire(&mut self, t: Time, worm: u32, channel: ChannelId) {
        self.on_event(TraceEvent::on_channel(
            t,
            worm,
            Some(channel),
            TraceKind::Acquire,
        ));
    }

    /// A worm's tail released `channel` at `t`.
    fn on_channel_release(&mut self, t: Time, worm: u32, channel: ChannelId) {
        self.on_event(TraceEvent::on_channel(
            t,
            worm,
            Some(channel),
            TraceKind::Release,
        ));
    }

    /// The first flit of `worm` entered the injection channel.
    fn on_inject_start(&mut self, t: Time, worm: u32, channel: ChannelId) {
        self.on_event(TraceEvent::on_channel(
            t,
            worm,
            Some(channel),
            TraceKind::InjectStart,
        ));
    }

    /// The head of `worm` reached its consumption channel.
    fn on_drain_start(&mut self, t: Time, worm: u32, channel: ChannelId) {
        self.on_event(TraceEvent::on_channel(
            t,
            worm,
            Some(channel),
            TraceKind::DrainStart,
        ));
    }

    /// `worm` found every candidate busy and started waiting (`channel` is
    /// the first preference it is waiting on, when known).
    fn on_blocked(&mut self, t: Time, worm: u32, channel: Option<ChannelId>) {
        self.on_event(TraceEvent::on_channel(t, worm, channel, TraceKind::Blocked));
    }

    /// Receive software for `worm` completed on `node`.
    fn on_recv_done(&mut self, t: Time, worm: u32, node: NodeId) {
        self.on_event(TraceEvent {
            t,
            worm,
            channel: None,
            node: Some(node),
            kind: TraceKind::RecvDone,
        });
    }

    /// `node`'s CPU became busy on behalf of `worm` (send issue or receive
    /// software).
    fn on_cpu_busy(&mut self, t: Time, worm: u32, node: NodeId) {
        self.on_event(TraceEvent::on_node(t, worm, node, TraceKind::CpuBusy));
    }

    /// `node`'s CPU became free again.
    fn on_cpu_idle(&mut self, t: Time, worm: u32, node: NodeId) {
        self.on_event(TraceEvent::on_node(t, worm, node, TraceKind::CpuIdle));
    }

    /// One event-loop iteration finished (fires for every heap pop —
    /// implement only if you really want per-event granularity).
    fn on_tick(&mut self, _t: Time, _events_processed: u64) {}
}

// ---------------------------------------------------------------------------
// TraceSink.

/// The engine's built-in observer, enum-dispatched so the disabled path is
/// zero-cost.  Construct one and hand it to
/// [`crate::Engine::set_observer`], or let the engine derive one from
/// [`crate::SimConfig::trace`] / [`crate::SimConfig::trace_limit`].
pub enum TraceSink {
    /// Drop everything (the default; every hook is a no-op).
    Null,
    /// Collect events in memory, optionally up to `limit`; events past the
    /// limit are counted in `dropped` and flagged as truncation.
    Memory {
        events: Vec<TraceEvent>,
        limit: Option<usize>,
        dropped: u64,
    },
    /// Keep only the most recent `cap` events (crash-dump style).
    Ring {
        buf: VecDeque<TraceEvent>,
        cap: usize,
        dropped: u64,
    },
    /// Tally events by kind, retain nothing.  The cheapest *enabled*
    /// observer: every hook is a `u64` increment, and because no event
    /// (hence no worm id) outlives the run, the engine keeps its
    /// worm-slab slot-reuse fast path on.
    Counters(EventCounts),
    /// Stream events as JSON Lines to a writer; nothing is retained in
    /// memory.  Write errors are sticky: the first one stops the stream
    /// and is reported through [`SinkSummary::write_error`].
    Jsonl {
        out: Box<dyn Write>,
        written: u64,
        error: Option<String>,
    },
    /// Forward every hook to a caller-supplied observer.
    Custom(Box<dyn Observer>),
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceSink::Null => write!(f, "TraceSink::Null"),
            TraceSink::Memory {
                events,
                limit,
                dropped,
            } => write!(
                f,
                "TraceSink::Memory({} events, limit {:?}, {} dropped)",
                events.len(),
                limit,
                dropped
            ),
            TraceSink::Ring { buf, cap, dropped } => {
                write!(
                    f,
                    "TraceSink::Ring({}/{} events, {} dropped)",
                    buf.len(),
                    cap,
                    dropped
                )
            }
            TraceSink::Counters(c) => {
                write!(f, "TraceSink::Counters({} events)", c.total())
            }
            TraceSink::Jsonl { written, error, .. } => {
                write!(f, "TraceSink::Jsonl({written} written, error {error:?})")
            }
            TraceSink::Custom(_) => write!(f, "TraceSink::Custom(..)"),
        }
    }
}

/// Per-kind event tallies kept by [`TraceSink::Counters`].  Plain `u64`
/// fields — incrementing one is the entire per-event cost of that sink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// Channel acquisitions.
    pub acquires: u64,
    /// Channel releases.
    pub releases: u64,
    /// Worms whose first flit entered the injection channel.
    pub inject_starts: u64,
    /// Worm heads that reached their consumption channel.
    pub drain_starts: u64,
    /// Receive-software completions.
    pub recv_dones: u64,
    /// Blocking episodes.
    pub blocked: u64,
    /// CPU busy transitions.
    pub cpu_busy: u64,
    /// CPU idle transitions.
    pub cpu_idle: u64,
    /// Anomaly events (injected by post-run analysis, not the engine).
    pub anomalies: u64,
}

impl EventCounts {
    /// Total events tallied across all kinds.
    pub fn total(&self) -> u64 {
        self.acquires
            + self.releases
            + self.inject_starts
            + self.drain_starts
            + self.recv_dones
            + self.blocked
            + self.cpu_busy
            + self.cpu_idle
            + self.anomalies
    }

    #[inline]
    fn tally(&mut self, kind: TraceKind) {
        match kind {
            TraceKind::Acquire => self.acquires += 1,
            TraceKind::Release => self.releases += 1,
            TraceKind::InjectStart => self.inject_starts += 1,
            TraceKind::DrainStart => self.drain_starts += 1,
            TraceKind::RecvDone => self.recv_dones += 1,
            TraceKind::Blocked => self.blocked += 1,
            TraceKind::CpuBusy => self.cpu_busy += 1,
            TraceKind::CpuIdle => self.cpu_idle += 1,
            TraceKind::Anomaly => self.anomalies += 1,
        }
    }
}

/// What a [`TraceSink`] retained, extracted after the run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SinkSummary {
    /// Events retained in memory (empty for `Null`/`Jsonl`).
    pub events: Vec<TraceEvent>,
    /// Events the sink saw but could not retain (memory limit hit, ring
    /// overwrote, or JSONL write failed).
    pub dropped: u64,
    /// True when `dropped > 0` on a sink that promises completeness
    /// (`Memory` with a limit) — the trace is a prefix, not the whole run.
    pub truncated: bool,
    /// Events successfully streamed out (JSONL only).
    pub streamed: u64,
    /// The sticky JSONL write error, if one occurred.
    pub write_error: Option<String>,
    /// Per-kind event tallies (`Counters` sink only).
    pub counts: Option<EventCounts>,
}

impl TraceSink {
    /// An unbounded in-memory sink.
    pub fn memory() -> Self {
        TraceSink::Memory {
            events: Vec::new(),
            limit: None,
            dropped: 0,
        }
    }

    /// An in-memory sink keeping at most `limit` events.
    pub fn memory_limited(limit: usize) -> Self {
        TraceSink::Memory {
            events: Vec::new(),
            limit: Some(limit),
            dropped: 0,
        }
    }

    /// A ring sink keeping the `cap` most recent events.
    pub fn ring(cap: usize) -> Self {
        TraceSink::Ring {
            buf: VecDeque::with_capacity(cap.min(4096)),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    /// A streaming JSON-Lines sink (one event object per line).
    pub fn jsonl(out: Box<dyn Write>) -> Self {
        TraceSink::Jsonl {
            out,
            written: 0,
            error: None,
        }
    }

    /// A counters-only sink: tallies events by kind, retains nothing,
    /// keeps the engine's worm-slab slot-reuse fast path enabled.
    pub fn counters() -> Self {
        TraceSink::Counters(EventCounts::default())
    }

    /// Whether any observation is active.
    #[inline]
    pub fn enabled(&self) -> bool {
        match self {
            TraceSink::Null => false,
            TraceSink::Custom(o) => o.wants_events(),
            _ => true,
        }
    }

    /// Whether retired worm slots must stay unique for the lifetime of the
    /// run.  Sinks that retain or stream events keyed by worm id (`Memory`,
    /// `Ring`, `Jsonl`, active `Custom`) need this — reusing a slot would
    /// alias two different worms in the recorded trace.  `Null` and
    /// `Counters` retain nothing, so the engine keeps its slot-reuse fast
    /// path on for them.
    #[inline]
    pub fn needs_unique_worm_ids(&self) -> bool {
        match self {
            TraceSink::Null | TraceSink::Counters(_) => false,
            TraceSink::Custom(o) => o.wants_events(),
            _ => true,
        }
    }

    /// Drain the sink into its post-run summary.
    pub fn finish(self) -> SinkSummary {
        match self {
            TraceSink::Null => SinkSummary::default(),
            TraceSink::Memory {
                events,
                limit,
                dropped,
            } => SinkSummary {
                events,
                dropped,
                truncated: limit.is_some() && dropped > 0,
                streamed: 0,
                write_error: None,
                counts: None,
            },
            TraceSink::Ring { buf, dropped, .. } => SinkSummary {
                events: buf.into_iter().collect(),
                dropped,
                // A ring never promises completeness; dropping is its job.
                truncated: dropped > 0,
                streamed: 0,
                write_error: None,
                counts: None,
            },
            TraceSink::Counters(counts) => SinkSummary {
                counts: Some(counts),
                ..SinkSummary::default()
            },
            TraceSink::Jsonl {
                mut out,
                written,
                error,
            } => {
                let flush_err = out.flush().err().map(|e| e.to_string());
                SinkSummary {
                    events: Vec::new(),
                    dropped: 0,
                    truncated: false,
                    streamed: written,
                    write_error: error.or(flush_err),
                    counts: None,
                }
            }
            TraceSink::Custom(_) => SinkSummary::default(),
        }
    }
}

impl Observer for TraceSink {
    #[inline]
    fn wants_events(&self) -> bool {
        self.enabled()
    }

    fn on_event(&mut self, e: TraceEvent) {
        match self {
            TraceSink::Null => {}
            TraceSink::Counters(c) => c.tally(e.kind),
            TraceSink::Memory {
                events,
                limit,
                dropped,
            } => {
                if limit.is_none_or(|l| events.len() < l) {
                    events.push(e);
                } else {
                    *dropped += 1;
                }
            }
            TraceSink::Ring { buf, cap, dropped } => {
                if buf.len() == *cap {
                    buf.pop_front();
                    *dropped += 1;
                }
                buf.push_back(e);
            }
            TraceSink::Jsonl {
                out,
                written,
                error,
            } => {
                if error.is_some() {
                    return;
                }
                match serde_json::to_string(&e) {
                    Ok(line) => {
                        if let Err(err) = writeln!(out, "{line}") {
                            *error = Some(err.to_string());
                        } else {
                            *written += 1;
                        }
                    }
                    Err(err) => *error = Some(err.to_string()),
                }
            }
            TraceSink::Custom(o) => o.on_event(e),
        }
    }

    fn on_tick(&mut self, t: Time, events_processed: u64) {
        if let TraceSink::Custom(o) = self {
            o.on_tick(t, events_processed);
        }
    }
}

// ---------------------------------------------------------------------------
// Histogram.

/// The log₂-bucketed histogram, promoted to the `telem` crate (PR 6) so
/// campaign heartbeats and bench exposition can share it; re-exported here
/// with identical semantics for existing users.
pub use telem::Histogram;

// ---------------------------------------------------------------------------
// Phase breakdown.

/// Where one message's latency went, phase by phase (all in cycles):
/// *queued* (send software + waiting for the CPU), *climbing* (head
/// acquiring the path), *draining* (flits sinking into the destination NI),
/// *software* (receive-side processing, including waiting for the
/// receiver's CPU).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// `initiated → injected`: `t_send` plus any injection-port wait.
    pub queued: Time,
    /// `injected → drain_start`: path acquisition, blocking included.
    pub climbing: Time,
    /// `drain_start → tail_consumed`: streaming into the destination.
    pub draining: Time,
    /// `tail_consumed → completed`: `t_recv` plus receive-CPU wait.
    pub software: Time,
}

impl PhaseBreakdown {
    /// Breakdown of one completed message.
    pub fn of(m: &MessageRecord) -> Self {
        PhaseBreakdown {
            queued: m.injected.saturating_sub(m.initiated),
            climbing: m.drain_start.saturating_sub(m.injected),
            draining: m.tail_consumed.saturating_sub(m.drain_start),
            software: m.completed.saturating_sub(m.tail_consumed),
        }
    }

    /// Total across phases (equals the message latency).
    pub fn total(&self) -> Time {
        self.queued + self.climbing + self.draining + self.software
    }

    /// Element-wise sum.
    pub fn add(&mut self, other: &PhaseBreakdown) {
        self.queued += other.queued;
        self.climbing += other.climbing;
        self.draining += other.draining;
        self.software += other.software;
    }
}

// ---------------------------------------------------------------------------
// RunMeta.

/// The engine's own vitals for one run, attached to every
/// [`SimResult`].  Everything except the wall-clock figures is
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMeta {
    /// Events popped from the event heap.
    pub events_processed: u64,
    /// Events scheduled (popped + any cancelled stale retries).
    pub events_scheduled: u64,
    /// High-water mark of the pending-event heap — the dominant term of the
    /// engine's peak heap footprint.
    pub peak_heap_events: usize,
    /// Estimated peak heap bytes (pending events + worm/channel state +
    /// retained trace).
    pub peak_heap_bytes: u64,
    /// Trace events the observer retained.
    pub trace_events: u64,
    /// Trace events dropped by a bounded sink.
    pub trace_dropped: u64,
    /// Wall-clock duration of [`crate::Engine::run`] in nanoseconds
    /// (non-deterministic; excluded from reproducibility comparisons).
    pub wall_ns: u64,
    /// Events per wall-clock second (0 when the run was too fast to time).
    pub events_per_sec: f64,
}

// ---------------------------------------------------------------------------
// Metrics + report.

/// Aggregate metrics derived from a [`SimResult`] after the run — nothing
/// here costs the engine anything.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// End-to-end message latency distribution.
    pub latency: Histogram,
    /// Blocked-cycles-per-message distribution.
    pub blocked: Histogram,
    /// Sum of per-message phase breakdowns.
    pub phases: PhaseBreakdown,
    /// Per-channel busy fraction over `[0, finish]`, hottest first
    /// (empty without a trace).
    pub channel_utilization: Vec<(ChannelId, f64)>,
}

impl Metrics {
    /// Derive metrics from a finished run.
    pub fn from_result(r: &SimResult) -> Self {
        let latency =
            Histogram::from_samples(r.messages.iter().map(super::stats::MessageRecord::latency));
        let blocked = Histogram::from_samples(r.messages.iter().map(|m| m.blocked));
        let mut phases = PhaseBreakdown::default();
        for m in &r.messages {
            phases.add(&PhaseBreakdown::of(m));
        }
        Metrics {
            latency,
            blocked,
            phases,
            channel_utilization: trace::utilization(&r.trace, r.finish),
        }
    }
}

fn fmt_quantiles(h: &Histogram) -> String {
    match (h.p50(), h.p95(), h.p99()) {
        (Some(p50), Some(p95), Some(p99)) => format!(
            "mean {:.0}  p50 ≤{}  p95 ≤{}  p99 ≤{}  max {}",
            h.mean(),
            p50,
            p95,
            p99,
            h.max
        ),
        _ => "no samples".to_string(),
    }
}

/// Render a human-readable run report: run vitals, latency and blocking
/// distributions, the aggregate phase breakdown, and (when a trace was
/// kept) the hottest channels.
pub fn render_report(r: &SimResult) -> String {
    use std::fmt::Write as _;
    let m = Metrics::from_result(r);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "run: {} messages, finish at cycle {}",
        r.messages.len(),
        r.finish
    );
    let _ = writeln!(
        out,
        "engine: {} events ({:.0} ev/s, {:.2} ms wall), peak heap {} events (~{} KiB)",
        r.meta.events_processed,
        r.meta.events_per_sec,
        r.meta.wall_ns as f64 / 1e6,
        r.meta.peak_heap_events,
        r.meta.peak_heap_bytes / 1024,
    );
    let _ = writeln!(
        out,
        "blocking: {} episodes, {} cycles total",
        r.blocked_events, r.blocked_cycles
    );
    let _ = writeln!(out, "latency: {}", fmt_quantiles(&m.latency));
    let _ = writeln!(out, "blocked/msg: {}", fmt_quantiles(&m.blocked));
    let total = m.phases.total().max(1);
    let _ = writeln!(
        out,
        "phases: queued {} ({:.0}%)  climbing {} ({:.0}%)  draining {} ({:.0}%)  software {} ({:.0}%)",
        m.phases.queued,
        100.0 * m.phases.queued as f64 / total as f64,
        m.phases.climbing,
        100.0 * m.phases.climbing as f64 / total as f64,
        m.phases.draining,
        100.0 * m.phases.draining as f64 / total as f64,
        m.phases.software,
        100.0 * m.phases.software as f64 / total as f64,
    );
    if r.truncated {
        let _ = writeln!(
            out,
            "trace: TRUNCATED ({} events dropped)",
            r.meta.trace_dropped
        );
    }
    if !m.channel_utilization.is_empty() {
        let _ = writeln!(out, "hot channels (busy fraction of [0, finish]):");
        for (ch, frac) in m.channel_utilization.iter().take(10) {
            let bar = "#".repeat((frac * 40.0).round() as usize);
            let _ = writeln!(out, "  ch{:<5} {:>6.1}% {}", ch.0, frac * 100.0, bar);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sink_tallies_by_kind() {
        let mut s = TraceSink::counters();
        assert!(s.enabled());
        assert!(!s.needs_unique_worm_ids());
        s.on_channel_acquire(0, 1, ChannelId(0));
        s.on_channel_acquire(1, 2, ChannelId(1));
        s.on_channel_release(5, 1, ChannelId(0));
        s.on_blocked(2, 2, None);
        s.on_cpu_busy(0, 1, NodeId(0));
        s.on_cpu_idle(3, 1, NodeId(0));
        s.on_recv_done(9, 1, NodeId(1));
        let sum = s.finish();
        assert!(sum.events.is_empty() && !sum.truncated && sum.dropped == 0);
        let c = sum.counts.expect("counters sink reports counts");
        assert_eq!(c.acquires, 2);
        assert_eq!(c.releases, 1);
        assert_eq!(c.blocked, 1);
        assert_eq!(c.cpu_busy, 1);
        assert_eq!(c.cpu_idle, 1);
        assert_eq!(c.recv_dones, 1);
        assert_eq!(c.total(), 7);
    }

    #[test]
    fn unique_worm_ids_required_only_by_retaining_sinks() {
        assert!(!TraceSink::Null.needs_unique_worm_ids());
        assert!(!TraceSink::counters().needs_unique_worm_ids());
        assert!(TraceSink::memory().needs_unique_worm_ids());
        assert!(TraceSink::ring(4).needs_unique_worm_ids());
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let mut s = TraceSink::ring(3);
        for t in 0..10u64 {
            s.on_event(TraceEvent::on_channel(t, 0, None, TraceKind::Acquire));
        }
        let sum = s.finish();
        assert_eq!(
            sum.events.iter().map(|e| e.t).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert_eq!(sum.dropped, 7);
        assert!(sum.truncated);
    }

    #[test]
    fn memory_sink_limit_truncates() {
        let mut s = TraceSink::memory_limited(2);
        for t in 0..5u64 {
            s.on_event(TraceEvent::on_channel(t, 0, None, TraceKind::Acquire));
        }
        let sum = s.finish();
        assert_eq!(sum.events.len(), 2);
        assert_eq!(sum.dropped, 3);
        assert!(sum.truncated);
        // Unbounded memory never truncates.
        let mut s = TraceSink::memory();
        s.on_event(TraceEvent::on_channel(0, 0, None, TraceKind::Acquire));
        let sum = s.finish();
        assert_eq!(sum.events.len(), 1);
        assert!(!sum.truncated);
    }

    #[test]
    fn jsonl_sink_streams_lines() {
        let buf: std::sync::Arc<std::sync::Mutex<Vec<u8>>> = Default::default();
        struct Shared(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut s = TraceSink::jsonl(Box::new(Shared(buf.clone())));
        s.on_channel_acquire(5, 1, ChannelId(3));
        s.on_cpu_busy(6, 1, NodeId(2));
        let sum = s.finish();
        assert_eq!(sum.streamed, 2);
        assert!(sum.write_error.is_none());
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v.get("t").is_some(), "line missing t: {line}");
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!TraceSink::Null.enabled());
        assert!(TraceSink::memory().enabled());
        let sum = TraceSink::Null.finish();
        assert!(sum.events.is_empty() && !sum.truncated);
    }

    #[test]
    fn custom_observer_receives_hooks() {
        #[derive(Default)]
        struct Counter(std::rc::Rc<std::cell::Cell<u64>>);
        impl Observer for Counter {
            fn on_event(&mut self, _e: TraceEvent) {
                self.0.set(self.0.get() + 1);
            }
        }
        let count = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut s = TraceSink::Custom(Box::new(Counter(count.clone())));
        s.on_channel_acquire(0, 0, ChannelId(0));
        s.on_blocked(1, 0, None);
        s.on_cpu_idle(2, 0, NodeId(1));
        assert_eq!(count.get(), 3);
    }

    #[test]
    fn phase_breakdown_sums_to_latency() {
        let m = MessageRecord {
            src: NodeId(0),
            dest: NodeId(1),
            bytes: 64,
            initiated: 10,
            injected: 360,
            drain_start: 365,
            tail_consumed: 373,
            completed: 700,
            blocked: 0,
        };
        let p = PhaseBreakdown::of(&m);
        assert_eq!(p.total(), m.latency());
        assert_eq!(p.queued, 350);
        assert_eq!(p.climbing, 5);
        assert_eq!(p.draining, 8);
        assert_eq!(p.software, 327);
    }
}
