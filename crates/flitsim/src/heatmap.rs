//! Per-channel contention heatmaps.
//!
//! Reduces the engine's always-on per-channel accumulators
//! ([`SimResult::channels`]: busy / blocked / acquire totals, present on
//! every run) and — when a trace was kept — the per-channel occupancy
//! spans into the hottest-channels view behind `optmc inspect --heatmap`:
//!
//! * [`render`] — a text grid, one row per hot channel.  With a trace the
//!   row is a shaded time axis (busy fraction per window); without one it
//!   degrades to a utilisation bar, because the totals need no observer.
//! * [`to_json`] — the same data as a JSON value (stable field order).
//! * Perfetto counter tracks for the same spans live in
//!   [`crate::perfetto`].

use std::fmt::Write as _;

use pcm::Time;
use serde_json::Value;
use topo::{ChannelId, Endpoint, NetworkGraph};

use crate::stats::{ChannelTelemetry, SimResult};
use crate::trace;

/// Shade ramp for busy fractions 0.0 ..= 1.0.
const SHADES: &[u8] = b" .:-=+*#%@";

fn shade(frac: f64) -> char {
    let last = SHADES.len() - 1;
    let i = (frac.clamp(0.0, 1.0) * last as f64).round() as usize;
    SHADES[i.min(last)] as char
}

fn endpoint(e: Endpoint) -> String {
    match e {
        Endpoint::Node(n) => format!("n{}", n.0),
        Endpoint::Router(r) => format!("r{}", r.0),
    }
}

/// The hottest channels of a run: indices into [`SimResult::channels`]
/// ranked by busy cycles (ties broken by blocked cycles, then id), limited
/// to `max` and to channels that saw any traffic.
pub fn hottest(result: &SimResult, max: usize) -> Vec<(ChannelId, ChannelTelemetry)> {
    let mut v: Vec<(ChannelId, ChannelTelemetry)> = result
        .channels
        .iter()
        .enumerate()
        .filter(|(_, c)| c.acquires > 0)
        .map(|(i, c)| (ChannelId(i as u32), *c))
        .collect();
    v.sort_by(|a, b| {
        b.1.busy
            .cmp(&a.1.busy)
            .then(b.1.blocked.cmp(&a.1.blocked))
            .then(a.0.cmp(&b.0))
    });
    v.truncate(max);
    v
}

/// Busy fraction of each of `cols` equal windows over `[0, finish)` for
/// one channel's occupancy spans.
fn windows(spans: &[trace::Span], finish: Time, cols: usize) -> Vec<f64> {
    (0..cols)
        .map(|w| {
            let lo = finish * w as Time / cols as Time;
            let hi = finish * (w as Time + 1) / cols as Time;
            if hi <= lo {
                return 0.0;
            }
            let busy: Time = spans
                .iter()
                .map(|&(a, b, _)| b.min(hi).saturating_sub(a.max(lo)))
                .sum();
            busy as f64 / (hi - lo) as f64
        })
        .collect()
}

/// Occupancy spans per channel, or `None` when the run kept no trace.
fn span_table(result: &SimResult) -> Option<Vec<(ChannelId, Vec<trace::Span>)>> {
    if result.trace.is_empty() {
        None
    } else {
        Some(trace::channel_occupancy(&result.trace))
    }
}

/// Render the text heatmap: the `max_channels` hottest channels, one row
/// each, over a `cols`-column time axis (shade = busy fraction of that
/// window) when a trace is available, or a utilisation bar otherwise.
pub fn render(
    result: &SimResult,
    graph: &NetworkGraph,
    max_channels: usize,
    cols: usize,
) -> String {
    let hot = hottest(result, max_channels);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "contention heatmap: {} of {} channels with traffic, finish at cycle {}",
        hot.len(),
        result.channels.iter().filter(|c| c.acquires > 0).count(),
        result.finish
    );
    if hot.is_empty() {
        let _ = writeln!(out, "(no channel activity)");
        return out;
    }
    let spans = span_table(result);
    match &spans {
        Some(_) => {
            let _ = writeln!(
                out,
                "time axis: {cols} windows of {} cycles, shade ramp \"{}\"",
                (result.finish / cols as Time).max(1),
                std::str::from_utf8(SHADES).unwrap_or(" ")
            );
        }
        None => {
            let _ = writeln!(
                out,
                "(no trace retained — bars show whole-run busy fraction)"
            );
        }
    }
    for (ch, tel) in &hot {
        let c = graph.channel(*ch);
        let label = format!("{}->{}", endpoint(c.src), endpoint(c.dst));
        let row = match &spans {
            Some(table) => {
                let empty: Vec<trace::Span> = Vec::new();
                let sp = table
                    .iter()
                    .find(|(id, _)| id == ch)
                    .map_or(&empty, |(_, sp)| sp);
                windows(sp, result.finish, cols)
                    .into_iter()
                    .map(shade)
                    .collect::<String>()
            }
            None => {
                let frac = tel.utilization(result.finish);
                let filled = (frac * cols as f64).round() as usize;
                let mut bar = "#".repeat(filled.min(cols));
                bar.push_str(&" ".repeat(cols - filled.min(cols)));
                bar
            }
        };
        let _ = writeln!(
            out,
            "ch{:<5} {:<12} |{row}| busy {:>5.1}%  blocked {:>8}  acq {:>5}",
            ch.0,
            label,
            100.0 * tel.utilization(result.finish),
            tel.blocked,
            tel.acquires
        );
    }
    out
}

/// The heatmap as a JSON value: run finish, per-channel totals for the
/// hottest channels, and (when a trace was kept) the windowed busy
/// fractions that the text grid shades.
pub fn to_json(
    result: &SimResult,
    graph: &NetworkGraph,
    max_channels: usize,
    cols: usize,
) -> Value {
    let spans = span_table(result);
    let channels: Vec<Value> = hottest(result, max_channels)
        .into_iter()
        .map(|(ch, tel)| {
            let c = graph.channel(ch);
            let windows_v = match &spans {
                Some(table) => {
                    let empty: Vec<trace::Span> = Vec::new();
                    let sp = table
                        .iter()
                        .find(|(id, _)| *id == ch)
                        .map_or(&empty, |(_, sp)| sp);
                    Value::Array(
                        windows(sp, result.finish, cols)
                            .into_iter()
                            .map(Value::Float)
                            .collect(),
                    )
                }
                None => Value::Null,
            };
            Value::Object(vec![
                ("channel".to_string(), Value::UInt(u64::from(ch.0))),
                ("src".to_string(), Value::Str(endpoint(c.src))),
                ("dst".to_string(), Value::Str(endpoint(c.dst))),
                ("busy_cycles".to_string(), Value::UInt(tel.busy)),
                ("blocked_cycles".to_string(), Value::UInt(tel.blocked)),
                ("acquires".to_string(), Value::UInt(tel.acquires)),
                (
                    "utilization".to_string(),
                    Value::Float(tel.utilization(result.finish)),
                ),
                ("windows".to_string(), windows_v),
            ])
        })
        .collect();
    Value::Object(vec![
        ("finish".to_string(), Value::UInt(result.finish)),
        ("channels".to_string(), Value::Array(channels)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::SinkProgram;
    use crate::{Engine, SendReq, SimConfig, TraceSink};
    use topo::{Mesh, NodeId, Topology};

    fn contended_run(traced: bool) -> (SimResult, Mesh) {
        // Two senders share the column-0 vertical path: 0→8 and 4→12 in a
        // 4x4 mesh both climb the x=0 column, so one blocks the other.
        let mesh = Mesh::new(&[4, 4]);
        let mut e = Engine::new(&mesh, SimConfig::paragon_like(), SinkProgram);
        if traced {
            e.set_observer(TraceSink::memory());
        }
        e.start(NodeId(0), 0, vec![SendReq::to(NodeId(12), 1024, ())]);
        e.start(NodeId(4), 0, vec![SendReq::to(NodeId(8), 1024, ())]);
        let (_, r) = e.run();
        (r, mesh)
    }

    #[test]
    fn per_channel_totals_match_run_aggregates() {
        let (r, _) = contended_run(false);
        let busy: Time = r.channels.iter().map(|c| c.busy).sum();
        let blocked: Time = r.channels.iter().map(|c| c.blocked).sum();
        let acquires: u64 = r.channels.iter().map(|c| c.acquires).sum();
        assert_eq!(busy, r.channel_busy_cycles);
        assert_eq!(blocked, r.blocked_cycles);
        // Every hop of every worm acquires one channel; two 2-hop-plus
        // messages acquire well more than one channel each.
        assert!(acquires > r.messages.len() as u64, "acquires = {acquires}");
        // The traced run's acquire events agree with the always-on totals.
        let (traced, _) = contended_run(true);
        let trace_acquires = traced
            .trace
            .iter()
            .filter(|e| e.kind == crate::trace::TraceKind::Acquire)
            .count() as u64;
        let traced_total: u64 = traced.channels.iter().map(|c| c.acquires).sum();
        assert_eq!(trace_acquires, traced_total);
        assert_eq!(traced_total, acquires);
    }

    #[test]
    fn heatmap_renders_with_and_without_trace() {
        let (traced, mesh) = contended_run(true);
        let grid = render(&traced, mesh.graph(), 8, 40);
        assert!(grid.contains("contention heatmap"), "{grid}");
        assert!(grid.contains("busy"), "{grid}");
        let (untraced, mesh) = contended_run(false);
        let bars = render(&untraced, mesh.graph(), 8, 40);
        assert!(bars.contains("no trace retained"), "{bars}");
        // Same always-on totals either way: observation never alters them.
        assert_eq!(traced.channel_busy_cycles, untraced.channel_busy_cycles);
        assert_eq!(traced.blocked_cycles, untraced.blocked_cycles);
    }

    #[test]
    fn heatmap_json_lists_hottest_channels() {
        let (r, mesh) = contended_run(true);
        let v = to_json(&r, mesh.graph(), 4, 10);
        let chans = v.get("channels").and_then(Value::as_array).unwrap();
        assert!(!chans.is_empty() && chans.len() <= 4);
        let first = &chans[0];
        assert!(first.get("busy_cycles").and_then(Value::as_u64).unwrap() > 0);
        assert_eq!(
            first
                .get("windows")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(10)
        );
        // Hottest-first ordering.
        let busies: Vec<u64> = chans
            .iter()
            .map(|c| c.get("busy_cycles").and_then(Value::as_u64).unwrap())
            .collect();
        let mut sorted = busies.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(busies, sorted);
    }

    #[test]
    fn windows_cover_span_fractions() {
        // One span covering the middle half of [0, 100): windows 1 and 2
        // of 4 are fully busy.
        let sp = vec![(25u64, 75u64, 0u32)];
        let w = windows(&sp, 100, 4);
        assert_eq!(w, vec![0.0, 1.0, 1.0, 0.0]);
    }
}
