//! The event-driven wormhole engine.
//!
//! State machine per worm: *queued* (waiting for the sender's CPU) →
//! *climbing* (head acquiring channels hop by hop, holding everything behind
//! it) → *draining* (head reached the consumption channel; flits sink at one
//! per cycle; channels release as the tail passes) → *done* (software
//! receive completion fires the program).
//!
//! Channel release rules (the wormhole invariants):
//! * while climbing, acquiring path index `i` frees path index `i - L`
//!   (the tail of an `L`-flit worm is `L` channels behind the head);
//! * once draining with tail consumed at `T`, path index `j` of a `P`-channel
//!   path frees at `T - (P-1-j)` (one cycle of streaming per channel).

use std::collections::VecDeque;

use pcm::Time;
use topo::{ChannelId, NetworkGraph, NodeId, RouteTable, Topology};

use crate::config::SimConfig;
use crate::equeue::{EventQueue, ENTRY_BYTES};
use crate::obs::{Observer, RunMeta, TraceSink};
use crate::program::{Program, SendReq, ShardProgram};
use crate::shard::{OutMsg, ShardCtx, ShardPartial, ShardPlan, WormWire};
use crate::stats::{MessageRecord, SimResult};
use crate::trace::TraceEvent;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Climbing,
    Draining,
    Done,
}

struct Worm<P> {
    src: NodeId,
    dest: NodeId,
    bytes: u64,
    flits: u64,
    payload: Option<P>,
    path: Vec<ChannelId>,
    /// First path index not yet released.
    release_ptr: usize,
    initiated: Time,
    injected: Time,
    drain_start: Time,
    tail_consumed: Time,
    blocked: Time,
    block_start: Option<Time>,
    phase: Phase,
    retry_scheduled: bool,
    /// Bumped when the worm retires; waiter entries carry the generation
    /// they were filed under, so a reused slot never receives a stale
    /// retry meant for its previous occupant.
    generation: u32,
    /// Intrinsic identity: `(src node << RANK_SHIFT) | per-node issue
    /// counter`.  Unlike the slab index, the rank depends only on *what*
    /// the worm is (the n-th send issued by its node), never on how the
    /// event loop interleaved unrelated work — which is what lets the
    /// sharded engine order events identically to the sequential one.
    rank: u64,
    /// Sharded runs only: bitmask of the shards owning channels this worm
    /// still holds but this shard does not — nonzero exactly for worms
    /// that migrated in, whose drain will emit cross-shard releases
    /// toward exactly these shards.  Shard ids ≥ 64 saturate the whole
    /// mask (`u64::MAX`, "could release anywhere"), keeping the bound
    /// conservative without widening the hot struct.
    foreign_owners: u64,
}

/// Bits of a worm rank holding the per-node issue counter; the node id
/// occupies the bits above.  2^28 nodes x 2^28 sends per node.
const RANK_SHIFT: u32 = 28;

struct ChanState {
    holder: Option<u32>,
    acquired_at: Time,
    /// Waiting worms as (slot, generation-at-blocking) pairs.
    waiters: Vec<(u32, u32)>,
}

struct NodeState<P> {
    cpu_free: Time,
    queue: VecDeque<SendReq<P>>,
    /// Time of the earliest pending `NodeKick`, if any.  Stale kicks (a
    /// later one superseded by an earlier enqueue) stay in the heap and are
    /// ignored when they fire.
    kick_at: Option<Time>,
    /// Sends issued (worms born) by this node so far — the per-node half of
    /// every worm's intrinsic rank.
    issued: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Channel released — processed before same-time head movements so a
    /// channel freed at `t` is acquirable at `t`.
    Release(u32),
    NodeKick(u32),
    WormStart(u32),
    HeadAdvance(u32),
    /// Tail consumed; receive software may start once the CPU is free.
    RecvSoftware(u32),
    RecvDone(u32),
}

impl Event {
    fn priority(self) -> u8 {
        match self {
            Event::Release(_) => 0,
            _ => 1,
        }
    }

    /// Kind rank within the prio-1 class: kicks, then head movements, then
    /// receive phases.  Any fixed order works (it is an arbitration policy);
    /// what matters is that it never depends on scheduling history.
    fn kind_rank(self) -> u64 {
        match self {
            Event::Release(_) | Event::NodeKick(_) => 0,
            Event::WormStart(_) | Event::HeadAdvance(_) => 1,
            Event::RecvSoftware(_) => 2,
            Event::RecvDone(_) => 3,
        }
    }
}

/// One recorded [`Engine::start`] call — `(node, inject time, sends)`.
/// Injection is deferred so [`Engine::run_auto`] can inspect the workload
/// and route each start to its home shard before anything enqueues.
pub(crate) type StartRec<P> = (NodeId, Time, Vec<SendReq<P>>);

/// The simulator. Create, [`Engine::start`] the initial sends, then
/// [`Engine::run`].
pub struct Engine<'t, Prog: Program> {
    topo: &'t dyn Topology,
    graph: &'t NetworkGraph,
    routes: &'t RouteTable,
    cfg: SimConfig,
    program: Prog,
    worms: Vec<Worm<Prog::Payload>>,
    /// Retired worm slots available for reuse (disabled only for sinks
    /// that retain events, so recorded worm ids stay unique — see
    /// [`TraceSink::needs_unique_worm_ids`]).
    free_worms: Vec<u32>,
    channels: Vec<ChanState>,
    nodes: Vec<NodeState<Prog::Payload>>,
    queue: EventQueue,
    /// Scratch for `candidates()` — reused across events so a steady-state
    /// step allocates nothing.
    cand_scratch: Vec<ChannelId>,
    /// Scratch for the drain-path release schedule.
    pending_scratch: Vec<(Time, u32)>,
    finish: Time,
    messages: Vec<MessageRecord>,
    blocked_cycles: Time,
    blocked_events: u64,
    channel_busy: Time,
    /// Always-on per-channel accumulators (a plain indexed add each, no
    /// observer needed): busy cycles, blocked cycles attributed to the
    /// channel finally acquired, and acquisition counts.  Reduced into
    /// [`SimResult::channels`] for contention heatmaps.
    chan_busy: Vec<Time>,
    chan_blocked: Vec<Time>,
    chan_acquires: Vec<u64>,
    acquires: u64,
    releases: u64,
    obs: TraceSink,
    events_processed: u64,
    events_scheduled: u64,
    peak_heap: usize,
    /// Initial sends recorded by [`Engine::start`], injected when the run
    /// begins.  Deferring the injection lets [`Engine::run_auto`] inspect
    /// the workload (and route each start to its home shard) first.
    starts: Vec<StartRec<Prog::Payload>>,
    /// Longest possible worm path in channels ([`Topology::max_path_channels`]),
    /// the constant behind the sharded engine's release-lookahead bound.
    max_path: usize,
    /// Present while running as one shard of a sharded run.
    shard: Option<Box<ShardCtx<Prog::Payload>>>,
    /// Sharded runs only: the intrinsic rank of each delivered message's
    /// worm, parallel to `messages` — the merge key that reconstructs the
    /// sequential completion order across shards.
    message_ranks: Vec<u64>,
}

impl Event {
    /// Pack into the queue's `u64` payload: tag in the high word, id low.
    fn pack(self) -> u64 {
        let (tag, id) = match self {
            Event::Release(c) => (0u64, c),
            Event::NodeKick(n) => (1, n),
            Event::WormStart(w) => (2, w),
            Event::HeadAdvance(w) => (3, w),
            Event::RecvSoftware(w) => (4, w),
            Event::RecvDone(w) => (5, w),
        };
        (tag << 32) | u64::from(id)
    }

    fn unpack(ev: u64) -> Event {
        let id = ev as u32;
        match ev >> 32 {
            0 => Event::Release(id),
            1 => Event::NodeKick(id),
            2 => Event::WormStart(id),
            3 => Event::HeadAdvance(id),
            4 => Event::RecvSoftware(id),
            _ => Event::RecvDone(id),
        }
    }
}

impl<'t, Prog: Program> Engine<'t, Prog> {
    /// A fresh engine over `topo` with the given configuration and program.
    /// [`SimConfig::trace`] / [`SimConfig::trace_limit`] select the default
    /// in-memory observer; [`Engine::set_observer`] overrides it.
    pub fn new(topo: &'t dyn Topology, cfg: SimConfig, program: Prog) -> Self {
        let g = topo.graph();
        let obs = match (cfg.trace, cfg.trace_limit) {
            (false, _) => TraceSink::Null,
            (true, None) => TraceSink::memory(),
            (true, Some(limit)) => TraceSink::memory_limited(limit),
        };
        Self {
            topo,
            graph: g,
            routes: topo.route_table(),
            max_path: topo.max_path_channels(),
            cfg,
            program,
            worms: Vec::new(),
            free_worms: Vec::new(),
            channels: (0..g.n_channels())
                .map(|_| ChanState {
                    holder: None,
                    acquired_at: 0,
                    waiters: Vec::new(),
                })
                .collect(),
            nodes: (0..g.n_nodes())
                .map(|_| NodeState {
                    cpu_free: 0,
                    queue: VecDeque::new(),
                    kick_at: None,
                    issued: 0,
                })
                .collect(),
            queue: EventQueue::new(),
            cand_scratch: Vec::new(),
            pending_scratch: Vec::new(),
            finish: 0,
            messages: Vec::new(),
            blocked_cycles: 0,
            blocked_events: 0,
            channel_busy: 0,
            chan_busy: vec![0; g.n_channels()],
            chan_blocked: vec![0; g.n_channels()],
            chan_acquires: vec![0; g.n_channels()],
            acquires: 0,
            releases: 0,
            obs,
            events_processed: 0,
            events_scheduled: 0,
            peak_heap: 0,
            starts: Vec::new(),
            shard: None,
            message_ranks: Vec::new(),
        }
    }

    /// Replace the observer (any [`TraceSink`] arm, including
    /// [`TraceSink::Custom`]), overriding whatever [`SimConfig::trace`]
    /// selected.  Call before [`Engine::run`].
    pub fn set_observer(&mut self, sink: TraceSink) {
        self.obs = sink;
    }

    /// Queue initial sends on `node` starting at time `at` (the multicast
    /// root's first round).  Recorded here, injected when the run begins.
    pub fn start(&mut self, node: NodeId, at: Time, sends: Vec<SendReq<Prog::Payload>>) {
        for s in &sends {
            assert_ne!(s.dest, node, "node {node:?} may not send to itself");
        }
        if !sends.is_empty() {
            self.starts.push((node, at, sends));
        }
    }

    /// Inject the recorded initial sends into the node queues.
    pub(crate) fn drain_starts(&mut self) {
        for (node, at, sends) in std::mem::take(&mut self.starts) {
            self.enqueue_sends(node, at, sends);
        }
    }

    /// Pop-and-handle one event.
    #[inline]
    fn dispatch(&mut self, t: Time, ev: u64, observing: bool) {
        self.finish = self.finish.max(t);
        self.events_processed += 1;
        match Event::unpack(ev) {
            Event::Release(c) => self.on_release(ChannelId(c), t),
            Event::NodeKick(n) => self.on_kick(NodeId(n), t),
            Event::WormStart(w) | Event::HeadAdvance(w) => self.on_advance(w, t),
            Event::RecvSoftware(w) => self.on_recv_software(w, t),
            Event::RecvDone(w) => self.on_recv_done(w, t),
        }
        if observing {
            self.obs.on_tick(t, self.events_processed);
        }
    }

    /// Always-on end-of-run integrity checks: a violation is an engine bug,
    /// and the scans are trivially cheap relative to a run.
    fn integrity_checks(&self) {
        assert!(
            self.worms.iter().all(|w| w.phase == Phase::Done),
            "run ended with undelivered worms (deadlock?)"
        );
        assert_eq!(
            self.acquires, self.releases,
            "channel acquire/release imbalance"
        );
        assert!(
            self.channels.iter().all(|c| c.holder.is_none()),
            "run ended with held channels (leak)"
        );
        assert!(
            self.nodes.iter().all(|n| n.queue.is_empty()),
            "run ended with queued sends never issued"
        );
    }

    /// Run to completion; returns the program (for inspection) and the
    /// result.
    pub fn run(mut self) -> (Prog, SimResult) {
        let wall_start = std::time::Instant::now();
        self.drain_starts();
        let observing = self.obs.enabled();
        while let Some((t, _ord, ev)) = self.queue.pop() {
            self.dispatch(t, ev, observing);
        }
        self.integrity_checks();
        let wall_ns = wall_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let sink = self.obs.finish();
        // Peak heap estimate: pending events dominate, plus live worm and
        // channel state and whatever trace the sink retained.
        let peak_heap_bytes = (self.peak_heap * ENTRY_BYTES
            + self.worms.len() * std::mem::size_of::<Worm<Prog::Payload>>()
            + self.channels.len() * std::mem::size_of::<ChanState>()
            + sink.events.len() * std::mem::size_of::<TraceEvent>())
            as u64;
        let meta = RunMeta {
            events_processed: self.events_processed,
            events_scheduled: self.events_scheduled,
            peak_heap_events: self.peak_heap,
            peak_heap_bytes,
            trace_events: sink.events.len() as u64 + sink.streamed,
            trace_dropped: sink.dropped,
            wall_ns,
            events_per_sec: if wall_ns == 0 {
                0.0
            } else {
                self.events_processed as f64 * 1e9 / wall_ns as f64
            },
        };
        let channels: Vec<crate::stats::ChannelTelemetry> = self
            .chan_busy
            .iter()
            .zip(&self.chan_blocked)
            .zip(&self.chan_acquires)
            .map(
                |((&busy, &blocked), &acquires)| crate::stats::ChannelTelemetry {
                    busy,
                    blocked,
                    acquires,
                },
            )
            .collect();
        // Flush the run's totals into the process-global telemetry counters
        // in bulk — one relaxed add per counter per *run*, so campaign
        // worker threads never contend on a cache line inside the event
        // loop (and the hot path stays allocation-free).
        crate::metrics::RUNS.inc();
        crate::metrics::EVENTS_PROCESSED.add(self.events_processed);
        crate::metrics::EVENTS_SCHEDULED.add(self.events_scheduled);
        crate::metrics::MESSAGES.add(self.messages.len() as u64);
        crate::metrics::BLOCKED_CYCLES.add(self.blocked_cycles);
        crate::metrics::CHANNEL_BUSY_CYCLES.add(self.channel_busy);
        let result = SimResult {
            finish: self.finish,
            messages: self.messages,
            blocked_cycles: self.blocked_cycles,
            blocked_events: self.blocked_events,
            channel_busy_cycles: self.channel_busy,
            channels,
            counts: sink.counts,
            trace: sink.events,
            truncated: sink.truncated,
            meta,
        };
        (self.program, result)
    }

    /// The event's intrinsic ordering key: `prio | kind | entity rank`.
    /// Entity ranks — a channel id, a node id, or the worm's birth rank —
    /// are unique per instant within their kind (one pending release per
    /// channel, one kick per node, one event of each kind per worm), so
    /// `(t, ord)` totally orders all pending events without any reference
    /// to scheduling history.
    fn ord_of(&self, e: Event) -> u64 {
        let rank = match e {
            Event::Release(c) => u64::from(c),
            Event::NodeKick(n) => u64::from(n),
            Event::WormStart(w)
            | Event::HeadAdvance(w)
            | Event::RecvSoftware(w)
            | Event::RecvDone(w) => self.worms[w as usize].rank,
        };
        debug_assert!(rank < 1 << 56, "entity rank overflows the ord layout");
        (u64::from(e.priority()) << 63) | (e.kind_rank() << 56) | rank
    }

    /// Insert without counting: cross-shard deliveries use this so an event
    /// is tallied in `events_scheduled` exactly once (at emission), keeping
    /// the shard-summed total equal to the sequential engine's.
    fn insert(&mut self, t: Time, e: Event) {
        self.queue.push(t, self.ord_of(e), e.pack());
        self.peak_heap = self.peak_heap.max(self.queue.len());
    }

    fn schedule(&mut self, t: Time, e: Event) {
        self.events_scheduled += 1;
        self.insert(t, e);
    }

    fn enqueue_sends(&mut self, node: NodeId, now: Time, sends: Vec<SendReq<Prog::Payload>>) {
        if sends.is_empty() {
            return;
        }
        for s in &sends {
            assert_ne!(s.dest, node, "node {node:?} may not send to itself");
        }
        let ns = &mut self.nodes[node.idx()];
        // Stable insert by `not_before`: a send with an earlier constraint
        // never waits behind one constrained to the far future (concurrent
        // multicasts with staggered starts share node CPUs).  Each
        // program's own non-decreasing `not_before` order is preserved.
        // The queue is sorted by construction, so the insert position is a
        // binary search: first entry with a strictly later constraint.
        for s in sends {
            let pos = ns.queue.partition_point(|q| q.not_before <= s.not_before);
            ns.queue.insert(pos, s);
        }
        let head = ns.queue.front().expect("just inserted");
        let want = now.max(ns.cpu_free).max(head.not_before);
        if ns.kick_at.is_none_or(|k| want < k) {
            ns.kick_at = Some(want);
            self.schedule(want, Event::NodeKick(node.0));
        }
    }

    fn on_kick(&mut self, node: NodeId, t: Time) {
        let ns = &mut self.nodes[node.idx()];
        if ns.kick_at != Some(t) {
            return; // superseded by an earlier kick
        }
        ns.kick_at = None;
        let Some(head) = ns.queue.front() else {
            return;
        };
        let earliest = ns.cpu_free.max(head.not_before);
        if t < earliest {
            ns.kick_at = Some(earliest);
            self.schedule(earliest, Event::NodeKick(node.0));
            return;
        }
        let req = ns.queue.pop_front().expect("checked non-empty");
        let hold = self.cfg.software.t_hold.eval(req.bytes);
        let t_send = self.cfg.software.t_send.eval(req.bytes);
        ns.cpu_free = t + hold;
        if let Some(next) = ns.queue.front() {
            let at = ns.cpu_free.max(next.not_before);
            ns.kick_at = Some(at);
            self.schedule(at, Event::NodeKick(node.0));
        }
        let flits = self.cfg.flits(req.bytes);
        if let Some(ctx) = &self.shard {
            // Condition C (DESIGN.md §15): every release a worm causes must
            // land strictly in the future, or conservative windows cannot
            // reproduce the sequential order.  `run_auto` pre-checks the
            // initial sends; this catches program-generated ones.
            assert!(
                flits >= ctx.plan.min_flits,
                "sharded run issued a {flits}-flit worm; worms shorter than \
                 {} flits violate the release-lookahead bound (condition C)",
                ctx.plan.min_flits
            );
        }
        let issued = {
            let ns = &mut self.nodes[node.idx()];
            let i = ns.issued;
            ns.issued += 1;
            i
        };
        assert!(
            issued < (1 << RANK_SHIFT) && u64::from(node.0) < (1 << (56 - RANK_SHIFT)),
            "worm rank overflow: node {node:?}, issue {issued}"
        );
        let rank = (u64::from(node.0) << RANK_SHIFT) | u64::from(issued);
        let w = if let Some(slot) = self.free_worms.pop() {
            // Reuse a retired slot: the path Vec keeps its capacity, so
            // steady-state worm turnover allocates nothing.
            let worm = &mut self.worms[slot as usize];
            worm.src = node;
            worm.dest = req.dest;
            worm.bytes = req.bytes;
            worm.flits = flits;
            worm.payload = Some(req.payload);
            worm.path.clear();
            worm.release_ptr = 0;
            worm.initiated = t;
            worm.injected = 0;
            worm.drain_start = 0;
            worm.tail_consumed = 0;
            worm.blocked = 0;
            worm.block_start = None;
            worm.phase = Phase::Climbing;
            worm.retry_scheduled = false;
            worm.rank = rank;
            worm.foreign_owners = 0;
            slot
        } else {
            let w = self.worms.len() as u32;
            self.worms.push(Worm {
                src: node,
                dest: req.dest,
                bytes: req.bytes,
                flits,
                payload: Some(req.payload),
                path: Vec::new(),
                release_ptr: 0,
                initiated: t,
                injected: 0,
                drain_start: 0,
                tail_consumed: 0,
                blocked: 0,
                block_start: None,
                phase: Phase::Climbing,
                retry_scheduled: false,
                generation: 0,
                rank,
                foreign_owners: 0,
            });
            w
        };
        if self.obs.enabled() {
            // The send software occupies the CPU for `t_hold` from pickup;
            // the idle edge is known now, so both are emitted here.
            self.obs.on_cpu_busy(t, w, node);
            self.obs.on_cpu_idle(t + hold, w, node);
        }
        self.schedule(t + t_send, Event::WormStart(w));
    }

    /// Candidate channels for the worm's next hop, via the topology's
    /// precomputed [`RouteTable`].
    fn candidates(&self, w: u32, out: &mut Vec<ChannelId>) {
        let worm = &self.worms[w as usize];
        match worm.path.last() {
            // All NI ports are candidates (one in the one-port
            // architecture); port choice is not subject to cfg.adaptive.
            None => out.extend_from_slice(self.graph.injections(worm.src)),
            Some(&c) => {
                let r = self
                    .graph
                    .dst_router(c)
                    .expect("climbing worm sits at a router");
                self.routes.candidates(r, worm.src, worm.dest, out);
                if !self.cfg.adaptive {
                    out.truncate(1);
                }
            }
        }
    }

    fn on_advance(&mut self, w: u32, t: Time) {
        if self.worms[w as usize].phase != Phase::Climbing {
            return; // stale retry
        }
        self.worms[w as usize].retry_scheduled = false;
        let mut cand = std::mem::take(&mut self.cand_scratch);
        cand.clear();
        self.candidates(w, &mut cand);
        let free = cand
            .iter()
            .copied()
            .find(|c| self.channels[c.idx()].holder.is_none());
        match free {
            None => {
                // Blocked: remember when, wait on every candidate.
                let worm = &mut self.worms[w as usize];
                let generation = worm.generation;
                if worm.block_start.is_none() {
                    worm.block_start = Some(t);
                    let first = cand.first().copied();
                    self.obs.on_blocked(t, w, first);
                }
                for &c in &cand {
                    self.channels[c.idx()].waiters.push((w, generation));
                }
            }
            Some(c) => {
                // A previously blocked worm left waiter entries on *every*
                // candidate; purge them so no candidate released later
                // schedules a spurious same-generation retry (which would
                // advance the worm a second time at that instant).
                if self.worms[w as usize].block_start.is_some() {
                    for &cc in &cand {
                        self.channels[cc.idx()].waiters.retain(|&(ww, _)| ww != w);
                    }
                }
                self.acquire(w, c, t);
            }
        }
        self.cand_scratch = cand;
    }

    fn acquire(&mut self, w: u32, c: ChannelId, t: Time) {
        let g = self.graph;
        let dest = self.worms[w as usize].dest;
        self.acquires += 1;
        self.chan_acquires[c.idx()] += 1;
        self.obs.on_channel_acquire(t, w, c);
        {
            let ch = &mut self.channels[c.idx()];
            debug_assert!(ch.holder.is_none());
            ch.holder = Some(w);
            ch.acquired_at = t;
        }
        let worm = &mut self.worms[w as usize];
        if let Some(b) = worm.block_start.take() {
            if t > b {
                worm.blocked += t - b;
                self.blocked_cycles += t - b;
                self.blocked_events += 1;
                // Attribute the wait to the channel that finally opened —
                // the contended resource a heatmap should highlight.
                self.chan_blocked[c.idx()] += t - b;
            }
        }
        let first_hop = worm.path.is_empty();
        if first_hop {
            worm.injected = t;
        }
        worm.path.push(c);
        let i = worm.path.len() - 1;
        // With B-deep buffers the worm compresses into ceil(L/B) channels;
        // the tail leaves channel i - span when the head takes channel i.
        let span = worm.flits.div_ceil(self.cfg.buffer_flits.max(1)) as usize;
        let tail_release = if i >= span {
            let rel = worm.path[i - span];
            debug_assert_eq!(worm.release_ptr, i - span);
            worm.release_ptr = i - span + 1;
            Some(rel)
        } else {
            None
        };
        if first_hop {
            self.obs.on_inject_start(t, w, c);
        }
        if let Some(rel) = tail_release {
            if let Some(ctx) = &self.shard {
                // Climbing tail releases fire at the present instant, which
                // no conservative window could ship across a boundary in
                // time — condition C guarantees the span covers the whole
                // path, so a sharded worm never releases while climbing.
                assert_eq!(
                    ctx.plan.chan_shard[rel.idx()] as usize,
                    ctx.id as usize,
                    "climbing tail release crossed a shard boundary (condition C violated)"
                );
            }
            self.schedule(t, Event::Release(rel.0));
        }
        let rd = self.cfg.router_delay;
        if g.dst_node(c) == Some(dest) {
            // Head reached the consumption channel: drain.
            self.obs.on_drain_start(t, w, c);
            let worm = &mut self.worms[w as usize];
            worm.phase = Phase::Draining;
            let p = worm.path.len();
            let tail_consumed = t + rd + worm.flits - 1;
            worm.drain_start = t;
            worm.tail_consumed = tail_consumed;
            // Channel j frees once every flit not yet past it has drained:
            // at most B flits fit in each of the (p-1-j) downstream buffers.
            let buf = self.cfg.buffer_flits.max(1);
            let mut pending = std::mem::take(&mut self.pending_scratch);
            pending.clear();
            pending.extend((worm.release_ptr..p).map(|j| {
                let ch = worm.path[j];
                let downstream = buf * (p - 1 - j) as Time;
                (tail_consumed.saturating_sub(downstream), ch.0)
            }));
            worm.release_ptr = p;
            for &(rel_at, ch) in &pending {
                match self.remote_channel_owner(ChannelId(ch)) {
                    Some(owner) => {
                        // The owner applies its own `acquired_at + 1` floor
                        // on delivery — same clamp, same state, same time.
                        self.events_scheduled += 1;
                        self.emit(
                            owner,
                            OutMsg::Release {
                                t: rel_at,
                                chan: ch,
                            },
                        );
                    }
                    None => {
                        let floor = self.channels[ch as usize].acquired_at + 1;
                        self.schedule(rel_at.max(floor), Event::Release(ch));
                    }
                }
            }
            self.pending_scratch = pending;
            self.schedule(tail_consumed, Event::RecvSoftware(w));
        } else {
            let next = g
                .dst_router(c)
                .expect("non-consumption channel feeds a router");
            match self.remote_router_owner(next) {
                Some(owner) => self.emit_migration(w, t + rd, owner),
                None => self.schedule(t + rd, Event::HeadAdvance(w)),
            }
        }
    }

    /// The shard that owns `c`, when sharded and it is not this one.
    #[inline]
    fn remote_channel_owner(&self, c: ChannelId) -> Option<usize> {
        let ctx = self.shard.as_deref()?;
        let s = ctx.plan.chan_shard[c.idx()];
        (s != ctx.id).then_some(s as usize)
    }

    /// The shard that owns router `r`, when sharded and it is not this one.
    #[inline]
    fn remote_router_owner(&self, r: topo::RouterId) -> Option<usize> {
        let ctx = self.shard.as_deref()?;
        let s = ctx.plan.router_shard[r.idx()];
        (s != ctx.id).then_some(s as usize)
    }

    fn emit(&mut self, dst: usize, msg: OutMsg<Prog::Payload>) {
        self.shard.as_mut().expect("sharded").outbox[dst].push(msg);
    }

    /// The worm's head just acquired a channel into a router owned by shard
    /// `dst`: pack it onto the wire and retire the local slot.  The next
    /// head movement (`HeadAdvance` at `at`) happens over there; its
    /// `events_scheduled` tally is taken here, at emission.
    fn emit_migration(&mut self, w: u32, at: Time, dst: usize) {
        self.events_scheduled += 1;
        let worm = &mut self.worms[w as usize];
        debug_assert!(worm.block_start.is_none(), "migrating worm still blocked");
        let wire = WormWire {
            src: worm.src,
            dest: worm.dest,
            bytes: worm.bytes,
            flits: worm.flits,
            payload: worm.payload.take(),
            path: std::mem::take(&mut worm.path),
            release_ptr: worm.release_ptr,
            initiated: worm.initiated,
            injected: worm.injected,
            blocked: worm.blocked,
            rank: worm.rank,
        };
        // Retire the local slot exactly as a delivery would: stale waiter
        // entries (there are none — see the purge in `on_advance`) die with
        // the generation, and the slot is free for reuse.
        worm.phase = Phase::Done;
        worm.generation = worm.generation.wrapping_add(1);
        self.free_worms.push(w);
        self.emit(dst, OutMsg::Migrate { t: at, worm: wire });
    }

    fn on_release(&mut self, c: ChannelId, t: Time) {
        self.releases += 1;
        if self.obs.enabled() {
            let holder = self.channels[c.idx()]
                .holder
                .expect("release of a free channel");
            self.obs.on_channel_release(t, holder, c);
        }
        let ch = &mut self.channels[c.idx()];
        debug_assert!(ch.holder.is_some(), "double release of {c:?}");
        ch.holder = None;
        self.channel_busy += t - ch.acquired_at;
        self.chan_busy[c.idx()] += t - ch.acquired_at;
        let mut waiters = std::mem::take(&mut ch.waiters);
        for &(w, generation) in &waiters {
            let worm = &mut self.worms[w as usize];
            // The generation check drops entries filed by a retired
            // occupant of a reused slot; same-generation behavior is
            // exactly the old phase/retry filtering.
            if worm.generation == generation
                && worm.phase == Phase::Climbing
                && !worm.retry_scheduled
            {
                worm.retry_scheduled = true;
                self.schedule(t, Event::HeadAdvance(w));
            }
        }
        // Hand the (now cleared) buffer back so blocking episodes don't
        // allocate in steady state.  Nothing re-files a waiter during the
        // loop — retries are scheduled as events, not run inline.
        waiters.clear();
        self.channels[c.idx()].waiters = waiters;
    }

    /// The tail flit is in the NI; the receive software runs as soon as the
    /// destination's (single) CPU is free — back-to-back receives therefore
    /// serialise, which is the receive-side face of the model's `t_hold`
    /// ("any two consecutive send or receive operations", §2.1).
    fn on_recv_software(&mut self, w: u32, t: Time) {
        let dest = self.worms[w as usize].dest;
        let t_recv = self.cfg.software.t_recv.eval(self.worms[w as usize].bytes);
        let ns = &mut self.nodes[dest.idx()];
        let start = t.max(ns.cpu_free);
        ns.cpu_free = start + t_recv;
        if self.obs.enabled() {
            self.obs.on_cpu_busy(start, w, dest);
            self.obs.on_cpu_idle(start + t_recv, w, dest);
        }
        self.schedule(start + t_recv, Event::RecvDone(w));
    }

    fn on_recv_done(&mut self, w: u32, t: Time) {
        let worm = &mut self.worms[w as usize];
        debug_assert_eq!(worm.phase, Phase::Draining);
        worm.phase = Phase::Done;
        let payload = worm.payload.take().expect("payload delivered once");
        if self.shard.is_some() {
            // The merge key: equal-time RecvDones tie-break on worm rank in
            // `ord_of`, so (completed, rank) reconstructs pop order.
            self.message_ranks.push(worm.rank);
        }
        self.messages.push(MessageRecord {
            src: worm.src,
            dest: worm.dest,
            bytes: worm.bytes,
            initiated: worm.initiated,
            injected: worm.injected,
            drain_start: worm.drain_start,
            tail_consumed: worm.tail_consumed,
            completed: t,
            blocked: worm.blocked,
        });
        let dest = worm.dest;
        // Retire the slot: stale waiter entries die with the generation.
        // Reuse is disabled only for sinks that retain events keyed by worm
        // id (`Memory`/`Ring`/`Jsonl`/active `Custom`) so recorded ids stay
        // unique; `Null` and `Counters` keep the fast path (observation
        // never alters simulation outcomes — ids don't feed back into
        // timing).
        worm.generation = worm.generation.wrapping_add(1);
        if !self.obs.needs_unique_worm_ids() {
            self.free_worms.push(w);
        }
        self.obs.on_recv_done(t, w, dest);
        let sends = self.program.on_receive(dest, &payload, t);
        self.enqueue_sends(dest, t, sends);
    }

    // -----------------------------------------------------------------
    // Sharded execution (DESIGN.md §15).  These methods are driven by
    // `crate::shard::run_sharded`; `run_auto` is the public entry.

    /// Attach this engine to a sharded run as one of its workers.
    pub(crate) fn set_shard(&mut self, ctx: ShardCtx<Prog::Payload>) {
        self.shard = Some(Box::new(ctx));
    }

    /// Pending events in the queue (sharded termination detection).
    pub(crate) fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Process every pending event strictly before `horizon`.
    pub(crate) fn run_window(&mut self, horizon: Time) {
        let observing = self.obs.enabled();
        while let Some((t, _ord)) = self.queue.peek_key() {
            if t >= horizon {
                break;
            }
            let (t, _ord, ev) = self.queue.pop().expect("peeked event");
            self.dispatch(t, ev, observing);
        }
    }

    /// This shard's outbox for `dst`, to be swapped into the mailbox matrix.
    pub(crate) fn outbox_mut(&mut self, dst: usize) -> &mut Vec<OutMsg<Prog::Payload>> {
        &mut self.shard.as_mut().expect("sharded").outbox[dst]
    }

    /// Fill `out[j]` with a lower bound on the earliest timestamp any
    /// cross-shard message this shard could emit *to shard `j`* would
    /// carry — over all pending events and every local cascade they can
    /// trigger, considering only work already in this shard's queue
    /// (consequences of messages other shards publish concurrently are
    /// bounded by the window fixpoint's relay terms, not here).  The scan
    /// walks the queue in time-banded order and stops once every reachable
    /// destination's bound can no longer improve.
    pub(crate) fn emission_bounds(&self, out: &mut Vec<Time>) {
        let ctx = self.shard.as_deref().expect("sharded");
        let plan = &ctx.plan;
        out.clear();
        out.resize(plan.n_shards, Time::MAX);
        if self.queue.is_empty() || ctx.msg_dests.is_empty() {
            return;
        }
        let dests = &ctx.msg_dests;
        self.queue.scan_ordered(|t, ev| {
            match Event::unpack(ev) {
                // A release's only cross-shard consequence is waking a
                // blocked worm, whose next acquisition (at this very
                // instant) may migrate one `rd` later or start a drain.
                // Each live waiter is bounded from its own position; stale
                // entries and worms with a pending retry are covered by
                // their own events, not this one.
                Event::Release(c) => {
                    for &(w, generation) in &self.channels[c as usize].waiters {
                        let worm = &self.worms[w as usize];
                        if worm.generation != generation
                            || worm.phase != Phase::Climbing
                            || worm.retry_scheduled
                        {
                            continue;
                        }
                        for &j in dests {
                            let b = t.saturating_add(self.worm_eps_to(worm, j, plan));
                            out[j] = out[j].min(b);
                        }
                    }
                }
                // Kick -> t_send -> climb from the node's injection port.
                Event::NodeKick(n) => {
                    for &j in dests {
                        let b = t
                            .saturating_add(plan.ts0)
                            .saturating_add(plan.node_eps_to[j][n as usize]);
                        out[j] = out[j].min(b);
                    }
                }
                Event::WormStart(w) | Event::HeadAdvance(w) => {
                    let worm = &self.worms[w as usize];
                    for &j in dests {
                        let b = t.saturating_add(self.worm_eps_to(worm, j, plan));
                        out[j] = out[j].min(b);
                    }
                }
                // Receive software -> completion -> program sends.
                Event::RecvSoftware(w) => {
                    let dest = self.worms[w as usize].dest;
                    for &j in dests {
                        let b = t
                            .saturating_add(plan.tr0)
                            .saturating_add(plan.ts0)
                            .saturating_add(plan.node_eps_to[j][dest.idx()]);
                        out[j] = out[j].min(b);
                    }
                }
                Event::RecvDone(w) => {
                    let dest = self.worms[w as usize].dest;
                    for &j in dests {
                        let b = t
                            .saturating_add(plan.ts0)
                            .saturating_add(plan.node_eps_to[j][dest.idx()]);
                        out[j] = out[j].min(b);
                    }
                }
            }
            // Cutoff for the scan: every bound is `t + eps` with `eps >= 0`,
            // so once the slot time reaches the worst reachable bound no
            // later event can lower any of them.
            dests.iter().map(|&j| out[j]).max().unwrap_or(0)
        });
    }

    /// Emission lower bound toward shard `j` for a pending head movement
    /// of `worm`, relative to the event's timestamp.
    fn worm_eps_to(&self, worm: &Worm<Prog::Payload>, j: usize, plan: &ShardPlan) -> Time {
        // Hops to the nearest channel crossing into `j` from the worm's
        // position: acquiring the crossing channel emits the migration one
        // `rd` after the last local hop, so `rd x hops` bounds that path.
        let boundary = match worm.path.last() {
            None => plan.node_eps_to[j][worm.src.idx()],
            Some(&c) => match self.graph.dst_router(c) {
                Some(r) => plan.router_eps_to[j][r.idx()],
                // Consumption channel: the worm drained; any pending head
                // movement is a stale retry that will emit nothing.
                None => Time::MAX,
            },
        };
        // A migrated-in worm holds channels other shards own; when it
        // drains, their releases ship back — but only toward the shards in
        // its owner mask.  The earliest such release (condition C) is
        // `rd + (flits - min_flits)` after the drain starts, and the drain
        // can start at this very event.
        let releases_to_j = if j < 64 {
            (worm.foreign_owners >> j) & 1 == 1
        } else {
            worm.foreign_owners == u64::MAX
        };
        if releases_to_j {
            let slack = worm.flits.saturating_sub(plan.min_flits);
            boundary.min(plan.rd.saturating_add(slack))
        } else {
            boundary
        }
    }

    /// Apply a cross-shard handoff (called between windows; the message's
    /// timestamp is at or after the next horizon, so insertion order never
    /// disturbs pop order).
    pub(crate) fn deliver(&mut self, msg: OutMsg<Prog::Payload>) {
        match msg {
            OutMsg::Release { t, chan } => {
                // Same clamp the sequential engine applies when scheduling:
                // never release before the cycle after acquisition.
                let floor = self.channels[chan as usize].acquired_at + 1;
                self.insert(t.max(floor), Event::Release(chan));
            }
            OutMsg::Migrate { t, worm: wire } => {
                // Shards owning channels the worm still holds (everything
                // acquired before this hop): its drain will emit releases
                // toward exactly these shards.  Channels this shard owns
                // release locally and stay out of the mask.
                let foreign_owners = {
                    let ctx = self.shard.as_deref().expect("sharded delivery");
                    let mut mask = 0u64;
                    for &c in &wire.path[wire.release_ptr..] {
                        let s = ctx.plan.chan_shard[c.idx()];
                        if s == ctx.id {
                            continue;
                        }
                        if s >= 64 {
                            mask = u64::MAX;
                            break;
                        }
                        mask |= 1 << s;
                    }
                    mask
                };
                let w = if let Some(slot) = self.free_worms.pop() {
                    let worm = &mut self.worms[slot as usize];
                    worm.src = wire.src;
                    worm.dest = wire.dest;
                    worm.bytes = wire.bytes;
                    worm.flits = wire.flits;
                    worm.payload = wire.payload;
                    worm.path = wire.path;
                    worm.release_ptr = wire.release_ptr;
                    worm.initiated = wire.initiated;
                    worm.injected = wire.injected;
                    worm.drain_start = 0;
                    worm.tail_consumed = 0;
                    worm.blocked = wire.blocked;
                    worm.block_start = None;
                    worm.phase = Phase::Climbing;
                    worm.retry_scheduled = false;
                    worm.rank = wire.rank;
                    worm.foreign_owners = foreign_owners;
                    slot
                } else {
                    let w = self.worms.len() as u32;
                    self.worms.push(Worm {
                        src: wire.src,
                        dest: wire.dest,
                        bytes: wire.bytes,
                        flits: wire.flits,
                        payload: wire.payload,
                        path: wire.path,
                        release_ptr: wire.release_ptr,
                        initiated: wire.initiated,
                        injected: wire.injected,
                        drain_start: 0,
                        tail_consumed: 0,
                        blocked: wire.blocked,
                        block_start: None,
                        phase: Phase::Climbing,
                        retry_scheduled: false,
                        generation: 0,
                        rank: wire.rank,
                        foreign_owners,
                    });
                    w
                };
                self.insert(t, Event::HeadAdvance(w));
            }
        }
    }

    /// Wind down one shard of a sharded run: integrity checks, then the
    /// partial sums the merge combines into the sequential-identical result.
    pub(crate) fn finish_partial(mut self) -> (Prog, ShardPartial) {
        self.integrity_checks();
        let sink = self.obs.finish();
        let peak_heap_bytes = (self.peak_heap * ENTRY_BYTES
            + self.worms.len() * std::mem::size_of::<Worm<Prog::Payload>>()
            + self.channels.len() * std::mem::size_of::<ChanState>()
            + sink.events.len() * std::mem::size_of::<TraceEvent>())
            as u64;
        let records = std::mem::take(&mut self.messages);
        let ranks = std::mem::take(&mut self.message_ranks);
        debug_assert_eq!(records.len(), ranks.len());
        let messages = ranks
            .into_iter()
            .zip(records)
            .map(|(rank, m)| (m.completed, rank, m))
            .collect();
        (
            self.program,
            ShardPartial {
                finish: self.finish,
                messages,
                blocked_cycles: self.blocked_cycles,
                blocked_events: self.blocked_events,
                channel_busy: self.channel_busy,
                chan_busy: self.chan_busy,
                chan_blocked: self.chan_blocked,
                chan_acquires: self.chan_acquires,
                counts: sink.counts,
                events_processed: self.events_processed,
                events_scheduled: self.events_scheduled,
                peak_heap: self.peak_heap,
                peak_heap_bytes,
            },
        )
    }

    /// Decompose into what `run_sharded` needs to build the per-shard
    /// engines: the topology, the configuration, the program, the recorded
    /// initial sends, and whether the observer was the counters sink.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_sharded_parts(
        self,
    ) -> (
        &'t dyn Topology,
        SimConfig,
        Prog,
        Vec<StartRec<Prog::Payload>>,
        bool,
    ) {
        let counters = matches!(self.obs, TraceSink::Counters(_));
        (self.topo, self.cfg, self.program, self.starts, counters)
    }

    /// Whether this engine's configuration and workload can run sharded
    /// with bit-identical results; `Err` names the first gate that failed.
    fn try_shard_plan(&self) -> Result<std::sync::Arc<ShardPlan>, ShardFallback> {
        let k = self.cfg.shards;
        if !matches!(self.obs, TraceSink::Null | TraceSink::Counters(_)) {
            return Err(ShardFallback::Observer);
        }
        if k > self.graph.n_routers() {
            return Err(ShardFallback::ShardCount);
        }
        if self.cfg.router_delay == 0 {
            return Err(ShardFallback::ZeroRouterDelay);
        }
        if self.starts.is_empty() {
            return Err(ShardFallback::EmptyWorkload);
        }
        let plan = crate::shard::build_plan(self.graph, &self.cfg, k, self.max_path);
        let too_short = self
            .starts
            .iter()
            .flat_map(|(_, _, sends)| sends)
            .any(|s| self.cfg.flits(s.bytes) < plan.min_flits);
        if too_short {
            return Err(ShardFallback::TinyMessage);
        }
        Ok(std::sync::Arc::new(plan))
    }
}

/// Why [`Engine::run_auto`] disengaged the sharded engine for a run that
/// had `shards > 1` configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFallback {
    /// A tracing observer (memory / ring / jsonl / custom) was attached;
    /// only the `Null` and `Counters` sinks shard.
    Observer,
    /// Some worm is shorter than the condition C release-lookahead floor.
    TinyMessage,
    /// `router_delay == 0` leaves no cross-shard lookahead.
    ZeroRouterDelay,
    /// More shards requested than the topology has routers.
    ShardCount,
    /// No initial sends — nothing to simulate.
    EmptyWorkload,
}

impl ShardFallback {
    /// Human-readable reason, surfaced by `optmc run` error messages.
    pub fn reason(self) -> &'static str {
        match self {
            ShardFallback::Observer => "tracing observers need the sequential engine",
            ShardFallback::TinyMessage => {
                "worms too short for the release-lookahead bound (condition C)"
            }
            ShardFallback::ZeroRouterDelay => "zero router delay leaves no cross-shard lookahead",
            ShardFallback::ShardCount => "more shards than routers",
            ShardFallback::EmptyWorkload => "nothing to simulate",
        }
    }

    /// The per-reason fallback counter this gate increments.
    fn counter(self) -> &'static telem::Counter {
        match self {
            ShardFallback::Observer => &crate::metrics::SHARD_FALLBACKS_OBSERVER,
            ShardFallback::TinyMessage => &crate::metrics::SHARD_FALLBACKS_TINY_MESSAGE,
            ShardFallback::ZeroRouterDelay => &crate::metrics::SHARD_FALLBACKS_ZERO_ROUTER_DELAY,
            ShardFallback::ShardCount | ShardFallback::EmptyWorkload => {
                &crate::metrics::SHARD_FALLBACKS_OTHER
            }
        }
    }
}

impl<'t, Prog: ShardProgram> Engine<'t, Prog>
where
    Prog::Payload: Send,
{
    /// Run to completion with [`SimConfig::shards`] worker threads when the
    /// configuration allows it, sequentially otherwise.  Either way the
    /// result is identical — sharding is an execution strategy, not a
    /// model change.
    pub fn run_auto(self) -> (Prog, SimResult) {
        if self.cfg.shards <= 1 {
            return self.run();
        }
        match self.try_shard_plan() {
            Ok(plan) => {
                crate::metrics::set_last_shard_fallback(None);
                crate::shard::run_sharded(self, plan)
            }
            Err(fallback) => {
                crate::metrics::SHARD_FALLBACKS.inc();
                fallback.counter().inc();
                crate::metrics::set_last_shard_fallback(Some(fallback.reason()));
                self.run()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SoftwareModel;
    use crate::program::{RelayProgram, SinkProgram};
    use topo::{Bmin, Mesh, UpPolicy};

    fn bare_cfg() -> SimConfig {
        SimConfig {
            software: SoftwareModel::zero(),
            ..SimConfig::paragon_like()
        }
    }

    fn p2p(topo: &dyn Topology, cfg: &SimConfig, src: u32, dst: u32, bytes: u64) -> SimResult {
        let mut e = Engine::new(topo, cfg.clone(), SinkProgram);
        e.start(NodeId(src), 0, vec![SendReq::to(NodeId(dst), bytes, ())]);
        e.run().1
    }

    #[test]
    fn idle_mesh_p2p_matches_prediction() {
        let m = Mesh::new(&[6, 6]);
        let cfg = SimConfig::paragon_like();
        for (src, dst) in [(0u32, 1u32), (0, 35), (7, 28), (30, 5)] {
            for bytes in [0u64, 8, 100, 4096] {
                let hops = m.distance(NodeId(src), NodeId(dst));
                let r = p2p(&m, &cfg, src, dst, bytes);
                assert!(r.contention_free());
                assert_eq!(r.messages.len(), 1);
                assert_eq!(
                    r.messages[0].latency(),
                    cfg.predict_p2p(hops, bytes),
                    "{src}->{dst} {bytes}B"
                );
            }
        }
    }

    #[test]
    fn idle_bmin_p2p_matches_prediction() {
        let b = Bmin::new(5, UpPolicy::Straight);
        let cfg = SimConfig::paragon_like();
        for (src, dst) in [(0u32, 1u32), (0, 31), (12, 19)] {
            let hops = b.distance(NodeId(src), NodeId(dst));
            let r = p2p(&b, &cfg, src, dst, 512);
            assert!(r.contention_free());
            assert_eq!(r.messages[0].latency(), cfg.predict_p2p(hops, 512));
        }
    }

    #[test]
    fn head_on_contention_serialises() {
        // Two worms in opposite directions through the same middle link of a
        // 1-D mesh: 0 -> 3 and 1 -> 3. The second must wait for the first to
        // drain past their shared channels.
        let m = Mesh::new(&[4]);
        let cfg = bare_cfg();
        let mut e = Engine::new(&m, cfg.clone(), SinkProgram);
        e.start(NodeId(0), 0, vec![SendReq::to(NodeId(3), 800, ())]);
        e.start(NodeId(1), 0, vec![SendReq::to(NodeId(3), 800, ())]);
        let r = e.run().1;
        assert!(!r.contention_free());
        assert_eq!(r.blocked_events, 1);
        // Uncontended latencies: worm 1 from node 1 is 3 hops+ports.
        let solo = cfg.predict_p2p(2, 800);
        let m1 = r.delivered_to(NodeId(3)).unwrap();
        assert!(
            m1.latency() >= solo,
            "blocked worm can't be faster than solo"
        );
    }

    #[test]
    fn disjoint_paths_run_concurrently() {
        // 0 -> 1 and 2 -> 3 in a line share nothing.
        let m = Mesh::new(&[4]);
        let mut e = Engine::new(&m, bare_cfg(), SinkProgram);
        e.start(NodeId(0), 0, vec![SendReq::to(NodeId(1), 64, ())]);
        e.start(NodeId(2), 0, vec![SendReq::to(NodeId(3), 64, ())]);
        let r = e.run().1;
        assert!(r.contention_free());
        // Both complete at the same time (same distance, same size).
        assert_eq!(r.messages[0].completed, r.messages[1].completed);
    }

    #[test]
    fn one_port_spaces_sends_by_hold() {
        let m = Mesh::new(&[8]);
        let mut cfg = bare_cfg();
        cfg.software.t_hold = pcm::LinearFn::constant(500.0);
        let mut e = Engine::new(&m, cfg, SinkProgram);
        e.start(
            NodeId(0),
            0,
            vec![
                SendReq::to(NodeId(1), 8, ()),
                SendReq::to(NodeId(2), 8, ()),
                SendReq::to(NodeId(3), 8, ()),
            ],
        );
        let r = e.run().1;
        let mut inits: Vec<Time> = r.messages.iter().map(|m| m.initiated).collect();
        inits.sort_unstable();
        assert_eq!(inits, vec![0, 500, 1000]);
        assert!(r.contention_free());
    }

    #[test]
    fn consumption_port_serialises_receivers() {
        // Two senders target the same destination from opposite sides; the
        // consumption channel is the bottleneck.
        let m = Mesh::new(&[5]);
        let mut e = Engine::new(&m, bare_cfg(), SinkProgram);
        e.start(NodeId(0), 0, vec![SendReq::to(NodeId(2), 4000, ())]);
        e.start(NodeId(4), 0, vec![SendReq::to(NodeId(2), 4000, ())]);
        let r = e.run().1;
        assert_eq!(r.blocked_events, 1);
        let (a, b) = (&r.messages[0], &r.messages[1]);
        // The loser finishes roughly a full drain after the winner.
        assert!(
            b.completed >= a.completed + 500 - 2,
            "{} vs {}",
            a.completed,
            b.completed
        );
    }

    #[test]
    fn relay_chain_adds_stage_latencies() {
        let m = Mesh::new(&[4]);
        let cfg = SimConfig::paragon_like();
        let ring: Vec<NodeId> = (0..4).map(NodeId).collect();
        let mut e = Engine::new(
            &m,
            cfg.clone(),
            RelayProgram {
                ring: ring.clone(),
                bytes: 64,
            },
        );
        // 0 -> 1, then 1 -> 2, then 2 -> 3.
        e.start(NodeId(0), 0, vec![SendReq::to(NodeId(1), 64, 2)]);
        let r = e.run().1;
        assert_eq!(r.messages.len(), 3);
        let per_hop = cfg.predict_p2p(1, 64);
        assert_eq!(r.last_completion(), Some(3 * per_hop));
        assert!(r.contention_free());
    }

    #[test]
    fn deterministic_across_runs() {
        let b = Bmin::new(5, UpPolicy::Straight);
        let cfg = SimConfig::paragon_like();
        let go = || {
            let mut e = Engine::new(&b, cfg.clone(), SinkProgram);
            for (s, d) in [(0u32, 17u32), (3, 22), (9, 30), (16, 2), (21, 8)] {
                e.start(NodeId(s), 0, vec![SendReq::to(NodeId(d), 2048, ())]);
            }
            e.run().1
        };
        let (r1, r2) = (go(), go());
        assert_eq!(format!("{:?}", r1.messages), format!("{:?}", r2.messages));
        assert_eq!(r1.blocked_cycles, r2.blocked_cycles);
    }

    #[test]
    fn adaptive_up_phase_dodges_busy_channel() {
        // Force two climbs from sibling sources (same preferred column) and
        // check the adaptive engine suffers less blocking than the
        // deterministic one.
        let b = Bmin::new(4, UpPolicy::Straight);
        let run = |adaptive: bool| {
            let mut cfg = bare_cfg();
            cfg.adaptive = adaptive;
            let mut e = Engine::new(&b, cfg, SinkProgram);
            // Siblings 0 and 1 both climb to the far half.
            e.start(NodeId(0), 0, vec![SendReq::to(NodeId(12), 4000, ())]);
            e.start(NodeId(1), 0, vec![SendReq::to(NodeId(14), 4000, ())]);
            e.run().1
        };
        let det = run(false);
        let ada = run(true);
        assert!(
            det.blocked_cycles > 0,
            "expected the deterministic run to contend"
        );
        assert!(
            ada.blocked_cycles < det.blocked_cycles,
            "adaptive {} vs deterministic {}",
            ada.blocked_cycles,
            det.blocked_cycles
        );
    }

    #[test]
    fn slow_routers_still_match_prediction() {
        // router_delay > 1: the head crawls, the prediction must track it.
        let m = Mesh::new(&[6, 6]);
        let mut cfg = SimConfig::paragon_like();
        cfg.router_delay = 3;
        for (src, dst, bytes) in [(0u32, 35u32, 0u64), (7, 28, 2048)] {
            let hops = m.distance(NodeId(src), NodeId(dst));
            let r = p2p(&m, &cfg, src, dst, bytes);
            assert_eq!(r.messages[0].latency(), cfg.predict_p2p(hops, bytes));
        }
    }

    #[test]
    fn receive_software_serialises_back_to_back_arrivals() {
        // Two small messages to one node arriving nearly together: the
        // second completes a full t_recv after the first's software ends.
        let m = Mesh::new(&[5]);
        let mut cfg = bare_cfg();
        cfg.software.t_recv = pcm::LinearFn::constant(400.0);
        let mut e = Engine::new(&m, cfg, SinkProgram);
        e.start(NodeId(0), 0, vec![SendReq::to(NodeId(2), 8, ())]);
        e.start(NodeId(4), 0, vec![SendReq::to(NodeId(2), 8, ())]);
        let r = e.run().1;
        let mut done: Vec<Time> = r.messages.iter().map(|m| m.completed).collect();
        done.sort_unstable();
        assert!(
            done[1] >= done[0] + 400,
            "second receive at {} vs first at {}",
            done[1],
            done[0]
        );
    }

    #[test]
    fn buffer_depth_does_not_change_idle_latency() {
        // On an idle network the worm never blocks, so buffering is
        // invisible: p2p latency must be depth-independent.
        let m = Mesh::new(&[6, 6]);
        let base = p2p(&m, &SimConfig::paragon_like(), 0, 35, 4096);
        for depth in [2u64, 16, 1024] {
            let mut cfg = SimConfig::paragon_like();
            cfg.buffer_flits = depth;
            let r = p2p(&m, &cfg, 0, 35, 4096);
            assert_eq!(
                r.messages[0].latency(),
                base.messages[0].latency(),
                "depth {depth}"
            );
        }
    }

    #[test]
    fn deep_buffers_shrink_blocking_footprint() {
        // The long worm of `long_worm_holds_whole_path`, but with buffers
        // deep enough to swallow it: the cross send no longer waits long.
        let m = Mesh::new(&[6]);
        let run = |depth: u64| {
            let mut cfg = bare_cfg();
            cfg.buffer_flits = depth;
            let mut e = Engine::new(&m, cfg, SinkProgram);
            e.start(NodeId(0), 0, vec![SendReq::to(NodeId(5), 8000, ())]);
            e.start(NodeId(2), 100, vec![SendReq::to(NodeId(4), 8, ())]);
            e.run().1
        };
        let shallow = run(1);
        let deep = run(4096);
        assert!(shallow.blocked_cycles > 0);
        assert!(
            deep.blocked_cycles < shallow.blocked_cycles / 4,
            "deep {} vs shallow {}",
            deep.blocked_cycles,
            shallow.blocked_cycles
        );
    }

    #[test]
    fn multiport_ni_overlaps_injections() {
        // Two sends in opposite directions from one node: with one port the
        // second waits for the first worm to clear the injection channel;
        // with two ports they overlap and both finish sooner.
        let run = |ports: usize| {
            let m = Mesh::with_ports(&[5], ports);
            let mut e = Engine::new(&m, bare_cfg(), SinkProgram);
            e.start(
                NodeId(2),
                0,
                vec![
                    SendReq::to(NodeId(0), 8000, ()),
                    SendReq::to(NodeId(4), 8000, ()),
                ],
            );
            e.run().1.last_completion().expect("both sends deliver")
        };
        let one = run(1);
        let two = run(2);
        assert!(two < one, "2-port {} should beat 1-port {}", two, one);
    }

    #[test]
    fn trace_records_full_lifecycle() {
        use crate::trace::{blocking_episodes, channel_occupancy, TraceKind};
        let m = Mesh::new(&[5]);
        let mut cfg = bare_cfg();
        cfg.trace = true;
        let mut e = Engine::new(&m, cfg, SinkProgram);
        e.start(NodeId(0), 0, vec![SendReq::to(NodeId(2), 4000, ())]);
        e.start(NodeId(4), 0, vec![SendReq::to(NodeId(2), 4000, ())]);
        let r = e.run().1;
        // Acquire/release pair counts match the engine's own accounting.
        let acq = r
            .trace
            .iter()
            .filter(|t| t.kind == TraceKind::Acquire)
            .count();
        let rel = r
            .trace
            .iter()
            .filter(|t| t.kind == TraceKind::Release)
            .count();
        assert_eq!(acq, rel);
        assert!(acq >= 8, "two worms across several channels, got {acq}");
        // One of the two worms blocked on the consumption port.
        assert_eq!(blocking_episodes(&r.trace).len(), 1);
        // Occupancy spans are well-formed (from < to) and cover the
        // consumption channel twice.
        let cons = m.graph().consumption(NodeId(2));
        let occ = channel_occupancy(&r.trace);
        let spans = &occ.iter().find(|(c, _)| *c == cons).unwrap().1;
        assert_eq!(spans.len(), 2);
        for (from, to, _) in spans {
            assert!(from < to);
        }
        // Timeline renders without panicking and mentions the channel.
        let text = crate::trace::render_timeline(&r.trace, m.graph(), 5);
        assert!(text.contains("ch"));
    }

    #[test]
    fn trace_empty_when_disabled() {
        let m = Mesh::new(&[4]);
        let mut e = Engine::new(&m, bare_cfg(), SinkProgram);
        e.start(NodeId(0), 0, vec![SendReq::to(NodeId(3), 64, ())]);
        assert!(e.run().1.trace.is_empty());
    }

    #[test]
    #[should_panic(expected = "may not send to itself")]
    fn self_send_panics() {
        let m = Mesh::new(&[4]);
        let mut e = Engine::new(&m, bare_cfg(), SinkProgram);
        e.start(NodeId(0), 0, vec![SendReq::to(NodeId(0), 8, ())]);
    }

    #[test]
    fn empty_run_finishes_at_zero() {
        let m = Mesh::new(&[4]);
        let e = Engine::new(&m, bare_cfg(), SinkProgram);
        let r = e.run().1;
        assert_eq!(r.finish, 0);
        assert!(r.messages.is_empty());
        // An empty run has no completion time — it must not report 0.
        assert_eq!(r.last_completion(), None);
    }

    #[test]
    fn trace_limit_truncates_and_flags() {
        let m = Mesh::new(&[5]);
        let mut cfg = bare_cfg();
        cfg.trace = true;
        cfg.trace_limit = Some(3);
        let mut e = Engine::new(&m, cfg, SinkProgram);
        e.start(NodeId(0), 0, vec![SendReq::to(NodeId(4), 4000, ())]);
        let r = e.run().1;
        assert_eq!(r.trace.len(), 3);
        assert!(r.truncated);
        assert!(r.meta.trace_dropped > 0);
        assert_eq!(r.meta.trace_events, 3);
    }

    #[test]
    fn trace_includes_cpu_spans() {
        use crate::trace::cpu_occupancy;
        let m = Mesh::new(&[4]);
        let mut cfg = SimConfig::paragon_like(); // nonzero t_hold / t_recv
        cfg.trace = true;
        let mut e = Engine::new(&m, cfg.clone(), SinkProgram);
        e.start(NodeId(0), 0, vec![SendReq::to(NodeId(3), 256, ())]);
        let r = e.run().1;
        let cpus = cpu_occupancy(&r.trace);
        // Sender CPU busy for t_hold from pickup; receiver for t_recv.
        let sender = cpus.iter().find(|(n, _)| *n == NodeId(0)).unwrap();
        assert_eq!(sender.1[0].1 - sender.1[0].0, cfg.software.t_hold.eval(256));
        let receiver = cpus.iter().find(|(n, _)| *n == NodeId(3)).unwrap();
        assert_eq!(
            receiver.1[0].1 - receiver.1[0].0,
            cfg.software.t_recv.eval(256)
        );
    }

    #[test]
    fn run_meta_reports_engine_vitals() {
        let m = Mesh::new(&[6]);
        let mut e = Engine::new(&m, bare_cfg(), SinkProgram);
        e.start(NodeId(0), 0, vec![SendReq::to(NodeId(5), 2048, ())]);
        let r = e.run().1;
        assert!(r.meta.events_processed > 0);
        assert_eq!(r.meta.events_scheduled, r.meta.events_processed);
        assert!(r.meta.peak_heap_events >= 1);
        assert!(r.meta.peak_heap_bytes > 0);
        assert_eq!(r.meta.trace_events, 0);
        // Event counts are deterministic even though wall time is not.
        let mut e2 = Engine::new(&m, bare_cfg(), SinkProgram);
        e2.start(NodeId(0), 0, vec![SendReq::to(NodeId(5), 2048, ())]);
        let r2 = e2.run().1;
        assert_eq!(r.meta.events_processed, r2.meta.events_processed);
        assert_eq!(r.meta.peak_heap_events, r2.meta.peak_heap_events);
    }

    #[test]
    fn observer_choice_never_alters_simulation() {
        // The same workload under Null, Counters, Memory, Ring and Custom
        // observers must produce identical simulation outcomes (messages,
        // blocking, finish) — observation is read-only.
        let b = Bmin::new(4, UpPolicy::Straight);
        let run = |sink: Option<crate::obs::TraceSink>| {
            let mut e = Engine::new(&b, bare_cfg(), SinkProgram);
            if let Some(s) = sink {
                e.set_observer(s);
            }
            for (s, d) in [(0u32, 12u32), (1, 14), (5, 9)] {
                e.start(NodeId(s), 0, vec![SendReq::to(NodeId(d), 4000, ())]);
            }
            e.run().1
        };
        struct Nop;
        impl crate::obs::Observer for Nop {}
        let base = run(None);
        for sink in [
            crate::obs::TraceSink::counters(),
            crate::obs::TraceSink::memory(),
            crate::obs::TraceSink::ring(4),
            crate::obs::TraceSink::Custom(Box::new(Nop)),
        ] {
            let r = run(Some(sink));
            assert_eq!(r.messages, base.messages);
            assert_eq!(r.finish, base.finish);
            assert_eq!(r.blocked_cycles, base.blocked_cycles);
            assert_eq!(r.blocked_events, base.blocked_events);
            assert_eq!(r.meta.events_processed, base.meta.events_processed);
            assert_eq!(r.channels, base.channels);
        }
    }

    #[test]
    fn counters_sink_keeps_slot_reuse_and_counts_events() {
        // A relay around a chain delivers messages sequentially, so with
        // slot reuse the worm slab stays at one slot.  The counters-only
        // observer must match the Null baseline's peak heap exactly (reuse
        // stayed on), while a retaining observer grows the slab.
        let m = Mesh::new(&[6]);
        let run = |sink: Option<crate::obs::TraceSink>| {
            let relay = RelayProgram {
                ring: (0..6).map(NodeId).collect(),
                bytes: 256,
            };
            let mut e = Engine::new(&m, bare_cfg(), relay);
            if let Some(s) = sink {
                e.set_observer(s);
            }
            e.start(NodeId(0), 0, vec![SendReq::to(NodeId(1), 256, 8u32)]);
            e.run().1
        };
        let base = run(None);
        let counted = run(Some(crate::obs::TraceSink::counters()));
        assert_eq!(counted.messages, base.messages);
        assert_eq!(
            counted.meta.peak_heap_bytes, base.meta.peak_heap_bytes,
            "counters sink must not disable worm-slab slot reuse"
        );
        let traced = run(Some(crate::obs::TraceSink::memory()));
        assert!(
            traced.meta.peak_heap_bytes > base.meta.peak_heap_bytes,
            "retaining sink should grow the slab (unique ids) and keep a trace"
        );
        // The tallies agree with what the run actually did.
        let c = counted
            .counts
            .expect("counters sink fills SimResult::counts");
        assert_eq!(c.recv_dones, counted.messages.len() as u64);
        let acquires: u64 = counted.channels.iter().map(|t| t.acquires).sum();
        assert_eq!(c.acquires, acquires);
        assert_eq!(c.releases, acquires);
        assert_eq!(base.counts, None);
    }

    #[test]
    fn long_worm_holds_whole_path() {
        // A single long worm across a line: while draining, a cross send
        // through the middle must block until the tail passes.
        let m = Mesh::new(&[6]);
        let cfg = bare_cfg();
        let mut e = Engine::new(&m, cfg.clone(), SinkProgram);
        e.start(NodeId(0), 0, vec![SendReq::to(NodeId(5), 8000, ())]);
        // Starts while the first worm still streams.
        e.start(NodeId(2), 100, vec![SendReq::to(NodeId(4), 8, ())]);
        let r = e.run().1;
        assert_eq!(r.blocked_events, 1);
        let small = r.delivered_to(NodeId(4)).unwrap();
        let big = r.delivered_to(NodeId(5)).unwrap();
        // The small message cannot complete before the big worm's tail
        // cleared the shared channels (just before full drain).
        assert!(
            small.completed > big.completed - 1001,
            "{small:?} vs {big:?}"
        );
    }
}
