//! The software under test.
//!
//! A [`Program`] is the distributed algorithm running on the simulated
//! nodes: the engine delivers completed messages to it and injects the sends
//! it returns.  Unicast-based multicast (paper \[3\]) maps onto this directly:
//! the payload carries the address sub-list a receiver becomes responsible
//! for, and `on_receive` emits the next round of sends.

use pcm::{MsgSize, Time};
use topo::NodeId;

/// A send request emitted by a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendReq<P> {
    /// Destination node (must differ from the sender).
    pub dest: NodeId,
    /// Payload size in bytes (drives flit count and software overheads).
    pub bytes: MsgSize,
    /// Opaque program data carried with the message.
    pub payload: P,
    /// Earliest initiation time.  0 means "as soon as the CPU is free" (the
    /// normal case); temporal contention-avoidance schedulers
    /// (`optmc::temporal`, paper §6) set this to serialise conflicting
    /// senders proactively instead of letting worms block in the network.
    /// Sends are still issued in queue order, so a sender's `not_before`
    /// values must be non-decreasing.
    pub not_before: Time,
}

impl<P> SendReq<P> {
    /// A send with no earliest-start constraint.
    pub fn to(dest: NodeId, bytes: MsgSize, payload: P) -> Self {
        Self {
            dest,
            bytes,
            payload,
            not_before: 0,
        }
    }

    /// Constrain the earliest initiation time.
    pub fn not_before(mut self, t: Time) -> Self {
        self.not_before = t;
        self
    }
}

/// A distributed program driven by message deliveries.
pub trait Program {
    /// Program data carried inside messages.
    type Payload: Clone;

    /// Called when `node` has fully received a message (tail flit consumed
    /// and `t_recv` elapsed) at time `now`.  The returned sends are
    /// initiated back-to-back, `t_hold` apart, starting at `now`.
    fn on_receive(
        &mut self,
        node: NodeId,
        payload: &Self::Payload,
        now: Time,
    ) -> Vec<SendReq<Self::Payload>>;
}

/// A [`Program`] that can be split across simulation shards and merged
/// back after the run.
///
/// The sharded engine (DESIGN.md §15) gives every shard its own program
/// instance so `on_receive` runs locally on the shard that owns the
/// destination node.  `fork` must return an instance that behaves
/// identically for `on_receive` but starts with empty *accumulated state*
/// (delivery counters, logs); `absorb` folds a forked instance's
/// accumulated state back into `self`.  Programs whose `on_receive`
/// depends on which other nodes have already delivered cannot implement
/// this faithfully and should not opt in.
pub trait ShardProgram: Program + Send {
    /// A behaviourally identical instance with empty accumulated state.
    fn fork(&self) -> Self;

    /// Fold a forked instance's accumulated state back into `self`.
    fn absorb(&mut self, other: Self);
}

/// A trivial program that never forwards — point-to-point traffic only.
/// Useful for calibration runs and engine tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct SinkProgram;

impl Program for SinkProgram {
    type Payload = ();

    fn on_receive(&mut self, _node: NodeId, _payload: &(), _now: Time) -> Vec<SendReq<()>> {
        Vec::new()
    }
}

impl ShardProgram for SinkProgram {
    fn fork(&self) -> Self {
        SinkProgram
    }

    fn absorb(&mut self, _other: Self) {}
}

/// A relay program: forwards the message along a fixed ring of nodes a
/// given number of times.  Exercises receive-then-send chains in tests.
#[derive(Debug, Clone)]
pub struct RelayProgram {
    /// The ring of nodes (message hops `ring[i] → ring[i+1]`).
    pub ring: Vec<NodeId>,
    /// Message size for every hop.
    pub bytes: MsgSize,
}

impl Program for RelayProgram {
    /// Number of forwarding hops remaining.
    type Payload = u32;

    fn on_receive(&mut self, node: NodeId, remaining: &u32, _now: Time) -> Vec<SendReq<u32>> {
        if *remaining == 0 {
            return Vec::new();
        }
        let here = self
            .ring
            .iter()
            .position(|&n| n == node)
            .expect("relay delivered to a node outside the ring");
        let next = self.ring[(here + 1) % self.ring.len()];
        vec![SendReq::to(next, self.bytes, remaining - 1)]
    }
}

impl ShardProgram for RelayProgram {
    fn fork(&self) -> Self {
        self.clone()
    }

    fn absorb(&mut self, _other: Self) {}
}
