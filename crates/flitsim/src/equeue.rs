//! The engine's event queue — a calendar (bucket-ring) queue with a heap
//! fallback, order-identical to the `BinaryHeap<(Time, prio, seq)>` it
//! replaced.
//!
//! # Ordering contract
//!
//! Events pop in ascending `(t, prio, seq)` order, where `seq` is the
//! global push counter: same-time releases (prio 0) before same-time head
//! movements (prio 1), FIFO within a priority class.  This is the exact
//! order of the previous `BinaryHeap<Reverse<(Time, u8, u64, EventKey)>>`,
//! so simulation results are bit-identical — the unit tests below pin the
//! equivalence against a reference heap under randomized workloads.
//!
//! # Structure
//!
//! Simulated time in a wormhole run advances in small steps (a router delay
//! or a drain tail), so nearly every pending event lives within a few
//! thousand cycles of the cursor.  The queue exploits that:
//!
//! * a power-of-two ring of [`SLOTS`] buckets, slot `t & (SLOTS-1)`, holds
//!   every event with `cursor <= t < cursor + SLOTS` as an intrusive singly
//!   linked list over a recycled node pool (no per-event allocation in
//!   steady state);
//! * an occupancy bitmap finds the next non-empty bucket with a handful of
//!   word scans;
//! * far-future events (campaign `not_before` staggering) overflow into a
//!   plain binary heap and migrate into the ring whenever the cursor
//!   advances past the point where they fit;
//! * events scheduled *before* the cursor — legal: deep-buffer release
//!   clamping can emit a release older than the event being processed — go
//!   to a second heap that is always drained first (its entries are
//!   strictly earlier than anything bucketed).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pcm::Time;

/// Ring size in buckets (cycles of look-ahead before the overflow heap).
const SLOTS: usize = 4096;
const NIL: u32 = u32::MAX;

/// Memory footprint of one pending bucketed event, for the peak-heap
/// estimate in `RunMeta`.
pub(crate) const ENTRY_BYTES: usize = std::mem::size_of::<Node>();

#[derive(Clone, Copy)]
struct Node {
    t: Time,
    /// `(prio << 62) | seq` — one comparison orders priority then FIFO.
    ord: u64,
    ev: u64,
    next: u32,
}

/// The calendar queue.  `push` takes `(time, priority, payload)`; `pop`
/// returns `(time, payload)` in the contract order.
pub(crate) struct EventQueue {
    slots: Box<[u32]>,
    occupied: Box<[u64]>,
    cursor: Time,
    nodes: Vec<Node>,
    free: u32,
    seq: u64,
    len: usize,
    bucketed: usize,
    overflow: BinaryHeap<Reverse<(Time, u64, u64)>>,
    past: BinaryHeap<Reverse<(Time, u64, u64)>>,
}

impl EventQueue {
    pub fn new() -> Self {
        Self {
            slots: vec![NIL; SLOTS].into_boxed_slice(),
            occupied: vec![0u64; SLOTS / 64].into_boxed_slice(),
            cursor: 0,
            nodes: Vec::new(),
            free: NIL,
            seq: 0,
            len: 0,
            bucketed: 0,
            overflow: BinaryHeap::new(),
            past: BinaryHeap::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn push(&mut self, t: Time, prio: u8, ev: u64) {
        debug_assert!(prio <= 1, "priorities are 0 (release) or 1");
        self.seq += 1;
        let ord = (u64::from(prio) << 62) | self.seq;
        self.len += 1;
        if t < self.cursor {
            self.past.push(Reverse((t, ord, ev)));
        } else if t >= self.cursor.saturating_add(SLOTS as Time) {
            self.overflow.push(Reverse((t, ord, ev)));
        } else {
            self.bucket(t, ord, ev);
        }
    }

    pub fn pop(&mut self) -> Option<(Time, u64)> {
        if self.len == 0 {
            return None;
        }
        // Past events are strictly earlier than everything bucketed or
        // overflowed (they were pushed with t < cursor, and the cursor
        // never moves backwards), so they drain first, in heap order.
        if let Some(Reverse((t, _, ev))) = self.past.pop() {
            self.len -= 1;
            return Some((t, ev));
        }
        if self.bucketed == 0 {
            // Everything pending is far-future: jump the window to it.
            let &Reverse((t, _, _)) = self.overflow.peek().expect("len accounting broke");
            self.cursor = t;
            self.migrate();
        }
        let slot = self.next_occupied();
        let (t, ev) = self.unlink_min(slot);
        self.bucketed -= 1;
        self.len -= 1;
        if t > self.cursor {
            self.cursor = t;
            self.migrate();
        }
        Some((t, ev))
    }

    fn bucket(&mut self, t: Time, ord: u64, ev: u64) {
        let slot = (t as usize) & (SLOTS - 1);
        let node = Node {
            t,
            ord,
            ev,
            next: self.slots[slot],
        };
        let idx = if self.free == NIL {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        } else {
            let idx = self.free;
            self.free = self.nodes[idx as usize].next;
            self.nodes[idx as usize] = node;
            idx
        };
        self.slots[slot] = idx;
        self.occupied[slot >> 6] |= 1 << (slot & 63);
        self.bucketed += 1;
    }

    /// Move every overflow event now inside the ring window into buckets.
    /// Must run on every cursor advance: an overflow event left outside the
    /// ring while bucketed events at later times exist would pop out of
    /// order.
    fn migrate(&mut self) {
        let horizon = self.cursor.saturating_add(SLOTS as Time);
        while let Some(&Reverse((t, ord, ev))) = self.overflow.peek() {
            if t >= horizon {
                break;
            }
            self.overflow.pop();
            self.bucket(t, ord, ev);
        }
    }

    /// First occupied slot at or ring-wise after the cursor's slot.  Ring
    /// order from the cursor is time order: every bucketed `t` lies in
    /// `[cursor, cursor + SLOTS)`, which maps injectively onto the ring.
    fn next_occupied(&self) -> usize {
        let start = (self.cursor as usize) & (SLOTS - 1);
        let word = self.occupied[start >> 6] >> (start & 63);
        if word != 0 {
            return start + word.trailing_zeros() as usize;
        }
        let words = self.occupied.len();
        for k in 1..=words {
            let i = ((start >> 6) + k) % words;
            let w = self.occupied[i];
            if w != 0 {
                return (i << 6) + w.trailing_zeros() as usize;
            }
        }
        unreachable!("bucketed > 0 but no occupied slot")
    }

    /// Unlink and recycle the minimum-(t, ord) node of a slot's list.  All
    /// nodes in one slot share the same `t` (the window is injective per
    /// slot), so this is the FIFO/priority minimum of one instant.
    fn unlink_min(&mut self, slot: usize) -> (Time, u64) {
        let head = self.slots[slot];
        debug_assert_ne!(head, NIL);
        let mut best = head;
        let mut best_prev = NIL;
        let mut prev = head;
        let mut cur = self.nodes[head as usize].next;
        while cur != NIL {
            let (c, b) = (&self.nodes[cur as usize], &self.nodes[best as usize]);
            if (c.t, c.ord) < (b.t, b.ord) {
                best = cur;
                best_prev = prev;
            }
            prev = cur;
            cur = self.nodes[cur as usize].next;
        }
        let after = self.nodes[best as usize].next;
        if best_prev == NIL {
            self.slots[slot] = after;
        } else {
            self.nodes[best_prev as usize].next = after;
        }
        if self.slots[slot] == NIL {
            self.occupied[slot >> 6] &= !(1 << (slot & 63));
        }
        let (t, ev) = (self.nodes[best as usize].t, self.nodes[best as usize].ev);
        self.nodes[best as usize].next = self.free;
        self.free = best;
        (t, ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: the exact heap the engine used before.
    #[derive(Default)]
    struct RefHeap {
        heap: BinaryHeap<Reverse<(Time, u8, u64, u64)>>,
        seq: u64,
    }

    impl RefHeap {
        fn push(&mut self, t: Time, prio: u8, ev: u64) {
            self.seq += 1;
            self.heap.push(Reverse((t, prio, self.seq, ev)));
        }

        fn pop(&mut self) -> Option<(Time, u64)> {
            self.heap.pop().map(|Reverse((t, _, _, ev))| (t, ev))
        }
    }

    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    fn drive(seed: u64, pushes: usize, time_spread: Time) {
        let mut rng = Lcg(seed);
        let mut q = EventQueue::new();
        let mut r = RefHeap::default();
        let mut now: Time = 0;
        let mut pushed = 0usize;
        let mut ev = 0u64;
        while pushed < pushes || q.len() > 0 {
            let do_push = pushed < pushes && (q.len() == 0 || !rng.next().is_multiple_of(3));
            if do_push {
                // Mix near-future, far-future (overflow) and, once time has
                // advanced, past-of-cursor times (the release-clamp case).
                let t = match rng.next() % 10 {
                    0 => now.saturating_sub(rng.next() % 50),
                    1 => now + SLOTS as Time + rng.next() % time_spread,
                    _ => now + rng.next() % 700,
                };
                let prio = (rng.next() % 2) as u8;
                ev += 1;
                q.push(t, prio, ev);
                r.push(t, prio, ev);
                pushed += 1;
            } else {
                let got = q.pop();
                let want = r.pop();
                assert_eq!(got, want, "divergence at seed {seed} after {pushed} pushes");
                if let Some((t, _)) = got {
                    now = now.max(t);
                }
            }
        }
        assert_eq!(q.pop(), None);
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn matches_reference_heap_order_exactly() {
        for seed in 0..20 {
            drive(seed, 800, 100_000);
        }
    }

    #[test]
    fn far_future_staggering_round_trips_through_overflow() {
        // Campaign-style: a burst of events spread over many ring windows.
        drive(99, 400, 50_000_000);
    }

    #[test]
    fn same_time_releases_beat_head_movements() {
        let mut q = EventQueue::new();
        q.push(10, 1, 100);
        q.push(10, 0, 200);
        q.push(10, 1, 101);
        q.push(10, 0, 201);
        assert_eq!(q.pop(), Some((10, 200)));
        assert_eq!(q.pop(), Some((10, 201)));
        assert_eq!(q.pop(), Some((10, 100)));
        assert_eq!(q.pop(), Some((10, 101)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn past_events_pop_before_bucketed_ones() {
        let mut q = EventQueue::new();
        q.push(1000, 1, 1);
        assert_eq!(q.pop(), Some((1000, 1)));
        // Cursor is now 1000; a clamp-style earlier event must still come
        // out before anything later, at its own (unclamped) time.
        q.push(400, 0, 2);
        q.push(1001, 1, 3);
        assert_eq!(q.pop(), Some((400, 2)));
        assert_eq!(q.pop(), Some((1001, 3)));
    }

    #[test]
    fn node_pool_recycles_instead_of_growing() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            for i in 0..8 {
                q.push(round * 10 + i, 1, i);
            }
            for _ in 0..8 {
                q.pop().unwrap();
            }
        }
        assert!(
            q.nodes.len() <= 8,
            "pool grew to {} for 8 concurrent events",
            q.nodes.len()
        );
    }
}
