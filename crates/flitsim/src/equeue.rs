//! The engine's event queue — a calendar (bucket-ring) queue with a heap
//! fallback, popping in ascending `(t, ord)` order.
//!
//! # Ordering contract
//!
//! Events pop in ascending `(t, ord)` order, where `ord` is an **intrinsic**
//! ordering key built by the engine from the event's priority class, kind,
//! and the identity of the entity it drives (channel id, node id, or the
//! worm's birth rank).  Intrinsic means *execution-order independent*: the
//! key of an event never depends on how many other events were scheduled
//! before it, only on what the event is.  That property is what lets the
//! sharded engine (`crate::shard`) merge per-shard event streams and still
//! pop in exactly the order the sequential engine would — a push-counter
//! tie-break (the queue's previous contract) cannot be reproduced across
//! concurrently executing shards, an intrinsic key can.
//!
//! The engine guarantees `(t, ord)` pairs are unique: at one instant a
//! channel has at most one pending release, a node one pending kick, and a
//! worm one pending event of each kind (see `Engine::ord_of`).
//!
//! # Structure
//!
//! Simulated time in a wormhole run advances in small steps (a router delay
//! or a drain tail), so nearly every pending event lives within a few
//! thousand cycles of the cursor.  The queue exploits that:
//!
//! * a power-of-two ring of [`SLOTS`] buckets, slot `t & (SLOTS-1)`, holds
//!   every event with `cursor <= t < cursor + SLOTS` as an intrusive singly
//!   linked list over a recycled node pool (no per-event allocation in
//!   steady state);
//! * an occupancy bitmap finds the next non-empty bucket with a handful of
//!   word scans;
//! * far-future events (campaign `not_before` staggering) overflow into a
//!   plain binary heap and migrate into the ring whenever the cursor
//!   advances past the point where they fit;
//! * events scheduled *before* the cursor — legal: deep-buffer release
//!   clamping can emit a release older than the event being processed — go
//!   to a second heap that is always drained first (its entries are
//!   strictly earlier than anything bucketed).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pcm::Time;

/// Ring size in buckets (cycles of look-ahead before the overflow heap).
const SLOTS: usize = 4096;
const NIL: u32 = u32::MAX;

/// Memory footprint of one pending bucketed event, for the peak-heap
/// estimate in `RunMeta`.
pub(crate) const ENTRY_BYTES: usize = std::mem::size_of::<Node>();

#[derive(Clone, Copy)]
struct Node {
    t: Time,
    /// The intrinsic ordering key (priority, kind, entity rank).
    ord: u64,
    ev: u64,
    next: u32,
}

/// The calendar queue.  `push` takes `(time, ord, payload)`; `pop` returns
/// `(time, ord, payload)` in ascending `(time, ord)` order.
pub(crate) struct EventQueue {
    slots: Box<[u32]>,
    occupied: Box<[u64]>,
    cursor: Time,
    nodes: Vec<Node>,
    free: u32,
    len: usize,
    bucketed: usize,
    overflow: BinaryHeap<Reverse<(Time, u64, u64)>>,
    past: BinaryHeap<Reverse<(Time, u64, u64)>>,
}

impl EventQueue {
    pub fn new() -> Self {
        Self {
            slots: vec![NIL; SLOTS].into_boxed_slice(),
            occupied: vec![0u64; SLOTS / 64].into_boxed_slice(),
            cursor: 0,
            nodes: Vec::new(),
            free: NIL,
            len: 0,
            bucketed: 0,
            overflow: BinaryHeap::new(),
            past: BinaryHeap::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Time and ord of the earliest pending event without popping it.
    pub fn peek_key(&self) -> Option<(Time, u64)> {
        if self.len == 0 {
            return None;
        }
        if let Some(&Reverse((t, ord, _))) = self.past.peek() {
            return Some((t, ord));
        }
        if self.bucketed == 0 {
            let &Reverse((t, ord, _)) = self.overflow.peek().expect("len accounting broke");
            return Some((t, ord));
        }
        let slot = self.next_occupied();
        let mut cur = self.slots[slot];
        debug_assert_ne!(cur, NIL);
        let mut best = (self.nodes[cur as usize].t, self.nodes[cur as usize].ord);
        cur = self.nodes[cur as usize].next;
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            best = best.min((n.t, n.ord));
            cur = n.next;
        }
        // An overflow entry can never beat a bucketed one (it lies beyond
        // the ring window), but the past heap was already handled above.
        Some(best)
    }

    pub fn push(&mut self, t: Time, ord: u64, ev: u64) {
        self.len += 1;
        if t < self.cursor {
            self.past.push(Reverse((t, ord, ev)));
        } else if t >= self.cursor.saturating_add(SLOTS as Time) {
            self.overflow.push(Reverse((t, ord, ev)));
        } else {
            self.bucket(t, ord, ev);
        }
    }

    pub fn pop(&mut self) -> Option<(Time, u64, u64)> {
        if self.len == 0 {
            return None;
        }
        // Past events are strictly earlier than everything bucketed or
        // overflowed (they were pushed with t < cursor, and the cursor
        // never moves backwards), so they drain first, in heap order.
        if let Some(Reverse((t, ord, ev))) = self.past.pop() {
            self.len -= 1;
            return Some((t, ord, ev));
        }
        if self.bucketed == 0 {
            // Everything pending is far-future: jump the window to it.
            let &Reverse((t, _, _)) = self.overflow.peek().expect("len accounting broke");
            self.cursor = t;
            self.migrate();
        }
        let slot = self.next_occupied();
        let (t, ord, ev) = self.unlink_min(slot);
        self.bucketed -= 1;
        self.len -= 1;
        if t > self.cursor {
            self.cursor = t;
            self.migrate();
        }
        Some((t, ord, ev))
    }

    /// Visit every pending event (in no particular order) — the
    /// exhaustive oracle the [`Self::scan_ordered`] tests compare
    /// against.
    #[cfg(test)]
    pub fn for_each(&self, mut f: impl FnMut(Time, u64)) {
        for &Reverse((t, _, ev)) in self.past.iter().chain(self.overflow.iter()) {
            f(t, ev);
        }
        let mut visited = 0usize;
        for word in 0..self.occupied.len() {
            let mut bits = self.occupied[word];
            while bits != 0 {
                let slot = (word << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let mut cur = self.slots[slot];
                while cur != NIL {
                    let n = &self.nodes[cur as usize];
                    f(n.t, n.ev);
                    visited += 1;
                    cur = n.next;
                }
            }
        }
        debug_assert_eq!(visited, self.bucketed);
    }

    /// Visit pending events in time-banded order with early exit — the
    /// sharded engine's per-destination emission scan.  `f` returns the
    /// caller's current *cutoff*: a time at or beyond which further events
    /// cannot change the caller's answer.  That contract is sound only for
    /// answers monotone in event time (true for `t + eps` lower bounds
    /// with `eps >= 0`).  Bands, earliest first:
    ///
    /// 1. the past heap — every entry precedes the cursor, visited in
    ///    full (the band is unordered internally);
    /// 2. the bucketed ring in ascending slot time — the walk stops at
    ///    the first slot at or beyond the cutoff;
    /// 3. the overflow heap — every entry is at `cursor + SLOTS` or
    ///    later, so the whole band is skipped when the cutoff allows,
    ///    visited in full otherwise.
    pub fn scan_ordered(&self, mut f: impl FnMut(Time, u64) -> Time) {
        let mut cutoff = Time::MAX;
        for &Reverse((t, _, ev)) in &self.past {
            cutoff = f(t, ev);
        }
        let start = (self.cursor as usize) & (SLOTS - 1);
        let mut remaining = self.bucketed;
        let mut step = 0usize;
        while step < SLOTS && remaining > 0 {
            if self.cursor.saturating_add(step as Time) >= cutoff {
                return; // every later band is at or past the cutoff too
            }
            let slot = (start + step) & (SLOTS - 1);
            let mut cur = self.slots[slot];
            while cur != NIL {
                let n = &self.nodes[cur as usize];
                cutoff = f(n.t, n.ev);
                remaining -= 1;
                cur = n.next;
            }
            step += 1;
        }
        if !self.overflow.is_empty() && self.cursor.saturating_add(SLOTS as Time) < cutoff {
            for &Reverse((t, _, ev)) in &self.overflow {
                f(t, ev); // heap order is arbitrary: no further pruning possible
            }
        }
    }

    fn bucket(&mut self, t: Time, ord: u64, ev: u64) {
        let slot = (t as usize) & (SLOTS - 1);
        let node = Node {
            t,
            ord,
            ev,
            next: self.slots[slot],
        };
        let idx = if self.free == NIL {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        } else {
            let idx = self.free;
            self.free = self.nodes[idx as usize].next;
            self.nodes[idx as usize] = node;
            idx
        };
        self.slots[slot] = idx;
        self.occupied[slot >> 6] |= 1 << (slot & 63);
        self.bucketed += 1;
    }

    /// Move every overflow event now inside the ring window into buckets.
    /// Must run on every cursor advance: an overflow event left outside the
    /// ring while bucketed events at later times exist would pop out of
    /// order.
    fn migrate(&mut self) {
        let horizon = self.cursor.saturating_add(SLOTS as Time);
        while let Some(&Reverse((t, ord, ev))) = self.overflow.peek() {
            if t >= horizon {
                break;
            }
            self.overflow.pop();
            self.bucket(t, ord, ev);
        }
    }

    /// First occupied slot at or ring-wise after the cursor's slot.  Ring
    /// order from the cursor is time order: every bucketed `t` lies in
    /// `[cursor, cursor + SLOTS)`, which maps injectively onto the ring.
    fn next_occupied(&self) -> usize {
        let start = (self.cursor as usize) & (SLOTS - 1);
        let word = self.occupied[start >> 6] >> (start & 63);
        if word != 0 {
            return start + word.trailing_zeros() as usize;
        }
        let words = self.occupied.len();
        for k in 1..=words {
            let i = ((start >> 6) + k) % words;
            let w = self.occupied[i];
            if w != 0 {
                return (i << 6) + w.trailing_zeros() as usize;
            }
        }
        unreachable!("bucketed > 0 but no occupied slot")
    }

    /// Unlink and recycle the minimum-(t, ord) node of a slot's list.  All
    /// nodes in one slot share the same `t` (the window is injective per
    /// slot), so this is the kind/rank minimum of one instant.
    fn unlink_min(&mut self, slot: usize) -> (Time, u64, u64) {
        let head = self.slots[slot];
        debug_assert_ne!(head, NIL);
        let mut best = head;
        let mut best_prev = NIL;
        let mut prev = head;
        let mut cur = self.nodes[head as usize].next;
        while cur != NIL {
            let (c, b) = (&self.nodes[cur as usize], &self.nodes[best as usize]);
            if (c.t, c.ord) < (b.t, b.ord) {
                best = cur;
                best_prev = prev;
            }
            prev = cur;
            cur = self.nodes[cur as usize].next;
        }
        let after = self.nodes[best as usize].next;
        if best_prev == NIL {
            self.slots[slot] = after;
        } else {
            self.nodes[best_prev as usize].next = after;
        }
        if self.slots[slot] == NIL {
            self.occupied[slot >> 6] &= !(1 << (slot & 63));
        }
        let n = self.nodes[best as usize];
        self.nodes[best as usize].next = self.free;
        self.free = best;
        (n.t, n.ord, n.ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: a plain heap over the same `(t, ord)` key.
    #[derive(Default)]
    struct RefHeap {
        heap: BinaryHeap<Reverse<(Time, u64, u64)>>,
    }

    impl RefHeap {
        fn push(&mut self, t: Time, ord: u64, ev: u64) {
            self.heap.push(Reverse((t, ord, ev)));
        }

        fn pop(&mut self) -> Option<(Time, u64, u64)> {
            self.heap.pop().map(|Reverse(k)| k)
        }
    }

    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    fn drive(seed: u64, pushes: usize, time_spread: Time) {
        let mut rng = Lcg(seed);
        let mut q = EventQueue::new();
        let mut r = RefHeap::default();
        let mut now: Time = 0;
        let mut pushed = 0usize;
        let mut ev = 0u64;
        while pushed < pushes || !q.is_empty() {
            let do_push = pushed < pushes && (q.is_empty() || !rng.next().is_multiple_of(3));
            if do_push {
                // Mix near-future, far-future (overflow) and, once time has
                // advanced, past-of-cursor times (the release-clamp case).
                let t = match rng.next() % 10 {
                    0 => now.saturating_sub(rng.next() % 50),
                    1 => now + SLOTS as Time + rng.next() % time_spread,
                    _ => now + rng.next() % 700,
                };
                // Unique intrinsic ords, as the engine guarantees: the
                // counter stands in for a (prio, kind, rank) key.
                ev += 1;
                let ord = (rng.next() % 2) << 63 | ev;
                q.push(t, ord, ev);
                r.push(t, ord, ev);
                pushed += 1;
            } else {
                assert_eq!(
                    q.peek_key(),
                    r.heap.peek().map(|&Reverse((t, o, _))| (t, o))
                );
                let got = q.pop();
                let want = r.pop();
                assert_eq!(got, want, "divergence at seed {seed} after {pushed} pushes");
                if let Some((t, _, _)) = got {
                    now = now.max(t);
                }
            }
        }
        assert_eq!(q.pop(), None);
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn matches_reference_heap_order_exactly() {
        for seed in 0..20 {
            drive(seed, 800, 100_000);
        }
    }

    #[test]
    fn far_future_staggering_round_trips_through_overflow() {
        // Campaign-style: a burst of events spread over many ring windows.
        drive(99, 400, 50_000_000);
    }

    #[test]
    fn lower_ord_pops_first_at_one_instant() {
        let mut q = EventQueue::new();
        q.push(10, 1 << 63 | 7, 100);
        q.push(10, 3, 200);
        q.push(10, 1 << 63 | 2, 101);
        q.push(10, 9, 201);
        assert_eq!(q.pop(), Some((10, 3, 200)));
        assert_eq!(q.pop(), Some((10, 9, 201)));
        assert_eq!(q.pop(), Some((10, 1 << 63 | 2, 101)));
        assert_eq!(q.pop(), Some((10, 1 << 63 | 7, 100)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn past_events_pop_before_bucketed_ones() {
        let mut q = EventQueue::new();
        q.push(1000, 1, 1);
        assert_eq!(q.pop(), Some((1000, 1, 1)));
        // Cursor is now 1000; a clamp-style earlier event must still come
        // out before anything later, at its own (unclamped) time.
        q.push(400, 2, 2);
        q.push(1001, 3, 3);
        assert_eq!(q.peek_key(), Some((400, 2)));
        assert_eq!(q.pop(), Some((400, 2, 2)));
        assert_eq!(q.pop(), Some((1001, 3, 3)));
    }

    #[test]
    fn for_each_visits_every_pending_event() {
        let mut q = EventQueue::new();
        q.push(1000, 1, 1);
        assert_eq!(q.pop(), Some((1000, 1, 1))); // cursor at 1000
        q.push(5, 2, 2); // past heap
        q.push(1200, 3, 3); // bucketed
        q.push(1_000_000, 4, 4); // overflow heap
        let mut seen: Vec<(Time, u64)> = Vec::new();
        q.for_each(|t, ev| seen.push((t, ev)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(5, 2), (1200, 3), (1_000_000, 4)]);
    }

    #[test]
    fn scan_ordered_with_open_cutoff_visits_everything() {
        let mut q = EventQueue::new();
        q.push(1000, 1, 1);
        assert_eq!(q.pop(), Some((1000, 1, 1))); // cursor at 1000
        q.push(5, 2, 2); // past heap
        q.push(1200, 3, 3); // bucketed
        q.push(1_000_000, 4, 4); // overflow heap
        let mut seen: Vec<(Time, u64)> = Vec::new();
        q.scan_ordered(|t, ev| {
            seen.push((t, ev));
            Time::MAX
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![(5, 2), (1200, 3), (1_000_000, 4)]);
    }

    #[test]
    fn scan_ordered_min_bound_matches_full_scan() {
        // Soundness property: for a monotone `min(t + eps)` answer, the
        // early-exit scan must produce exactly what a full scan does, on
        // arbitrary past/bucketed/overflow mixes.
        for seed in 0..12u64 {
            let mut rng = Lcg(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1);
            let mut q = EventQueue::new();
            // Advance the cursor so past-of-cursor pushes are possible.
            q.push(2000, 0, 0);
            q.pop();
            for ev in 1..400u64 {
                let t = match rng.next() % 10 {
                    0 => 2000u64.saturating_sub(rng.next() % 500),
                    1 => 2000 + SLOTS as Time + rng.next() % 100_000,
                    _ => 2000 + rng.next() % 3000,
                };
                q.push(t, ev, ev);
            }
            let eps = |ev: u64| (ev.wrapping_mul(2654435761) % 900) as Time;
            let mut want = Time::MAX;
            q.for_each(|t, ev| want = want.min(t.saturating_add(eps(ev))));
            let mut got = Time::MAX;
            q.scan_ordered(|t, ev| {
                got = got.min(t.saturating_add(eps(ev)));
                got
            });
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn node_pool_recycles_instead_of_growing() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            for i in 0..8 {
                q.push(round * 10 + i, i, i);
            }
            for _ in 0..8 {
                q.pop().unwrap();
            }
        }
        assert!(
            q.nodes.len() <= 8,
            "pool grew to {} for 8 concurrent events",
            q.nodes.len()
        );
    }
}
