//! # `flitsim` — a flit-level wormhole network simulator
//!
//! The substrate the paper's evaluation runs on (§5: "we implement a
//! flit-level simulator for both wormhole-switched mesh and
//! wormhole-switched BMIN topologies").  The authors' simulator was never
//! released; this is a from-scratch event-driven reimplementation of the
//! mechanisms the paper depends on:
//!
//! * **Wormhole switching.**  A message is a *worm* of `L` flits.  The head
//!   flit acquires directed channels hop by hop (`router_delay` cycles per
//!   hop); body flits stream behind at one flit per cycle through single-flit
//!   channel buffers; a blocked head *holds every channel it has acquired*
//!   until the tail passes — the mechanism that turns scheduling mistakes
//!   into the contention the paper studies.
//! * **One-port architecture.**  Each node owns exactly one injection and
//!   one consumption channel (paper §5), so outgoing and incoming messages
//!   serialise at the network interface.
//! * **Software layer.**  Send operations charge `t_hold(m)` of CPU
//!   occupancy (gating back-to-back sends) and `t_send(m)` of latency before
//!   the first flit enters the network; receivers complete `t_recv(m)` after
//!   consuming the tail flit.  These are the parameters of the `pcm` model,
//!   so a simulated machine can be *measured* exactly like real hardware.
//! * **Adaptive routing hooks.**  Topologies expose preference-ordered
//!   candidate channels; with [`SimConfig::adaptive`] the head takes the
//!   first *free* candidate (the BMIN's turnaround up-phase), otherwise it
//!   waits for the first-preference channel (deterministic XY).
//!
//! Programs (the software under test — here, unicast-based multicast) hook
//! in through the [`Program`] trait: the engine calls
//! [`Program::on_receive`] when a message completes and injects whatever
//! sends the program returns.
//!
//! ## Timing model fidelity
//!
//! The engine is event-driven but cycle-accurate for head movement, channel
//! occupancy and drain bandwidth under the default `router_delay = 1`.  Two
//! documented approximations: body flits are assumed packed immediately
//! behind the head (ideal backpressure propagation — channel release can be
//! pessimistic by at most a stall duration), and drain proceeds at one
//! flit/cycle once the head reaches the consumption channel (exact for
//! `router_delay = 1`).
//!
//! ```
//! use flitsim::{Engine, SendReq, SimConfig};
//! use flitsim::program::SinkProgram;
//! use topo::{Mesh, NodeId, Topology};
//!
//! let mesh = Mesh::new(&[16, 16]);
//! let cfg = SimConfig::paragon_like();
//! let mut engine = Engine::new(&mesh, cfg.clone(), SinkProgram);
//! engine.start(NodeId(0), 0, vec![SendReq::to(NodeId(255), 4096, ())]);
//! let (_, result) = engine.run();
//!
//! // On an idle network the simulator reproduces the analytic latency
//! // exactly — the consistency the whole methodology rests on.
//! let hops = mesh.distance(NodeId(0), NodeId(255));
//! assert_eq!(result.messages[0].latency(), cfg.predict_p2p(hops, 4096));
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
mod equeue;
pub mod heatmap;
pub mod metrics;
pub mod obs;
pub mod perfetto;
pub mod program;
mod shard;
pub mod stats;
pub mod trace;

pub use config::{SimConfig, SoftwareModel};
pub use engine::Engine;
pub use obs::{EventCounts, Histogram, Metrics, Observer, PhaseBreakdown, RunMeta, TraceSink};
pub use program::{Program, SendReq};
pub use stats::{ChannelTelemetry, MessageRecord, SimResult};

/// Simulation time in cycles (shared with the `pcm` model).
pub type Time = pcm::Time;
