//! Simulator configuration: hardware constants and the software-overhead
//! model.

use pcm::{CommParams, LinearFn, MsgSize, Time};
use serde::{Deserialize, Serialize};

/// Software (operating system / messaging library) overheads, per message
/// size — the measurable quantities of the parameterized model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftwareModel {
    /// Latency from send initiation until the first flit may enter the
    /// injection channel.
    pub t_send: LinearFn,
    /// Latency from tail-flit consumption until the receiving process owns
    /// the message (and, in a multicast, may start forwarding).
    pub t_recv: LinearFn,
    /// CPU occupancy of a send: the next send from the same node may not
    /// *initiate* earlier than this after the previous one.
    pub t_hold: LinearFn,
}

impl SoftwareModel {
    /// Zero software overhead — raw hardware latencies, useful in unit
    /// tests.
    pub fn zero() -> Self {
        Self {
            t_send: LinearFn::zero(),
            t_recv: LinearFn::zero(),
            t_hold: LinearFn::zero(),
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Flit width in bytes.
    pub flit_bytes: u64,
    /// Header flits prepended to every message (routing info + the multicast
    /// address list ride here).
    pub header_flits: u64,
    /// Cycles for the head flit to traverse one channel (router pipeline
    /// latency).
    pub router_delay: Time,
    /// Flit capacity of each channel's buffer (≥ 1).  Deeper buffers let a
    /// worm compress into fewer channels, shrinking the footprint it holds
    /// while blocked — the classic wormhole vs virtual-cut-through spectrum
    /// (ablated in `ablation_buffers`).
    pub buffer_flits: u64,
    /// Whether a blocked head may take a lower-preference routing candidate
    /// (BMIN adaptive up-phase).  Deterministic topologies offer a single
    /// candidate, so this has no effect on them.
    pub adaptive: bool,
    /// Bytes of header payload per destination address carried by a
    /// unicast-based multicast message (paper §3: "each message carries the
    /// addresses of the destinations for which the receiving node is
    /// responsible").  0 (the default) folds the list into the header flit —
    /// the approximation the analytic model makes; a realistic value (e.g.
    /// 4) lets the `ablation_addr_overhead` experiment quantify the model
    /// error that approximation hides.
    pub addr_bytes: u64,
    /// Record a channel-level event trace into [`crate::SimResult::trace`]
    /// (see [`crate::trace`]).  Off by default — traces grow with message
    /// count × path length.
    pub trace: bool,
    /// Upper bound on retained trace events when `trace` is set: events
    /// past the limit are dropped (and counted), and
    /// [`crate::SimResult::truncated`] is raised.  `None` retains
    /// everything.  Ignored when a custom observer is installed via
    /// [`crate::Engine::set_observer`].
    pub trace_limit: Option<usize>,
    /// Worker threads for [`crate::Engine::run_auto`]: the topology is
    /// partitioned into this many shards, each running its own event queue
    /// over its sub-topology, synchronised in conservative time windows.
    /// Results are bit-identical to a sequential run.  `1` (the default)
    /// runs sequentially; configurations the sharded engine cannot honor
    /// exactly (tracing observers, worms short enough to violate its
    /// release-lookahead precondition) fall back to the sequential path and
    /// bump the `flitsim_shard_fallbacks_total` counter.
    pub shards: usize,
    /// Software overheads.
    pub software: SoftwareModel,
}

impl SimConfig {
    /// Number of flits in a message of `bytes` payload bytes.
    pub fn flits(&self, bytes: MsgSize) -> u64 {
        self.header_flits + bytes.div_ceil(self.flit_bytes).max(1)
    }

    /// Number of channels an `L`-flit worm occupies when fully compressed
    /// into `buffer_flits`-deep buffers.
    pub fn span(&self, bytes: MsgSize) -> u64 {
        self.flits(bytes).div_ceil(self.buffer_flits.max(1))
    }

    /// A mid-1990s-style configuration matching
    /// [`pcm::CommParams::paragon_like`]: 8-byte flits, single-cycle
    /// routers, software overheads a few hundred cycles plus per-byte copy
    /// costs (0.15 cycles/byte on each side — the memcpy/checksum costs that
    /// dominated mid-90s messaging stacks and that make `t_end` grow much
    /// faster than `t_hold`).  `t_hold`'s slope is kept at or above the
    /// injection rate (1 flit/cycle = 1/8 cycle per byte), because on a
    /// one-port wormhole NI the measured hold time can never be less than
    /// the wire drain time; it stays below `t_send`'s slope because the CPU
    /// hands off to DMA before the NI finishes.
    pub fn paragon_like() -> Self {
        Self {
            flit_bytes: 8,
            header_flits: 1,
            router_delay: 1,
            buffer_flits: 1,
            adaptive: true,
            addr_bytes: 0,
            trace: false,
            trace_limit: None,
            shards: 1,
            software: SoftwareModel {
                t_send: LinearFn::new(350.0, 0.15),
                t_recv: LinearFn::new(300.0, 0.15),
                t_hold: LinearFn::new(250.0, 0.13),
            },
        }
    }

    /// Predicted contention-free end-to-end latency of a single message over
    /// `hops` router-to-router hops: `t_send + head traversal + streaming +
    /// t_recv`.  The engine reproduces this figure exactly on an idle
    /// network (see the crate tests), which is how the simulator and the
    /// analytic model are kept consistent.
    pub fn predict_p2p(&self, hops: usize, bytes: MsgSize) -> Time {
        let path_channels = hops as u64 + 2; // + injection + consumption
        self.software.t_send.eval(bytes)
            + path_channels * self.router_delay
            + (self.flits(bytes) - 1)
            + self.software.t_recv.eval(bytes)
    }

    /// The effective `(t_hold, t_end)` pair of this simulated machine for a
    /// message of `bytes` over a nominal `hops`-hop path — what a user-level
    /// calibration would measure, and what the OPT-tree DP should be fed.
    ///
    /// `t_hold` is the max of the CPU occupancy and the injection-channel
    /// drain time (the one-port NI cannot accept a new worm faster than the
    /// previous one clears the injection channel).
    pub fn effective_pair(&self, hops: usize, bytes: MsgSize) -> (Time, Time) {
        self.effective_pair_ports(hops, bytes, 1)
    }

    /// [`SimConfig::effective_pair`] for a `ports`-port NI: with `p` ports a
    /// node keeps `p` worms in flight, so the injection-drain constraint on
    /// the initiation rate weakens to `drain / p`; the CPU term is
    /// unchanged (software still issues sends one at a time).
    pub fn effective_pair_ports(&self, hops: usize, bytes: MsgSize, ports: u64) -> (Time, Time) {
        assert!(ports >= 1);
        let cpu = self.software.t_hold.eval(bytes);
        let drain = self.flits(bytes).div_ceil(ports);
        (cpu.max(drain), self.predict_p2p(hops, bytes))
    }

    /// Project this configuration into a [`pcm::CommParams`] with the given
    /// nominal hop count.
    pub fn to_comm_params(&self, hops: f64) -> CommParams {
        let inject_rate = 1.0 / self.flit_bytes as f64;
        let hold = self.software.t_hold;
        CommParams {
            t_send: self.software.t_send,
            t_recv: self.software.t_recv,
            // t_hold: max(CPU, drain) — keep the larger slope and base.
            t_hold: LinearFn::new(
                hold.base.max(self.header_flits as f64),
                hold.slope.max(inject_rate),
            ),
            t_net_size: LinearFn::new(
                // Header flit + streaming; the -1 and +2 channel constants
                // are folded into the base.
                (self.header_flits + 1) as f64 * self.router_delay as f64,
                inject_rate,
            ),
            net_hops: hops,
            per_hop: self.router_delay as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_count_rounds_up_and_has_header() {
        let c = SimConfig::paragon_like();
        assert_eq!(c.flits(0), 2); // header + 1 minimum payload flit
        assert_eq!(c.flits(1), 2);
        assert_eq!(c.flits(8), 2);
        assert_eq!(c.flits(9), 3);
        assert_eq!(c.flits(64), 9);
    }

    #[test]
    fn predict_p2p_composes() {
        let mut c = SimConfig::paragon_like();
        c.software = SoftwareModel::zero();
        // 3 hops, 16 bytes => 3 flits: channels = 5, head 5 cycles, +2 more
        // flits streaming.
        assert_eq!(c.predict_p2p(3, 16), 5 + 2);
    }

    #[test]
    fn effective_hold_at_least_drain() {
        let c = SimConfig::paragon_like();
        // 64 KiB: drain = 1 + 8192 flits; CPU = 250 + 0.13*65536 ≈ 8770.
        let (hold, end) = c.effective_pair(16, 65536);
        assert!(hold >= c.flits(65536));
        assert!(hold < end);
    }

    #[test]
    fn effective_pair_is_physical() {
        let c = SimConfig::paragon_like();
        for bytes in [0u64, 64, 1024, 4096, 65536] {
            let (hold, end) = c.effective_pair(16, bytes);
            assert!(hold <= end, "hold {hold} > end {end} at {bytes}");
        }
    }
}
