//! Process-global engine counters and [`TelemetrySnapshot`] builders.
//!
//! The counters are `telem` statics flushed **in bulk** by
//! [`crate::Engine::run`] — one relaxed atomic add per counter per *run*,
//! never per event, so campaign worker threads don't contend on a shared
//! cache line inside the event loop and the hot path stays
//! allocation-free (pinned by the `zero_alloc` test).
//!
//! Two snapshot builders feed the exposition layer:
//! [`process_snapshot`] reads the cumulative process-wide counters, and
//! [`run_snapshot`] captures one run's *deterministic* vitals (cycle and
//! event counts only — never wall-clock), which is what the
//! `scripts/check.sh` determinism gate byte-compares.

use telem::{counter, TelemetrySnapshot};

use crate::stats::SimResult;

counter!(pub RUNS, "flitsim_runs_total", "Simulation runs completed");
counter!(
    pub EVENTS_PROCESSED,
    "flitsim_events_processed_total",
    "Events popped from the event heap across all runs"
);
counter!(
    pub EVENTS_SCHEDULED,
    "flitsim_events_scheduled_total",
    "Events scheduled onto the event heap across all runs"
);
counter!(
    pub MESSAGES,
    "flitsim_messages_delivered_total",
    "Messages delivered across all runs"
);
counter!(
    pub BLOCKED_CYCLES,
    "flitsim_blocked_cycles_total",
    "Head-blocked cycles across all runs"
);
counter!(
    pub CHANNEL_BUSY_CYCLES,
    "flitsim_channel_busy_cycles_total",
    "Busy channel-cycles across all runs"
);
counter!(
    pub SHARDED_RUNS,
    "flitsim_sharded_runs_total",
    "Runs executed by the sharded engine"
);
counter!(
    pub SHARD_FALLBACKS,
    "flitsim_shard_fallbacks_total",
    "Runs that requested shards but fell back to the sequential engine"
);
counter!(
    pub SHARD_FALLBACKS_OBSERVER,
    "flitsim_shard_fallbacks_observer_total",
    "Sharded fallbacks because a tracing observer was attached"
);
counter!(
    pub SHARD_FALLBACKS_TINY_MESSAGE,
    "flitsim_shard_fallbacks_tiny_message_total",
    "Sharded fallbacks because a worm was too short for condition C"
);
counter!(
    pub SHARD_FALLBACKS_ZERO_ROUTER_DELAY,
    "flitsim_shard_fallbacks_zero_router_delay_total",
    "Sharded fallbacks because zero router delay leaves no lookahead"
);
counter!(
    pub SHARD_FALLBACKS_OTHER,
    "flitsim_shard_fallbacks_other_total",
    "Sharded fallbacks for any other reason (shard count, empty workload)"
);
counter!(
    pub SHARD_ROUNDS,
    "flitsim_shard_rounds_total",
    "Conservative time windows executed across all sharded runs"
);
counter!(
    pub SHARD_MESSAGES,
    "flitsim_shard_messages_total",
    "Cross-shard handoff messages (migrations + remote releases)"
);
counter!(
    pub SHARD_BUSY_NS,
    "flitsim_shard_busy_ns_total",
    "Wall time shard workers spent processing events (per-shard utilization numerator)"
);
counter!(
    pub SHARD_STALL_NS,
    "flitsim_shard_barrier_stall_ns_total",
    "Wall time shard workers spent waiting at window barriers"
);

/// Why the most recent shard-eligible [`crate::Engine::run_auto`] in this
/// process disengaged the sharded engine.  Written on the cold fallback
/// path only; cleared whenever a run shards.
static LAST_SHARD_FALLBACK: std::sync::Mutex<Option<&'static str>> = std::sync::Mutex::new(None);

pub(crate) fn set_last_shard_fallback(reason: Option<&'static str>) {
    *LAST_SHARD_FALLBACK
        .lock()
        .expect("fallback reason poisoned") = reason;
}

/// Why the most recent `run_auto` that had shards configured fell back to
/// the sequential engine — `None` when the last such run actually sharded
/// (or none ran).  Error paths surface this so users can tell *why*
/// sharding disengaged.
pub fn last_shard_fallback() -> Option<&'static str> {
    *LAST_SHARD_FALLBACK
        .lock()
        .expect("fallback reason poisoned")
}

/// Snapshot the cumulative process-wide engine counters.
pub fn process_snapshot() -> TelemetrySnapshot {
    let mut s = TelemetrySnapshot::new();
    s.record(&RUNS);
    s.record(&EVENTS_PROCESSED);
    s.record(&EVENTS_SCHEDULED);
    s.record(&MESSAGES);
    s.record(&BLOCKED_CYCLES);
    s.record(&CHANNEL_BUSY_CYCLES);
    s.record(&SHARDED_RUNS);
    s.record(&SHARD_FALLBACKS);
    s.record(&SHARD_FALLBACKS_OBSERVER);
    s.record(&SHARD_FALLBACKS_TINY_MESSAGE);
    s.record(&SHARD_FALLBACKS_ZERO_ROUTER_DELAY);
    s.record(&SHARD_FALLBACKS_OTHER);
    s.record(&SHARD_ROUNDS);
    s.record(&SHARD_MESSAGES);
    s.record(&SHARD_BUSY_NS);
    s.record(&SHARD_STALL_NS);
    s
}

/// Snapshot one run's deterministic vitals.
///
/// Everything here is a function of the simulation alone (cycle counts,
/// event counts, distributions) — wall-clock figures are deliberately
/// excluded so two runs with the same seed serialize byte-identically.
pub fn run_snapshot(r: &SimResult) -> TelemetrySnapshot {
    let mut s = TelemetrySnapshot::new();
    s.counter(
        "run_events_processed",
        "Events popped from the event heap",
        r.meta.events_processed,
    );
    s.counter(
        "run_events_scheduled",
        "Events scheduled onto the event heap",
        r.meta.events_scheduled,
    );
    s.counter(
        "run_messages_delivered",
        "Messages delivered",
        r.messages.len() as u64,
    );
    s.counter(
        "run_blocked_cycles",
        "Head-blocked cycles",
        r.blocked_cycles,
    );
    s.counter("run_blocked_events", "Blocking episodes", r.blocked_events);
    s.counter(
        "run_channel_busy_cycles",
        "Busy channel-cycles",
        r.channel_busy_cycles,
    );
    s.gauge("run_finish_cycle", "Time of the last event", r.finish);
    s.gauge(
        "run_peak_heap_events",
        "High-water mark of the pending-event heap",
        r.meta.peak_heap_events as u64,
    );
    s.histogram(
        "run_latency_cycles",
        "End-to-end message latency",
        &telem::Histogram::from_samples(
            r.messages.iter().map(crate::stats::MessageRecord::latency),
        ),
    );
    s.histogram(
        "run_blocked_per_message_cycles",
        "Blocked cycles per message",
        &telem::Histogram::from_samples(r.messages.iter().map(|m| m.blocked)),
    );
    s.histogram(
        "run_channel_busy_per_channel_cycles",
        "Busy cycles per active channel",
        &telem::Histogram::from_samples(
            r.channels.iter().filter(|c| c.acquires > 0).map(|c| c.busy),
        ),
    );
    if let Some(c) = &r.counts {
        s.counter(
            "run_observed_events",
            "Events tallied by the counters-only observer",
            c.total(),
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::SinkProgram;
    use crate::{Engine, SendReq, SimConfig};
    use topo::{Mesh, NodeId};

    fn small_run() -> SimResult {
        let mesh = Mesh::new(&[4, 4]);
        let mut e = Engine::new(&mesh, SimConfig::paragon_like(), SinkProgram);
        e.start(NodeId(0), 0, vec![SendReq::to(NodeId(5), 256, ())]);
        e.run().1
    }

    #[test]
    fn run_snapshot_is_deterministic() {
        let a = run_snapshot(&small_run());
        let b = run_snapshot(&small_run());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.get("run_messages_delivered"), Some(1));
        assert!(a.get("run_events_processed").unwrap() > 0);
    }

    #[test]
    fn process_counters_grow_with_runs() {
        let before = RUNS.get();
        let _ = small_run();
        assert!(RUNS.get() > before);
        let s = process_snapshot();
        assert!(s.get("flitsim_runs_total").unwrap() > before);
        assert!(!s.to_prometheus().is_empty());
    }
}
