//! Deterministic sharded execution of the flit engine (DESIGN.md §15).
//!
//! The topology is split by [`topo::Partition`]; each shard runs a full
//! [`Engine`](crate::Engine) over its sub-topology and the shards advance
//! in *conservative time windows*: every round, each shard publishes a
//! lower bound on when its pending work could next affect another shard
//! (its **earliest emission time**), the global minimum of those bounds
//! becomes the window horizon, and every shard processes exactly the
//! events strictly before the horizon.  Cross-shard effects — worm
//! migrations and remote channel releases — are buffered per destination
//! and delivered at the barrier, so they always arrive before any event
//! at their timestamp is processed.  Because every event carries an
//! intrinsic `(time, ord)` key (see `Engine::ord_of`) that is unique and
//! independent of scheduling history, the merged execution pops events in
//! exactly the sequential engine's order, and every simulation output is
//! bit-identical to a one-shard run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use pcm::Time;
use topo::{ChannelId, NetworkGraph, NodeId, Partition};

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::obs::{EventCounts, RunMeta, TraceSink};
use crate::program::ShardProgram;
use crate::stats::{ChannelTelemetry, MessageRecord, SimResult};

/// Seed for the topology partitioner: the partition — like everything else
/// about a run — must be a pure function of the configuration.
const PARTITION_SEED: u64 = 1997;

/// Immutable, partition-derived data shared by every shard of one run.
pub(crate) struct ShardPlan {
    /// Shard count.
    pub n_shards: usize,
    /// Owner shard per channel (arbitration happens there).
    pub chan_shard: Vec<u32>,
    /// Shard per router.
    pub router_shard: Vec<u32>,
    /// Shard per node (where its sends issue and receives complete).
    pub node_shard: Vec<u32>,
    /// Per node: lower bound on the delay between an event at the node
    /// (kick / worm start) and its first possible cross-shard emission —
    /// `router_delay ×` (channel hops to the nearest boundary).
    pub node_eps: Vec<Time>,
    /// Per router: `router_delay ×` (channel hops from the router to the
    /// nearest crossing channel, inclusive); `Time::MAX` when no boundary
    /// is reachable.
    pub router_eps: Vec<Time>,
    /// Condition C floor: worms shorter than this can release channels at
    /// non-future times, which the conservative windows cannot order.
    pub min_flits: u64,
    /// Lower bound of `t_send` over all message sizes.
    pub ts0: Time,
    /// Lower bound of `t_recv` over all message sizes.
    pub tr0: Time,
    /// One hop of head latency — the cross-shard lookahead unit.
    pub rd: Time,
}

/// A worm in flight between shards: the head just acquired a channel into
/// a router owned by the destination shard.
pub(crate) struct WormWire<P> {
    pub src: NodeId,
    pub dest: NodeId,
    pub bytes: u64,
    pub flits: u64,
    pub payload: Option<P>,
    pub path: Vec<ChannelId>,
    pub release_ptr: usize,
    pub initiated: Time,
    pub injected: Time,
    pub blocked: Time,
    pub rank: u64,
}

/// A cross-shard handoff, timestamped with the event time it carries.
pub(crate) enum OutMsg<P> {
    /// The worm continues climbing in the destination shard at `t`.
    Migrate { t: Time, worm: WormWire<P> },
    /// Release `chan` (owned by the destination shard) at `t`; the owner
    /// applies its own `acquired_at + 1` floor, exactly as the sequential
    /// engine does when scheduling the release locally.
    Release { t: Time, chan: u32 },
}

/// Per-engine sharding state: identity, the shared plan, and the
/// per-destination outboxes filled during a window.
pub(crate) struct ShardCtx<P> {
    pub id: u32,
    pub plan: Arc<ShardPlan>,
    pub outbox: Vec<Vec<OutMsg<P>>>,
}

/// What one shard's engine hands back after its last window.
pub(crate) struct ShardPartial {
    pub finish: Time,
    /// `(completed, worm rank, record)` in local pop order — sorted by
    /// `(completed, rank)`, which is exactly the sequential delivery order
    /// restricted to this shard.
    pub messages: Vec<(Time, u64, MessageRecord)>,
    pub blocked_cycles: Time,
    pub blocked_events: u64,
    pub channel_busy: Time,
    pub chan_busy: Vec<Time>,
    pub chan_blocked: Vec<Time>,
    pub chan_acquires: Vec<u64>,
    pub counts: Option<EventCounts>,
    pub events_processed: u64,
    pub events_scheduled: u64,
    pub peak_heap: usize,
    pub peak_heap_bytes: u64,
}

/// Build the shared plan for `k` shards over `g`.
pub(crate) fn build_plan(
    g: &NetworkGraph,
    cfg: &SimConfig,
    k: usize,
    max_path: usize,
) -> ShardPlan {
    let part = Partition::build(g, k, PARTITION_SEED);
    let dist = part.crossing_distance(g);
    let rd = cfg.router_delay;
    let router_eps: Vec<Time> = dist
        .iter()
        .map(|&d| {
            if d == u32::MAX {
                Time::MAX
            } else {
                rd.saturating_mul(Time::from(d))
            }
        })
        .collect();
    let node_eps: Vec<Time> = (0..g.n_nodes())
        .map(|n| {
            // First emission after a send issues at this node: acquiring a
            // crossing injection channel emits at `t + rd`; otherwise the
            // head must walk from the injection router to the boundary.
            g.injections(NodeId(n as u32))
                .iter()
                .map(|&c| {
                    if part.channel_crosses(c) {
                        rd
                    } else {
                        let r = g.dst_router(c).expect("injection leads to a router");
                        rd.saturating_add(router_eps[r.idx()])
                    }
                })
                .min()
                .expect("every node has an injection port")
        })
        .collect();
    let eval0 = |f: &pcm::LinearFn| if f.slope < 0.0 { 0 } else { f.eval(0) };
    ShardPlan {
        n_shards: k,
        chan_shard: (0..g.n_channels())
            .map(|c| part.channel_shard(ChannelId(c as u32)) as u32)
            .collect(),
        router_shard: (0..g.n_routers())
            .map(|r| part.router_shard(topo::RouterId(r as u32)) as u32)
            .collect(),
        node_shard: (0..g.n_nodes())
            .map(|n| part.node_shard(NodeId(n as u32)) as u32)
            .collect(),
        node_eps,
        router_eps,
        min_flits: cfg
            .buffer_flits
            .max(1)
            .saturating_mul(max_path as u64 - 1)
            .saturating_add(1),
        ts0: eval0(&cfg.software.t_send),
        tr0: eval0(&cfg.software.t_recv),
        rd,
    }
}

/// Round-synchronization state shared by all shard threads.
struct Shared<P> {
    barrier: Barrier,
    /// Per-shard earliest emission time, republished every round.
    eits: Vec<AtomicU64>,
    /// Per-shard pending-event count (termination detection).
    pendings: Vec<AtomicU64>,
    /// `mailboxes[src][dst]`: handoffs published by `src` for `dst` this
    /// round.  Each cell has exactly one writer (src) and one reader
    /// (dst), on opposite sides of a barrier.
    mailboxes: Vec<Vec<Mutex<Vec<OutMsg<P>>>>>,
}

/// Wall-clock telemetry one shard thread collected.
struct ShardTelem {
    busy_ns: u64,
    stall_ns: u64,
    msgs_sent: u64,
    rounds: u64,
}

/// Run `proto`'s simulation across `plan.n_shards` worker threads.
/// Callers guarantee the gates in `Engine::try_shard_plan` passed.
pub(crate) fn run_sharded<'t, Prog>(
    proto: Engine<'t, Prog>,
    plan: Arc<ShardPlan>,
) -> (Prog, SimResult)
where
    Prog: ShardProgram,
    Prog::Payload: Send,
{
    let wall_start = Instant::now();
    let k = plan.n_shards;
    let (topo, cfg, mut program, starts, counters) = proto.into_sharded_parts();

    // Distribute the initial sends to their nodes' home shards.
    let mut shard_starts: Vec<Vec<_>> = (0..k).map(|_| Vec::new()).collect();
    for (node, at, sends) in starts {
        shard_starts[plan.node_shard[node.idx()] as usize].push((node, at, sends));
    }
    let forks: Vec<Prog> = (0..k).map(|_| program.fork()).collect();

    let shared: Shared<Prog::Payload> = Shared {
        barrier: Barrier::new(k),
        eits: (0..k).map(|_| AtomicU64::new(0)).collect(),
        pendings: (0..k).map(|_| AtomicU64::new(0)).collect(),
        mailboxes: (0..k)
            .map(|_| (0..k).map(|_| Mutex::new(Vec::new())).collect())
            .collect(),
    };

    let outcomes: Vec<(Prog, ShardPartial, ShardTelem)> = std::thread::scope(|scope| {
        let handles: Vec<_> = forks
            .into_iter()
            .zip(shard_starts)
            .enumerate()
            .map(|(id, (fork, starts))| {
                let cfg = cfg.clone();
                let plan = Arc::clone(&plan);
                let shared = &shared;
                scope.spawn(move || {
                    shard_thread(id, topo, cfg, fork, starts, counters, plan, shared)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });

    // Merge, in shard order so every reduction is deterministic.
    let mut partials = Vec::with_capacity(k);
    let mut busy_ns = 0u64;
    let mut stall_ns = 0u64;
    let mut msgs = 0u64;
    let mut rounds = 0u64;
    for (fork, partial, telem) in outcomes {
        program.absorb(fork);
        busy_ns += telem.busy_ns;
        stall_ns += telem.stall_ns;
        msgs += telem.msgs_sent;
        rounds = rounds.max(telem.rounds);
        partials.push(partial);
    }

    // Deliveries interleave by `(completed, worm rank)` — the sequential
    // pop order of `RecvDone` events (equal times tie-break on the worm's
    // intrinsic rank, which is what `ord_of` encodes).
    let mut tagged: Vec<(Time, u64, MessageRecord)> = partials
        .iter_mut()
        .flat_map(|p| p.messages.drain(..))
        .collect();
    tagged.sort_by_key(|&(t, rank, _)| (t, rank));
    let messages: Vec<MessageRecord> = tagged.into_iter().map(|(_, _, m)| m).collect();

    let n_channels = partials[0].chan_busy.len();
    let mut channels = vec![
        ChannelTelemetry {
            busy: 0,
            blocked: 0,
            acquires: 0,
        };
        n_channels
    ];
    for p in &partials {
        for (i, c) in channels.iter_mut().enumerate() {
            c.busy += p.chan_busy[i];
            c.blocked += p.chan_blocked[i];
            c.acquires += p.chan_acquires[i];
        }
    }

    let counts = partials
        .iter()
        .filter_map(|p| p.counts)
        .fold(None::<EventCounts>, |acc, c| {
            let mut sum = acc.unwrap_or_default();
            sum.acquires += c.acquires;
            sum.releases += c.releases;
            sum.inject_starts += c.inject_starts;
            sum.drain_starts += c.drain_starts;
            sum.recv_dones += c.recv_dones;
            sum.blocked += c.blocked;
            sum.cpu_busy += c.cpu_busy;
            sum.cpu_idle += c.cpu_idle;
            sum.anomalies += c.anomalies;
            Some(sum)
        });

    let events_processed: u64 = partials.iter().map(|p| p.events_processed).sum();
    let events_scheduled: u64 = partials.iter().map(|p| p.events_scheduled).sum();
    let wall_ns = wall_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let meta = RunMeta {
        events_processed,
        events_scheduled,
        // Shard-local high-water marks: the max is the largest any one
        // queue grew, *not* what a sequential queue would have held.
        peak_heap_events: partials.iter().map(|p| p.peak_heap).max().unwrap_or(0),
        peak_heap_bytes: partials
            .iter()
            .map(|p| p.peak_heap_bytes)
            .max()
            .unwrap_or(0),
        trace_events: 0,
        trace_dropped: 0,
        wall_ns,
        events_per_sec: if wall_ns == 0 {
            0.0
        } else {
            events_processed as f64 * 1e9 / wall_ns as f64
        },
    };

    let result = SimResult {
        finish: partials.iter().map(|p| p.finish).max().unwrap_or(0),
        blocked_cycles: partials.iter().map(|p| p.blocked_cycles).sum(),
        blocked_events: partials.iter().map(|p| p.blocked_events).sum(),
        channel_busy_cycles: partials.iter().map(|p| p.channel_busy).sum(),
        messages,
        channels,
        counts,
        trace: Vec::new(),
        truncated: false,
        meta,
    };

    crate::metrics::RUNS.inc();
    crate::metrics::EVENTS_PROCESSED.add(events_processed);
    crate::metrics::EVENTS_SCHEDULED.add(events_scheduled);
    crate::metrics::MESSAGES.add(result.messages.len() as u64);
    crate::metrics::BLOCKED_CYCLES.add(result.blocked_cycles);
    crate::metrics::CHANNEL_BUSY_CYCLES.add(result.channel_busy_cycles);
    crate::metrics::SHARDED_RUNS.inc();
    crate::metrics::SHARD_ROUNDS.add(rounds);
    crate::metrics::SHARD_MESSAGES.add(msgs);
    crate::metrics::SHARD_BUSY_NS.add(busy_ns);
    crate::metrics::SHARD_STALL_NS.add(stall_ns);

    (program, result)
}

fn wait(shared_barrier: &Barrier, stall_ns: &mut u64) {
    let t0 = Instant::now();
    shared_barrier.wait();
    *stall_ns += t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
}

#[allow(clippy::too_many_arguments)]
fn shard_thread<Prog>(
    id: usize,
    topo: &dyn topo::Topology,
    cfg: SimConfig,
    program: Prog,
    starts: Vec<crate::engine::StartRec<Prog::Payload>>,
    counters: bool,
    plan: Arc<ShardPlan>,
    shared: &Shared<Prog::Payload>,
) -> (Prog, ShardPartial, ShardTelem)
where
    Prog: ShardProgram,
    Prog::Payload: Send,
{
    let k = plan.n_shards;
    let mut eng = Engine::new(topo, cfg, program);
    eng.set_observer(if counters {
        TraceSink::counters()
    } else {
        TraceSink::Null
    });
    for (node, at, sends) in starts {
        eng.start(node, at, sends);
    }
    eng.set_shard(ShardCtx {
        id: id as u32,
        plan,
        outbox: (0..k).map(|_| Vec::new()).collect(),
    });
    eng.drain_starts();

    let mut telem = ShardTelem {
        busy_ns: 0,
        stall_ns: 0,
        msgs_sent: 0,
        rounds: 0,
    };
    loop {
        // Publish this shard's earliest possible cross-shard emission and
        // its pending-event count, then meet the others.
        shared.eits[id].store(eng.earliest_emission(), Ordering::SeqCst);
        shared.pendings[id].store(eng.pending_events() as u64, Ordering::SeqCst);
        wait(&shared.barrier, &mut telem.stall_ns);

        // Everyone reads the same published values, so every shard takes
        // the same branch — termination needs no extra coordination.
        let pending: u64 = shared
            .pendings
            .iter()
            .map(|p| p.load(Ordering::SeqCst))
            .sum();
        if pending == 0 {
            break;
        }
        let horizon = shared
            .eits
            .iter()
            .map(|e| e.load(Ordering::SeqCst))
            .min()
            .expect("at least one shard");
        telem.rounds += 1;

        // Process every event strictly before the horizon.  No shard can
        // emit anything timestamped before it, so the window is safe.
        let t0 = Instant::now();
        eng.run_window(horizon);
        telem.busy_ns += t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;

        // Publish this window's handoffs (single writer per cell) …
        for dst in 0..k {
            if dst == id {
                continue;
            }
            let out = eng.outbox_mut(dst);
            if !out.is_empty() {
                telem.msgs_sent += out.len() as u64;
                shared.mailboxes[id][dst]
                    .lock()
                    .expect("mailbox poisoned")
                    .append(out);
            }
        }
        wait(&shared.barrier, &mut telem.stall_ns);

        // … and absorb everyone else's (single reader per cell).  All
        // handoffs are timestamped at or after the horizon, so inserting
        // them *after* the window preserves global pop order.
        for src in 0..k {
            if src == id {
                continue;
            }
            let mut slot = shared.mailboxes[src][id].lock().expect("mailbox poisoned");
            for msg in slot.drain(..) {
                eng.deliver(msg);
            }
        }
    }

    let (program, partial) = eng.finish_partial();
    (program, partial, telem)
}
