//! Deterministic sharded execution of the flit engine (DESIGN.md §15).
//!
//! The topology is split by [`topo::Partition`]; each shard runs a full
//! [`Engine`](crate::Engine) over its sub-topology and the shards advance
//! in *adaptive conservative windows*: every round, each shard publishes
//! a vector of **earliest-input-time promises** — per destination shard,
//! a lower bound on when its remaining work could next message that shard
//! (Chandy–Misra–Bryant lookahead, piggybacked on the handoff
//! publication) — plus the earliest timestamp among the handoffs it just
//! shipped.  After a single sense-reversing rendezvous, every shard reads
//! the same published matrices and computes the same [`horizon_fixpoint`]
//! over the partition's shard message graph, so each shard's horizon
//! reflects its *actual* in-neighbors' promises instead of a global
//! minimum, and idle boundaries stop throttling the fleet.  When no
//! cross-shard consequence lies below a candidate horizon the fixpoint
//! yields a large one, letting a shard advance through many PR 9-sized
//! windows per rendezvous (window coalescing).  Cross-shard effects —
//! worm migrations and remote channel releases — are buffered per
//! destination and delivered after the rendezvous, so they always arrive
//! before any event at their timestamp is processed.  Because every event
//! carries an intrinsic `(time, ord)` key (see `Engine::ord_of`) that is
//! unique and independent of scheduling history, the merged execution
//! pops events in exactly the sequential engine's order, and every
//! simulation output — including merged `TraceSink::Counters` tallies —
//! is bit-identical to a one-shard run.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use pcm::Time;
use topo::{ChannelId, NetworkGraph, NodeId, Partition};

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::obs::{EventCounts, RunMeta, TraceSink};
use crate::program::ShardProgram;
use crate::stats::{ChannelTelemetry, MessageRecord, SimResult};

/// Seed for the topology partitioner: the partition — like everything else
/// about a run — must be a pure function of the configuration.
const PARTITION_SEED: u64 = 1997;

/// Immutable, partition-derived data shared by every shard of one run.
pub(crate) struct ShardPlan {
    /// Shard count.
    pub n_shards: usize,
    /// Owner shard per channel (arbitration happens there).
    pub chan_shard: Vec<u32>,
    /// Shard per router.
    pub router_shard: Vec<u32>,
    /// Shard per node (where its sends issue and receives complete).
    pub node_shard: Vec<u32>,
    /// `node_eps_to[j][n]`: lower bound on the delay between an event at
    /// node `n` (kick / worm start) and its first possible emission *to
    /// shard `j`* — `router_delay ×` (channel hops to the nearest channel
    /// crossing into `j`); `Time::MAX` when `n`'s shard cannot message
    /// `j` directly.
    pub node_eps_to: Vec<Vec<Time>>,
    /// `router_eps_to[j][r]`: `router_delay ×` (channel hops from router
    /// `r` to the nearest channel crossing into shard `j`, inclusive,
    /// staying inside `r`'s shard until that hop); `Time::MAX` when shard
    /// `j` is not directly reachable from `r`.
    pub router_eps_to: Vec<Vec<Time>>,
    /// `msg_graph[i][j]`: can shard `i` put a message in shard `j`'s
    /// mailbox?  True when a crossing channel leads `i → j` (worm
    /// migrations, Omega injections) or when `j` reaches `i` through
    /// crossing channels (a worm draining in `i` may still hold channels
    /// `j` owns, and their releases ship backward).  The window fixpoint
    /// relays promises along exactly these edges.
    pub msg_graph: Vec<Vec<bool>>,
    /// Condition C floor: worms shorter than this can release channels at
    /// non-future times, which the conservative windows cannot order.
    pub min_flits: u64,
    /// Lower bound of `t_send` over all message sizes.
    pub ts0: Time,
    /// Lower bound of `t_recv` over all message sizes.
    pub tr0: Time,
    /// One hop of head latency — the cross-shard lookahead unit.
    pub rd: Time,
}

/// A worm in flight between shards: the head just acquired a channel into
/// a router owned by the destination shard.
pub(crate) struct WormWire<P> {
    pub src: NodeId,
    pub dest: NodeId,
    pub bytes: u64,
    pub flits: u64,
    pub payload: Option<P>,
    pub path: Vec<ChannelId>,
    pub release_ptr: usize,
    pub initiated: Time,
    pub injected: Time,
    pub blocked: Time,
    pub rank: u64,
}

/// A cross-shard handoff, timestamped with the event time it carries.
pub(crate) enum OutMsg<P> {
    /// The worm continues climbing in the destination shard at `t`.
    Migrate { t: Time, worm: WormWire<P> },
    /// Release `chan` (owned by the destination shard) at `t`; the owner
    /// applies its own `acquired_at + 1` floor, exactly as the sequential
    /// engine does when scheduling the release locally.
    Release { t: Time, chan: u32 },
}

impl<P> OutMsg<P> {
    /// The event time the handoff carries.
    fn time(&self) -> Time {
        match self {
            OutMsg::Migrate { t, .. } | OutMsg::Release { t, .. } => *t,
        }
    }
}

/// Per-engine sharding state: identity, the shared plan, the
/// per-destination outboxes filled during a window, and the precomputed
/// set of shards this one can message at all (its `msg_graph` row).
pub(crate) struct ShardCtx<P> {
    pub id: u32,
    pub plan: Arc<ShardPlan>,
    pub outbox: Vec<Vec<OutMsg<P>>>,
    pub msg_dests: Vec<usize>,
}

/// What one shard's engine hands back after its last window.
pub(crate) struct ShardPartial {
    pub finish: Time,
    /// `(completed, worm rank, record)` in local pop order — sorted by
    /// `(completed, rank)`, which is exactly the sequential delivery order
    /// restricted to this shard.
    pub messages: Vec<(Time, u64, MessageRecord)>,
    pub blocked_cycles: Time,
    pub blocked_events: u64,
    pub channel_busy: Time,
    pub chan_busy: Vec<Time>,
    pub chan_blocked: Vec<Time>,
    pub chan_acquires: Vec<u64>,
    pub counts: Option<EventCounts>,
    pub events_processed: u64,
    pub events_scheduled: u64,
    pub peak_heap: usize,
    pub peak_heap_bytes: u64,
}

/// Build the shared plan for `k` shards over `g`.
pub(crate) fn build_plan(
    g: &NetworkGraph,
    cfg: &SimConfig,
    k: usize,
    max_path: usize,
) -> ShardPlan {
    let part = Partition::build(g, k, PARTITION_SEED);
    let dist_to = part.crossing_distance_to(g);
    let rd = cfg.router_delay;
    let router_eps_to: Vec<Vec<Time>> = dist_to
        .iter()
        .map(|dist| {
            dist.iter()
                .map(|&d| {
                    if d == u32::MAX {
                        Time::MAX
                    } else {
                        rd.saturating_mul(Time::from(d))
                    }
                })
                .collect()
        })
        .collect();
    let node_eps_to: Vec<Vec<Time>> = (0..k)
        .map(|j| {
            (0..g.n_nodes())
                .map(|n| {
                    // First emission toward shard `j` after a send issues at
                    // this node: acquiring an injection channel crossing into
                    // `j` emits at `t + rd`; a local injection makes the head
                    // walk from the injection router to a `j` boundary.  A
                    // crossing injection into some *other* shard migrates the
                    // worm there — its later progress toward `j` is that
                    // shard's to promise (the fixpoint relays it).
                    g.injections(NodeId(n as u32))
                        .iter()
                        .map(|&c| {
                            let r = g.dst_router(c).expect("injection leads to a router");
                            if part.channel_crosses(c) {
                                if part.router_shard(r) == j {
                                    rd
                                } else {
                                    Time::MAX
                                }
                            } else {
                                rd.saturating_add(router_eps_to[j][r.idx()])
                            }
                        })
                        .min()
                        .expect("every node has an injection port")
                })
                .collect()
        })
        .collect();
    let adj = part.shard_adjacency(g);
    let reach = part.shard_reachability(g);
    let msg_graph: Vec<Vec<bool>> = (0..k)
        .map(|i| {
            (0..k)
                .map(|j| i != j && (adj[i][j] || reach[j][i]))
                .collect()
        })
        .collect();
    let eval0 = |f: &pcm::LinearFn| if f.slope < 0.0 { 0 } else { f.eval(0) };
    ShardPlan {
        n_shards: k,
        chan_shard: (0..g.n_channels())
            .map(|c| part.channel_shard(ChannelId(c as u32)) as u32)
            .collect(),
        router_shard: (0..g.n_routers())
            .map(|r| part.router_shard(topo::RouterId(r as u32)) as u32)
            .collect(),
        node_shard: (0..g.n_nodes())
            .map(|n| part.node_shard(NodeId(n as u32)) as u32)
            .collect(),
        node_eps_to,
        router_eps_to,
        msg_graph,
        min_flits: cfg
            .buffer_flits
            .max(1)
            .saturating_mul(max_path as u64 - 1)
            .saturating_add(1),
        ts0: eval0(&cfg.software.t_send),
        tr0: eval0(&cfg.software.t_recv),
        rd,
    }
}

/// Bounded spin before a waiting shard starts yielding its timeslice.
const RENDEZVOUS_SPIN: u32 = 4096;

/// A sense-reversing rendezvous — the single synchronization point of a
/// window round (PR 9's protocol paid two `std::sync::Barrier` crossings
/// per round).  Shard threads cross rendezvous in lockstep, so the
/// caller's round number *is* the sense: arrivals for round `r` bump the
/// parity-`r` count, the last of them publishes `generation = r + 1`, and
/// everyone else spins (bounded, then yields) until the generation
/// reaches `r + 1`.  Two races make the naive single-count design wrong
/// and force this shape: an early round-`r+1` arrival that loaded the old
/// generation would be released by round `r`'s flip, and its increment
/// could be wiped by round `r`'s `count` reset.  Parity counts separate
/// the rounds' arrivals (a cell is reused in round `r + 2`, safely behind
/// rendezvous `r + 1`), and comparing the *monotone* generation against
/// the caller's round releases exactly the right waiters.  Sequentially
/// consistent orderings make publication simple: every store before
/// `wait(r)` on any thread is visible after `wait(r)` on all threads.
struct Rendezvous {
    parties: usize,
    counts: [AtomicUsize; 2],
    generation: AtomicU64,
}

impl Rendezvous {
    fn new(parties: usize) -> Self {
        Self {
            parties,
            counts: [AtomicUsize::new(0), AtomicUsize::new(0)],
            generation: AtomicU64::new(0),
        }
    }

    /// Block until all parties have called `wait` with this `round`.
    /// Rounds must be consecutive and agreed (they are: every shard takes
    /// the same termination branch from the same board).
    fn wait(&self, round: u64) {
        let count = &self.counts[(round & 1) as usize];
        if count.fetch_add(1, Ordering::SeqCst) + 1 == self.parties {
            // Reset for reuse in round `round + 2` (whose arrivals are
            // fenced behind rendezvous `round + 1`), then release.
            count.store(0, Ordering::SeqCst);
            self.generation.store(round + 1, Ordering::SeqCst);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::SeqCst) <= round {
                spins = spins.saturating_add(1);
                if spins >= RENDEZVOUS_SPIN {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// One round's published matrices.  With a single rendezvous per round a
/// fast shard reaches its *next* publication while slow shards still read
/// the current one, so the boards are double-buffered by round parity:
/// round `r` publishes to and reads from `boards[r % 2]`, which is next
/// written in round `r + 2` — and that publication sits behind rendezvous
/// `r + 1`, which no shard passes before every shard finished its round-
/// `r` reads.  Every shard therefore reads the same values and takes the
/// same termination/horizon decisions, with one sync point per round.
struct Board {
    /// `eits[i][j]`: shard `i`'s promise toward shard `j` — a lower bound
    /// on every message `i`'s *current queue* can still send `j`.
    eits: Vec<Vec<AtomicU64>>,
    /// `outmins[i][j]`: the earliest timestamp among the handoffs `i`
    /// published for `j` *this round* (`Time::MAX` when none).  These are
    /// the fixpoint's in-flight source terms: promises are computed
    /// before absorbing the concurrent round's deliveries, so their
    /// consequences are bounded through these instead.
    outmins: Vec<Vec<AtomicU64>>,
    /// Per-shard pending-event count (termination detection).  Handoffs
    /// published this round count as the sender's until absorbed.
    pendings: Vec<AtomicU64>,
}

impl Board {
    fn new(k: usize) -> Self {
        Self {
            eits: (0..k)
                .map(|_| (0..k).map(|_| AtomicU64::new(Time::MAX)).collect())
                .collect(),
            outmins: (0..k)
                .map(|_| (0..k).map(|_| AtomicU64::new(Time::MAX)).collect())
                .collect(),
            pendings: (0..k).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Round-synchronization state shared by all shard threads.
struct Shared<P> {
    rendezvous: Rendezvous,
    /// Double-buffered publication boards, indexed by round parity.
    boards: [Board; 2],
    /// `mailboxes[src][dst]`: handoffs published by `src` for `dst`.
    /// Each cell has exactly one writer (src) and one reader (dst); a
    /// fast sender may append its next round's handoffs before the
    /// receiver drained the current ones — harmless, because handoffs are
    /// conservative (timestamped at or after the receiver's horizon) and
    /// the receiver's queue orders purely by the intrinsic `(t, ord)`
    /// key, so early insertion cannot change pop order.
    mailboxes: Vec<Vec<Mutex<Vec<OutMsg<P>>>>>,
}

/// One round's horizon fixpoint, computed identically by every shard from
/// the same published matrices.  `l[i][j]` is shard `i`'s queue-local
/// promise toward `j`; `inbound[i]` is the earliest handoff published *to*
/// `i` this round; edges of `msg_graph` relay consequences at `+rd` per
/// hop (a delivered message at `t` cannot cause an emission before
/// `t + rd` — one head hop, and condition C keeps drain releases at least
/// that far out).  The result `a[j]` lower-bounds every message `j` can
/// still receive that is not already in its mailbox, so `j` may process
/// everything strictly below `a[j]`.
fn horizon_fixpoint(
    l: &[Vec<Time>],
    inbound: &[Time],
    msg_graph: &[Vec<bool>],
    rd: Time,
    a: &mut [Time],
) {
    let k = l.len();
    for j in 0..k {
        a[j] = (0..k).map(|i| l[i][j]).min().unwrap_or(Time::MAX);
    }
    // Bellman–Ford over the shard message graph: relay paths have at most
    // k-1 edges, so k passes always reach the (unique) greatest fixpoint.
    for _ in 0..k {
        let mut changed = false;
        for i in 0..k {
            let source = a[i].min(inbound[i]);
            if source == Time::MAX {
                continue;
            }
            let relayed = source.saturating_add(rd);
            for j in 0..k {
                if msg_graph[i][j] && relayed < a[j] {
                    a[j] = relayed;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// Wall-clock telemetry one shard thread collected.
struct ShardTelem {
    busy_ns: u64,
    stall_ns: u64,
    msgs_sent: u64,
    rounds: u64,
}

/// Run `proto`'s simulation across `plan.n_shards` worker threads.
/// Callers guarantee the gates in `Engine::try_shard_plan` passed.
pub(crate) fn run_sharded<'t, Prog>(
    proto: Engine<'t, Prog>,
    plan: Arc<ShardPlan>,
) -> (Prog, SimResult)
where
    Prog: ShardProgram,
    Prog::Payload: Send,
{
    let wall_start = Instant::now();
    let k = plan.n_shards;
    let (topo, cfg, mut program, starts, counters) = proto.into_sharded_parts();

    // Distribute the initial sends to their nodes' home shards.
    let mut shard_starts: Vec<Vec<_>> = (0..k).map(|_| Vec::new()).collect();
    for (node, at, sends) in starts {
        shard_starts[plan.node_shard[node.idx()] as usize].push((node, at, sends));
    }
    let forks: Vec<Prog> = (0..k).map(|_| program.fork()).collect();

    let shared: Shared<Prog::Payload> = Shared {
        rendezvous: Rendezvous::new(k),
        boards: [Board::new(k), Board::new(k)],
        mailboxes: (0..k)
            .map(|_| (0..k).map(|_| Mutex::new(Vec::new())).collect())
            .collect(),
    };

    let outcomes: Vec<(Prog, ShardPartial, ShardTelem)> = std::thread::scope(|scope| {
        let handles: Vec<_> = forks
            .into_iter()
            .zip(shard_starts)
            .enumerate()
            .map(|(id, (fork, starts))| {
                let cfg = cfg.clone();
                let plan = Arc::clone(&plan);
                let shared = &shared;
                scope.spawn(move || {
                    shard_thread(id, topo, cfg, fork, starts, counters, plan, shared)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });

    // Merge, in shard order so every reduction is deterministic.
    let mut partials = Vec::with_capacity(k);
    let mut busy_ns = 0u64;
    let mut stall_ns = 0u64;
    let mut msgs = 0u64;
    let mut rounds = 0u64;
    for (fork, partial, telem) in outcomes {
        program.absorb(fork);
        busy_ns += telem.busy_ns;
        stall_ns += telem.stall_ns;
        msgs += telem.msgs_sent;
        rounds = rounds.max(telem.rounds);
        partials.push(partial);
    }

    // Deliveries interleave by `(completed, worm rank)` — the sequential
    // pop order of `RecvDone` events (equal times tie-break on the worm's
    // intrinsic rank, which is what `ord_of` encodes).
    let mut tagged: Vec<(Time, u64, MessageRecord)> = partials
        .iter_mut()
        .flat_map(|p| p.messages.drain(..))
        .collect();
    tagged.sort_by_key(|&(t, rank, _)| (t, rank));
    let messages: Vec<MessageRecord> = tagged.into_iter().map(|(_, _, m)| m).collect();

    let n_channels = partials[0].chan_busy.len();
    let mut channels = vec![
        ChannelTelemetry {
            busy: 0,
            blocked: 0,
            acquires: 0,
        };
        n_channels
    ];
    for p in &partials {
        for (i, c) in channels.iter_mut().enumerate() {
            c.busy += p.chan_busy[i];
            c.blocked += p.chan_blocked[i];
            c.acquires += p.chan_acquires[i];
        }
    }

    let counts = partials
        .iter()
        .filter_map(|p| p.counts)
        .fold(None::<EventCounts>, |acc, c| {
            let mut sum = acc.unwrap_or_default();
            sum.acquires += c.acquires;
            sum.releases += c.releases;
            sum.inject_starts += c.inject_starts;
            sum.drain_starts += c.drain_starts;
            sum.recv_dones += c.recv_dones;
            sum.blocked += c.blocked;
            sum.cpu_busy += c.cpu_busy;
            sum.cpu_idle += c.cpu_idle;
            sum.anomalies += c.anomalies;
            Some(sum)
        });

    let events_processed: u64 = partials.iter().map(|p| p.events_processed).sum();
    let events_scheduled: u64 = partials.iter().map(|p| p.events_scheduled).sum();
    let wall_ns = wall_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let meta = RunMeta {
        events_processed,
        events_scheduled,
        // Shard-local high-water marks: the max is the largest any one
        // queue grew, *not* what a sequential queue would have held.
        peak_heap_events: partials.iter().map(|p| p.peak_heap).max().unwrap_or(0),
        peak_heap_bytes: partials
            .iter()
            .map(|p| p.peak_heap_bytes)
            .max()
            .unwrap_or(0),
        trace_events: 0,
        trace_dropped: 0,
        wall_ns,
        events_per_sec: if wall_ns == 0 {
            0.0
        } else {
            events_processed as f64 * 1e9 / wall_ns as f64
        },
    };

    let result = SimResult {
        finish: partials.iter().map(|p| p.finish).max().unwrap_or(0),
        blocked_cycles: partials.iter().map(|p| p.blocked_cycles).sum(),
        blocked_events: partials.iter().map(|p| p.blocked_events).sum(),
        channel_busy_cycles: partials.iter().map(|p| p.channel_busy).sum(),
        messages,
        channels,
        counts,
        trace: Vec::new(),
        truncated: false,
        meta,
    };

    crate::metrics::RUNS.inc();
    crate::metrics::EVENTS_PROCESSED.add(events_processed);
    crate::metrics::EVENTS_SCHEDULED.add(events_scheduled);
    crate::metrics::MESSAGES.add(result.messages.len() as u64);
    crate::metrics::BLOCKED_CYCLES.add(result.blocked_cycles);
    crate::metrics::CHANNEL_BUSY_CYCLES.add(result.channel_busy_cycles);
    crate::metrics::SHARDED_RUNS.inc();
    crate::metrics::SHARD_ROUNDS.add(rounds);
    crate::metrics::SHARD_MESSAGES.add(msgs);
    crate::metrics::SHARD_BUSY_NS.add(busy_ns);
    crate::metrics::SHARD_STALL_NS.add(stall_ns);

    (program, result)
}

fn wait(rendezvous: &Rendezvous, round: u64, stall_ns: &mut u64) {
    let t0 = Instant::now();
    rendezvous.wait(round);
    *stall_ns += t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
}

#[allow(clippy::too_many_arguments)]
fn shard_thread<Prog>(
    id: usize,
    topo: &dyn topo::Topology,
    cfg: SimConfig,
    program: Prog,
    starts: Vec<crate::engine::StartRec<Prog::Payload>>,
    counters: bool,
    plan: Arc<ShardPlan>,
    shared: &Shared<Prog::Payload>,
) -> (Prog, ShardPartial, ShardTelem)
where
    Prog: ShardProgram,
    Prog::Payload: Send,
{
    let k = plan.n_shards;
    let mut eng = Engine::new(topo, cfg, program);
    eng.set_observer(if counters {
        TraceSink::counters()
    } else {
        TraceSink::Null
    });
    for (node, at, sends) in starts {
        eng.start(node, at, sends);
    }
    let msg_dests: Vec<usize> = (0..k)
        .filter(|&j| j != id && plan.msg_graph[id][j])
        .collect();
    eng.set_shard(ShardCtx {
        id: id as u32,
        plan: Arc::clone(&plan),
        outbox: (0..k).map(|_| Vec::new()).collect(),
        msg_dests,
    });
    eng.drain_starts();

    let mut telem = ShardTelem {
        busy_ns: 0,
        stall_ns: 0,
        msgs_sent: 0,
        rounds: 0,
    };
    // Round scratch, allocated once: this shard's promise row, everyone's
    // published matrices, and the fixpoint output.
    let mut promises: Vec<Time> = Vec::with_capacity(k);
    let mut l = vec![vec![Time::MAX; k]; k];
    let mut inbound = vec![Time::MAX; k];
    let mut horizons = vec![Time::MAX; k];
    let mut horizon: Time = 0;
    let mut round: u64 = 0;
    loop {
        // Process every event strictly before the horizon (the first
        // round's horizon is 0: publish-only).  No shard can send us
        // anything below it — that is exactly what the fixpoint proved.
        let t0 = Instant::now();
        eng.run_window(horizon);
        telem.busy_ns += t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;

        // This round's publication board (see [`Board`] for why parity).
        let board = &shared.boards[(round & 1) as usize];

        // Publish this window's handoffs (single writer per cell) and the
        // earliest timestamp shipped per destination — the fixpoint's
        // in-flight source terms.
        let mut published = 0u64;
        for dst in 0..k {
            if dst == id {
                continue;
            }
            let out = eng.outbox_mut(dst);
            let outmin = out.iter().map(OutMsg::time).min().unwrap_or(Time::MAX);
            board.outmins[id][dst].store(outmin, Ordering::SeqCst);
            if !out.is_empty() {
                published += out.len() as u64;
                shared.mailboxes[id][dst]
                    .lock()
                    .expect("mailbox poisoned")
                    .append(out);
            }
        }
        telem.msgs_sent += published;

        // Publish the per-destination promises of what is left in the
        // queue, and the pending count (handoffs shipped this round stay
        // on the sender's tally until their receiver absorbs them).
        eng.emission_bounds(&mut promises);
        for (j, &p) in promises.iter().enumerate() {
            board.eits[id][j].store(p, Ordering::SeqCst);
        }
        board.pendings[id].store(eng.pending_events() as u64 + published, Ordering::SeqCst);

        // The round's single synchronization point.
        wait(&shared.rendezvous, round, &mut telem.stall_ns);
        round += 1;

        // Everyone reads the same published values, so every shard takes
        // the same branch — termination needs no extra coordination.
        let pending: u64 = board
            .pendings
            .iter()
            .map(|p| p.load(Ordering::SeqCst))
            .sum();
        if pending == 0 {
            break;
        }
        telem.rounds += 1;

        // Same inputs, same fixpoint, same horizons on every shard.  The
        // horizon is monotone: earlier rounds already proved nothing can
        // arrive below the previous one.
        for i in 0..k {
            for (cell, eit) in l[i].iter_mut().zip(&board.eits[i]) {
                *cell = eit.load(Ordering::SeqCst);
            }
            inbound[i] = (0..k)
                .map(|s| board.outmins[s][i].load(Ordering::SeqCst))
                .min()
                .expect("at least one shard");
        }
        horizon_fixpoint(&l, &inbound, &plan.msg_graph, plan.rd, &mut horizons);
        horizon = horizon.max(horizons[id]);

        // Absorb this round's handoffs (single reader per cell).  All are
        // timestamped at or after the previous horizon, so inserting them
        // after the window preserves global pop order.
        for src in 0..k {
            if src == id {
                continue;
            }
            let mut slot = shared.mailboxes[src][id].lock().expect("mailbox poisoned");
            for msg in slot.drain(..) {
                eng.deliver(msg);
            }
        }
    }

    let (program, partial) = eng.finish_partial();
    (program, partial, telem)
}
