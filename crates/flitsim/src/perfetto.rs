//! Chrome trace-event / Perfetto JSON export.
//!
//! Turns a run's trace into the [Trace Event Format] consumed by
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev): one
//! track (pid 1) per channel showing every worm's occupancy as a complete
//! (`ph:"X"`) slice, one track (pid 2) per node CPU showing send/receive
//! software, blocking episodes as instant (`ph:"i"`) events on the
//! channel the head is waiting for, and contention counter tracks
//! (`ph:"C"`): a 0/1 occupancy counter per channel plus an aggregate
//! "busy channels" level — the Perfetto face of the heatmap in
//! [`crate::heatmap`].  Timestamps are simulation cycles
//! reported in the format's microsecond field — load the file and read
//! "µs" as "cycles".
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! ```
//! use flitsim::{perfetto, Engine, SendReq, SimConfig};
//! use flitsim::program::SinkProgram;
//! use topo::{Mesh, NodeId, Topology};
//!
//! let mesh = Mesh::new(&[4]);
//! let mut cfg = SimConfig::paragon_like();
//! cfg.trace = true;
//! let mut e = Engine::new(&mesh, cfg, SinkProgram);
//! e.start(NodeId(0), 0, vec![SendReq::to(NodeId(3), 1024, ())]);
//! let (_, result) = e.run();
//! let json = perfetto::export(&result, Some(mesh.graph()));
//! assert!(json.get("traceEvents").is_some());
//! ```

use serde_json::Value;
use topo::NetworkGraph;

use crate::stats::SimResult;
use crate::trace::{channel_occupancy, cpu_occupancy, TraceEvent, TraceKind};

/// Channel tracks live in this synthetic process.
pub const CHANNEL_PID: u64 = 1;
/// Node-CPU tracks live in this synthetic process.
pub const CPU_PID: u64 = 2;

fn obj(fields: &[(&str, Value)]) -> Value {
    Value::Object(
        fields
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect(),
    )
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

fn metadata(name: &str, pid: u64, tid: Option<u64>, value: &str) -> Value {
    let mut fields = vec![
        ("ph", s("M")),
        ("name", s(name)),
        ("pid", Value::UInt(pid)),
        ("args", obj(&[("name", s(value))])),
    ];
    if let Some(tid) = tid {
        fields.push(("tid", Value::UInt(tid)));
    }
    obj(&fields)
}

fn slice(name: String, cat: &str, pid: u64, tid: u64, ts: u64, dur: u64, worm: u32) -> Value {
    obj(&[
        ("ph", s("X")),
        ("name", Value::Str(name)),
        ("cat", s(cat)),
        ("pid", Value::UInt(pid)),
        ("tid", Value::UInt(tid)),
        ("ts", Value::UInt(ts)),
        ("dur", Value::UInt(dur)),
        ("args", obj(&[("worm", Value::UInt(worm as u64))])),
    ])
}

/// Export a run as a Chrome trace-event JSON value.  `graph` (when given)
/// labels channel tracks with their endpoints.  Works on whatever trace the
/// run retained — an empty trace yields a valid file with no slices.
pub fn export(result: &SimResult, graph: Option<&NetworkGraph>) -> Value {
    export_events(&result.trace, graph)
}

fn counter(name: &str, pid: u64, ts: u64, key: &str, value: u64) -> Value {
    obj(&[
        ("ph", s("C")),
        ("name", s(name)),
        ("pid", Value::UInt(pid)),
        ("ts", Value::UInt(ts)),
        ("args", obj(&[(key, Value::UInt(value))])),
    ])
}

/// [`export`] over a raw event stream (e.g. one re-read from a JSONL sink).
pub fn export_events(trace: &[TraceEvent], graph: Option<&NetworkGraph>) -> Value {
    let mut events: Vec<Value> = Vec::new();
    events.push(metadata("process_name", CHANNEL_PID, None, "channels"));
    events.push(metadata("process_name", CPU_PID, None, "node CPUs"));

    let occ = channel_occupancy(trace);
    for (ch, spans) in &occ {
        let label = match graph {
            Some(g) => {
                let c = g.channel(*ch);
                format!("ch{} {:?}->{:?}", ch.0, c.src, c.dst)
            }
            None => format!("ch{}", ch.0),
        };
        events.push(metadata(
            "thread_name",
            CHANNEL_PID,
            Some(ch.0 as u64),
            &label,
        ));
        for &(from, to, worm) in spans {
            events.push(slice(
                format!("worm {worm}"),
                "channel",
                CHANNEL_PID,
                ch.0 as u64,
                from,
                to - from,
                worm,
            ));
        }
    }

    for (node, spans) in cpu_occupancy(trace) {
        events.push(metadata(
            "thread_name",
            CPU_PID,
            Some(node.0 as u64),
            &format!("cpu N{}", node.0),
        ));
        for (from, to, worm) in spans {
            events.push(slice(
                format!("worm {worm} sw"),
                "cpu",
                CPU_PID,
                node.0 as u64,
                from,
                to - from,
                worm,
            ));
        }
    }

    for e in trace {
        if e.kind != TraceKind::Blocked {
            continue;
        }
        let tid = e.channel.map_or(0, |c| c.0 as u64);
        events.push(obj(&[
            ("ph", s("i")),
            ("name", Value::Str(format!("blocked worm {}", e.worm))),
            ("cat", s("blocking")),
            ("pid", Value::UInt(CHANNEL_PID)),
            ("tid", Value::UInt(tid)),
            ("ts", Value::UInt(e.t)),
            ("s", s("t")),
            ("args", obj(&[("worm", Value::UInt(e.worm as u64))])),
        ]));
    }

    // Contention counter tracks: a 0/1 occupancy counter per channel and
    // an aggregate "busy channels" level, derived from the same spans as
    // the slices above (so an empty trace adds nothing here).
    for (ch, spans) in &occ {
        let name = format!("ch{} occupancy", ch.0);
        for &(from, to, _) in spans {
            events.push(counter(&name, CHANNEL_PID, from, "occupied", 1));
            events.push(counter(&name, CHANNEL_PID, to, "occupied", 0));
        }
    }
    let mut deltas: Vec<(u64, i64)> = Vec::new();
    for (_, spans) in &occ {
        for &(from, to, _) in spans {
            deltas.push((from, 1));
            deltas.push((to, -1));
        }
    }
    deltas.sort_unstable();
    let mut level = 0i64;
    let mut i = 0;
    while i < deltas.len() {
        let t = deltas[i].0;
        // Apply every delta at t before emitting, so the counter value at
        // a boundary is unambiguous regardless of acquire/release order.
        while i < deltas.len() && deltas[i].0 == t {
            level += deltas[i].1;
            i += 1;
        }
        events.push(counter(
            "busy channels",
            CHANNEL_PID,
            t,
            "busy",
            level.max(0) as u64,
        ));
    }
    obj(&[
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", s("ms")),
        ("otherData", obj(&[("generator", s("flitsim"))])),
    ])
}

/// [`export`] rendered to a JSON string.
pub fn export_string(result: &SimResult, graph: Option<&NetworkGraph>) -> String {
    serde_json::to_string_pretty(&export(result, graph)).unwrap_or_else(|_| "{}".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SimConfig, SoftwareModel};
    use crate::program::SinkProgram;
    use crate::{Engine, SendReq};
    use topo::{Mesh, NodeId, Topology};

    fn traced_run() -> (Mesh, SimResult) {
        let m = Mesh::new(&[5]);
        let mut cfg = SimConfig::paragon_like();
        cfg.software = SoftwareModel::zero();
        cfg.trace = true;
        let mut e = Engine::new(&m, cfg, SinkProgram);
        e.start(NodeId(0), 0, vec![SendReq::to(NodeId(2), 4000, ())]);
        e.start(NodeId(4), 0, vec![SendReq::to(NodeId(2), 4000, ())]);
        let r = e.run().1;
        (m, r)
    }

    fn slices_by_track(v: &Value) -> std::collections::BTreeMap<(u64, u64), Vec<(u64, u64)>> {
        let mut tracks: std::collections::BTreeMap<(u64, u64), Vec<(u64, u64)>> =
            Default::default();
        for e in v.get("traceEvents").unwrap().as_array().unwrap() {
            if e.get("ph").and_then(|p| p.as_str()) != Some("X") {
                continue;
            }
            let key = (
                e.get("pid").unwrap().as_u64().unwrap(),
                e.get("tid").unwrap().as_u64().unwrap(),
            );
            tracks.entry(key).or_default().push((
                e.get("ts").unwrap().as_u64().unwrap(),
                e.get("dur").unwrap().as_u64().unwrap(),
            ));
        }
        tracks
    }

    #[test]
    fn export_is_valid_json_with_monotone_tracks() {
        let (m, r) = traced_run();
        let text = export_string(&r, Some(m.graph()));
        // Round-trips through the JSON parser.
        let v: Value = serde_json::from_str(&text).unwrap();
        let tracks = slices_by_track(&v);
        assert!(!tracks.is_empty());
        // Slices on one track are time-ordered and never overlap.
        for ((pid, tid), slices) in &tracks {
            for w in slices.windows(2) {
                let (ts0, dur0) = w[0];
                let (ts1, _) = w[1];
                assert!(ts0 + dur0 <= ts1, "overlap on pid {pid} tid {tid}: {w:?}");
            }
        }
        // The contended consumption channel carries both worms.
        let cons = m.graph().consumption(NodeId(2));
        assert_eq!(tracks[&(CHANNEL_PID, cons.0 as u64)].len(), 2);
    }

    #[test]
    fn blocking_appears_as_instants() {
        let (m, r) = traced_run();
        assert_eq!(r.blocked_events, 1);
        let v = export(&r, Some(m.graph()));
        let instants: Vec<&Value> = v
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i"))
            .collect();
        assert_eq!(instants.len(), 1);
        assert_eq!(instants[0].get("s").and_then(|x| x.as_str()), Some("t"));
    }

    #[test]
    fn cpu_tracks_present_with_software_model() {
        let m = Mesh::new(&[4]);
        let mut cfg = SimConfig::paragon_like();
        cfg.trace = true;
        let mut e = Engine::new(&m, cfg, SinkProgram);
        e.start(NodeId(0), 0, vec![SendReq::to(NodeId(3), 512, ())]);
        let r = e.run().1;
        let v = export(&r, None);
        let tracks = slices_by_track(&v);
        assert!(
            tracks.keys().any(|(pid, _)| *pid == CPU_PID),
            "no CPU track exported"
        );
    }

    #[test]
    fn counter_tracks_follow_occupancy() {
        let (m, r) = traced_run();
        let v = export(&r, Some(m.graph()));
        let counters: Vec<&Value> = v
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .collect();
        assert!(!counters.is_empty(), "no counter tracks exported");
        // The aggregate track starts by going busy and ends fully idle.
        let busy: Vec<u64> = counters
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("busy channels"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("busy")
                    .unwrap()
                    .as_u64()
                    .unwrap()
            })
            .collect();
        assert!(busy.len() >= 2);
        assert!(busy[0] > 0, "first busy level should be > 0: {busy:?}");
        assert_eq!(*busy.last().unwrap(), 0, "run should end idle: {busy:?}");
        // Per-channel occupancy counters only take values 0 and 1.
        assert!(counters
            .iter()
            .filter_map(|e| e.get("args").unwrap().get("occupied"))
            .all(|v| matches!(v.as_u64(), Some(0 | 1))));
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let m = Mesh::new(&[4]);
        let e = Engine::new(&m, SimConfig::paragon_like(), SinkProgram);
        let r = e.run().1;
        let v = export(&r, Some(m.graph()));
        assert!(slices_by_track(&v).is_empty());
        // Still a valid document with the two process-name records.
        assert_eq!(v.get("traceEvents").unwrap().as_array().unwrap().len(), 2);
    }
}
