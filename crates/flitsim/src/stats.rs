//! Run results and per-message records.

use pcm::{MsgSize, Time};
use serde::{Deserialize, Serialize};
use topo::NodeId;

use crate::obs::{EventCounts, RunMeta};
use crate::trace::TraceEvent;

/// One completed message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageRecord {
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dest: NodeId,
    /// Payload bytes.
    pub bytes: MsgSize,
    /// Send initiation time (when the CPU picked the send up).
    pub initiated: Time,
    /// First flit entered the injection channel.
    pub injected: Time,
    /// Head reached the consumption channel; draining began.
    pub drain_start: Time,
    /// Tail flit consumed by the destination NI (receive software may
    /// start once the CPU is free).
    pub tail_consumed: Time,
    /// Receive completion (tail consumed + `t_recv`).
    pub completed: Time,
    /// Cycles the head spent blocked waiting for busy channels.
    pub blocked: Time,
}

impl MessageRecord {
    /// Observed end-to-end latency (`initiated` → `completed`): the `t_end`
    /// a user-level measurement would see, contention included.
    pub fn latency(&self) -> Time {
        self.completed - self.initiated
    }
}

/// Per-channel contention totals, accumulated by the engine on every run
/// (plain indexed adds — no observer required).  Indexed by
/// [`topo::ChannelId`]; the heatmap in [`crate::heatmap`] reduces these
/// into the hottest-channels view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelTelemetry {
    /// Cycles the channel was held.
    pub busy: Time,
    /// Blocked cycles attributed to this channel (waits that ended by
    /// acquiring it).
    pub blocked: Time,
    /// Times the channel was acquired.
    pub acquires: u64,
}

impl ChannelTelemetry {
    /// Busy fraction of `[0, finish]` (0 when the run is empty).
    pub fn utilization(&self, finish: Time) -> f64 {
        if finish == 0 {
            0.0
        } else {
            self.busy as f64 / finish as f64
        }
    }
}

/// Aggregate result of a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Time of the last event processed (all messages delivered, all
    /// software completions fired).
    pub finish: Time,
    /// Every message, in completion order.
    pub messages: Vec<MessageRecord>,
    /// Total head-blocked cycles across all messages — the contention
    /// overhead the paper's node orderings are designed to eliminate.
    pub blocked_cycles: Time,
    /// Number of distinct blocking episodes (a head waiting on a busy
    /// channel at least one cycle).
    pub blocked_events: u64,
    /// Total busy channel-cycles (for utilisation analyses).
    pub channel_busy_cycles: Time,
    /// Always-on per-channel contention totals, indexed by channel id
    /// (present on every run; the substrate for `optmc inspect --heatmap`).
    pub channels: Vec<ChannelTelemetry>,
    /// Per-kind event tallies when the run used the counters-only observer
    /// ([`crate::TraceSink::counters`]); `None` otherwise.
    pub counts: Option<EventCounts>,
    /// Channel-level event trace (empty unless an in-memory observer was
    /// active — see [`crate::SimConfig::trace`] and
    /// [`crate::obs::TraceSink`]).
    pub trace: Vec<TraceEvent>,
    /// True when a bounded sink dropped events: `trace` is a prefix of the
    /// run, not the whole story.
    pub truncated: bool,
    /// Engine vitals for this run (event counts are deterministic; the
    /// wall-clock figures are not).
    pub meta: RunMeta,
}

impl SimResult {
    /// Completion time of the latest message — the multicast latency when
    /// the run is a multicast.  `None` when the run delivered nothing, so
    /// an empty run cannot masquerade as a zero-latency one.
    pub fn last_completion(&self) -> Option<Time> {
        self.messages.iter().map(|m| m.completed).max()
    }

    /// True when no head ever waited: the run was contention-free.
    pub fn contention_free(&self) -> bool {
        self.blocked_events == 0
    }

    /// The record for the message delivered to `dest`, if any.
    pub fn delivered_to(&self, dest: NodeId) -> Option<&MessageRecord> {
        self.messages.iter().find(|m| m.dest == dest)
    }

    /// Canonical JSON for reproducibility comparisons: the full result —
    /// every message, every channel total, every deterministic meta count —
    /// with the wall-clock figures (non-deterministic) and the heap
    /// high-water marks (an execution-strategy detail: a sharded run keeps
    /// several smaller queues) zeroed.  A sharded run is correct iff its
    /// fingerprint is byte-identical to the sequential run's.
    pub fn fingerprint(&self) -> String {
        let mut canon = self.clone();
        canon.meta.peak_heap_events = 0;
        canon.meta.peak_heap_bytes = 0;
        canon.meta.wall_ns = 0;
        canon.meta.events_per_sec = 0.0;
        serde_json::to_string(&canon).expect("SimResult serializes")
    }
}
