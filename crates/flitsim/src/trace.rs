//! Channel-level tracing — observability for contention debugging.
//!
//! The engine publishes every channel acquisition/release, injection, drain,
//! blocking episode and CPU busy/idle transition to its
//! [`crate::obs::Observer`] (see [`crate::obs::TraceSink`] for the built-in
//! sinks; [`crate::SimConfig::trace`] selects the in-memory one).  The
//! renderers below turn the raw stream into per-channel timelines and
//! per-worm summaries — how one actually *sees* a worm holding a path while
//! another head waits (the pictures behind the paper's §2.2 discussion).
//! For Chrome/Perfetto visualisation see [`crate::perfetto`].

use pcm::Time;
use serde::{Deserialize, Serialize};
use topo::{ChannelId, NetworkGraph, NodeId};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Worm head acquired a channel.
    Acquire,
    /// Worm tail released a channel.
    Release,
    /// First flit entered the injection channel.
    InjectStart,
    /// Head reached the consumption channel; draining began.
    DrainStart,
    /// Receive completed (software included).
    RecvDone,
    /// Head found every candidate channel busy and started waiting.
    Blocked,
    /// A node's CPU became busy (send issue or receive software).
    CpuBusy,
    /// A node's CPU became free again.
    CpuIdle,
    /// A run-level analysis anomaly (e.g. observed latency below the
    /// analytic bound through model rounding) — emitted by analysis layers
    /// above the engine, never by the engine itself.
    Anomaly,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulation time.
    pub t: Time,
    /// Worm index (matches the order messages were initiated).
    pub worm: u32,
    /// The channel involved, when the event concerns one.
    pub channel: Option<ChannelId>,
    /// The node involved (CPU events; also set on injection/consumption
    /// endpoints where the engine knows it for free).
    pub node: Option<NodeId>,
    /// Event kind.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// A channel-scoped event (no node attribution).
    pub fn on_channel(t: Time, worm: u32, channel: Option<ChannelId>, kind: TraceKind) -> Self {
        TraceEvent {
            t,
            worm,
            channel,
            node: None,
            kind,
        }
    }

    /// A node-scoped (CPU) event.
    pub fn on_node(t: Time, worm: u32, node: NodeId, kind: TraceKind) -> Self {
        TraceEvent {
            t,
            worm,
            channel: None,
            node: Some(node),
            kind,
        }
    }
}

/// The trace horizon: the time of the latest event, 0 for an empty trace.
pub fn horizon(trace: &[TraceEvent]) -> Time {
    trace.iter().map(|e| e.t).max().unwrap_or(0)
}

/// One occupancy span: `(from, to, worm)`.
pub type Span = (Time, Time, u32);

/// Per-resource occupancy: resource id → time-ordered spans.
pub type Occupancy<K> = Vec<(K, Vec<Span>)>;

/// Per-channel occupancy intervals extracted from a trace: channel →
/// list of `(from, to, worm)` holdings, in time order.
///
/// A holding whose release never appears in the trace (truncated trace, or
/// a ring sink that dropped the tail) is closed at the trace horizon rather
/// than dropped, so utilisation numbers stay honest; zero-width spans
/// (acquired exactly at the horizon) are omitted.
pub fn channel_occupancy(trace: &[TraceEvent]) -> Occupancy<ChannelId> {
    use std::collections::BTreeMap;
    let mut open: BTreeMap<u32, (Time, u32)> = BTreeMap::new();
    let mut spans: BTreeMap<u32, Vec<Span>> = BTreeMap::new();
    for e in trace {
        let Some(ch) = e.channel else { continue };
        match e.kind {
            TraceKind::Acquire => {
                open.insert(ch.0, (e.t, e.worm));
            }
            TraceKind::Release => {
                if let Some((from, worm)) = open.remove(&ch.0) {
                    spans.entry(ch.0).or_default().push((from, e.t, worm));
                }
            }
            _ => {}
        }
    }
    let end = horizon(trace);
    for (ch, (from, worm)) in open {
        if end > from {
            spans.entry(ch).or_default().push((from, end, worm));
        }
    }
    let mut out: Occupancy<ChannelId> = spans.into_iter().map(|(c, v)| (ChannelId(c), v)).collect();
    for (_, v) in &mut out {
        v.sort_unstable_by_key(|&(from, _, _)| from);
    }
    out
}

/// Per-node CPU busy intervals: node → list of `(from, to, worm)` busy
/// spans.  Open spans (no matching `CpuIdle` in the trace) are closed at
/// the trace horizon, mirroring [`channel_occupancy`].
pub fn cpu_occupancy(trace: &[TraceEvent]) -> Occupancy<NodeId> {
    use std::collections::BTreeMap;
    let mut open: BTreeMap<u32, (Time, u32)> = BTreeMap::new();
    let mut spans: BTreeMap<u32, Vec<Span>> = BTreeMap::new();
    for e in trace {
        let Some(node) = e.node else { continue };
        match e.kind {
            TraceKind::CpuBusy => {
                open.insert(node.0, (e.t, e.worm));
            }
            TraceKind::CpuIdle => {
                if let Some((from, worm)) = open.remove(&node.0) {
                    spans.entry(node.0).or_default().push((from, e.t, worm));
                }
            }
            _ => {}
        }
    }
    let end = horizon(trace);
    for (n, (from, worm)) in open {
        if end > from {
            spans.entry(n).or_default().push((from, end, worm));
        }
    }
    let mut out: Occupancy<NodeId> = spans.into_iter().map(|(n, v)| (NodeId(n), v)).collect();
    for (_, v) in &mut out {
        v.sort_unstable_by_key(|&(from, _, _)| from);
    }
    out
}

/// Render a textual timeline of the busiest `max_channels` channels.
pub fn render_timeline(trace: &[TraceEvent], graph: &NetworkGraph, max_channels: usize) -> String {
    use std::fmt::Write as _;
    let mut occ = channel_occupancy(trace);
    occ.sort_by_key(|(_, spans)| {
        std::cmp::Reverse(spans.iter().map(|(a, b, _)| b - a).sum::<Time>())
    });
    let mut out = String::new();
    for (ch, spans) in occ.into_iter().take(max_channels) {
        let c = graph.channel(ch);
        let _ = write!(out, "ch{:<5} {:?}->{:?}:", ch.0, c.src, c.dst);
        for (from, to, worm) in spans {
            let _ = write!(out, "  [{from}..{to} w{worm}]");
        }
        let _ = writeln!(out);
    }
    out
}

/// Per-channel utilisation over `[0, horizon]`: busy fraction per channel,
/// highest first.  The hot channels are where contention-avoidance earns
/// its keep.
pub fn utilization(trace: &[TraceEvent], horizon: Time) -> Vec<(ChannelId, f64)> {
    if horizon == 0 {
        return Vec::new();
    }
    let mut v: Vec<(ChannelId, f64)> = channel_occupancy(trace)
        .into_iter()
        .map(|(c, spans)| {
            let busy: Time = spans.iter().map(|(a, b, _)| b - a).sum();
            (c, busy as f64 / horizon as f64)
        })
        .collect();
    v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// Blocking episodes: (time, worm) pairs — the observable face of
/// contention.
pub fn blocking_episodes(trace: &[TraceEvent]) -> Vec<(Time, u32)> {
    trace
        .iter()
        .filter(|e| e.kind == TraceKind::Blocked)
        .map(|e| (e.t, e.worm))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: Time, worm: u32, ch: Option<u32>, kind: TraceKind) -> TraceEvent {
        TraceEvent::on_channel(t, worm, ch.map(ChannelId), kind)
    }

    #[test]
    fn occupancy_pairs_acquire_release() {
        let trace = vec![
            ev(0, 0, Some(3), TraceKind::Acquire),
            ev(5, 1, Some(4), TraceKind::Acquire),
            ev(9, 0, Some(3), TraceKind::Release),
            ev(12, 1, Some(4), TraceKind::Release),
            ev(13, 2, Some(3), TraceKind::Acquire),
            ev(20, 2, Some(3), TraceKind::Release),
        ];
        let occ = channel_occupancy(&trace);
        assert_eq!(occ.len(), 2);
        let ch3 = occ.iter().find(|(c, _)| c.0 == 3).unwrap();
        assert_eq!(ch3.1, vec![(0, 9, 0), (13, 20, 2)]);
    }

    #[test]
    fn open_spans_close_at_horizon() {
        // ch3's release is missing (e.g. the trace was truncated): the span
        // must still appear, closed at the horizon set by the last event.
        let trace = vec![
            ev(0, 0, Some(3), TraceKind::Acquire),
            ev(5, 1, Some(4), TraceKind::Acquire),
            ev(12, 1, Some(4), TraceKind::Release),
        ];
        let occ = channel_occupancy(&trace);
        let ch3 = occ.iter().find(|(c, _)| c.0 == 3).unwrap();
        assert_eq!(ch3.1, vec![(0, 12, 0)]);
        // A zero-width open span (acquired at the horizon) is dropped.
        let trace = vec![ev(7, 0, Some(9), TraceKind::Acquire)];
        assert!(channel_occupancy(&trace).is_empty());
    }

    #[test]
    fn cpu_occupancy_pairs_busy_idle() {
        let trace = vec![
            TraceEvent::on_node(0, 0, NodeId(2), TraceKind::CpuBusy),
            TraceEvent::on_node(350, 0, NodeId(2), TraceKind::CpuIdle),
            TraceEvent::on_node(400, 1, NodeId(2), TraceKind::CpuBusy),
        ];
        let occ = cpu_occupancy(&trace);
        assert_eq!(occ.len(), 1);
        // Second span is open and closes at the horizon (400 == horizon →
        // zero width → dropped).
        assert_eq!(occ[0].1, vec![(0, 350, 0)]);
    }

    #[test]
    fn utilization_ranks_hot_channels() {
        let trace = vec![
            ev(0, 0, Some(1), TraceKind::Acquire),
            ev(80, 0, Some(1), TraceKind::Release),
            ev(10, 1, Some(2), TraceKind::Acquire),
            ev(30, 1, Some(2), TraceKind::Release),
        ];
        let u = utilization(&trace, 100);
        assert_eq!(u[0].0, ChannelId(1));
        assert!((u[0].1 - 0.8).abs() < 1e-9);
        assert!((u[1].1 - 0.2).abs() < 1e-9);
        assert!(utilization(&trace, 0).is_empty());
    }

    #[test]
    fn blocking_extraction() {
        let trace = vec![
            ev(2, 1, Some(7), TraceKind::Blocked),
            ev(3, 1, Some(7), TraceKind::Acquire),
            ev(8, 1, Some(7), TraceKind::Release),
        ];
        assert_eq!(blocking_episodes(&trace), vec![(2, 1)]);
    }
}
