//! A counting global allocator for tests that assert a hot path performs no
//! heap allocation.
//!
//! Consumers install it as their test binary's global allocator — the
//! declaration itself is safe code, so the consuming crate keeps its
//! `#![forbid(unsafe_code)]`:
//!
//! ```rust,ignore
//! #[global_allocator]
//! static ALLOC: allocmeter::Counting = allocmeter::Counting;
//!
//! let before = allocmeter::allocations();
//! hot_path();
//! assert_eq!(allocmeter::allocations() - before, 0);
//! ```
//!
//! Counts are process-global and monotone; tests that share a binary must
//! compare deltas, not absolutes, and should run single-threaded (or accept
//! other threads' allocations in the delta).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The counting allocator: forwards to [`System`], tallying every
/// allocation-acquiring call (`alloc`, `alloc_zeroed`, `realloc`).
pub struct Counting;

// SAFETY: pure pass-through to `System`, which upholds the GlobalAlloc
// contract; the counter is a relaxed atomic with no effect on layout or
// pointer validity.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocation-acquiring calls since process start.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}
