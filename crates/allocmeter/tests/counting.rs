//! Exercises every `GlobalAlloc` entry point of [`allocmeter::Counting`]
//! with the meter installed as this binary's global allocator.
//!
//! Doubles as the workspace's Miri gate: `scripts/check.sh verify` runs
//! `cargo miri test -p allocmeter` (when the miri component is installed)
//! so the crate's `unsafe` pass-through is checked for UB — bad layouts,
//! invalid pointer hand-offs, or counter data races would all surface here.

use std::alloc::{GlobalAlloc, Layout};

#[global_allocator]
static ALLOC: allocmeter::Counting = allocmeter::Counting;

/// `alloc` / `dealloc` via ordinary heap use: each `Box::new` is exactly
/// one allocation-acquiring call; drops are not counted.
#[test]
fn boxes_count_allocs_not_frees() {
    let before = allocmeter::allocations();
    let a = Box::new(17u64);
    let b = Box::new([0u8; 128]);
    let mid = allocmeter::allocations();
    assert!(mid - before >= 2, "two boxes, {} allocs", mid - before);
    drop(a);
    drop(b);
    // A pure free must not move the meter (other test threads may
    // allocate concurrently, so assert through a direct call instead).
    let layout = Layout::new::<u64>();
    // SAFETY: layout is valid and non-zero-sized; the pointer is freed
    // exactly once with the same layout it was acquired with.
    unsafe {
        let p = ALLOC.alloc(layout);
        assert!(!p.is_null());
        let at_alloc = allocmeter::allocations();
        ALLOC.dealloc(p, layout);
        let at_free = allocmeter::allocations();
        assert_eq!(at_free, at_alloc, "dealloc moved the allocation meter");
    }
}

/// `alloc_zeroed` counts and actually zeroes.
#[test]
fn alloc_zeroed_counts_and_zeroes() {
    let layout = Layout::from_size_align(64, 8).unwrap();
    let before = allocmeter::allocations();
    // SAFETY: valid non-zero-sized layout; memory freed once below.
    unsafe {
        let p = ALLOC.alloc_zeroed(layout);
        assert!(!p.is_null());
        assert!(allocmeter::allocations() > before);
        for i in 0..layout.size() {
            assert_eq!(*p.add(i), 0, "byte {i} not zeroed");
        }
        ALLOC.dealloc(p, layout);
    }
}

/// `realloc` counts as an allocation-acquiring call and preserves the
/// prefix, both growing and shrinking.
#[test]
fn realloc_counts_and_preserves_contents() {
    let layout = Layout::from_size_align(16, 8).unwrap();
    // SAFETY: valid layouts; every pointer is written within its
    // allocation's bounds and freed exactly once with its current layout.
    unsafe {
        let p = ALLOC.alloc(layout);
        assert!(!p.is_null());
        for i in 0..16u8 {
            *p.add(i as usize) = i;
        }
        let before = allocmeter::allocations();
        let grown = ALLOC.realloc(p, layout, 64);
        assert!(!grown.is_null());
        assert!(allocmeter::allocations() > before, "realloc not counted");
        for i in 0..16u8 {
            assert_eq!(*grown.add(i as usize), i, "grow lost byte {i}");
        }
        let grown_layout = Layout::from_size_align(64, 8).unwrap();
        let shrunk = ALLOC.realloc(grown, grown_layout, 8);
        assert!(!shrunk.is_null());
        for i in 0..8u8 {
            assert_eq!(*shrunk.add(i as usize), i, "shrink lost byte {i}");
        }
        ALLOC.dealloc(shrunk, Layout::from_size_align(8, 8).unwrap());
    }
}

/// Vec growth exercises the realloc path through the installed meter and
/// the count stays monotone across threads.
#[test]
fn meter_is_monotone_under_concurrency() {
    let before = allocmeter::allocations();
    let handles: Vec<_> = (0..2)
        .map(|t| {
            std::thread::spawn(move || {
                let mut v = Vec::new();
                for i in 0..256u32 {
                    v.push(i + t);
                }
                v.iter().copied().sum::<u32>()
            })
        })
        .collect();
    let sums: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(sums.len(), 2);
    assert!(
        allocmeter::allocations() > before,
        "growing vectors never hit the meter"
    );
}
