//! # `campaign` — parallel, resumable experiment campaigns
//!
//! The paper's evaluation is a grid: topologies × algorithms × participant
//! counts × message sizes, each point averaged over 16 random placements.
//! This crate turns that grid into a first-class, restartable artifact:
//!
//! * [`spec::CampaignSpec`] — a declarative, JSON-loadable description of
//!   the sweep, expanded into content-addressed [`spec::Cell`]s whose
//!   placement seeds derive from [`optmc::trial_seed`], so a campaign cell
//!   and a solo [`optmc::experiments::run_trials`] call of the same
//!   parameters are bit-identical.
//! * [`pool`] — a std-only worker pool (`Mutex<VecDeque>` feed,
//!   `std::thread::scope` workers) with per-cell panic isolation
//!   (`catch_unwind`), a wall-clock budget per cell, and a failure ledger.
//! * [`store::ShardStore`] — completed cells append to a JSONL shard store
//!   under `results/campaigns/<name>/`; a restarted campaign skips every
//!   recorded cell key, tolerating a partially-written (killed mid-append)
//!   final line.
//! * [`heartbeat`] — the pool streams [`heartbeat::Heartbeat`] lines
//!   (progress, in-flight cells, worker utilization, cell-latency
//!   histogram, ETA) to `heartbeat.jsonl`, consumed by `optmc sweep
//!   status` and `optmc sweep run --progress`.
//! * [`aggregate`] — reduce the shards back into the repo's
//!   `results/fig*.csv|json` figure datasets plus a campaign summary
//!   (latency spread, overhead vs the analytic bound, cells per second).
//! * [`workload`] — open-loop concurrent-multicast workloads on
//!   [`optmc::concurrent`]: seeded Poisson or fixed-rate arrivals inject
//!   multicasts with random roots and groups; the report gives
//!   per-multicast latency distributions and the interference factor
//!   against the solo baseline.
//!
//! The CLI surface is `optmc sweep run|resume|report` and
//! `optmc workload`.

#![forbid(unsafe_code)]

pub mod aggregate;
pub mod figure;
pub mod heartbeat;
pub mod key;
pub mod pool;
pub mod spec;
pub mod store;
pub mod workload;

pub use aggregate::{figure_from_records, summarize, CampaignSummary};
pub use figure::{Figure, Series};
pub use heartbeat::Heartbeat;
pub use pool::{run_campaign, CellReport, PoolOptions, RunSummary};
pub use spec::{expand, CampaignSpec, Cell, FigureSpec, XAxis};
pub use store::{CellRecord, Failure, ShardStore};
pub use workload::{run_workload, Arrivals, WorkloadReport, WorkloadSpec};
