//! Campaign live telemetry: the heartbeat stream.
//!
//! The worker pool appends one [`Heartbeat`] line to
//! `results/campaigns/<name>/heartbeat.jsonl` before workers start and
//! after every resolved cell, from inside the same critical section that
//! checkpoints the cell — so the newest heartbeat is always consistent
//! with the shard store.  `optmc sweep status` reads the latest line for
//! a progress/ETA view of a running (or finished, or killed) campaign,
//! and `optmc sweep run --progress` renders the same records in place as
//! they are produced.
//!
//! Heartbeats are observability, not checkpoints: writes are best-effort
//! (an unwritable heartbeat never fails a cell) and resume ignores them.

use serde::{Deserialize, Serialize};
use telem::Histogram;

/// One line of the campaign heartbeat stream.
///
/// All counters are cumulative for the run (resumed runs restart at
/// `seq = 0` but keep `done` ahead by the skipped cells), and every
/// duration is wall-clock milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Sequence number within this run; 0 is the pre-work heartbeat.
    pub seq: u64,
    /// Milliseconds since the run started.
    pub elapsed_ms: u64,
    /// Cells in the campaign grid.
    pub total: usize,
    /// Cells resolved so far, including cells skipped by resume.
    pub done: usize,
    /// Cells executed in this run (success or failure).
    pub executed: usize,
    /// Cells that failed (panic, error, or budget overrun).
    pub failed: usize,
    /// Cells skipped because the store already had them.
    pub skipped: usize,
    /// Cells claimed by a worker but not yet resolved.
    pub in_flight: usize,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Simulator events processed by executed cells so far.
    pub events: u64,
    /// Total wall-clock milliseconds spent inside executed cells.
    pub cell_wall_ms: u64,
    /// Distribution of per-cell wall-clock milliseconds.
    pub cell_ms_hist: Histogram,
    /// Estimated milliseconds to completion (0 when unknown or done).
    pub eta_ms: u64,
}

impl Heartbeat {
    /// Cells not yet resolved.
    pub fn remaining(&self) -> usize {
        self.total.saturating_sub(self.done)
    }

    /// Completion fraction in `0.0 ..= 1.0`.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.done as f64 / self.total as f64
        }
    }

    /// Estimate time-to-completion from throughput so far: remaining
    /// cells x mean cell wall time, divided across the worker pool.
    /// Returns 0 (unknown) until at least one cell has executed.
    pub fn estimate_eta_ms(&self) -> u64 {
        if self.executed == 0 || self.remaining() == 0 {
            return 0;
        }
        let mean = self.cell_wall_ms as f64 / self.executed as f64;
        (self.remaining() as f64 * mean / self.workers.max(1) as f64).round() as u64
    }

    /// One-line progress summary, used by `sweep run --progress`.
    pub fn progress_line(&self) -> String {
        let mut line = format!(
            "[{:>3.0}%] {}/{} cells  in-flight {}  failed {}  {}",
            100.0 * self.fraction(),
            self.done,
            self.total,
            self.in_flight,
            self.failed,
            fmt_ms(self.elapsed_ms),
        );
        if self.eta_ms > 0 {
            line.push_str(&format!("  eta {}", fmt_ms(self.eta_ms)));
        }
        line
    }

    /// Multi-line status report, used by `optmc sweep status`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "progress       {}/{} cells ({:.0}%)\n",
            self.done,
            self.total,
            100.0 * self.fraction()
        ));
        out.push_str(&format!(
            "executed       {} ({} failed, {} skipped by resume)\n",
            self.executed, self.failed, self.skipped
        ));
        out.push_str(&format!(
            "in flight      {} of {} workers\n",
            self.in_flight, self.workers
        ));
        out.push_str(&format!("events         {}\n", self.events));
        out.push_str(&format!(
            "elapsed        {} (heartbeat #{})\n",
            fmt_ms(self.elapsed_ms),
            self.seq
        ));
        if self.executed > 0 {
            out.push_str(&format!(
                "cell wall ms   p50 {}  p95 {}  max {}\n",
                self.cell_ms_hist.p50().unwrap_or(0),
                self.cell_ms_hist.p95().unwrap_or(0),
                self.cell_ms_hist.max
            ));
        }
        if self.eta_ms > 0 {
            out.push_str(&format!("eta            {}\n", fmt_ms(self.eta_ms)));
        } else if self.remaining() == 0 {
            out.push_str("eta            done\n");
        }
        out
    }
}

/// `1234` -> `"1.2s"`, `95000` -> `"1m35s"`, sub-second stays in ms.
fn fmt_ms(ms: u64) -> String {
    if ms < 1000 {
        format!("{ms}ms")
    } else if ms < 60_000 {
        format!("{:.1}s", ms as f64 / 1000.0)
    } else {
        format!("{}m{:02}s", ms / 60_000, (ms % 60_000) / 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beat() -> Heartbeat {
        let mut hist = Histogram::default();
        hist.record(10);
        hist.record(30);
        Heartbeat {
            seq: 2,
            elapsed_ms: 40,
            total: 8,
            done: 2,
            executed: 2,
            failed: 1,
            skipped: 0,
            in_flight: 2,
            workers: 2,
            events: 12345,
            cell_wall_ms: 40,
            cell_ms_hist: hist,
            eta_ms: 0,
        }
    }

    #[test]
    fn eta_scales_with_remaining_and_workers() {
        let mut b = beat();
        // 6 remaining x 20ms mean / 2 workers = 60ms.
        assert_eq!(b.estimate_eta_ms(), 60);
        b.workers = 1;
        assert_eq!(b.estimate_eta_ms(), 120);
        b.done = b.total;
        assert_eq!(b.estimate_eta_ms(), 0, "finished runs have no ETA");
        b.done = 0;
        b.executed = 0;
        assert_eq!(b.estimate_eta_ms(), 0, "no data, no ETA");
    }

    #[test]
    fn renders_progress_and_status() {
        let mut b = beat();
        b.eta_ms = b.estimate_eta_ms();
        let line = b.progress_line();
        assert!(line.contains("2/8 cells"), "{line}");
        assert!(line.contains("eta"), "{line}");
        let status = b.render();
        assert!(status.contains("progress       2/8"), "{status}");
        assert!(status.contains("in flight      2 of 2"), "{status}");
        assert!(status.contains("p50"), "{status}");
    }

    #[test]
    fn serializes_round_trip() {
        let b = beat();
        let line = serde_json::to_string(&b).unwrap();
        let back: Heartbeat = serde_json::from_str(&line).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn fmt_ms_picks_sane_units() {
        assert_eq!(fmt_ms(5), "5ms");
        assert_eq!(fmt_ms(1500), "1.5s");
        assert_eq!(fmt_ms(95_000), "1m35s");
    }
}
