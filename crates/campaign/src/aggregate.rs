//! The aggregation pass: shards → figure datasets + campaign summary.
//!
//! Reduction is pure and deterministic: the same set of cell records
//! produces byte-identical `results/fig*.csv|json` output regardless of
//! worker count, completion order, or how many resumes it took to fill the
//! store — the figure writers are the same code the sequential figure
//! binaries use ([`crate::figure`]).

use std::collections::HashMap;

use optmc::spec::parse_topology;
use optmc::{TrialOutcome, TrialStats};
use pcm::Time;

use crate::figure::{Figure, Series};
use crate::spec::{expand, CampaignSpec, XAxis};
use crate::store::CellRecord;

/// Whole-campaign aggregate over every recorded trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignSummary {
    /// Cells aggregated.
    pub cells: usize,
    /// Total trials across all cells.
    pub trials: usize,
    /// Mean observed latency over all trials.
    pub mean_latency: f64,
    /// Minimum observed latency.
    pub min_latency: Time,
    /// Maximum observed latency.
    pub max_latency: Time,
    /// Mean overhead above the analytic bound (clamped at 0 per trial,
    /// mirroring [`optmc::RunOutcome::overhead`]).
    pub mean_overhead: f64,
    /// Fraction of trials that ran contention-free.
    pub contention_free_fraction: f64,
    /// Total wall-clock milliseconds spent inside cells.
    pub cell_wall_ms: u64,
    /// Cells per wall-clock second of cell time.
    pub cells_per_sec: f64,
}

/// Aggregate all records; `None` when there are none.
pub fn summarize(records: &[CellRecord]) -> Option<CampaignSummary> {
    let outcomes: Vec<&TrialOutcome> = records.iter().flat_map(|r| &r.outcomes).collect();
    if outcomes.is_empty() {
        return None;
    }
    let n = outcomes.len() as f64;
    let cell_wall_ms: u64 = records.iter().map(|r| r.wall_ms).sum();
    Some(CampaignSummary {
        cells: records.len(),
        trials: outcomes.len(),
        mean_latency: outcomes.iter().map(|o| o.latency as f64).sum::<f64>() / n,
        min_latency: outcomes.iter().map(|o| o.latency).min().expect("non-empty"),
        max_latency: outcomes.iter().map(|o| o.latency).max().expect("non-empty"),
        mean_overhead: outcomes
            .iter()
            .map(|o| o.latency.saturating_sub(o.analytic) as f64)
            .sum::<f64>()
            / n,
        contention_free_fraction: outcomes.iter().filter(|o| o.contention_free).count() as f64 / n,
        cell_wall_ms,
        cells_per_sec: records.len() as f64 * 1000.0 / cell_wall_ms.max(1) as f64,
    })
}

/// Human-readable summary block for the CLI.
pub fn render_summary(s: &CampaignSummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "cells          {}", s.cells);
    let _ = writeln!(out, "trials         {}", s.trials);
    let _ = writeln!(
        out,
        "latency        mean {:.1}  min {}  max {}",
        s.mean_latency, s.min_latency, s.max_latency
    );
    let _ = writeln!(
        out,
        "overhead       mean {:.1} above analytic bound",
        s.mean_overhead
    );
    let _ = writeln!(
        out,
        "contention     {:.0}% of trials ran contention-free",
        s.contention_free_fraction * 100.0
    );
    let _ = writeln!(
        out,
        "throughput     {:.2} cells/s over {} ms of cell time",
        s.cells_per_sec, s.cell_wall_ms
    );
    out
}

/// Reduce the records into the figure the spec describes.
///
/// Requires the spec to carry a [`crate::FigureSpec`], exactly one
/// topology, and — depending on the axis — exactly one `k` (bytes sweep)
/// or one size (nodes sweep).  Every grid cell must be present in
/// `records`; a missing cell is reported by key, which is exactly the
/// resume hint the user needs.
pub fn figure_from_records(spec: &CampaignSpec, records: &[CellRecord]) -> Result<Figure, String> {
    let Some(fig) = &spec.figure else {
        return Err(format!(
            "campaign '{}' declares no figure mapping",
            spec.name
        ));
    };
    let [topo_spec] = spec.topos.as_slice() else {
        return Err("figure aggregation needs exactly one topology".into());
    };
    match fig.x_axis {
        XAxis::Bytes if spec.ks.len() != 1 => {
            return Err("a bytes-axis figure needs exactly one k".into())
        }
        XAxis::Nodes if spec.sizes.len() != 1 => {
            return Err("a nodes-axis figure needs exactly one size".into())
        }
        _ => {}
    }
    let topo = parse_topology(topo_spec)?;
    let by_key: HashMap<&str, &CellRecord> = records.iter().map(|r| (r.key.as_str(), r)).collect();

    let mean_of = |key: &str| -> Result<f64, String> {
        let r = by_key
            .get(key)
            .ok_or_else(|| format!("cell not in shard store (resume the campaign?): {key}"))?;
        Ok(TrialStats::from_outcomes(&r.outcomes).mean_latency)
    };

    let mut series = Vec::with_capacity(spec.algorithms.len());
    for &alg in &spec.algorithms {
        let mut points = Vec::new();
        for cell in expand(spec).iter().filter(|c| c.algorithm == alg) {
            let x = match fig.x_axis {
                XAxis::Bytes => cell.bytes as f64,
                XAxis::Nodes => cell.k as f64,
            };
            points.push((x, mean_of(&cell.key())?));
        }
        series.push(Series {
            label: alg.display_name(topo.as_ref()),
            points,
        });
    }
    Ok(Figure {
        id: fig.id.clone(),
        title: fig.title.clone(),
        x_label: fig.x_label.clone(),
        y_label: fig.y_label.clone(),
        series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{run_campaign, PoolOptions};
    use crate::store::ShardStore;

    fn demo_spec() -> CampaignSpec {
        CampaignSpec::from_json(
            r#"{
                "name": "agg",
                "topos": ["mesh:8x8"],
                "algorithms": ["u-arch", "opt-arch"],
                "ks": [8],
                "sizes": [512, 4096],
                "trials": 2,
                "figure": {"id": "aggtest", "title": "agg fig", "x": "bytes"}
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn aggregates_shards_into_the_figure_and_summary() {
        let spec = demo_spec();
        let dir = std::env::temp_dir().join(format!("campaign_agg_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ShardStore::open(&dir).unwrap();
        run_campaign(&spec, &store, &PoolOptions::default(), &|_| {}).unwrap();
        let records = store.load_cells().unwrap();

        let s = summarize(&records).unwrap();
        assert_eq!((s.cells, s.trials), (4, 8));
        assert!(s.min_latency <= s.max_latency);
        assert!(s.mean_overhead >= 0.0);
        assert!(render_summary(&s).contains("cells/s"));

        let fig = figure_from_records(&spec, &records).unwrap();
        assert_eq!(fig.id, "aggtest");
        assert_eq!(fig.series.len(), 2);
        assert_eq!(fig.series[0].label, "U-mesh");
        assert_eq!(fig.series[1].label, "OPT-mesh");
        assert_eq!(fig.series[0].points.len(), 2);
        assert_eq!(fig.series[0].points[0].0, 512.0);
        // The figure's means equal a solo run_trials of the same cell —
        // the bit-identical contract between campaign and sequential paths.
        let topo = parse_topology("mesh:8x8").unwrap();
        let cfg = flitsim::SimConfig::paragon_like();
        let solo = optmc::experiments::run_trials(
            topo.as_ref(),
            &cfg,
            optmc::Algorithm::UArch,
            8,
            512,
            2,
            1997,
        );
        assert_eq!(fig.series[0].points[0].1, solo.mean_latency);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_cells_are_reported_by_key() {
        let spec = demo_spec();
        let err = figure_from_records(&spec, &[]).unwrap_err();
        assert!(err.contains("mesh:8x8|u-arch|k8|b512|t2|s1997"), "{err}");
    }

    #[test]
    fn summarize_of_nothing_is_none() {
        assert!(summarize(&[]).is_none());
    }
}
