//! Open-loop multicast workloads over [`optmc::concurrent`].
//!
//! The paper's evaluation runs one multicast at a time; a machine under
//! load runs many, arriving independently of completions (open-loop).
//! This module injects `count` multicasts with random roots and groups at
//! seeded Poisson or fixed-rate arrival times, then reports per-multicast
//! latency distributions and the *interference factor* — joint latency
//! over the solo latency of the identical multicast on an idle network.

use flitsim::Histogram;
use pcm::Time;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use topo::Topology;

use flitsim::SimConfig;
use optmc::concurrent::{run_concurrent, ConcurrentOutcome, McastSpec};
use optmc::experiments::{fnv1a64, random_placement, trial_seed};
use optmc::Algorithm;

/// The arrival process of an open-loop workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Poisson arrivals with the given mean inter-arrival gap (cycles):
    /// exponentially-distributed gaps, the classic open-loop injector.
    Poisson {
        /// Mean gap between consecutive arrivals, in cycles.
        mean_gap: f64,
    },
    /// One arrival every `gap` cycles exactly.
    Fixed {
        /// Gap between consecutive arrivals, in cycles.
        gap: Time,
    },
}

/// An open-loop workload description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Number of multicasts to inject.
    pub count: usize,
    /// Participants per multicast (root included).
    pub k: usize,
    /// Message bytes per multicast.
    pub bytes: u64,
    /// The arrival process.
    pub arrivals: Arrivals,
    /// Seed for groups, roots, and arrival times.
    pub seed: u64,
}

/// A uniform draw in `[0, 1)` from the top 53 bits (exactly representable).
fn unit_f64(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Expand the workload into concurrent-multicast specs: group `i` is an
/// independent random placement (groups may overlap — real traffic does),
/// its root the placement's first node, its start the cumulative arrival
/// time.  Deterministic in `spec.seed`.
pub fn generate_specs(n_nodes: usize, spec: &WorkloadSpec) -> Vec<McastSpec> {
    let stream = fnv1a64(format!("workload#{}#{}", spec.k, spec.count).as_bytes());
    let mut rng = StdRng::seed_from_u64(trial_seed(spec.seed, stream, 0));
    let mut t: Time = 0;
    (0..spec.count)
        .map(|i| {
            let gap = match spec.arrivals {
                Arrivals::Fixed { gap } => gap,
                Arrivals::Poisson { mean_gap } => {
                    // Inverse-CDF exponential sample; 1-u keeps ln finite.
                    (-(1.0 - unit_f64(&mut rng)).ln() * mean_gap).round() as Time
                }
            };
            t = t.saturating_add(gap);
            let participants =
                random_placement(n_nodes, spec.k, trial_seed(spec.seed, stream, i + 1));
            McastSpec {
                src: participants[0],
                participants,
                bytes: spec.bytes,
                start: t,
            }
        })
        .collect()
}

/// The workload's outcome: per-multicast latencies within the joint run
/// plus the solo baselines of the identical multicasts.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Per-multicast outcomes of the joint run, in injection order.
    pub outcomes: Vec<ConcurrentOutcome>,
    /// Latency of each multicast run alone on an idle network.
    pub solo: Vec<Time>,
    /// Distribution of joint latencies.
    pub latency: Histogram,
    /// Mean joint latency.
    pub mean_latency: f64,
    /// Mean of per-multicast `joint / solo` ratios.
    pub mean_interference: f64,
    /// The worst per-multicast `joint / solo` ratio.
    pub max_interference: f64,
    /// Last completion minus first injection.
    pub makespan: Time,
    /// Total head-blocked cycles across the joint run.
    pub blocked_cycles: u64,
}

/// Run the workload under `algorithm` and report.
///
/// # Panics
/// If `spec.count == 0` or `spec.k` exceeds the machine (placement
/// contract).
pub fn run_workload(
    topo: &dyn Topology,
    cfg: &SimConfig,
    algorithm: Algorithm,
    spec: &WorkloadSpec,
) -> WorkloadReport {
    assert!(spec.count >= 1, "workload needs at least one multicast");
    let specs = generate_specs(topo.graph().n_nodes(), spec);
    let (outcomes, sim) = run_concurrent(topo, cfg, algorithm, &specs);

    let solo: Vec<Time> = specs
        .iter()
        .map(|s| {
            optmc::run_multicast(topo, cfg, algorithm, &s.participants, s.src, s.bytes).latency
        })
        .collect();

    let ratios: Vec<f64> = outcomes
        .iter()
        .zip(&solo)
        .map(|(o, &s)| o.latency as f64 / s.max(1) as f64)
        .collect();
    let latency = Histogram::from_samples(outcomes.iter().map(|o| o.latency));
    let first_start = specs.iter().map(|s| s.start).min().unwrap_or(0);
    let last_done = outcomes
        .iter()
        .map(|o| o.start + o.latency)
        .max()
        .unwrap_or(0);
    WorkloadReport {
        mean_latency: latency.mean(),
        latency,
        mean_interference: ratios.iter().sum::<f64>() / ratios.len() as f64,
        max_interference: ratios.iter().copied().fold(0.0, f64::max),
        makespan: last_done.saturating_sub(first_start),
        blocked_cycles: sim.blocked_cycles,
        outcomes,
        solo,
    }
}

/// Human-readable workload report for the CLI.
pub fn render_report(r: &WorkloadReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "multicasts     {}", r.outcomes.len());
    let _ = writeln!(
        out,
        "joint latency  mean {:.1}  p50 {}  p95 {}  max {}",
        r.mean_latency,
        r.latency.quantile(0.50).unwrap_or(0),
        r.latency.quantile(0.95).unwrap_or(0),
        r.latency.max,
    );
    let _ = writeln!(
        out,
        "interference   mean {:.2}x  worst {:.2}x vs solo baseline",
        r.mean_interference, r.max_interference
    );
    let _ = writeln!(
        out,
        "makespan       {} cycles, {} blocked",
        r.makespan, r.blocked_cycles
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::Mesh;

    fn base(arrivals: Arrivals) -> WorkloadSpec {
        WorkloadSpec {
            count: 6,
            k: 12,
            bytes: 2048,
            arrivals,
            seed: 7,
        }
    }

    #[test]
    fn generation_is_seeded_and_open_loop() {
        let w = base(Arrivals::Poisson { mean_gap: 500.0 });
        let a = generate_specs(256, &w);
        let b = generate_specs(256, &w);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.participants, y.participants, "same seed, same groups");
            assert_eq!(x.start, y.start);
        }
        assert!(
            a.windows(2).all(|p| p[0].start <= p[1].start),
            "arrival order"
        );
        assert!(a.last().unwrap().start > 0, "arrivals actually spread out");
        let mut w2 = w;
        w2.seed = 8;
        let c = generate_specs(256, &w2);
        assert_ne!(
            a.iter().map(|s| s.start).collect::<Vec<_>>(),
            c.iter().map(|s| s.start).collect::<Vec<_>>(),
            "different seed, different arrivals"
        );
    }

    #[test]
    fn fixed_rate_arrivals_are_evenly_spaced() {
        let w = base(Arrivals::Fixed { gap: 300 });
        let specs = generate_specs(256, &w);
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.start, 300 * (i as u64 + 1));
        }
    }

    #[test]
    fn interference_is_at_least_solo_and_widely_spaced_arrivals_are_clean() {
        let m = Mesh::new(&[16, 16]);
        let cfg = SimConfig::paragon_like();
        // Arrivals spaced far beyond any single multicast's latency: the
        // network is idle at each injection, so joint == solo exactly.
        let w = base(Arrivals::Fixed { gap: 1_000_000 });
        let r = run_workload(&m, &cfg, Algorithm::OptArch, &w);
        for (o, &s) in r.outcomes.iter().zip(&r.solo) {
            assert_eq!(o.latency, s, "idle-network multicast must match solo");
        }
        assert!((r.mean_interference - 1.0).abs() < 1e-9);
        assert_eq!(r.blocked_cycles, 0);
    }

    #[test]
    fn saturating_arrivals_interfere() {
        let m = Mesh::new(&[16, 16]);
        let cfg = SimConfig::paragon_like();
        let w = WorkloadSpec {
            count: 8,
            k: 24,
            bytes: 8192,
            arrivals: Arrivals::Fixed { gap: 1 },
            seed: 3,
        };
        let r = run_workload(&m, &cfg, Algorithm::OptArch, &w);
        assert!(
            r.max_interference > 1.0,
            "back-to-back multicasts with overlapping groups must interfere: {r:?}"
        );
        assert!(r.latency.count == 8);
        assert!(render_report(&r).contains("interference"));
    }
}
