//! The std-only campaign worker pool.
//!
//! A `Mutex<VecDeque>` of cells feeds `std::thread::scope` workers (count
//! from `--jobs` or `available_parallelism`).  Each cell runs under
//! `catch_unwind` so one pathological parameter point cannot take down the
//! campaign: panics and per-cell wall-budget overruns land in the failure
//! ledger and the pool moves on.  Completed cells append to the
//! [`ShardStore`] before the next cell is claimed — killing the process
//! loses at most the cells in flight, and a resumed run skips every
//! recorded key.
//!
//! The pool also streams live telemetry: a [`Heartbeat`] line goes to the
//! store before workers start and after every resolved cell (best-effort —
//! heartbeat I/O errors never fail the run), feeding `optmc sweep status`
//! and the `--progress` renderer.
//!
//! The two-lock protocol below (queue mutex for claiming, state mutex for
//! counters + checkpoint + heartbeat) is model-checked: `tests/loom.rs`
//! replicates it operation-for-operation on instrumented primitives.  If
//! the locking structure here changes, update that model with it.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

use flitsim::SimConfig;
use optmc::spec::parse_topology;
use optmc::{run_trials_detailed, TrialOutcome, TrialStats};

use crate::heartbeat::Heartbeat;
use crate::spec::{expand, CampaignSpec, Cell};
use crate::store::{CellRecord, Failure, ShardStore};

/// Pool knobs, from the CLI.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolOptions {
    /// Worker threads; 0 means one per available core.
    pub jobs: usize,
    /// Per-cell wall-clock budget in milliseconds (overrides the spec's).
    pub budget_ms: Option<u64>,
}

/// Per-cell progress report, fed to the progress callback as each cell
/// resolves (the engine-vitals fields come from the observability layer's
/// [`TrialOutcome`] metrics).
#[derive(Debug, Clone)]
pub struct CellReport {
    /// The cell's key.
    pub key: String,
    /// Cells resolved so far (including skipped).
    pub done: usize,
    /// Total cells in the campaign.
    pub total: usize,
    /// `None` if the cell failed (see `error`).
    pub stats: Option<TrialStats>,
    /// Simulator events processed across the cell's trials.
    pub events: u64,
    /// Wall-clock milliseconds for the cell.
    pub wall_ms: u64,
    /// The failure reason, if the cell failed.
    pub error: Option<String>,
}

/// Whole-run summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Cells in the campaign grid.
    pub total: usize,
    /// Cells executed in this run.
    pub executed: usize,
    /// Cells skipped because the store already had them.
    pub skipped: usize,
    /// Cells that failed (panic or budget).
    pub failed: usize,
    /// Wall-clock milliseconds for the whole run.
    pub wall_ms: u64,
    /// Executed cells per wall-clock second.
    pub cells_per_sec: f64,
}

/// Run one cell to completion (sequentially: the pool's parallelism is
/// across cells, so nesting per-trial workers would only oversubscribe).
pub fn run_cell(cell: &Cell) -> Result<Vec<TrialOutcome>, String> {
    let topo = parse_topology(&cell.topo)?;
    let mut cfg = SimConfig::paragon_like();
    cfg.shards = cell.shards.max(1);
    Ok(run_trials_detailed(
        topo.as_ref(),
        &cfg,
        cell.algorithm,
        cell.k,
        cell.bytes,
        cell.trials,
        cell.seed,
        1,
    ))
}

fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Run (or resume) `spec` against `store`: cells whose keys the store
/// already records are skipped; the rest are distributed over the worker
/// pool.  `progress` is called once per resolved cell, from whichever
/// worker resolved it (serialized by the store lock).
pub fn run_campaign(
    spec: &CampaignSpec,
    store: &ShardStore,
    opts: &PoolOptions,
    progress: &(dyn Fn(&CellReport) + Sync),
) -> Result<RunSummary, String> {
    spec.validate()?;
    let cells = expand(spec);
    let total = cells.len();
    let completed = store
        .completed_keys()
        .map_err(|e| format!("cannot read shard store: {e}"))?;
    let todo: VecDeque<Cell> = cells
        .into_iter()
        .filter(|c| !completed.contains(&c.key()))
        .collect();
    let skipped = total - todo.len();
    let budget_ms = opts.budget_ms.or(spec.budget_ms);

    let workers = if opts.jobs == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    } else {
        opts.jobs
    }
    .max(1);

    let started = Instant::now();
    let queue = Mutex::new(todo);
    // One lock serializes shard appends, progress lines, and the counters —
    // contention is irrelevant next to a cell's simulation time.
    struct Shared<'s> {
        store: &'s ShardStore,
        done: usize,
        executed: usize,
        failed: usize,
        in_flight: usize,
        seq: u64,
        events: u64,
        cell_wall_ms: u64,
        cell_ms_hist: telem::Histogram,
        io_error: Option<String>,
    }
    impl Shared<'_> {
        /// Emit one heartbeat line reflecting the current counters.
        /// Best-effort: heartbeats are telemetry, so an unwritable stream
        /// must never fail the campaign.
        fn heartbeat(&mut self, total: usize, skipped: usize, workers: usize, started: Instant) {
            let mut beat = Heartbeat {
                seq: self.seq,
                elapsed_ms: started.elapsed().as_millis() as u64,
                total,
                done: self.done,
                executed: self.executed,
                failed: self.failed,
                skipped,
                in_flight: self.in_flight,
                workers,
                events: self.events,
                cell_wall_ms: self.cell_wall_ms,
                cell_ms_hist: self.cell_ms_hist.clone(),
                eta_ms: 0,
            };
            beat.eta_ms = beat.estimate_eta_ms();
            self.seq += 1;
            let _ = self.store.append_heartbeat(&beat);
        }
    }
    let shared = Mutex::new(Shared {
        store,
        done: skipped,
        executed: 0,
        failed: 0,
        in_flight: 0,
        seq: 0,
        events: 0,
        cell_wall_ms: 0,
        cell_ms_hist: telem::Histogram::default(),
        io_error: None,
    });
    // Heartbeat #0 goes out before any worker spawns, so even a resumed
    // no-op campaign (or one killed before its first cell lands) leaves a
    // current status line behind.
    shared
        .lock()
        .expect("state poisoned")
        .heartbeat(total, skipped, workers, started);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let Some(cell) = queue.lock().expect("queue poisoned").pop_front() else {
                    return;
                };
                shared.lock().expect("state poisoned").in_flight += 1;
                let t0 = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| run_cell(&cell)));
                let wall_us = t0.elapsed().as_micros() as u64;
                let wall_ms = wall_us / 1000;
                let outcome = match result {
                    Err(payload) => Err(panic_reason(payload.as_ref())),
                    Ok(Err(e)) => Err(e),
                    Ok(Ok(outcomes)) => match budget_ms {
                        // Microsecond resolution, so a 0ms budget actually
                        // rejects sub-millisecond cells.
                        Some(b) if wall_us > b * 1000 => {
                            Err(format!("budget: cell took {wall_us}us > {b}ms"))
                        }
                        _ => Ok(outcomes),
                    },
                };

                let mut sh = shared.lock().expect("state poisoned");
                sh.done += 1;
                sh.in_flight -= 1;
                sh.cell_wall_ms += wall_ms;
                sh.cell_ms_hist.record(wall_ms);
                let mut report = CellReport {
                    key: cell.key(),
                    done: sh.done,
                    total,
                    stats: None,
                    events: 0,
                    wall_ms,
                    error: None,
                };
                let io = match outcome {
                    Ok(outcomes) => {
                        sh.executed += 1;
                        report.stats = Some(TrialStats::from_outcomes(&outcomes));
                        report.events = outcomes.iter().map(|o| o.events).sum();
                        sh.store.append_cell(&CellRecord {
                            key: cell.key(),
                            topo: cell.topo.clone(),
                            algorithm: cell.algorithm.id().to_string(),
                            k: cell.k,
                            bytes: cell.bytes,
                            trials: cell.trials,
                            seed: cell.seed,
                            outcomes,
                            wall_ms,
                        })
                    }
                    Err(reason) => {
                        sh.executed += 1;
                        sh.failed += 1;
                        report.error = Some(reason.clone());
                        sh.store.append_failure(&Failure {
                            key: cell.key(),
                            reason,
                            wall_ms,
                        })
                    }
                };
                if let Err(e) = io {
                    // Losing the checkpoint makes further work pointless:
                    // record the error and drain the queue.
                    sh.io_error = Some(format!("shard store write failed: {e}"));
                    queue.lock().expect("queue poisoned").clear();
                }
                sh.events += report.events;
                sh.heartbeat(total, skipped, workers, started);
                progress(&report);
            });
        }
    });

    let shared = shared.into_inner().expect("state poisoned");
    if let Some(e) = shared.io_error {
        return Err(e);
    }
    let wall_us = started.elapsed().as_micros() as u64;
    Ok(RunSummary {
        total,
        executed: shared.executed,
        skipped,
        failed: shared.failed,
        wall_ms: wall_us / 1000,
        cells_per_sec: shared.executed as f64 * 1e6 / wall_us.max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec(name: &str) -> CampaignSpec {
        CampaignSpec::from_json(&format!(
            r#"{{
                "name": "{name}",
                "topos": ["mesh:8x8"],
                "algorithms": ["u-arch", "opt-arch"],
                "ks": [8],
                "sizes": [512, 4096],
                "trials": 2
            }}"#
        ))
        .unwrap()
    }

    fn temp_store(tag: &str) -> ShardStore {
        let dir =
            std::env::temp_dir().join(format!("campaign_pool_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ShardStore::open(dir).unwrap()
    }

    #[test]
    fn runs_all_cells_then_resumes_as_a_noop() {
        let spec = demo_spec("pool");
        let store = temp_store("noop");
        let opts = PoolOptions::default();
        let s1 = run_campaign(&spec, &store, &opts, &|_| {}).unwrap();
        assert_eq!((s1.total, s1.executed, s1.skipped, s1.failed), (4, 4, 0, 0));
        assert!(s1.cells_per_sec > 0.0);
        let s2 = run_campaign(&spec, &store, &opts, &|_| {}).unwrap();
        assert_eq!((s2.executed, s2.skipped), (0, 4), "resume re-ran cells");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn progress_carries_obs_metrics_and_counts_up() {
        let spec = demo_spec("progress");
        let store = temp_store("progress");
        let reports = Mutex::new(Vec::new());
        run_campaign(
            &spec,
            &store,
            &PoolOptions {
                jobs: 2,
                budget_ms: None,
            },
            &|r| {
                reports.lock().unwrap().push(r.clone());
            },
        )
        .unwrap();
        let reports = reports.into_inner().unwrap();
        assert_eq!(reports.len(), 4);
        assert!(reports.iter().all(|r| r.events > 0 && r.error.is_none()));
        assert_eq!(reports.last().unwrap().done, 4);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn heartbeat_stream_tracks_the_run() {
        let spec = demo_spec("heartbeat");
        let store = temp_store("heartbeat");
        run_campaign(&spec, &store, &PoolOptions::default(), &|_| {}).unwrap();
        let beats = store.load_heartbeats().unwrap();
        // One pre-work heartbeat plus one per resolved cell.
        assert_eq!(beats.len(), 5, "{beats:?}");
        assert_eq!((beats[0].seq, beats[0].done, beats[0].total), (0, 0, 4));
        let last = store.latest_heartbeat().unwrap().unwrap();
        assert_eq!((last.done, last.executed, last.failed), (4, 4, 0));
        assert_eq!(last.in_flight, 0, "all cells resolved");
        assert_eq!(last.cell_ms_hist.count, 4);
        assert!(last.events > 0);
        assert_eq!(last.eta_ms, 0, "finished run has no ETA");
        // Sequence numbers are strictly increasing: one writer at a time.
        assert!(beats.windows(2).all(|w| w[1].seq == w[0].seq + 1));
        // A resumed no-op run still stamps a fresh heartbeat.
        run_campaign(&spec, &store, &PoolOptions::default(), &|_| {}).unwrap();
        let last = store.latest_heartbeat().unwrap().unwrap();
        assert_eq!((last.seq, last.done, last.skipped), (0, 4, 4));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn budget_overruns_land_in_the_failure_ledger() {
        let spec = demo_spec("budget");
        let store = temp_store("budget");
        let opts = PoolOptions {
            jobs: 1,
            budget_ms: Some(0),
        };
        let s = run_campaign(&spec, &store, &opts, &|_| {}).unwrap();
        assert_eq!(s.failed, 4, "a 0ms budget fails every cell");
        assert_eq!(store.load_cells().unwrap().len(), 0);
        let failures = store.load_failures().unwrap();
        assert_eq!(failures.len(), 4);
        assert!(
            failures[0].reason.starts_with("budget:"),
            "{}",
            failures[0].reason
        );
        // A retry with a sane budget then executes everything.
        let s = run_campaign(&spec, &store, &PoolOptions::default(), &|_| {}).unwrap();
        assert_eq!((s.executed, s.failed), (4, 0));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn panicking_cells_are_isolated() {
        // k > n passes the pool's entry validation only if we bypass
        // validate(); instead make the cell panic via an unsatisfiable
        // placement by handing run_cell a corrupt cell directly.
        let cell = Cell {
            topo: "mesh:4x4".into(),
            algorithm: optmc::Algorithm::OptArch,
            k: 200,
            bytes: 64,
            trials: 1,
            seed: 1,
            shards: 1,
        };
        let res = catch_unwind(AssertUnwindSafe(|| run_cell(&cell)));
        assert!(res.is_err(), "oversized placement must panic");
        assert!(panic_reason(res.unwrap_err().as_ref()).starts_with("panic:"));
    }
}
