//! Content-addressed key composition.
//!
//! Campaign cells, resume bookkeeping, and the planning service's plan
//! cache all address work by a *content key*: a string derived from the
//! parameters of the work and nothing else.  Two pieces of work are
//! interchangeable exactly when their keys are equal, so the composition
//! must be **injective**: distinct field sequences must never collide.
//!
//! [`compose`] joins fields with [`DELIMITER`], escaping any delimiter or
//! escape character inside a field, which makes it injective over
//! non-empty field sequences; [`decompose`] is its inverse.  The escaping
//! is a no-op for every field the repo emits today (topology specs,
//! algorithm ids, and `k8`-style tagged numbers contain neither `|` nor
//! `\`), so existing shard stores keyed by [`crate::Cell::key`] remain
//! readable byte-for-byte.
//!
//! [`fingerprint`] maps a key to a stable 64-bit FNV-1a hash for compact
//! display (log lines, progress output).  It is *not* injective — use the
//! full key wherever identity matters.

/// Separator between composed fields.
pub const DELIMITER: char = '|';

/// Escape prefix used inside fields that contain [`DELIMITER`] or `\`.
pub const ESCAPE: char = '\\';

/// Escape one field so it can be embedded between [`DELIMITER`]s without
/// ambiguity.  Fields free of `|` and `\` are returned unchanged.
#[must_use]
pub fn escape_field(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    for c in field.chars() {
        if c == DELIMITER || c == ESCAPE {
            out.push(ESCAPE);
        }
        out.push(c);
    }
    out
}

/// Compose fields into a content key.
///
/// Injective over non-empty field sequences: `compose(a) == compose(b)`
/// implies `a == b` whenever both sequences have at least one field
/// (`compose([])` and `compose([""])` both yield the empty string).
pub fn compose<I, S>(fields: I) -> String
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut out = String::new();
    for (i, f) in fields.into_iter().enumerate() {
        if i > 0 {
            out.push(DELIMITER);
        }
        out.push_str(&escape_field(f.as_ref()));
    }
    out
}

/// Split a composed key back into its fields (the inverse of [`compose`]
/// for non-empty field sequences).
#[must_use]
pub fn decompose(key: &str) -> Vec<String> {
    let mut fields = vec![String::new()];
    let mut chars = key.chars();
    while let Some(c) = chars.next() {
        if c == ESCAPE {
            if let Some(next) = chars.next() {
                fields.last_mut().expect("non-empty").push(next);
            }
        } else if c == DELIMITER {
            fields.push(String::new());
        } else {
            fields.last_mut().expect("non-empty").push(c);
        }
    }
    fields
}

/// A stable 64-bit FNV-1a fingerprint of a key, for compact display.
///
/// The constants are fixed by the FNV specification; the value of a given
/// key never changes across releases.
#[must_use]
pub fn fingerprint(key: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_fields_compose_verbatim() {
        assert_eq!(
            compose(["mesh:8x8", "u-arch", "k8", "b512", "t2", "s1997"]),
            "mesh:8x8|u-arch|k8|b512|t2|s1997"
        );
    }

    #[test]
    fn decompose_inverts_compose() {
        let cases: Vec<Vec<&str>> = vec![
            vec!["mesh:8x8", "u-arch", "k8"],
            vec!["a|b", "c"],
            vec!["a", "b|c"],
            vec!["tricky\\", "|", ""],
            vec!["", "", ""],
            vec!["\\|\\"],
        ];
        for fields in cases {
            let key = compose(fields.iter());
            assert_eq!(decompose(&key), fields, "round-trip of {fields:?}");
        }
    }

    #[test]
    fn escaping_keeps_compose_injective() {
        // The classic collision without escaping: ["a|b","c"] vs ["a","b|c"].
        let pairs = [
            (vec!["a|b", "c"], vec!["a", "b|c"]),
            (vec!["a\\", "b"], vec!["a", "\\b"]),
            (vec!["a\\|b"], vec!["a|b"]),
            (vec!["x", "", "y"], vec!["x", "y"]),
        ];
        for (a, b) in pairs {
            assert_ne!(
                compose(a.iter()),
                compose(b.iter()),
                "{a:?} and {b:?} must not collide"
            );
        }
    }

    #[test]
    fn fingerprint_is_pinned() {
        // FNV-1a test vectors; these values must never change across
        // releases (shard stores and logs may record them).
        assert_eq!(fingerprint(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(
            fingerprint("mesh:8x8|u-arch|k8|b512|t2|s1997"),
            fingerprint("mesh:8x8|u-arch|k8|b512|t2|s1997")
        );
    }
}
