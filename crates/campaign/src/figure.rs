//! Figure datasets: the table/CSV/JSON emitters backing `results/fig*.*`.
//!
//! Moved here from `optmc-bench` (which re-exports these types) so the
//! campaign aggregation pass and the sequential figure binaries share one
//! writer — byte-identical output is the point, not an accident.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// One plotted series: a label plus (x, y) points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label ("U-Mesh", "OPT-Tree", ...).
    pub label: String,
    /// (x, mean latency) points.
    pub points: Vec<(f64, f64)>,
}

/// A figure: axis names plus several series over the same x values.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Experiment id ("fig2", ...), used for the CSV filename.
    pub id: String,
    /// Title printed above the table.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Render as an aligned text table (x column + one column per series).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = write!(out, "{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "{:>14}", s.label);
        }
        let _ = writeln!(out);
        let nx = self.series.first().map_or(0, |s| s.points.len());
        for i in 0..nx {
            let _ = write!(out, "{:>14.0}", self.series[0].points[i].0);
            for s in &self.series {
                let _ = write!(out, "{:>14.1}", s.points[i].1);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Write `results/<id>.json` — the machine-readable record backing the
    /// EXPERIMENTS.md tables.
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        let dir = Path::new("results");
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let record = serde_json::json!({
            "id": self.id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": self.series.iter().map(|s| serde_json::json!({
                "label": s.label,
                "points": s.points,
            })).collect::<Vec<_>>(),
        });
        fs::write(&path, serde_json::to_string_pretty(&record)?)?;
        Ok(path)
    }

    /// Write `results/<id>.csv`.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let dir = Path::new("results");
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut csv = String::new();
        let _ = write!(csv, "{}", self.x_label.replace(' ', "_"));
        for s in &self.series {
            let _ = write!(csv, ",{}", s.label.replace(' ', "_"));
        }
        let _ = writeln!(csv);
        let nx = self.series.first().map_or(0, |s| s.points.len());
        for i in 0..nx {
            let _ = write!(csv, "{}", self.series[0].points[i].0);
            for s in &self.series {
                let _ = write!(csv, ",{}", s.points[i].1);
            }
            let _ = writeln!(csv);
        }
        fs::write(&path, csv)?;
        Ok(path)
    }

    /// Print the table and write CSV + JSON, reporting the paths.
    pub fn emit(&self) {
        print!("{}", self.to_table());
        match self.write_csv() {
            Ok(p) => println!("\n[csv] {}", p.display()),
            Err(e) => eprintln!("could not write CSV: {e}"),
        }
        match self.write_json() {
            Ok(p) => println!("[json] {}", p.display()),
            Err(e) => eprintln!("could not write JSON: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_labels_and_values() {
        let fig = Figure {
            id: "selftest".into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![
                Series {
                    label: "a".into(),
                    points: vec![(1.0, 2.0), (2.0, 4.0)],
                },
                Series {
                    label: "b".into(),
                    points: vec![(1.0, 3.0), (2.0, 6.0)],
                },
            ],
        };
        let t = fig.to_table();
        assert!(t.contains('a') && t.contains("6.0"));
    }
}
