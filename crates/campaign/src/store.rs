//! JSONL shard store: the campaign's checkpoint.
//!
//! Completed cells append one JSON line each to
//! `results/campaigns/<name>/cells.jsonl`; failures (panics, budget
//! overruns) go to `failures.jsonl`; the pool's live telemetry goes to
//! `heartbeat.jsonl` (see [`crate::heartbeat`]).  A line is the unit of
//! durability: a campaign killed mid-append leaves at most one partial
//! final line, which [`ShardStore::load_cells`] drops silently, so resume
//! re-runs exactly the cells that never finished.

use std::collections::HashSet;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use optmc::TrialOutcome;

use crate::heartbeat::Heartbeat;

/// One completed cell: its identity plus every trial's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// The content-addressed cell key ([`crate::Cell::key`]).
    pub key: String,
    /// Topology spec string.
    pub topo: String,
    /// Canonical algorithm id ([`optmc::Algorithm::id`]).
    pub algorithm: String,
    /// Participant count.
    pub k: usize,
    /// Message bytes.
    pub bytes: u64,
    /// Trials run.
    pub trials: usize,
    /// Campaign base seed.
    pub seed: u64,
    /// Per-trial outcomes, in trial order.
    pub outcomes: Vec<TrialOutcome>,
    /// Wall-clock milliseconds this cell took.
    pub wall_ms: u64,
}

/// A failure-ledger entry: a cell that panicked or blew its budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Failure {
    /// The failing cell's key.
    pub key: String,
    /// What went wrong (panic payload or budget overrun).
    pub reason: String,
    /// Wall-clock milliseconds spent before the failure was recorded.
    pub wall_ms: u64,
}

/// The on-disk shard store for one campaign.
#[derive(Debug)]
pub struct ShardStore {
    dir: PathBuf,
}

impl ShardStore {
    /// Open (creating if needed) the store directory.
    ///
    /// Opening repairs the wound of a killed campaign: a partial final
    /// line (no trailing newline) is truncated away, so the next append
    /// starts a fresh line instead of concatenating onto the fragment and
    /// corrupting the file.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<ShardStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let store = ShardStore { dir };
        Self::truncate_partial_tail(&store.cells_path())?;
        Self::truncate_partial_tail(&store.failures_path())?;
        Self::truncate_partial_tail(&store.heartbeat_path())?;
        Ok(store)
    }

    fn truncate_partial_tail(path: &Path) -> std::io::Result<()> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        if bytes.is_empty() || bytes.ends_with(b"\n") {
            return Ok(());
        }
        let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
        let f = fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(keep as u64)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn cells_path(&self) -> PathBuf {
        self.dir.join("cells.jsonl")
    }

    fn failures_path(&self) -> PathBuf {
        self.dir.join("failures.jsonl")
    }

    fn heartbeat_path(&self) -> PathBuf {
        self.dir.join("heartbeat.jsonl")
    }

    fn append_line(path: &Path, line: &str) -> std::io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        // One write call per record keeps the line the atomicity unit.
        f.write_all(format!("{line}\n").as_bytes())?;
        f.flush()
    }

    /// Append one completed cell.
    pub fn append_cell(&self, record: &CellRecord) -> std::io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.0))?;
        Self::append_line(&self.cells_path(), &line)
    }

    /// Append one failure-ledger entry.
    pub fn append_failure(&self, failure: &Failure) -> std::io::Result<()> {
        let line = serde_json::to_string(failure)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.0))?;
        Self::append_line(&self.failures_path(), &line)
    }

    /// Append one heartbeat line (live telemetry, not a checkpoint).
    pub fn append_heartbeat(&self, beat: &Heartbeat) -> std::io::Result<()> {
        let line = serde_json::to_string(beat)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.0))?;
        Self::append_line(&self.heartbeat_path(), &line)
    }

    fn load_jsonl<T: Deserialize>(path: &Path, what: &str) -> std::io::Result<Vec<T>> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut out = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            match serde_json::from_str::<T>(line) {
                Ok(v) => out.push(v),
                // A partial final line is the expected wound of a killed
                // campaign; anything earlier is real corruption.
                Err(_) if i + 1 == lines.len() => break,
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("{what} line {}: {e}", i + 1),
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Every completed cell, tolerating a truncated final line.
    pub fn load_cells(&self) -> std::io::Result<Vec<CellRecord>> {
        Self::load_jsonl(&self.cells_path(), "cells.jsonl")
    }

    /// Every failure-ledger entry, tolerating a truncated final line.
    pub fn load_failures(&self) -> std::io::Result<Vec<Failure>> {
        Self::load_jsonl(&self.failures_path(), "failures.jsonl")
    }

    /// The whole heartbeat stream, tolerating a truncated final line.
    pub fn load_heartbeats(&self) -> std::io::Result<Vec<Heartbeat>> {
        Self::load_jsonl(&self.heartbeat_path(), "heartbeat.jsonl")
    }

    /// The newest heartbeat, or `None` if the stream is empty/absent.
    pub fn latest_heartbeat(&self) -> std::io::Result<Option<Heartbeat>> {
        Ok(self.load_heartbeats()?.pop())
    }

    /// The set of completed cell keys (what resume skips).
    pub fn completed_keys(&self) -> std::io::Result<HashSet<String>> {
        Ok(self.load_cells()?.into_iter().map(|r| r.key).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(key: &str) -> CellRecord {
        CellRecord {
            key: key.into(),
            topo: "mesh:8x8".into(),
            algorithm: "opt-arch".into(),
            k: 8,
            bytes: 512,
            trials: 1,
            seed: 1,
            outcomes: vec![TrialOutcome {
                trial: 0,
                placement_seed: 42,
                latency: 100,
                analytic: 90,
                blocked: 0,
                contention_free: true,
                events: 10,
                wall_ns: 5,
            }],
            wall_ms: 3,
        }
    }

    fn temp_store(tag: &str) -> ShardStore {
        let dir =
            std::env::temp_dir().join(format!("campaign_store_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ShardStore::open(dir).unwrap()
    }

    #[test]
    fn roundtrips_cells_and_failures() {
        let s = temp_store("roundtrip");
        s.append_cell(&record("a")).unwrap();
        s.append_cell(&record("b")).unwrap();
        s.append_failure(&Failure {
            key: "c".into(),
            reason: "panic: boom".into(),
            wall_ms: 1,
        })
        .unwrap();
        assert_eq!(s.load_cells().unwrap(), vec![record("a"), record("b")]);
        assert_eq!(s.load_failures().unwrap().len(), 1);
        let keys = s.completed_keys().unwrap();
        assert!(keys.contains("a") && keys.contains("b") && !keys.contains("c"));
        let _ = fs::remove_dir_all(s.dir());
    }

    #[test]
    fn tolerates_a_truncated_final_line() {
        let s = temp_store("truncate");
        s.append_cell(&record("a")).unwrap();
        s.append_cell(&record("b")).unwrap();
        let path = s.dir().join("cells.jsonl");
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 25]).unwrap();
        let cells = s.load_cells().unwrap();
        assert_eq!(cells, vec![record("a")], "partial line dropped");
        // Re-opening repairs the file, so a post-crash append starts on a
        // fresh line instead of extending the fragment.
        let s = ShardStore::open(s.dir()).unwrap();
        s.append_cell(&record("c")).unwrap();
        assert_eq!(s.load_cells().unwrap(), vec![record("a"), record("c")]);
        // Mid-file corruption is an error, not silence.
        fs::write(&path, "{broken\n{\"also\":\"broken\"}\nmore\n").unwrap();
        assert!(s.load_cells().is_err());
        let _ = fs::remove_dir_all(s.dir());
    }

    #[test]
    fn missing_files_read_as_empty() {
        let s = temp_store("empty");
        assert!(s.load_cells().unwrap().is_empty());
        assert!(s.completed_keys().unwrap().is_empty());
        assert!(s.latest_heartbeat().unwrap().is_none());
        let _ = fs::remove_dir_all(s.dir());
    }

    #[test]
    fn heartbeats_append_and_latest_wins() {
        let s = temp_store("heartbeat");
        let mut beat = Heartbeat {
            seq: 0,
            elapsed_ms: 0,
            total: 4,
            done: 0,
            executed: 0,
            failed: 0,
            skipped: 0,
            in_flight: 0,
            workers: 2,
            events: 0,
            cell_wall_ms: 0,
            cell_ms_hist: telem::Histogram::default(),
            eta_ms: 0,
        };
        s.append_heartbeat(&beat).unwrap();
        beat.seq = 1;
        beat.done = 3;
        s.append_heartbeat(&beat).unwrap();
        assert_eq!(s.load_heartbeats().unwrap().len(), 2);
        let latest = s.latest_heartbeat().unwrap().unwrap();
        assert_eq!((latest.seq, latest.done), (1, 3));
        let _ = fs::remove_dir_all(s.dir());
    }
}
