//! Declarative campaign specifications and their expansion into cells.
//!
//! A campaign is the paper's evaluation grid written down: topology spec
//! strings × algorithms × participant counts × message sizes, with a trial
//! count and base seed.  [`expand`] flattens the grid into
//! content-addressed [`Cell`]s; a cell's key is a function of its contents
//! only, so the same cell gets the same key (and, through
//! [`optmc::trial_seed`], the same placements) in any campaign that
//! contains it, in any enumeration order.

use serde::{de_err, DeError, Deserialize, Value};

use optmc::spec::parse_topology;
use optmc::Algorithm;

/// Which grid dimension a figure plots on its x axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XAxis {
    /// Message size sweep (Figure 2 layout): one `k`, many `sizes`.
    Bytes,
    /// Participant-count sweep (Figure 3 layout): one size, many `ks`.
    Nodes,
}

/// How aggregation maps the campaign grid into one `results/<id>.*` figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureSpec {
    /// Figure id — the `results/<id>.csv|json` filename stem.
    pub id: String,
    /// Title printed above the table.
    pub title: String,
    /// The swept dimension.
    pub x_axis: XAxis,
    /// X-axis label (defaults to "msg bytes" / "nodes" per axis).
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
}

/// A declarative experiment campaign (JSON-loadable).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name — names the shard-store directory.
    pub name: String,
    /// Base seed for every cell's placement-seed chain (default 1997).
    pub seed: u64,
    /// Placements per cell (default 16, the paper's §5 protocol).
    pub trials: usize,
    /// Topology spec strings (`mesh:16x16`, `bmin:128`, …).
    pub topos: Vec<String>,
    /// Algorithms, in series/plot order.
    pub algorithms: Vec<Algorithm>,
    /// Participant counts.
    pub ks: Vec<usize>,
    /// Message sizes in bytes.
    pub sizes: Vec<u64>,
    /// Shards per cell simulation (default 1 = sequential).  Sharded runs
    /// are bit-identical to sequential ones, so this is purely an
    /// execution hint — it does not enter cell keys, and stores written
    /// with different shard counts interoperate.
    pub shards: usize,
    /// Optional per-cell wall-clock budget in milliseconds.
    pub budget_ms: Option<u64>,
    /// Optional figure mapping for the aggregation pass.
    pub figure: Option<FigureSpec>,
}

fn opt_field<'v>(fields: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn str_field(fields: &[(String, Value)], name: &str) -> Result<String, DeError> {
    opt_field(fields, name)
        .ok_or_else(|| de_err(format!("missing field '{name}'")))?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| de_err(format!("field '{name}' must be a string")))
}

fn u64_field(fields: &[(String, Value)], name: &str, default: u64) -> Result<u64, DeError> {
    match opt_field(fields, name) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| de_err(format!("field '{name}' must be a non-negative integer"))),
    }
}

fn list_field<T, F>(fields: &[(String, Value)], name: &str, parse: F) -> Result<Vec<T>, DeError>
where
    F: Fn(&Value) -> Result<T, DeError>,
{
    let v = opt_field(fields, name).ok_or_else(|| de_err(format!("missing field '{name}'")))?;
    let items = v
        .as_array()
        .ok_or_else(|| de_err(format!("field '{name}' must be an array")))?;
    if items.is_empty() {
        return Err(de_err(format!("field '{name}' must not be empty")));
    }
    items.iter().map(parse).collect()
}

impl Deserialize for FigureSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| de_err("figure spec must be an object"))?;
        let x_axis = match str_field(fields, "x")?.as_str() {
            "bytes" => XAxis::Bytes,
            "nodes" => XAxis::Nodes,
            other => {
                return Err(de_err(format!(
                    "figure 'x' must be bytes|nodes, got '{other}'"
                )))
            }
        };
        let default_x = match x_axis {
            XAxis::Bytes => "msg bytes",
            XAxis::Nodes => "nodes",
        };
        Ok(FigureSpec {
            id: str_field(fields, "id")?,
            title: str_field(fields, "title")?,
            x_axis,
            x_label: match opt_field(fields, "x_label") {
                Some(v) => v
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| de_err("'x_label' must be a string"))?,
                None => default_x.to_string(),
            },
            y_label: match opt_field(fields, "y_label") {
                Some(v) => v
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| de_err("'y_label' must be a string"))?,
                None => "multicast latency (cycles)".to_string(),
            },
        })
    }
}

impl Deserialize for CampaignSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| de_err("campaign spec must be an object"))?;
        let as_str = |v: &Value| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| de_err("expected a string"))
        };
        let as_usize = |v: &Value| {
            v.as_u64()
                .map(|u| u as usize)
                .ok_or_else(|| de_err("expected a non-negative integer"))
        };
        let as_u64 = |v: &Value| {
            v.as_u64()
                .ok_or_else(|| de_err("expected a non-negative integer"))
        };
        Ok(CampaignSpec {
            name: str_field(fields, "name")?,
            seed: u64_field(fields, "seed", 1997)?,
            trials: u64_field(fields, "trials", 16)? as usize,
            topos: list_field(fields, "topos", as_str)?,
            algorithms: list_field(fields, "algorithms", |v| {
                Algorithm::parse(&as_str(v)?).map_err(DeError)
            })?,
            ks: list_field(fields, "ks", as_usize)?,
            sizes: list_field(fields, "sizes", as_u64)?,
            shards: u64_field(fields, "shards", 1)? as usize,
            budget_ms: match opt_field(fields, "budget_ms") {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| de_err("'budget_ms' must be a non-negative integer"))?,
                ),
            },
            figure: match opt_field(fields, "figure") {
                None | Some(Value::Null) => None,
                Some(v) => Some(FigureSpec::from_value(v)?),
            },
        })
    }
}

impl CampaignSpec {
    /// Parse a campaign spec from JSON text.
    pub fn from_json(text: &str) -> Result<CampaignSpec, String> {
        let spec: CampaignSpec =
            serde_json::from_str(text).map_err(|e| format!("campaign spec: {e}"))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Load a campaign spec from a JSON file.
    pub fn load(path: &std::path::Path) -> Result<CampaignSpec, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json(&text)
    }

    /// Check the grid is well-formed: every topology parses, every `k`
    /// fits every topology, the trial count is positive.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() || self.name.contains(['/', '\\']) {
            return Err(format!("bad campaign name '{}'", self.name));
        }
        if self.trials == 0 {
            return Err("trials must be at least 1".into());
        }
        if self.shards == 0 {
            return Err("shards must be at least 1".into());
        }
        for t in &self.topos {
            let topo = parse_topology(t)?;
            let n = topo.graph().n_nodes();
            for &k in &self.ks {
                if k < 2 || k > n {
                    return Err(format!("k={k} out of range 2..={n} for topology {t}"));
                }
            }
        }
        Ok(())
    }
}

/// One point of the campaign grid, carrying everything needed to run it in
/// isolation (and to re-derive its placement seeds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Topology spec string.
    pub topo: String,
    /// The algorithm.
    pub algorithm: Algorithm,
    /// Participant count.
    pub k: usize,
    /// Message bytes.
    pub bytes: u64,
    /// Placements to run.
    pub trials: usize,
    /// Campaign base seed.
    pub seed: u64,
    /// Shards for the cell's simulations.  An execution hint only —
    /// sharded results are bit-identical to sequential, so this field is
    /// deliberately **excluded** from [`Cell::key`]: a resumed campaign
    /// reuses cells recorded at any shard count.
    pub shards: usize,
}

impl Cell {
    /// The content-addressed cell key: injective over the grid via
    /// [`crate::key::compose`] (numeric fields are tagged so they cannot
    /// shadow each other), identical across campaigns and enumeration
    /// orders, and byte-stable across releases.
    pub fn key(&self) -> String {
        crate::key::compose([
            self.topo.clone(),
            self.algorithm.id().to_string(),
            format!("k{}", self.k),
            format!("b{}", self.bytes),
            format!("t{}", self.trials),
            format!("s{}", self.seed),
        ])
    }
}

/// Expand a validated spec into cells, in grid order
/// (topo → algorithm → k → bytes).
pub fn expand(spec: &CampaignSpec) -> Vec<Cell> {
    let mut cells = Vec::new();
    for topo in &spec.topos {
        for &algorithm in &spec.algorithms {
            for &k in &spec.ks {
                for &bytes in &spec.sizes {
                    cells.push(Cell {
                        topo: topo.clone(),
                        algorithm,
                        k,
                        bytes,
                        trials: spec.trials,
                        seed: spec.seed,
                        shards: spec.shards,
                    });
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_json() -> &'static str {
        r#"{
            "name": "demo",
            "topos": ["mesh:8x8"],
            "algorithms": ["u-arch", "opt-arch"],
            "ks": [8],
            "sizes": [512, 4096],
            "trials": 2,
            "figure": {"id": "demo", "title": "demo fig", "x": "bytes"}
        }"#
    }

    #[test]
    fn spec_parses_with_defaults() {
        let s = CampaignSpec::from_json(demo_json()).unwrap();
        assert_eq!(s.seed, 1997, "default seed");
        assert_eq!(s.trials, 2);
        assert_eq!(s.algorithms, vec![Algorithm::UArch, Algorithm::OptArch]);
        let f = s.figure.unwrap();
        assert_eq!(f.x_axis, XAxis::Bytes);
        assert_eq!(f.x_label, "msg bytes", "default axis label");
        assert_eq!(f.y_label, "multicast latency (cycles)");
    }

    #[test]
    fn spec_rejects_bad_grids() {
        for (patch, what) in [
            (r#""topos": ["ring:9"]"#, "unknown topology"),
            (r#""ks": [100]"#, "k exceeding the machine"),
            (r#""trials": 0"#, "zero trials"),
            (r#""algorithms": ["magic"]"#, "unknown algorithm"),
            (r#""sizes": []"#, "empty sizes"),
        ] {
            let json = demo_json()
                .split('\n')
                .map(|line| {
                    let key = patch.split(':').next().unwrap();
                    if line.trim_start().starts_with(key) {
                        format!("{patch},")
                    } else {
                        line.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            assert!(CampaignSpec::from_json(&json).is_err(), "{what}: {json}");
        }
    }

    #[test]
    fn expansion_is_grid_ordered_and_keys_are_stable() {
        let s = CampaignSpec::from_json(demo_json()).unwrap();
        let cells = expand(&s);
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].key(), "mesh:8x8|u-arch|k8|b512|t2|s1997");
        assert_eq!(cells[3].key(), "mesh:8x8|opt-arch|k8|b4096|t2|s1997");
        // Content addressing: the same cell in a differently-shaped
        // campaign has the same key.
        let mut other = s.clone();
        other.name = "other".into();
        other.algorithms.reverse();
        other.sizes.push(65536);
        let other_keys: Vec<String> = expand(&other).iter().map(Cell::key).collect();
        for c in &cells {
            assert!(other_keys.contains(&c.key()));
        }
    }
}
