//! Resume correctness: a campaign killed mid-write and resumed produces
//! exactly the data an uninterrupted campaign produces.

use campaign::{
    expand, figure_from_records, run_campaign, summarize, CampaignSpec, PoolOptions, ShardStore,
};

fn spec(name: &str) -> CampaignSpec {
    CampaignSpec::from_json(&format!(
        r#"{{
            "name": "{name}",
            "topos": ["mesh:8x8"],
            "algorithms": ["u-arch", "opt-tree", "opt-arch"],
            "ks": [8],
            "sizes": [0, 2048, 8192],
            "trials": 3,
            "figure": {{"id": "resume_test", "title": "resume test", "x": "bytes"}}
        }}"#
    ))
    .unwrap()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("campaign_resume_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn killed_and_resumed_campaign_equals_uninterrupted_run() {
    let opts = PoolOptions::default();

    // Reference: one uninterrupted run.
    let ref_dir = temp_dir("reference");
    let ref_store = ShardStore::open(&ref_dir).unwrap();
    let s = run_campaign(&spec("ref"), &ref_store, &opts, &|_| {}).unwrap();
    assert_eq!((s.total, s.executed, s.failed), (9, 9, 0));
    let mut reference = ref_store.load_cells().unwrap();

    // Victim: same grid (different campaign name — keys must not care),
    // then simulate a kill mid-append: drop one full record and leave a
    // partial line of another.
    let vic_dir = temp_dir("victim");
    let vic_store = ShardStore::open(&vic_dir).unwrap();
    run_campaign(&spec("victim"), &vic_store, &opts, &|_| {}).unwrap();
    let path = vic_dir.join("cells.jsonl");
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 9);
    let mut mangled: String = lines[..7].join("\n");
    mangled.push('\n');
    mangled.push_str(&lines[7][..lines[7].len() / 2]); // the partial line
    std::fs::write(&path, mangled).unwrap();

    // Resume (a restart re-opens the store, which truncates the partial
    // line): exactly the two lost cells re-run.
    let vic_store = ShardStore::open(&vic_dir).unwrap();
    assert_eq!(vic_store.load_cells().unwrap().len(), 7);
    let s = run_campaign(&spec("victim"), &vic_store, &opts, &|_| {}).unwrap();
    assert_eq!((s.executed, s.skipped, s.failed), (2, 7, 0), "{s:?}");
    let mut resumed = vic_store.load_cells().unwrap();

    // Merged results equal the uninterrupted run, record for record
    // (wall_ms is nondeterministic; everything the science depends on is
    // compared).
    reference.sort_by(|a, b| a.key.cmp(&b.key));
    resumed.sort_by(|a, b| a.key.cmp(&b.key));
    assert_eq!(reference.len(), resumed.len());
    for (a, b) in reference.iter().zip(&resumed) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            // wall_ns is wall-clock; everything else must match exactly.
            let det = |o: &optmc::TrialOutcome| {
                (
                    o.trial,
                    o.placement_seed,
                    o.latency,
                    o.analytic,
                    o.blocked,
                    o.contention_free,
                    o.events,
                )
            };
            assert_eq!(det(x), det(y), "cell {} diverged on resume", a.key);
        }
    }

    // And the aggregation pass sees identical figures and summaries.
    let fig_ref = figure_from_records(&spec("ref"), &reference).unwrap();
    let fig_res = figure_from_records(&spec("victim"), &resumed).unwrap();
    assert_eq!(fig_ref, fig_res);
    let sum_ref = summarize(&reference).unwrap();
    let sum_res = summarize(&resumed).unwrap();
    assert_eq!(sum_ref.mean_latency, sum_res.mean_latency);
    assert_eq!(sum_ref.min_latency, sum_res.min_latency);
    assert_eq!(sum_ref.max_latency, sum_res.max_latency);

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&vic_dir);
}

#[test]
fn campaign_cells_match_solo_run_trials_bit_for_bit() {
    // The seed-derivation contract: a campaign cell and a solo
    // `run_trials_detailed` of the same parameters agree exactly, because
    // placement seeds derive from cell content, not enumeration order.
    let dir = temp_dir("solo");
    let store = ShardStore::open(&dir).unwrap();
    let sp = spec("solo");
    run_campaign(&sp, &store, &PoolOptions::default(), &|_| {}).unwrap();
    let records = store.load_cells().unwrap();
    let topo = optmc::spec::parse_topology("mesh:8x8").unwrap();
    let cfg = flitsim::SimConfig::paragon_like();
    for cell in expand(&sp) {
        let rec = records.iter().find(|r| r.key == cell.key()).unwrap();
        let solo = optmc::run_trials_detailed(
            topo.as_ref(),
            &cfg,
            cell.algorithm,
            cell.k,
            cell.bytes,
            cell.trials,
            cell.seed,
            1,
        );
        for (a, b) in rec.outcomes.iter().zip(&solo) {
            assert_eq!(a.placement_seed, b.placement_seed);
            assert_eq!(a.latency, b.latency);
            assert_eq!(a.analytic, b.analytic);
            assert_eq!(a.blocked, b.blocked);
            assert_eq!(a.events, b.events);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
