//! Property: cell keys are injective over any campaign grid — two
//! distinct cells never share a key, across topologies, algorithms,
//! participant counts, sizes, trial counts, and seeds.

use std::collections::HashMap;

use campaign::{expand, CampaignSpec, Cell};
use optmc::Algorithm;
use proptest::prelude::*;

const TOPO_POOL: [&str; 5] = [
    "mesh:8x8",
    "mesh:16x16",
    "bmin:64",
    "torus:4x4",
    "hypercube:6",
];

fn build_spec(
    ntopos: usize,
    nalgs: usize,
    ks: &[usize],
    sizes: &[u64],
    trials: usize,
    seed: u64,
) -> CampaignSpec {
    let mut ks = ks.to_vec();
    ks.sort_unstable();
    ks.dedup();
    let mut sizes = sizes.to_vec();
    sizes.sort_unstable();
    sizes.dedup();
    CampaignSpec {
        name: "prop".into(),
        seed,
        trials,
        topos: TOPO_POOL[..ntopos]
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
        algorithms: Algorithm::ALL[..nalgs].to_vec(),
        ks,
        sizes,
        shards: 1,
        budget_ms: None,
        figure: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn cell_keys_are_injective_over_the_grid(
        ntopos in 1usize..6,
        nalgs in 1usize..6,
        ks in proptest::collection::vec(2usize..257, 1..5),
        sizes in proptest::collection::vec(0u64..65537, 1..5),
        trials in 1usize..33,
        seed in 0u64..100_000,
    ) {
        let spec = build_spec(ntopos, nalgs, &ks, &sizes, trials, seed);
        let cells = expand(&spec);
        let mut seen: HashMap<String, &Cell> = HashMap::new();
        for cell in &cells {
            if let Some(other) = seen.insert(cell.key(), cell) {
                panic!("key collision: {other:?} vs {cell:?} -> {}", cell.key());
            }
        }
        prop_assert_eq!(seen.len(), cells.len());
    }

    #[test]
    fn cell_keys_separate_trials_and_seeds(
        trials_a in 1usize..33,
        trials_b in 1usize..33,
        seed_a in 0u64..1000,
        seed_b in 0u64..1000,
    ) {
        prop_assume!(trials_a != trials_b || seed_a != seed_b);
        let a = expand(&build_spec(2, 2, &[8, 32], &[0, 4096], trials_a, seed_a));
        let b = expand(&build_spec(2, 2, &[8, 32], &[0, 4096], trials_b, seed_b));
        for (x, y) in a.iter().zip(&b) {
            prop_assert_ne!(x.key(), y.key());
        }
    }
}
