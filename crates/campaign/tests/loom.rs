//! Model-checked interleaving tests for the campaign pool's worker
//! protocol (`campaign::pool::run_campaign`).
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the `verify` stage of
//! `scripts/check.sh`); a plain `cargo test` sees an empty test binary.
//!
//! The production pool runs real simulations under `std::thread::scope`
//! with shard-store I/O, so it cannot execute on the model checker's
//! instrumented primitives directly.  Instead these tests replicate its
//! synchronization skeleton operation-for-operation — the two-lock
//! protocol of `pool.rs` (a queue mutex for claiming cells, a state mutex
//! serializing counters + checkpoint + heartbeat) — and let the explorer
//! drive worker interleavings against the invariants the real pool's
//! consumers rely on:
//!
//! * every queued cell is resolved exactly once (`done == total`),
//! * `in_flight` returns to zero,
//! * heartbeat sequence numbers are strictly increasing (one writer at a
//!   time inside the state lock),
//! * a checkpoint-write failure drains the queue: no further cells start
//!   after the error is recorded, and the pool still terminates.
//!
//! If `pool.rs` changes its locking structure, this model must change with
//! it — the module-level comments there point back here.

#![cfg(loom)]

use std::collections::VecDeque;

use loom::sync::{Arc, Mutex};
use loom::thread;

/// Mirror of `pool.rs`'s `Shared` block (the fields the protocol touches).
#[derive(Default)]
struct Shared {
    done: usize,
    executed: usize,
    failed: usize,
    in_flight: usize,
    seq: u64,
    /// Heartbeat log: the seq stamped on each emitted heartbeat.
    beats: Vec<u64>,
    io_error: Option<String>,
}

impl Shared {
    /// Mirror of `Shared::heartbeat`: stamp the current seq, then bump it.
    fn heartbeat(&mut self) {
        self.beats.push(self.seq);
        self.seq += 1;
    }
}

/// One worker loop iteration-for-iteration with `run_campaign`'s:
/// claim from the queue lock, bump `in_flight` under the state lock, run
/// the cell outside both locks, then resolve everything under one state
/// lock acquisition (counters, checkpoint, heartbeat, io-error drain).
fn worker(queue: &Mutex<VecDeque<u32>>, shared: &Mutex<Shared>) {
    loop {
        let Some(cell) = queue.lock().unwrap().pop_front() else {
            return;
        };
        shared.lock().unwrap().in_flight += 1;
        // The simulation itself happens here, outside both locks.
        let checkpoint_fails = cell == u32::MAX;
        let mut sh = shared.lock().unwrap();
        sh.done += 1;
        sh.in_flight -= 1;
        sh.executed += 1;
        if checkpoint_fails {
            sh.failed += 1;
            sh.io_error = Some("shard store write failed".to_string());
            queue.lock().unwrap().clear();
        }
        sh.heartbeat();
    }
}

#[test]
fn every_cell_resolves_exactly_once() {
    loom::model(|| {
        let total = 3;
        let queue = Arc::new(Mutex::new((0..total as u32).collect::<VecDeque<_>>()));
        let shared = Arc::new(Mutex::new(Shared::default()));
        // Heartbeat #0 goes out before any worker spawns, as in the pool.
        shared.lock().unwrap().heartbeat();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (q, s) = (Arc::clone(&queue), Arc::clone(&shared));
                thread::spawn(move || worker(&q, &s))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let sh = shared.lock().unwrap();
        assert_eq!(sh.done, total, "a cell was lost or double-resolved");
        assert_eq!(sh.executed, total);
        assert_eq!(sh.in_flight, 0, "in_flight leaked");
        assert_eq!(sh.failed, 0);
        assert!(sh.io_error.is_none());
        // One pre-work heartbeat plus one per resolved cell, seqs 0..=total.
        assert_eq!(sh.beats.len(), total + 1);
        assert!(
            sh.beats.windows(2).all(|w| w[1] == w[0] + 1),
            "heartbeat seqs not strictly increasing: {:?}",
            sh.beats
        );
        assert!(queue.lock().unwrap().is_empty());
    });
}

#[test]
fn checkpoint_failure_drains_the_queue_and_terminates() {
    loom::model(|| {
        // Cell u32::MAX fails its checkpoint write; it sits first so some
        // schedules observe the drain racing a concurrent claim.
        let queue = Arc::new(Mutex::new(VecDeque::from([u32::MAX, 1, 2, 3])));
        let shared = Arc::new(Mutex::new(Shared::default()));
        shared.lock().unwrap().heartbeat();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (q, s) = (Arc::clone(&queue), Arc::clone(&shared));
                thread::spawn(move || worker(&q, &s))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let sh = shared.lock().unwrap();
        assert!(sh.io_error.is_some(), "io error lost");
        assert_eq!(sh.failed, 1);
        // The drain is best-effort: a cell already claimed when the error
        // lands still resolves, but the queue never refills, the pool
        // terminates, and nothing is double-counted.
        assert!(sh.done >= 1 && sh.done <= 4, "done={}", sh.done);
        assert_eq!(sh.executed, sh.done);
        assert_eq!(sh.in_flight, 0, "in_flight leaked through the drain");
        assert_eq!(sh.beats.len(), sh.done + 1);
        assert!(sh.beats.windows(2).all(|w| w[1] == w[0] + 1));
        assert!(queue.lock().unwrap().is_empty());
    });
}

#[test]
fn heartbeat_seq_has_one_writer_at_a_time() {
    // A deliberately broken variant: stamping the heartbeat *outside* the
    // state lock must be caught as a seq collision — this pins that the
    // explorer is actually exercising the property the pool relies on.
    let result = std::panic::catch_unwind(|| {
        loom::model(|| {
            let shared = Arc::new(Mutex::new(Shared::default()));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let s = Arc::clone(&shared);
                    thread::spawn(move || {
                        // Read seq under one acquisition, write under
                        // another: the lost-update window the real pool
                        // avoids by doing both inside `heartbeat()`.
                        let seq = s.lock().unwrap().seq;
                        let mut sh = s.lock().unwrap();
                        sh.beats.push(seq);
                        sh.seq = seq + 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let sh = shared.lock().unwrap();
            assert!(
                sh.beats.windows(2).all(|w| w[1] == w[0] + 1),
                "duplicate heartbeat seq: {:?}",
                sh.beats
            );
        });
    });
    assert!(
        result.is_err(),
        "explorer missed the split-lock heartbeat race"
    );
}
