//! # `telem` — lock-free metrics and telemetry exposition
//!
//! The workspace-wide observability substrate: every layer that wants to
//! count something without paying for it goes through this crate.
//!
//! * [`Counter`] / [`Gauge`] — `const`-constructible, lock-free metric
//!   cells backed by a single relaxed [`AtomicU64`].  Declared as statics
//!   via the [`counter!`] / [`gauge!`] macros, an update compiles to one
//!   relaxed atomic add — no allocation, no branching, safe to call from
//!   the engine hot path (pinned by the `zero_alloc` allocmeter test in
//!   `flitsim`).
//! * [`Histogram`] — the log₂-bucketed histogram previously private to
//!   `flitsim::obs`, promoted here so campaign heartbeats and bench
//!   reports can share it (`flitsim` re-exports it unchanged).
//! * [`TelemetrySnapshot`] — a point-in-time, deterministic view of a set
//!   of metrics with two exposition formats: sorted-key JSON (byte-stable
//!   for a given input, which `scripts/check.sh` relies on) and the
//!   Prometheus text format.
//!
//! The registry is deliberately *explicit*: there is no global list of
//! metrics mutated at static-init time (that would need allocation or
//! `unsafe` linker tricks).  Instead each subsystem declares its statics
//! and contributes them to a snapshot by calling [`TelemetrySnapshot::record`].

#![forbid(unsafe_code)]

// Under `--cfg loom` the metric cells run on the model checker's
// instrumented atomics so the `verify` stage of scripts/check.sh can
// explore interleavings of the registry; the shim's atomics stay
// `const`-constructible, so the `counter!`/`gauge!` statics are unaffected.
#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};

use pcm::Time;
use serde::{Deserialize, Serialize};
use serde_json::Value;

// ---------------------------------------------------------------------------
// Counters and gauges.

/// A monotonically increasing metric cell.
///
/// `const`-constructible so it can live in a `static`; updates are relaxed
/// atomic adds — the cheapest cross-thread counter the hardware offers.
/// Relaxed ordering is enough because readers only ever want a recent
/// value, never a synchronised one.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter (use via the [`counter!`] macro).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Counter {
            name,
            help,
            value: AtomicU64::new(0),
        }
    }

    /// Add `n`. Compiles to a single relaxed `fetch_add`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Metric name (Prometheus-style, e.g. `flitsim_runs_total`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line human description.
    pub fn help(&self) -> &'static str {
        self.help
    }
}

/// A metric cell that can go up and down (set, not accumulated).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge (use via the [`gauge!`] macro).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Gauge {
            name,
            help,
            value: AtomicU64::new(0),
        }
    }

    /// Set the value. A single relaxed store.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line human description.
    pub fn help(&self) -> &'static str {
        self.help
    }
}

/// Declare a static [`Counter`]:
/// `counter!(pub RUNS, "flitsim_runs_total", "Simulation runs completed");`
#[macro_export]
macro_rules! counter {
    ($vis:vis $ident:ident, $name:expr, $help:expr) => {
        $vis static $ident: $crate::Counter = $crate::Counter::new($name, $help);
    };
}

/// Declare a static [`Gauge`]:
/// `gauge!(pub IN_FLIGHT, "pool_cells_in_flight", "Cells being executed");`
#[macro_export]
macro_rules! gauge {
    ($vis:vis $ident:ident, $name:expr, $help:expr) => {
        $vis static $ident: $crate::Gauge = $crate::Gauge::new($name, $help);
    };
}

// ---------------------------------------------------------------------------
// Histogram (promoted from `flitsim::obs`).

/// A log₂-bucketed histogram of `Time` samples: bucket `i` holds values in
/// `[2^(i-1), 2^i)` (bucket 0 holds exactly 0).  Cheap to fill, good
/// enough for p50/p95/p99 at the decade scale latencies live on.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Bucket counts, indexed as above.
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Largest sample seen (exact, not bucketed).
    pub max: Time,
    /// Sum of all samples (for the mean).
    pub sum: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(v: Time) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Record one sample.
    pub fn record(&mut self, v: Time) {
        let b = Self::bucket_of(v);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Build from an iterator of samples.
    pub fn from_samples<I: IntoIterator<Item = Time>>(samples: I) -> Self {
        let mut h = Self::new();
        for v in samples {
            h.record(v);
        }
        h
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (`0 < q <= 1`),
    /// clamped to the observed maximum; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<Time> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return Some(upper.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> Option<Time> {
        self.quantile(0.50)
    }

    /// 95th percentile (bucket upper bound).
    pub fn p95(&self) -> Option<Time> {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> Option<Time> {
        self.quantile(0.99)
    }
}

// ---------------------------------------------------------------------------
// Snapshot + exposition.

/// One metric's value inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
enum MetricValue {
    Counter(u64),
    Gauge(u64),
    GaugeF(f64),
    Histogram(Histogram),
}

#[derive(Debug, Clone, PartialEq)]
struct Metric {
    name: String,
    help: String,
    value: MetricValue,
}

/// A point-in-time view of a set of metrics, with deterministic exposition.
///
/// Metrics are keyed by name and rendered sorted, so two snapshots built
/// from the same values serialize to byte-identical JSON regardless of
/// insertion order — the property the `scripts/check.sh` determinism gate
/// pins.  Only put *deterministic* quantities in a snapshot that is meant
/// to be compared across runs (cycle counts yes, wall-clock no).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    metrics: Vec<Metric>,
}

impl TelemetrySnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, name: &str, help: &str, value: MetricValue) {
        // Last write wins so callers can overwrite a stale entry.
        if let Some(m) = self.metrics.iter_mut().find(|m| m.name == name) {
            m.help = help.to_string();
            m.value = value;
        } else {
            self.metrics.push(Metric {
                name: name.to_string(),
                help: help.to_string(),
                value,
            });
        }
    }

    /// Add (or overwrite) a counter value.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.push(name, help, MetricValue::Counter(value));
    }

    /// Add (or overwrite) an integer gauge value.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.push(name, help, MetricValue::Gauge(value));
    }

    /// Add (or overwrite) a floating-point gauge value.
    pub fn gauge_f64(&mut self, name: &str, help: &str, value: f64) {
        self.push(name, help, MetricValue::GaugeF(value));
    }

    /// Add (or overwrite) a histogram.
    pub fn histogram(&mut self, name: &str, help: &str, h: &Histogram) {
        self.push(name, help, MetricValue::Histogram(h.clone()));
    }

    /// Capture a static [`Counter`]'s current value.
    pub fn record(&mut self, c: &Counter) {
        self.counter(c.name(), c.help(), c.get());
    }

    /// Capture a static [`Gauge`]'s current value.
    pub fn record_gauge(&mut self, g: &Gauge) {
        self.gauge(g.name(), g.help(), g.get());
    }

    /// Number of metrics held.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when no metrics are held.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Look up a counter/gauge value by name (integer metrics only).
    pub fn get(&self, name: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .and_then(|m| match m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(v),
                _ => None,
            })
    }

    fn sorted(&self) -> Vec<&Metric> {
        let mut v: Vec<&Metric> = self.metrics.iter().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// The JSON form: `{"counters": {..}, "gauges": {..}, "histograms": {..}}`
    /// with every object sorted by metric name.
    pub fn to_json_value(&self) -> Value {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for m in self.sorted() {
            match &m.value {
                MetricValue::Counter(v) => counters.push((m.name.clone(), Value::UInt(*v))),
                MetricValue::Gauge(v) => gauges.push((m.name.clone(), Value::UInt(*v))),
                MetricValue::GaugeF(v) => gauges.push((m.name.clone(), Value::Float(*v))),
                MetricValue::Histogram(h) => {
                    hists.push((m.name.clone(), h.to_value()));
                }
            }
        }
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("gauges".to_string(), Value::Object(gauges)),
            ("histograms".to_string(), Value::Object(hists)),
        ])
    }

    /// Pretty JSON text (2-space indent, trailing newline), byte-stable for
    /// a given set of metric values.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(&self.to_json_value())
            .expect("snapshot JSON render cannot fail");
        s.push('\n');
        s
    }

    /// Parse a snapshot back from its [`Self::to_json`] text.
    ///
    /// Help strings are not part of the JSON exposition, so they come back
    /// empty; everything else round-trips exactly
    /// (`from_json(s.to_json()).to_json() == s.to_json()`).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("snapshot JSON: {e}"))?;
        let top = v
            .as_object()
            .ok_or_else(|| "snapshot must be a JSON object".to_string())?;
        let section = |name: &str| -> Result<&[(String, Value)], String> {
            match top.iter().find(|(k, _)| k == name) {
                None => Ok(&[]),
                Some((_, v)) => v
                    .as_object()
                    .ok_or_else(|| format!("snapshot '{name}' must be an object")),
            }
        };
        let mut snap = TelemetrySnapshot::new();
        for (name, v) in section("counters")? {
            let n = v
                .as_u64()
                .ok_or_else(|| format!("counter '{name}' must be a non-negative integer"))?;
            snap.counter(name, "", n);
        }
        for (name, v) in section("gauges")? {
            if let Some(n) = v.as_u64() {
                snap.gauge(name, "", n);
            } else if let Some(f) = v.as_f64() {
                snap.gauge_f64(name, "", f);
            } else {
                return Err(format!("gauge '{name}' must be a number"));
            }
        }
        for (name, v) in section("histograms")? {
            let h = Histogram::from_value(v).map_err(|e| format!("histogram '{name}': {e}"))?;
            snap.histogram(name, "", &h);
        }
        Ok(snap)
    }

    /// A deterministic plain-text rendering (sorted by metric name), the
    /// shared exposition `optmc inspect --format text` uses for service
    /// counters and engine vitals alike.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let width = self.metrics.iter().map(|m| m.name.len()).max().unwrap_or(0);
        for m in self.sorted() {
            match &m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "  {:width$}  {v}", m.name);
                }
                MetricValue::GaugeF(v) => {
                    let _ = writeln!(out, "  {:width$}  {v:.3}", m.name);
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "  {:width$}  count={} mean={:.1} p50={} p95={} max={}",
                        m.name,
                        h.count,
                        h.mean(),
                        h.p50().unwrap_or(0),
                        h.p95().unwrap_or(0),
                        h.max
                    );
                }
            }
        }
        out
    }

    /// The Prometheus text exposition format (`# HELP` / `# TYPE` / value
    /// lines, histograms as cumulative `_bucket{le=..}` series).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for m in self.sorted() {
            let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {} counter", m.name);
                    let _ = writeln!(out, "{} {v}", m.name);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {} gauge", m.name);
                    let _ = writeln!(out, "{} {v}", m.name);
                }
                MetricValue::GaugeF(v) => {
                    let _ = writeln!(out, "# TYPE {} gauge", m.name);
                    let _ = writeln!(out, "{} {v}", m.name);
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {} histogram", m.name);
                    let mut cumulative = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        cumulative += c;
                        // Bucket i holds [2^(i-1), 2^i); its inclusive upper
                        // bound is 2^i - 1 (bucket 0 holds exactly 0).
                        let le = if i == 0 { 0 } else { (1u64 << i) - 1 };
                        let _ = writeln!(out, "{}_bucket{{le=\"{le}\"}} {cumulative}", m.name);
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", m.name, h.count);
                    let _ = writeln!(out, "{}_sum {}", m.name, h.sum);
                    let _ = writeln!(out, "{}_count {}", m.name, h.count);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    counter!(TEST_EVENTS, "telem_test_events_total", "Test events");
    gauge!(TEST_LEVEL, "telem_test_level", "Test level");

    #[test]
    fn counter_and_gauge_statics_accumulate() {
        TEST_EVENTS.inc();
        TEST_EVENTS.add(4);
        assert_eq!(TEST_EVENTS.get(), 5);
        TEST_LEVEL.set(7);
        TEST_LEVEL.set(3);
        assert_eq!(TEST_LEVEL.get(), 3);
        assert_eq!(TEST_EVENTS.name(), "telem_test_events_total");
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::from_samples([0, 1, 2, 3, 4, 100, 1000]);
        assert_eq!(h.count, 7);
        assert_eq!(h.max, 1000);
        assert!(h.p50().unwrap() >= 2 && h.p50().unwrap() <= 7);
        assert!(h.p99().unwrap() >= 100);
        assert!(h.quantile(1.0).unwrap() <= 1000);
        assert!((h.mean() - (1110.0 / 7.0)).abs() < 1e-9);
        assert_eq!(Histogram::new().p50(), None);
    }

    #[test]
    fn histogram_bucket_edges() {
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4..8 → bucket 3.
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7] {
            h.record(v);
        }
        assert_eq!(h.buckets, vec![1, 1, 2, 2]);
    }

    #[test]
    fn snapshot_json_is_sorted_and_insertion_order_independent() {
        let mut a = TelemetrySnapshot::new();
        a.counter("z_total", "z", 1);
        a.counter("a_total", "a", 2);
        a.gauge("m_gauge", "m", 3);
        let mut b = TelemetrySnapshot::new();
        b.gauge("m_gauge", "m", 3);
        b.counter("a_total", "a", 2);
        b.counter("z_total", "z", 1);
        assert_eq!(a.to_json(), b.to_json());
        let json = a.to_json();
        assert!(json.find("a_total").unwrap() < json.find("z_total").unwrap());
        assert_eq!(a.get("a_total"), Some(2));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn snapshot_overwrites_by_name() {
        let mut s = TelemetrySnapshot::new();
        s.counter("x_total", "x", 1);
        s.counter("x_total", "x", 9);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get("x_total"), Some(9));
    }

    #[test]
    fn prometheus_exposition_renders_all_kinds() {
        let mut s = TelemetrySnapshot::new();
        s.counter("runs_total", "Runs", 3);
        s.gauge_f64("ratio", "Ratio", 0.5);
        let h = Histogram::from_samples([1, 5]);
        s.histogram("lat", "Latency", &h);
        let text = s.to_prometheus();
        assert!(text.contains("# TYPE runs_total counter"));
        assert!(text.contains("runs_total 3"));
        assert!(text.contains("# TYPE ratio gauge"));
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_sum 6"));
        assert!(text.contains("lat_count 2"));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut s = TelemetrySnapshot::new();
        s.counter("plansvc_hits_total", "Cache hits", 12);
        s.gauge("plansvc_cached_plans", "Plans held", 4);
        s.gauge_f64("plansvc_hit_ratio", "Hit ratio", 0.75);
        s.histogram(
            "plansvc_lat",
            "Latency",
            &Histogram::from_samples([1, 8, 64]),
        );
        let text = s.to_json();
        let back = TelemetrySnapshot::from_json(&text).unwrap();
        assert_eq!(back.to_json(), text, "byte-stable round trip");
        assert_eq!(back.get("plansvc_hits_total"), Some(12));
        assert!(TelemetrySnapshot::from_json("[]").is_err());
        assert!(TelemetrySnapshot::from_json("{\"counters\": {\"x\": -1}}").is_err());
    }

    #[test]
    fn render_text_lists_every_metric() {
        let mut s = TelemetrySnapshot::new();
        s.counter("b_total", "b", 2);
        s.counter("a_total", "a", 1);
        s.histogram("lat", "Latency", &Histogram::from_samples([2, 2, 2]));
        let text = s.render_text();
        assert!(text.contains("a_total"));
        assert!(text.find("a_total").unwrap() < text.find("b_total").unwrap());
        assert!(text.contains("count=3"));
        assert!(text.contains("max=2"));
    }

    #[test]
    fn histogram_round_trips_through_json() {
        let h = Histogram::from_samples([3, 9, 27]);
        let text = serde_json::to_string(&h.to_value()).unwrap();
        let v = serde_json::from_str(&text).unwrap();
        let back = Histogram::from_value(&v).unwrap();
        assert_eq!(back, h);
    }
}
