//! Model-checked interleaving tests for the metric registry.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the `verify` stage of
//! `scripts/check.sh`); a plain `cargo test` sees an empty test binary.
//! The suite pins the three properties the rest of the workspace leans on:
//! counter updates are never lost, gauges settle on one of the written
//! values, and a snapshot taken concurrently with writers observes a value
//! within the writers' progress bounds (no torn or out-of-thin-air reads).

#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;

use telem::{Counter, Gauge, TelemetrySnapshot};

#[test]
fn counter_adds_are_never_lost() {
    loom::model(|| {
        // Statics persist across model iterations, so build cells fresh
        // per execution and read them through `Arc`s instead.
        let c = Arc::new(Counter::new("loom_counter_total", "model cell"));
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    c.inc();
                    c.add(i);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // 3 × inc + (0 + 1 + 2) regardless of interleaving.
        assert_eq!(c.get(), 6);
    });
}

#[test]
fn gauge_settles_on_a_written_value() {
    loom::model(|| {
        let g = Arc::new(Gauge::new("loom_gauge", "model cell"));
        let (g1, g2) = (Arc::clone(&g), Arc::clone(&g));
        let a = thread::spawn(move || g1.set(11));
        let b = thread::spawn(move || g2.set(22));
        a.join().unwrap();
        b.join().unwrap();
        let v = g.get();
        assert!(v == 11 || v == 22, "gauge holds a value nobody wrote: {v}");
    });
}

#[test]
fn concurrent_snapshot_observes_bounded_progress() {
    loom::model(|| {
        let c = Arc::new(Counter::new("loom_progress_total", "model cell"));
        let writer = {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                for _ in 0..3 {
                    c.inc();
                }
            })
        };
        // Snapshot mid-flight: the captured value must be one the writer
        // actually passed through.
        let mut snap = TelemetrySnapshot::new();
        snap.record(&c);
        let seen = snap.get("loom_progress_total").unwrap();
        assert!(
            seen <= 3,
            "snapshot saw more increments than issued: {seen}"
        );
        writer.join().unwrap();
        assert_eq!(c.get(), 3);
        // A post-join snapshot is exact and overwrites the stale entry.
        snap.record(&c);
        assert_eq!(snap.get("loom_progress_total"), Some(3));
    });
}

#[test]
fn two_counters_do_not_interfere() {
    loom::model(|| {
        let a = Arc::new(Counter::new("loom_a_total", "model cell"));
        let b = Arc::new(Counter::new("loom_b_total", "model cell"));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            a2.add(5);
            b2.inc();
        });
        b.add(10);
        t.join().unwrap();
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 11);
    });
}
