//! `optmc serve` / `optmc plan` — the thin blocking I/O shell around the
//! sans-io [`plansvc`] engine.
//!
//! The engine stays transport-free; this module owns every socket, stream,
//! and clock:
//!
//! * **stdin/stdout mode** (default): newline-delimited JSON requests on
//!   stdin, one response line per request on stdout, strictly in order —
//!   the deterministic mode `scripts/check.sh` smokes.  A summary goes to
//!   stderr at EOF (suppressed by `--quiet`), and `--telemetry-out` writes
//!   the service snapshot (counters + wall-clock hit/miss latency
//!   histograms).
//! * **TCP mode** (`--listen ADDR`): one engine-owner loop, one
//!   reader/writer thread pair per connection.  Pending lines from all
//!   connections are drained into the engine *before* any computation
//!   runs, so identical misses arriving together genuinely coalesce into
//!   one DP execution (single-flight across connections).
//! * **one-shot mode** (`optmc plan`): one request built from flags,
//!   answered on stdout, no service loop at all.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::Instant;

use plansvc::{
    compute_plan, parse_line, step_blocking, Command, Engine, EngineConfig, EngineStats, Input,
    ParsedLine, PlanOptions,
};
use serde_json::Value;
use telem::{Histogram, TelemetrySnapshot};

use crate::args::Args;
use crate::{err, CliError};

/// Shell configuration shared by every serve mode.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Plan-cache capacity.
    pub capacity: usize,
    /// Attach a verified certificate to every plan.
    pub certify: bool,
}

impl ServeOptions {
    fn engine(&self) -> Engine {
        Engine::new(EngineConfig {
            capacity: self.capacity,
        })
    }

    fn plan_opts(&self) -> PlanOptions {
        PlanOptions {
            certify: self.certify,
        }
    }
}

/// What one serve session did: the engine's deterministic counters plus
/// wall-clock latency histograms (nanoseconds, hits and misses separate).
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Deterministic engine counters.
    pub stats: EngineStats,
    /// Plans held when the stream ended.
    pub cached_plans: usize,
    /// Wall-clock nanoseconds per cache-hit request.
    pub hit_ns: Histogram,
    /// Wall-clock nanoseconds per cache-miss request (includes the DP).
    pub miss_ns: Histogram,
}

impl ServeSummary {
    /// The service telemetry snapshot: `plansvc_*` counters, cache
    /// occupancy, and the hit/miss latency histograms.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::new();
        self.stats.record_into(&mut snap);
        snap.gauge(
            "plansvc_cached_plans",
            "Plans held in the cache",
            self.cached_plans as u64,
        );
        snap.histogram(
            "plansvc_hit_latency_ns",
            "Wall-clock nanoseconds per cache-hit request",
            &self.hit_ns,
        );
        snap.histogram(
            "plansvc_miss_latency_ns",
            "Wall-clock nanoseconds per cache-miss request",
            &self.miss_ns,
        );
        snap
    }

    fn render(&self) -> String {
        let s = self.stats;
        format!(
            "serve: {} requests ({} hits, {} misses, {} coalesced, {} evictions, {} errors), {} plans cached",
            s.requests, s.hits, s.misses, s.coalesced, s.evictions, s.errors, self.cached_plans
        )
    }
}

/// Serve a newline-delimited request stream to completion: one response
/// line per request line, in order, flushed per line.  Pure over the
/// reader/writer pair, so tests drive it with in-memory buffers.
pub fn serve_stream<R: BufRead, W: Write>(
    input: R,
    mut output: W,
    opts: &ServeOptions,
) -> Result<ServeSummary, CliError> {
    let mut engine = opts.engine();
    let plan_opts = opts.plan_opts();
    let mut hit_ns = Histogram::new();
    let mut miss_ns = Histogram::new();
    let mut next_id = 0u64;
    for line in input.lines() {
        let line = line.map_err(|e| err(format!("reading request stream: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        next_id += 1;
        let before = engine.stats();
        let started = Instant::now();
        let responses = step_blocking(&mut engine, next_id, &line, &plan_opts);
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let after = engine.stats();
        if after.hits > before.hits {
            hit_ns.record(elapsed_ns);
        } else if after.misses > before.misses {
            miss_ns.record(elapsed_ns);
        }
        for (_, text) in responses {
            writeln!(output, "{text}").map_err(|e| err(format!("writing response: {e}")))?;
        }
        output
            .flush()
            .map_err(|e| err(format!("flushing response: {e}")))?;
    }
    Ok(ServeSummary {
        stats: engine.stats(),
        cached_plans: engine.cached_plans(),
        hit_ns,
        miss_ns,
    })
}

/// `optmc serve` — stdin/stdout by default, TCP with `--listen`.
pub fn cmd_serve(a: &Args) -> Result<String, CliError> {
    let opts = ServeOptions {
        capacity: a.num("capacity", 1024)?,
        certify: a.has("certify"),
    };
    let quiet = a.has("quiet");
    if let Some(addr) = a.get("listen") {
        if a.get("telemetry-out").is_some() {
            return Err(err(
                "--telemetry-out requires the stdin/stdout mode (the TCP loop never ends)",
            ));
        }
        let listener = TcpListener::bind(addr).map_err(|e| err(format!("--listen {addr}: {e}")))?;
        if !quiet {
            let local = listener
                .local_addr()
                .map_or_else(|_| addr.to_string(), |l| l.to_string());
            eprintln!("optmc serve: listening on {local}");
        }
        tcp_serve(&listener, &opts);
        return Ok(String::new());
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let summary = serve_stream(stdin.lock(), stdout.lock(), &opts)?;
    if let Some(path) = a.get("telemetry-out") {
        crate::write_snapshot(path, &summary.snapshot())?;
    }
    if !quiet {
        eprintln!("{}", summary.render());
    }
    Ok(String::new())
}

enum ConnEvent {
    Opened {
        conn: u64,
        writer: mpsc::Sender<String>,
    },
    Line {
        conn: u64,
        text: String,
    },
    Closed {
        conn: u64,
    },
}

/// The TCP engine-owner loop.  Runs until the accept thread dies (i.e.
/// forever in practice — the server is killed externally).
///
/// All connection events funnel through one channel into the single
/// engine; each wakeup drains *every* pending event before executing any
/// `Compute`, so concurrent identical misses coalesce across connections.
pub fn tcp_serve(listener: &TcpListener, opts: &ServeOptions) {
    let plan_opts = opts.plan_opts();
    let (tx, rx) = mpsc::channel::<ConnEvent>();
    {
        let tx = tx.clone();
        let listener = listener.try_clone().expect("cloning listener handle");
        std::thread::spawn(move || accept_loop(&listener, &tx));
    }
    drop(tx);
    let mut engine = opts.engine();
    let mut writers: HashMap<u64, mpsc::Sender<String>> = HashMap::new();
    let mut routes: HashMap<u64, u64> = HashMap::new();
    let mut next_id = 0u64;
    while let Ok(first) = rx.recv() {
        // Batch: drain everything already pending before computing.
        let mut events = vec![first];
        while let Ok(ev) = rx.try_recv() {
            events.push(ev);
        }
        let mut computes = Vec::new();
        for ev in events {
            match ev {
                ConnEvent::Opened { conn, writer } => {
                    writers.insert(conn, writer);
                }
                ConnEvent::Closed { conn } => {
                    writers.remove(&conn);
                }
                ConnEvent::Line { conn, text } => {
                    next_id += 1;
                    routes.insert(next_id, conn);
                    engine.handle(Input::Line { id: next_id, text });
                }
            }
        }
        drain_commands(&mut engine, &mut computes, &mut routes, &writers);
        // Execute the batch's work orders; each completion may answer
        // many coalesced waiters.
        while !computes.is_empty() {
            for (key, request) in std::mem::take(&mut computes) {
                let result = compute_plan(&request, &plan_opts).map(Box::new);
                engine.handle(Input::Computed { key, result });
            }
            drain_commands(&mut engine, &mut computes, &mut routes, &writers);
        }
    }
}

fn drain_commands(
    engine: &mut Engine,
    computes: &mut Vec<(String, Box<plansvc::PlanRequest>)>,
    routes: &mut HashMap<u64, u64>,
    writers: &HashMap<u64, mpsc::Sender<String>>,
) {
    while let Some(cmd) = engine.poll() {
        match cmd {
            Command::Compute { key, request } => computes.push((key, request)),
            Command::Respond { id, line } => {
                if let Some(conn) = routes.remove(&id) {
                    if let Some(w) = writers.get(&conn) {
                        // A send error means the client left; drop the line.
                        let _ = w.send(line);
                    }
                }
            }
        }
    }
}

fn accept_loop(listener: &TcpListener, tx: &mpsc::Sender<ConnEvent>) {
    let mut conn_seq = 0u64;
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        conn_seq += 1;
        let conn = conn_seq;
        let (wtx, wrx) = mpsc::channel::<String>();
        if tx.send(ConnEvent::Opened { conn, writer: wtx }).is_err() {
            return; // engine loop is gone
        }
        let write_half = stream.try_clone().ok();
        std::thread::spawn(move || writer_loop(write_half, &wrx));
        let tx = tx.clone();
        std::thread::spawn(move || reader_loop(stream, conn, &tx));
    }
}

fn writer_loop(stream: Option<TcpStream>, lines: &mpsc::Receiver<String>) {
    let Some(stream) = stream else { return };
    let mut out = std::io::BufWriter::new(stream);
    while let Ok(line) = lines.recv() {
        if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
            return;
        }
    }
}

fn reader_loop(stream: TcpStream, conn: u64, tx: &mpsc::Sender<ConnEvent>) {
    let reader = std::io::BufReader::new(stream);
    for line in reader.lines() {
        let Ok(text) = line else { break };
        if text.trim().is_empty() {
            continue;
        }
        if tx.send(ConnEvent::Line { conn, text }).is_err() {
            return;
        }
    }
    let _ = tx.send(ConnEvent::Closed { conn });
}

/// `optmc plan` — one request from flags, one answer, no service loop.
pub fn cmd_plan(a: &Args) -> Result<String, CliError> {
    let topo = a.require("topo")?;
    let mut fields: Vec<(String, Value)> = vec![("topo".to_string(), Value::Str(topo.to_string()))];
    if let Some(alg) = a.get("alg") {
        fields.push(("alg".to_string(), Value::Str(alg.to_string())));
    }
    match (a.get("members"), a.get("nodes")) {
        (Some(_), Some(_)) => {
            return Err(err("give either --members or --nodes, not both"));
        }
        (Some(csv), None) => {
            let ids: Result<Vec<Value>, CliError> = csv
                .split(',')
                .map(|tok| {
                    tok.trim()
                        .parse::<u64>()
                        .map(Value::UInt)
                        .map_err(|_| err(format!("--members: cannot parse '{tok}'")))
                })
                .collect();
            fields.push(("members".to_string(), Value::Array(ids?)));
        }
        (None, Some(_)) => {
            fields.push(("k".to_string(), Value::UInt(a.require_num("nodes")?)));
            fields.push(("seed".to_string(), Value::UInt(a.num("seed", 1997)?)));
        }
        (None, None) => {
            return Err(err("missing --members (or --nodes for a seeded placement)"));
        }
    }
    fields.push(("bytes".to_string(), Value::UInt(a.num("bytes", 4096)?)));
    match (a.get("hold"), a.get("end")) {
        (None, None) => {}
        (Some(_), Some(_)) => {
            fields.push(("hold".to_string(), Value::UInt(a.require_num("hold")?)));
            fields.push(("end".to_string(), Value::UInt(a.require_num("end")?)));
        }
        _ => return Err(err("--hold and --end must be given together")),
    }
    let line = serde_json::to_string(&Value::Object(fields))
        .map_err(|e| err(format!("building request: {e}")))?;
    let ParsedLine::Plan(request, _) = parse_line(&line).map_err(|e| err(e.message))? else {
        unreachable!("cmd_plan builds plan requests only");
    };
    let opts = PlanOptions {
        certify: a.has("certify"),
    };
    let body = compute_plan(&request, &opts).map_err(CliError)?;
    if a.has("json") {
        let mut text = serde_json::to_string_pretty(&body.to_value())
            .map_err(|e| err(format!("rendering plan: {e}")))?;
        text.push('\n');
        return Ok(text);
    }
    let mut text = String::new();
    let _ = writeln!(
        text,
        "{} on {}: k={}, {} bytes  (key {})",
        body.algorithm,
        body.topo,
        body.k,
        body.bytes,
        request.key()
    );
    let _ = writeln!(text, "  (t_hold, t_end) = ({}, {})", body.hold, body.end);
    let _ = writeln!(
        text,
        "  analytic latency {} cycles, depth {} rounds",
        body.latency, body.depth
    );
    let chain = body
        .chain
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(" ");
    let _ = writeln!(text, "  chain: {chain}");
    let _ = writeln!(text, "  sends:");
    for &(from, to, start, arrive) in &body.sends {
        let _ = writeln!(
            text,
            "    t={start:<8} {from:>5} -> {to:<5} (arrive {arrive})"
        );
    }
    if let Some(cert) = &body.certificate {
        let verdict = if cert.clean {
            "clean (contention-free, verified)"
        } else {
            "CONTENDED"
        };
        let _ = writeln!(
            text,
            "  certificate: {verdict}, {} channel windows",
            cert.windows.len()
        );
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn opts(capacity: usize) -> ServeOptions {
        ServeOptions {
            capacity,
            certify: false,
        }
    }

    fn serve(batch: &str, capacity: usize) -> (String, ServeSummary) {
        let mut out = Vec::new();
        let summary = serve_stream(Cursor::new(batch), &mut out, &opts(capacity)).unwrap();
        (String::from_utf8(out).unwrap(), summary)
    }

    const BATCH: &str = r#"{"id": 1, "topo": "mesh:8x8", "k": 8, "seed": 1, "bytes": 2048}
{"id": 2, "topo": "mesh:8x8", "k": 8, "seed": 1, "bytes": 2048}
{"id": 3, "topo": "mesh:8x8", "alg": "u-arch", "k": 8, "seed": 2, "bytes": 1024}
{"id": 4, "topo": "mesh:8x8", "k": 8, "seed": 1, "bytes": 2048}
{"id": 5, "stats": true}
"#;

    #[test]
    fn scripted_batch_is_byte_stable_and_hits_cache() {
        let (out1, summary) = serve(BATCH, 64);
        let (out2, _) = serve(BATCH, 64);
        assert_eq!(out1, out2, "same stream, byte-identical responses");
        assert_eq!(out1.lines().count(), 5, "one response per request line");
        let s = summary.stats;
        assert_eq!((s.requests, s.hits, s.misses), (4, 2, 2));
        assert_eq!(s.dp_runs, 2);
        assert!(out1.lines().last().unwrap().contains("\"hits\":2"));
        // Wall-clock histograms saw every request.
        assert_eq!(summary.hit_ns.count, 2);
        assert_eq!(summary.miss_ns.count, 2);
    }

    #[test]
    fn thousand_request_stream_serves_deterministically() {
        // The acceptance-criteria stream at shell level: 1000 requests,
        // replayed, byte-identical stdout.
        let mut batch = String::new();
        for i in 0..1000 {
            let topo = if i % 2 == 0 { "mesh:8x8" } else { "bmin:64" };
            let k = 2 + (i % 7);
            let seed = i % 5;
            let _ = writeln!(
                batch,
                r#"{{"id": {i}, "topo": "{topo}", "k": {k}, "seed": {seed}}}"#
            );
        }
        let (out1, summary) = serve(&batch, 256);
        let (out2, _) = serve(&batch, 256);
        assert_eq!(out1, out2);
        assert_eq!(out1.lines().count(), 1000);
        assert_eq!(summary.stats.requests, 1000);
        assert!(summary.stats.hits > 900, "{:?}", summary.stats);
    }

    #[test]
    fn error_lines_answer_without_killing_the_stream() {
        let batch = "not json\n{\"topo\": \"mesh:4x4\", \"k\": 4}\n";
        let (out, summary) = serve(batch, 8);
        assert_eq!(out.lines().count(), 2);
        assert!(out.lines().next().unwrap().contains("\"ok\":false"));
        assert!(out.lines().nth(1).unwrap().contains("\"ok\":true"));
        assert_eq!(summary.stats.errors, 1);
    }

    #[test]
    fn snapshot_round_trips_for_inspect() {
        let (_, summary) = serve(BATCH, 64);
        let snap = summary.snapshot();
        let text = snap.to_json();
        let back = TelemetrySnapshot::from_json(&text).unwrap();
        assert_eq!(back.get("plansvc_requests_total"), Some(4));
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn tcp_mode_coalesces_across_connections() {
        // Loopback sockets may be unavailable in sandboxed test runs;
        // skip loudly rather than fail.
        let listener = match TcpListener::bind("127.0.0.1:0") {
            Ok(l) => l,
            Err(e) => {
                eprintln!("SKIP tcp_mode_coalesces_across_connections: bind: {e}");
                return;
            }
        };
        let addr = listener.local_addr().unwrap();
        let serve_opts = opts(64);
        std::thread::spawn(move || tcp_serve(&listener, &serve_opts));
        let mut a = TcpStream::connect(addr).unwrap();
        let mut b = TcpStream::connect(addr).unwrap();
        let req = r#"{"topo": "mesh:8x8", "k": 8, "seed": 1, "bytes": 2048}"#;
        writeln!(a, "{req}").unwrap();
        writeln!(b, "{req}").unwrap();
        let mut ra = std::io::BufReader::new(a.try_clone().unwrap());
        let mut rb = std::io::BufReader::new(b.try_clone().unwrap());
        let mut la = String::new();
        let mut lb = String::new();
        ra.read_line(&mut la).unwrap();
        rb.read_line(&mut lb).unwrap();
        assert!(la.contains("\"ok\":true"), "{la}");
        // Whether the second request coalesced (miss in the same batch) or
        // hit the warm cache depends on arrival timing; the plan bytes must
        // be identical either way.
        let plan_of = |line: &str| {
            let at = line.find("\"plan\":").expect("response carries a plan");
            line[at..].to_string()
        };
        assert_eq!(
            plan_of(&la),
            plan_of(&lb),
            "both connections get the same plan bytes"
        );
        // The stats line reports a single DP run when the two misses
        // coalesced, or two when the batch raced; either way both clients
        // were answered, and dp_runs never exceeds misses.
        writeln!(a, "{{\"stats\": true}}").unwrap();
        let mut ls = String::new();
        ra.read_line(&mut ls).unwrap();
        assert!(ls.contains("\"requests\":2"), "{ls}");
    }
}
