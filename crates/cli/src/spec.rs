//! Topology and algorithm specifications (`mesh:16x16`, `opt-arch`, …).

use optmc::Algorithm;
use topo::{Bmin, Mesh, Omega, Topology, UpPolicy};

use crate::{err, CliError};

/// Parse a topology spec into a boxed topology.
///
/// Grammar: `mesh:AxB[xC…][:ports]`, `hypercube:D`, `bmin:N`, `omega:N`
/// (`N` a power of two).
pub fn parse_topology(spec: &str) -> Result<Box<dyn Topology>, CliError> {
    let mut parts = spec.split(':');
    let kind = parts.next().unwrap_or_default();
    let arg = parts
        .next()
        .ok_or_else(|| err(format!("topology '{spec}' needs an argument")))?;
    let extra = parts.next();
    match kind {
        "mesh" => {
            let dims: Result<Vec<usize>, _> = arg.split('x').map(str::parse).collect();
            let dims = dims.map_err(|_| err(format!("bad mesh dimensions '{arg}'")))?;
            if dims.is_empty() || dims.contains(&0) {
                return Err(err(format!("bad mesh dimensions '{arg}'")));
            }
            let ports = match extra {
                None => 1,
                Some(p) => p
                    .parse()
                    .map_err(|_| err(format!("bad port count '{p}'")))?,
            };
            Ok(Box::new(Mesh::with_ports(&dims, ports)))
        }
        "hypercube" => {
            let d: usize = arg
                .parse()
                .map_err(|_| err(format!("bad cube dimension '{arg}'")))?;
            if !(1..=20).contains(&d) {
                return Err(err(format!("cube dimension {d} out of range 1..=20")));
            }
            Ok(Box::new(Mesh::hypercube(d)))
        }
        "bmin" | "omega" => {
            let n: usize = arg
                .parse()
                .map_err(|_| err(format!("bad node count '{arg}'")))?;
            if !n.is_power_of_two() || n < 2 {
                return Err(err(format!(
                    "{kind} node count must be a power of two >= 2, got {n}"
                )));
            }
            let s = n.trailing_zeros();
            if kind == "bmin" {
                Ok(Box::new(Bmin::new(s, UpPolicy::Straight)))
            } else {
                Ok(Box::new(Omega::new(s)))
            }
        }
        other => Err(err(format!(
            "unknown topology '{other}' (expected mesh / hypercube / bmin / omega)"
        ))),
    }
}

/// Parse an algorithm name.
pub fn parse_algorithm(name: &str) -> Result<Algorithm, CliError> {
    match name {
        "opt-arch" | "opt-mesh" | "opt-min" => Ok(Algorithm::OptArch),
        "u-arch" | "u-mesh" | "u-min" => Ok(Algorithm::UArch),
        "opt-tree" => Ok(Algorithm::OptTree),
        "binomial" => Ok(Algorithm::BinomialTree),
        "sequential" | "seq" => Ok(Algorithm::Sequential),
        other => Err(err(format!(
            "unknown algorithm '{other}' (expected opt-arch / u-arch / opt-tree / binomial / sequential)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_topology_kind() {
        assert_eq!(parse_topology("mesh:4x4").unwrap().graph().n_nodes(), 16);
        assert_eq!(parse_topology("mesh:2x3x4").unwrap().graph().n_nodes(), 24);
        assert_eq!(parse_topology("mesh:4x4:2").unwrap().graph().ports(), 2);
        assert_eq!(parse_topology("hypercube:5").unwrap().graph().n_nodes(), 32);
        assert_eq!(parse_topology("bmin:128").unwrap().graph().n_nodes(), 128);
        assert_eq!(parse_topology("omega:64").unwrap().graph().n_nodes(), 64);
    }

    #[test]
    fn rejects_bad_specs() {
        for bad in [
            "mesh", "mesh:0x4", "mesh:ax4", "bmin:100", "omega:1", "ring:8", "bmin:",
        ] {
            assert!(parse_topology(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn parses_algorithms_and_aliases() {
        assert_eq!(parse_algorithm("opt-mesh").unwrap(), Algorithm::OptArch);
        assert_eq!(parse_algorithm("u-min").unwrap(), Algorithm::UArch);
        assert_eq!(parse_algorithm("seq").unwrap(), Algorithm::Sequential);
        assert!(parse_algorithm("magic").is_err());
    }
}
