//! Topology and algorithm specifications (`mesh:16x16`, `opt-arch`, …).
//!
//! The grammar itself lives in [`optmc::spec`] (shared with the `campaign`
//! crate's declarative sweeps); this module adapts the errors to
//! [`CliError`] and adds the netcheck routing-discipline mapping, which is
//! CLI-specific.

use netcheck::Discipline;
use optmc::spec::SpecKind;
use optmc::Algorithm;
use topo::Topology;

use crate::CliError;

/// Parse a topology spec into a boxed topology (see [`optmc::spec`] for
/// the grammar).
pub fn parse_topology(spec: &str) -> Result<Box<dyn Topology>, CliError> {
    optmc::spec::parse_topology(spec).map_err(CliError)
}

/// The routing discipline `optmc check` should lint a topology spec
/// against: dimension-order for meshes, tori, and hypercubes; turnaround
/// for BMINs; unconstrained for the unidirectional omega.
///
/// Built on the one shared grammar in [`optmc::spec::parse_spec`], so
/// `check`, `sweep`, `serve`, and `plan` all read specs identically.
pub fn discipline_for(spec: &str) -> Result<Discipline, CliError> {
    let s = optmc::spec::parse_spec(spec).map_err(CliError)?;
    Ok(match s.kind {
        SpecKind::Mesh | SpecKind::Torus | SpecKind::Hypercube => {
            Discipline::DimensionOrder { dims: s.dims }
        }
        SpecKind::Bmin => Discipline::Turnaround { width: s.nodes / 2 },
        SpecKind::Omega => Discipline::Unconstrained,
    })
}

/// Parse an algorithm name ([`Algorithm::parse`] with CLI errors).
pub fn parse_algorithm(name: &str) -> Result<Algorithm, CliError> {
    Algorithm::parse(name).map_err(CliError)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_topology_kind() {
        assert_eq!(parse_topology("mesh:4x4").unwrap().graph().n_nodes(), 16);
        assert_eq!(parse_topology("mesh:2x3x4").unwrap().graph().n_nodes(), 24);
        assert_eq!(parse_topology("mesh:4x4:2").unwrap().graph().ports(), 2);
        assert_eq!(parse_topology("hypercube:5").unwrap().graph().n_nodes(), 32);
        assert_eq!(parse_topology("bmin:128").unwrap().graph().n_nodes(), 128);
        assert_eq!(parse_topology("omega:64").unwrap().graph().n_nodes(), 64);
        assert_eq!(parse_topology("torus:4x4").unwrap().name(), "torus-4x4");
        assert_eq!(
            parse_topology("torus:4x4:novc").unwrap().name(),
            "torus-4x4-novc"
        );
    }

    #[test]
    fn rejects_bad_specs() {
        for bad in [
            "mesh",
            "mesh:0x4",
            "mesh:ax4",
            "bmin:100",
            "omega:1",
            "ring:8",
            "bmin:",
            "torus:4x4:vc9",
        ] {
            assert!(parse_topology(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn discipline_matches_architecture() {
        assert_eq!(
            discipline_for("mesh:4x6").unwrap(),
            Discipline::DimensionOrder { dims: vec![4, 6] }
        );
        assert_eq!(
            discipline_for("torus:8x8:novc").unwrap(),
            Discipline::DimensionOrder { dims: vec![8, 8] }
        );
        assert_eq!(
            discipline_for("hypercube:3").unwrap(),
            Discipline::DimensionOrder {
                dims: vec![2, 2, 2]
            }
        );
        assert_eq!(
            discipline_for("bmin:128").unwrap(),
            Discipline::Turnaround { width: 64 }
        );
        assert_eq!(
            discipline_for("omega:16").unwrap(),
            Discipline::Unconstrained
        );
        assert!(discipline_for("ring:8").is_err());
    }

    #[test]
    fn parses_algorithms_and_aliases() {
        assert_eq!(parse_algorithm("opt-mesh").unwrap(), Algorithm::OptArch);
        assert_eq!(parse_algorithm("u-min").unwrap(), Algorithm::UArch);
        assert_eq!(parse_algorithm("seq").unwrap(), Algorithm::Sequential);
        assert!(parse_algorithm("magic").is_err());
    }
}
