//! `optmc` — the command-line entry point.  All logic lives in the library.

use optmc_cli::args::Args;
use optmc_cli::commands::dispatch;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", optmc_cli::USAGE);
            std::process::exit(2);
        }
    };
    match dispatch(&parsed) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            let msg = e.to_string();
            if msg.contains('\n') {
                // A fully-rendered report (`optmc check` findings) — print
                // verbatim so `--json` output stays machine-parseable.
                eprintln!("{msg}");
            } else {
                eprintln!("error: {msg}");
            }
            std::process::exit(1);
        }
    }
}
