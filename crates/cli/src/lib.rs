//! Implementation of the `optmc` command-line tool.
//!
//! Everything lives in the library so the parsing and command logic are
//! unit-testable; `main.rs` is a thin shim.  Argument handling is
//! hand-rolled (`--flag value` pairs) to keep the dependency set to the
//! workspace crates.

#![forbid(unsafe_code)]

pub mod args;
pub mod commands;
pub mod serve;
pub mod spec;
pub mod sweep;

use std::fmt;

/// CLI-level errors, all user-facing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Convenience constructor.
pub fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Write a [`telem::TelemetrySnapshot`] to `path` in the format the
/// extension picks: Prometheus text exposition for `.prom`, pretty JSON
/// otherwise.  Shared by `inspect --telemetry-out` and
/// `sweep report --telemetry-out`.
pub fn write_snapshot(path: &str, snap: &telem::TelemetrySnapshot) -> Result<(), CliError> {
    let text = if path.ends_with(".prom") {
        snap.to_prometheus()
    } else {
        snap.to_json()
    };
    std::fs::write(path, text).map_err(|e| err(format!("--telemetry-out {path}: {e}")))
}

/// Top-level usage text.
pub const USAGE: &str = "\
optmc — architecture-tuned optimal multicast (IPPS'97 reproduction)

USAGE:
  optmc tree      --hold H --end E --k K [--dot] [--src POS]
  optmc check     --topo SPEC [--alg ALG --nodes K --bytes B --seed S --src NODE]
                  [--conservative] [--json]
  optmc check     --topo SPEC --set --nodes K [--alg ALG] [--count N] [--bytes B]
                  [--gap G | --mean-gap F] [--seed S] [--disjoint]
                  [--cert-out FILE] [--json]
  optmc run       --topo SPEC --alg ALG --nodes K --bytes B [--seed S] [--temporal] [--trace]
                  [--trace-limit N] [--shards N] [--counters] [--fingerprint]
  optmc inspect   --topo SPEC --alg ALG --nodes K --bytes B [--seed S] [--temporal]
                  [--trace-out FILE] [--format perfetto|jsonl|text] [--trace-limit N]
                  [--heatmap] [--heatmap-out FILE] [--telemetry-out FILE[.prom]]
                  [--plan-telemetry FILE]
  optmc compare   --topo SPEC --nodes K --bytes B [--trials N] [--seed S]
  optmc calibrate --topo SPEC [--sizes CSV]
  optmc gather    --topo SPEC --alg ALG --nodes K --bytes B [--seed S]
  optmc growth    --hold H --end E [--until T]
  optmc sweep     run|resume|report|status --spec FILE.json [--jobs N] [--budget-ms MS]
                  [--out DIR] [--quiet] [--progress] [--json] [--telemetry-out FILE[.prom]]
  optmc workload  --topo SPEC --nodes K --bytes B [--alg ALG] [--count N]
                  [--gap G | --mean-gap F] [--seed S]
  optmc plan      --topo SPEC (--members CSV | --nodes K [--seed S]) [--alg ALG]
                  [--bytes B] [--hold H --end E] [--certify] [--json]
  optmc serve     [--capacity N] [--certify] [--listen ADDR] [--quiet]
                  [--telemetry-out FILE[.prom]]

TOPO SPEC:
  mesh:16x16[:ports]   n-dimensional mesh, e.g. mesh:8x8, mesh:4x4x4, mesh:16x16:2
  torus:4x4[:novc]     n-dimensional torus; :novc drops the dateline virtual
                       channels (deadlock-prone — for exercising 'check')
  hypercube:D          binary D-cube
  bmin:N               bidirectional MIN on N=2^s nodes (turnaround routing)
  omega:N              unidirectional omega MIN on N=2^s nodes

ALG:
  opt-arch | u-arch | opt-tree | binomial | sequential

COMMON SIM FLAGS:
  Every simulating command also accepts --addr-bytes B, --buffer-flits F,
  --no-adaptive and --shards N.  --shards N (N > 1) partitions the flit
  engine across N worker threads with adaptive conservative-window sync
  (per-neighbor earliest-input-time promises); the results are
  bit-identical to the sequential engine, and runs the window bounds
  cannot cover (tiny messages, event-by-event traced runs) fall back to
  sequential — counting observers ('run --counters') shard fine.
  'run --fingerprint' prints the run's canonical SimResult JSON instead of
  the report (and, with --shards > 1, fails with the concrete fallback
  reason if the sharded engine fell back) — the substrate of the
  differential gate in scripts/check.sh.

CHECK:
  Static verification with rustc-style diagnostics: channel-dependency-graph
  deadlock analysis (Dally–Seitz) and routing lints (termination,
  minimality, discipline conformance) always; with --alg also contention
  certification of that schedule (windowed occupancy analysis by default,
  --conservative for the interval approximation) and a differential oracle
  run asserting the simulator agrees with the static verdict.  --nodes
  defaults to the whole machine.  Exits 1 on any error-level finding;
  --json emits the report as JSON (diagnostics sorted for byte-stable
  output).

  --set certifies a whole schedule *set*: --count multicasts built by the
  same generator as 'optmc workload' (--disjoint carves node-disjoint
  groups from one pool instead — the regime where a clean certificate is
  attainable), analyzed jointly.  Cross-multicast channel contention is an
  NC0211 error with the contended channel and cycle window as the witness;
  members sharing nodes while concurrently active are an NC0212 error (the
  replay cannot model their CPU serialization, so such sets are never
  certified).  The machine-checkable plan certificate (per-channel
  occupancy intervals, JSON) is re-verified by an independent sweep-line
  checker and written to --cert-out; a differential leg simulates the same
  set jointly and demands agreement (certified clean <=> zero blocked
  cycles for pairwise-independent members).

SWEEP:
  Parallel, resumable experiment campaigns.  --spec is a declarative JSON
  grid (topos × algorithms × ks × sizes, plus trials/seed and an optional
  figure mapping); completed cells checkpoint to a JSONL shard store under
  --out (default results/campaigns)/<name>, so a killed campaign resumes
  where it stopped and 'resume' re-runs nothing already recorded.  Panics
  and per-cell --budget-ms overruns land in a failure ledger instead of
  aborting the sweep.  'report' reduces the shards into the campaign
  summary and (with a figure mapping) the results/<id>.csv|json dataset —
  byte-identical to the sequential figure binaries — plus the failure
  ledger (count and first reasons) and, with --telemetry-out, a campaign
  telemetry snapshot (JSON, or Prometheus text for .prom paths).
  The pool streams live telemetry to heartbeat.jsonl in the shard store:
  'run --progress' renders it in place on stderr, and 'status' prints the
  latest heartbeat (progress, in-flight cells, cell-latency histogram,
  ETA; --json for the raw record) for a campaign running in another
  terminal — or a finished/killed one.

WORKLOAD:
  Open-loop concurrent-multicast workload: --count multicasts with random
  roots and groups arrive at seeded Poisson (--mean-gap, default) or
  fixed-rate (--gap) times; reports the joint latency distribution and the
  interference factor against each multicast's solo baseline.

PLAN / SERVE:
  'plan' answers one planning request from flags: the multicast chain on
  --topo for --members (source first) or a --seed'ed --nodes K placement,
  with (t_hold, t_end) derived from the calibrated architecture model for
  the message size (or forced with --hold/--end), the OPT DP's split
  schedule, and node-level sends.  --certify attaches a machine-checked
  contention certificate (machine-derived parameters only).  --json emits
  the same plan body a serve response carries.

  'serve' runs the sans-io planning engine as a service.  Default mode
  reads newline-delimited JSON requests on stdin — e.g.
  {\"id\": 7, \"topo\": \"mesh:8x8\", \"k\": 8, \"seed\": 1, \"bytes\": 2048}
  or {\"stats\": true} — and answers one JSON line per request on stdout,
  in order; a replayed stream produces byte-identical responses.  Computed
  plans land in a content-addressed cache (--capacity plans, deterministic
  LRU eviction), so repeated requests are answered without re-running the
  DP, and concurrent identical misses coalesce into a single computation.
  --listen ADDR serves the same protocol over TCP (many connections, one
  shared cache; responses carry request ids so clients may pipeline).
  --telemetry-out (stdin mode) writes the service snapshot — hit/miss/
  eviction counters plus wall-clock hit and miss latency histograms —
  which 'optmc inspect --plan-telemetry FILE' renders as text.

INSPECT:
  Runs one fully-observed multicast and prints the run report (latency
  histograms, phase breakdown, engine vitals, hot channels).  --format
  selects the trace export: 'perfetto' writes Chrome trace-event JSON for
  ui.perfetto.dev (one track per channel, one per node CPU, blocking as
  instant events), 'jsonl' writes one trace event per line (streamed to
  --trace-out without buffering), 'text' renders a channel timeline.
  Without --trace-out, perfetto/jsonl output replaces the report on stdout.
  --heatmap appends the per-channel contention heatmap (a shaded busy
  fraction per time window, from the engine's always-on accumulators);
  --heatmap-out writes it as JSON.  --telemetry-out writes the run's
  deterministic telemetry snapshot — JSON, or Prometheus text exposition
  when the path ends in .prom; both compose with every --format.
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_displays_message() {
        assert_eq!(err("boom").to_string(), "boom");
    }
}
